//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each `exp_*` binary in `src/bin/` reproduces one table or figure and
//! prints the same rows/series the paper reports (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for paper-vs-measured values).
//! This library holds the shared plumbing: table formatting and the
//! experiment registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Print a formatted experiment table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", joined.join("  "));
    };
    line(&headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format seconds with 3 decimals.
#[must_use]
pub fn secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Format megabytes with 1 decimal.
#[must_use]
pub fn mb(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a percentage with 1 decimal.
#[must_use]
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(secs(1.23456), "1.235");
        assert_eq!(mb(38.04), "38.0");
        assert_eq!(pct(0.043), "4.3%");
    }

    #[test]
    fn print_table_handles_ragged_rows() {
        // Smoke test: must not panic.
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
