//! AES kernel comparison: scalar table-driven vs batched bitsliced.
//!
//! Three views of the two software AES backends:
//!
//! * **Host throughput** — MiB/s over 4 KiB pages (each page its own
//!   CBC/XTS/CTR stream, as in the pager) for {CBC-encrypt,
//!   CBC-decrypt, XTS-encrypt, XTS-decrypt, CTR} × {table, bitsliced}.
//!   CBC decryption, XTS (both directions), and CTR are data-parallel,
//!   so the bitsliced backend runs them 16 blocks per kernel call; CBC
//!   encryption is serially chained and shows the bitsliced backend at
//!   its worst (one block occupying a 16-lane kernel). The XTS-encrypt
//!   over CBC-encrypt ratio is the cliff the per-page XTS mode
//!   removes from the lock path.
//! * **Table 4 accounting** — the on-SoC state arena of the tracked
//!   variant of each backend, by sensitivity class. The table-driven
//!   variant must access-protect its 2.5 KiB of lookup tables; the
//!   bitsliced variant computes SubBytes as a boolean circuit and has
//!   *zero* access-protected bytes.
//! * **Simulated on-SoC engine time** — per-4 KiB-page simulated cost of
//!   the generic (DRAM-state) engine and AES On SoC with each backend,
//!   confirming the backend swap does not perturb the calibrated model.
//!
//! Results print as tables and land in `BENCH_aes_kernels.json`. With
//! `--enforce`, the process exits non-zero unless (a) bitsliced
//! CBC-decrypt at least matches the scalar baseline — the CI regression
//! gate for the batch kernels (a `target-cpu=native` run shows ~3.5×;
//! the gate only demands parity so feature-poor CI hosts do not flap) —
//! and (b) bitsliced XTS page-encrypt runs at least 8× bitsliced
//! CBC-encrypt, the tentpole gate proving the lane-filling mode removed
//! the encrypt cliff (a native run shows ~11×).

use std::time::Instant;

use sentry_bench::print_table;
use sentry_core::aes_onsoc::{build_engine_with_backend, OnSocCipherBackend};
use sentry_core::config::OnSocBackend;
use sentry_core::onsoc::OnSocStore;
use sentry_crypto::modes::{cbc_decrypt, cbc_encrypt, ctr_xor, xts_decrypt, xts_encrypt};
use sentry_crypto::{Aes, AesStateLayout, BitslicedAes, KeySize, Sensitivity};
use sentry_kernel::crypto_api::{CipherEngine, GenericAesEngine};
use sentry_soc::Soc;

const PAGE: usize = 4096;
const PAGES: usize = 64;
const REPS: usize = 11;
const KEY: [u8; 32] = [0x6Bu8; 32];

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    CbcEnc,
    CbcDec,
    XtsEnc,
    XtsDec,
    Ctr,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::CbcEnc => "cbc_enc",
            Mode::CbcDec => "cbc_dec",
            Mode::XtsEnc => "xts_enc",
            Mode::XtsDec => "xts_dec",
            Mode::Ctr => "ctr",
        }
    }
    fn all() -> [Mode; 5] {
        [
            Mode::CbcEnc,
            Mode::CbcDec,
            Mode::XtsEnc,
            Mode::XtsDec,
            Mode::Ctr,
        ]
    }
}

fn run_pages(aes: &Aes, bits: &BitslicedAes, bitsliced: bool, mode: Mode, buf: &mut [u8]) {
    for (i, page) in buf.chunks_exact_mut(PAGE).enumerate() {
        let iv = [i as u8; 16];
        match (mode, bitsliced) {
            // CBC encryption is serially chained; both backends go
            // through the same serial driver, so this row measures the
            // single-block cost of each backend.
            (Mode::CbcEnc, false) => cbc_encrypt(aes, &iv, page),
            (Mode::CbcEnc, true) => cbc_encrypt(bits, &iv, page),
            (Mode::CbcDec, false) => cbc_decrypt(aes, &iv, page),
            (Mode::CbcDec, true) => cbc_decrypt(bits, &iv, page),
            // XTS fills the lanes in both directions: the tweak chain is
            // computed up front, every block is independent after it.
            (Mode::XtsEnc, false) => xts_encrypt(aes, aes, &iv, page),
            (Mode::XtsEnc, true) => xts_encrypt(bits, bits, &iv, page),
            (Mode::XtsDec, false) => xts_decrypt(aes, aes, &iv, page),
            (Mode::XtsDec, true) => xts_decrypt(bits, bits, &iv, page),
            (Mode::Ctr, false) => ctr_xor(aes, &[i as u8; 8], 0, page),
            (Mode::Ctr, true) => ctr_xor(bits, &[i as u8; 8], 0, page),
        }
    }
}

/// MiB/s of one backend × mode over the page set, taken from the
/// fastest repetition. Timing noise on a shared builder is one-sided —
/// scheduler steal and frequency dips only ever *slow* a rep, never
/// speed one up — so the minimum elapsed time is the most stable
/// estimate of the kernel's actual cost (a median still flaps when
/// more than half the reps land inside a noisy window, which the
/// enforce ratios cannot tolerate).
fn host_mib_s(aes: &Aes, bits: &BitslicedAes, bitsliced: bool, mode: Mode) -> f64 {
    let mut buf: Vec<u8> = (0..PAGES * PAGE).map(|i| (i * 31) as u8).collect();
    let mut best = u64::MAX;
    for rep in 0..=REPS {
        let t0 = Instant::now();
        run_pages(aes, bits, bitsliced, mode, &mut buf);
        let elapsed = t0.elapsed().as_nanos() as u64;
        if rep > 0 {
            // First pass is warm-up (page faults, cache fill).
            best = best.min(elapsed);
        }
    }
    (PAGES * PAGE) as f64 / (1 << 20) as f64 / (best as f64 * 1e-9)
}

struct Accounting {
    variant: &'static str,
    secret: usize,
    access_protected: usize,
    public: usize,
    arena: usize,
}

fn accounting(key_size: KeySize) -> [Accounting; 2] {
    let mk = |variant, layout: &AesStateLayout| Accounting {
        variant,
        secret: layout.total_for(Sensitivity::Secret),
        access_protected: layout.total_for(Sensitivity::AccessProtected),
        public: layout.total_for(Sensitivity::Public),
        arena: layout.total_bytes(),
    };
    [
        mk("table_driven", &AesStateLayout::for_key_size(key_size)),
        mk("bitsliced_table_free", &AesStateLayout::bitsliced(key_size)),
    ]
}

/// Simulated ns to CBC-encrypt one 4 KiB page through a kernel engine.
fn sim_page_ns(engine: &mut dyn CipherEngine, soc: &mut Soc) -> u64 {
    let mut page = vec![0u8; PAGE];
    let t0 = soc.clock.now_ns();
    engine
        .encrypt(soc, &[0u8; 16], &mut page)
        .expect("keyed engine encrypts");
    soc.clock.now_ns() - t0
}

fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce");

    let aes = Aes::new(&KEY).expect("valid key length");
    let bits = BitslicedAes::from_schedule(aes.schedule());

    // Host throughput sweep.
    let mut host: Vec<(&'static str, &'static str, f64)> = Vec::new();
    for mode in Mode::all() {
        for bitsliced in [false, true] {
            let backend = if bitsliced { "bitsliced" } else { "table" };
            host.push((
                backend,
                mode.name(),
                host_mib_s(&aes, &bits, bitsliced, mode),
            ));
        }
    }
    let thr = |backend: &str, mode: Mode| {
        host.iter()
            .find(|(b, m, _)| *b == backend && *m == mode.name())
            .map(|&(_, _, v)| v)
            .expect("swept")
    };
    let rows: Vec<Vec<String>> = Mode::all()
        .iter()
        .map(|&mode| {
            let t = thr("table", mode);
            let b = thr("bitsliced", mode);
            vec![
                mode.name().to_string(),
                format!("{t:.1}"),
                format!("{b:.1}"),
                format!("{:.2}x", b / t),
            ]
        })
        .collect();
    print_table(
        "Host AES kernels over 4 KiB pages (MiB/s, fastest rep)",
        &["Mode", "Table", "Bitsliced", "Bitsliced/Table"],
        &rows,
    );

    // Table 4 accounting for the tracked variants.
    let key_size = KeySize::Aes256;
    let acct = accounting(key_size);
    let acct_rows: Vec<Vec<String>> = acct
        .iter()
        .map(|a| {
            vec![
                a.variant.to_string(),
                a.secret.to_string(),
                a.access_protected.to_string(),
                a.public.to_string(),
                a.arena.to_string(),
            ]
        })
        .collect();
    print_table(
        "On-SoC state arena by sensitivity (AES-256, bytes)",
        &["Variant", "Secret", "Access-protected", "Public", "Arena"],
        &acct_rows,
    );

    // Simulated engine cost per page, DRAM-state vs on-SoC per backend.
    let mut soc = Soc::tegra3_small();
    let mut generic = GenericAesEngine::new(0);
    generic.set_key(&mut soc, &KEY).expect("generic keys");
    let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).expect("iram store");
    let mut onsoc_table =
        build_engine_with_backend(&mut store, &mut soc, &KEY, OnSocCipherBackend::TableDriven)
            .expect("onsoc table engine");
    let mut onsoc_bits = build_engine_with_backend(
        &mut store,
        &mut soc,
        &KEY,
        OnSocCipherBackend::BitslicedTableFree,
    )
    .expect("onsoc bitsliced engine");
    let sim = [
        ("generic_dram", sim_page_ns(&mut generic, &mut soc)),
        ("onsoc_table", sim_page_ns(&mut onsoc_table, &mut soc)),
        ("onsoc_bitsliced", sim_page_ns(&mut onsoc_bits, &mut soc)),
    ];
    let sim_rows: Vec<Vec<String>> = sim
        .iter()
        .map(|&(name, ns)| vec![name.to_string(), format!("{:.3}", ns as f64 * 1e-3)])
        .collect();
    print_table(
        "Simulated engine cost per 4 KiB page (µs)",
        &["Engine", "Page µs"],
        &sim_rows,
    );

    // JSON.
    let host_json: Vec<String> = host
        .iter()
        .map(|(b, m, v)| {
            format!("    {{\"backend\": \"{b}\", \"mode\": \"{m}\", \"mib_s\": {v:.1}}}")
        })
        .collect();
    let acct_json: Vec<String> = acct
        .iter()
        .map(|a| {
            format!(
                "    {{\"variant\": \"{}\", \"secret\": {}, \"access_protected\": {}, \
                 \"public\": {}, \"arena\": {}}}",
                a.variant, a.secret, a.access_protected, a.public, a.arena
            )
        })
        .collect();
    let sim_json: Vec<String> = sim
        .iter()
        .map(|&(name, ns)| format!("    {{\"engine\": \"{name}\", \"page_ns\": {ns}}}"))
        .collect();
    let dec_ratio = thr("bitsliced", Mode::CbcDec) / thr("table", Mode::CbcDec);
    let xts_enc_ratio = thr("bitsliced", Mode::XtsEnc) / thr("bitsliced", Mode::CbcEnc);
    let json = format!(
        "{{\n  \"experiment\": \"aes_kernels\",\n  \"page_bytes\": {PAGE},\n  \
         \"pages\": {PAGES},\n  \"reps\": {REPS},\n  \
         \"cbc_dec_bitsliced_over_table\": {dec_ratio:.2},\n  \
         \"xts_enc_over_cbc_enc\": {xts_enc_ratio:.2},\n  \
         \"host\": [\n{}\n  ],\n  \"table4\": [\n{}\n  ],\n  \"sim\": [\n{}\n  ]\n}}\n",
        host_json.join(",\n"),
        acct_json.join(",\n"),
        sim_json.join(",\n"),
    );
    std::fs::write("BENCH_aes_kernels.json", &json).expect("write BENCH_aes_kernels.json");
    println!("\nwrote BENCH_aes_kernels.json");

    if enforce {
        assert!(
            acct[1].access_protected == 0,
            "bitsliced variant must have zero access-protected state"
        );
        if dec_ratio < 1.0 {
            eprintln!(
                "FAIL: bitsliced CBC-decrypt regressed below the scalar-table \
                 baseline ({dec_ratio:.2}x)"
            );
            std::process::exit(1);
        }
        println!("enforce: bitsliced CBC-decrypt at {dec_ratio:.2}x of scalar — ok");
        // The tentpole gate: page encryption through the lane-filling
        // XTS mode must run at least 8x the serially chained CBC
        // encryption on the same bitsliced backend (a native run shows
        // ~12x; 8x leaves headroom for noisy CI hosts).
        if xts_enc_ratio < 8.0 {
            eprintln!(
                "FAIL: bitsliced XTS page-encrypt at only {xts_enc_ratio:.2}x of \
                 bitsliced CBC-encrypt (gate: >= 8x)"
            );
            std::process::exit(1);
        }
        println!("enforce: bitsliced XTS-encrypt at {xts_enc_ratio:.2}x of CBC-encrypt — ok");
    }
}
