//! Figure 12: energy per byte of the AES variants on the Nexus 4.
//!
//! Hardware-accelerated encryption is the *least* energy-efficient at
//! 4 KiB page granularity: the down-scaled engine is slow, so the system
//! stays awake longer per byte.

use sentry_bench::print_table;
use sentry_energy::{AesVariant, EnergyModel};

fn main() {
    let m = EnergyModel::nexus4();
    let rows: Vec<Vec<String>> = [
        ("OpenSSL", AesVariant::OpenSslUser, "~0.03"),
        ("CryptoAPI", AesVariant::CryptoApi, "~0.04"),
        ("HW Accelerated", AesVariant::HwAccel, "~0.11"),
    ]
    .iter()
    .map(|(name, v, paper)| {
        vec![
            (*name).to_string(),
            format!("{:.3}", m.uj_per_byte(*v)),
            (*paper).to_string(),
        ]
    })
    .collect();
    print_table(
        "Figure 12: energy per byte (µJ/B), 4 KiB pages",
        &["Implementation", "µJ/byte", "Paper"],
        &rows,
    );
}
