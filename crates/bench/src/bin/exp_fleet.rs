//! Fleet-scale experiment: N independent device stacks under a
//! heavy-traffic event stream, sharded shared-nothing, with aggregated
//! percentile metrics.
//!
//! For each fleet size (default 1k and 10k devices) the same seeded
//! traffic — lock/unlock churn, background paging, dm-crypt bursts,
//! power cuts, DRAM tampers — is replayed at 1, 2, and 4 shards. The
//! device streams are identical across shard counts (every device's
//! seeds split from the fleet master seed), so the runs differ *only*
//! in how the work is spread over workers, and the merged reports must
//! be bit-identical.
//!
//! Throughput is reported with two honesties, following
//! `exp_lock_scaling`: host events/sec is real wall clock (flat on a
//! single-core host), while sim events/sec divides fleet events by the
//! simulated makespan — the busiest shard's summed device time, i.e.
//! the modeled fleet-host with one core per shard. With `--enforce`:
//!
//! * sim events/sec at 4 shards must be ≥ 2× the 1-shard run per N;
//! * every injected fault must be accounted for: zero silent
//!   corruptions, zero device errors, every planted tamper detected,
//!   and at least one power cut and one tamper actually fired
//!   (otherwise the zero-corruption claim is vacuous);
//! * the merged report must be identical across shard counts.
//!
//! Results land in `BENCH_fleet.json`. Small-N smoke runs for CI:
//! `exp_fleet --enforce --devices 48 --events 12`.

use sentry_bench::print_table;
use sentry_workloads::fleet::{run_fleet, FleetConfig, FleetReport};

/// Enforced floor on the 1→4 shard sim-throughput scaling.
const MIN_SCALING: f64 = 2.0;

/// Shard counts swept per fleet size (first must be 1; last is the
/// scaling gate's numerator).
const SHARDS: &[usize] = &[1, 2, 4];

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One (devices, shards) run.
struct Cell {
    devices: usize,
    shards: usize,
    report: FleetReport,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_sizes(args: &[String]) -> Vec<usize> {
    flag_value(args, "--devices").map_or_else(
        || vec![1_000, 10_000],
        |v| {
            v.split(',')
                .map(|s| s.trim().parse().expect("--devices takes integers"))
                .collect()
        },
    )
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let enforce = args.iter().any(|a| a == "--enforce");
    let sizes = parse_sizes(&args);
    let events: usize =
        flag_value(&args, "--events").map_or(24, |v| v.parse().expect("--events takes an integer"));

    let mut cells: Vec<Cell> = Vec::new();
    for &devices in &sizes {
        for &shards in SHARDS {
            let config = FleetConfig::new(devices, shards).with_events_per_device(events);
            let report = run_fleet(&config);
            cells.push(Cell {
                devices,
                shards,
                report,
            });
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            vec![
                c.devices.to_string(),
                c.shards.to_string(),
                r.events.to_string(),
                format!("{:.0}", r.events_per_sim_sec()),
                format!("{:.0}", r.events_per_host_sec()),
                format!("{:.1}", r.unlock_hist.percentile(0.50) as f64 / 1000.0),
                format!("{:.1}", r.unlock_hist.percentile(0.95) as f64 / 1000.0),
                format!("{:.1}", r.unlock_hist.percentile(0.99) as f64 / 1000.0),
                r.recoveries.to_string(),
                r.quarantined_pages.to_string(),
                r.silent_corruptions.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fleet throughput and unlock latency",
        &[
            "Devices",
            "Shards",
            "Events",
            "Ev/s (sim)",
            "Ev/s (host)",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "Recoveries",
            "Quarantined",
            "Silent",
        ],
        &rows,
    );

    let fault_rows: Vec<Vec<String>> = cells
        .iter()
        .filter(|c| c.shards == 1)
        .map(|c| {
            let r = &c.report;
            vec![
                c.devices.to_string(),
                r.power_cuts_fired.to_string(),
                r.recoveries.to_string(),
                r.recovered_entries.to_string(),
                format!("{}/{}", r.tampers_detected, r.tampers_planted),
                r.quarantined_pages.to_string(),
                r.device_errors.to_string(),
                format!("{:.1}", r.setup_sim_ns as f64 / r.devices as f64 / 1000.0),
            ]
        })
        .collect();
    print_table(
        "Injected faults and per-device setup (1-shard runs)",
        &[
            "Devices",
            "Cuts fired",
            "Recoveries",
            "Rolled fwd",
            "Tampers det/planted",
            "Quarantined",
            "Device errors",
            "Setup (us/dev)",
        ],
        &fault_rows,
    );

    // Per-device degradation columns for the smallest 1-shard run: the
    // devices the health governor actually pulled through hardware
    // trouble (breaker trips, CPU-fallback bytes, time degraded).
    if let Some(cell) = cells.iter().find(|c| c.shards == 1) {
        let mut degraded: Vec<_> = cell
            .report
            .degradation
            .iter()
            .filter(|&&(_, trips, fallback, _)| trips > 0 || fallback > 0)
            .collect();
        degraded.sort_by_key(|&&(_, trips, fallback, _)| std::cmp::Reverse((trips, fallback)));
        let degraded_rows: Vec<Vec<String>> = degraded
            .iter()
            .take(8)
            .map(|&&(index, trips, fallback, degraded_ns)| {
                vec![
                    index.to_string(),
                    trips.to_string(),
                    format!("{:.1}", fallback as f64 / 1024.0),
                    format!("{:.1}", degraded_ns as f64 / 1000.0),
                ]
            })
            .collect();
        if !degraded_rows.is_empty() {
            print_table(
                &format!(
                    "Degraded devices ({} of {} — top 8 by trips, {} devices/1 shard)",
                    degraded.len(),
                    cell.report.devices,
                    cell.devices
                ),
                &["Device", "Trips", "Fallback KiB", "Degraded (us)"],
                &degraded_rows,
            );
        }
    }

    // Per-device pressure columns for the smallest 1-shard run: the
    // devices the pressure governor actually squeezed (memory-pressure
    // chaos events — sheds, encrypted spills, typed denials).
    if let Some(cell) = cells.iter().find(|c| c.shards == 1) {
        let mut pressured: Vec<_> = cell
            .report
            .pressure_columns
            .iter()
            .filter(|&&(_, sheds, spills, denied)| sheds > 0 || spills > 0 || denied > 0)
            .collect();
        pressured
            .sort_by_key(|&&(_, sheds, spills, denied)| std::cmp::Reverse((spills, sheds, denied)));
        let pressure_rows: Vec<Vec<String>> = pressured
            .iter()
            .take(8)
            .map(|&&(index, sheds, spills, denied)| {
                vec![
                    index.to_string(),
                    sheds.to_string(),
                    spills.to_string(),
                    denied.to_string(),
                ]
            })
            .collect();
        if !pressure_rows.is_empty() {
            print_table(
                &format!(
                    "Pressured devices ({} of {} — top 8 by spills, {} devices/1 shard)",
                    pressured.len(),
                    cell.report.devices,
                    cell.devices
                ),
                &["Device", "Sheds", "Spills", "Denied"],
                &pressure_rows,
            );
        }
    }

    // Scaling per fleet size: last shard count vs the 1-shard baseline.
    let mut scalings: Vec<(usize, f64, f64)> = Vec::new();
    for &devices in &sizes {
        let base = cells
            .iter()
            .find(|c| c.devices == devices && c.shards == SHARDS[0])
            .expect("baseline cell");
        let top = cells
            .iter()
            .find(|c| c.devices == devices && c.shards == *SHARDS.last().expect("shards"))
            .expect("top cell");
        let sim = top.report.events_per_sim_sec() / base.report.events_per_sim_sec();
        let host = top.report.events_per_host_sec() / base.report.events_per_host_sec();
        scalings.push((devices, sim, host));
    }
    let scale_rows: Vec<Vec<String>> = scalings
        .iter()
        .map(|(devices, sim, host)| {
            vec![
                devices.to_string(),
                format!("{}→{}", SHARDS[0], SHARDS.last().expect("shards")),
                format!("{sim:.2}x"),
                format!("{host:.2}x"),
            ]
        })
        .collect();
    print_table(
        "Shard scaling (events/sec)",
        &["Devices", "Shards", "Sim scaling", "Host scaling"],
        &scale_rows,
    );

    if host_cores() == 1 {
        println!(
            "\nnote: single host core — every shard shares one lane, so host scaling \
             is pinned at ~1.0 by construction; sim scaling models the fleet host's \
             cores (one per shard), like exp_lock_scaling's sim_speedup"
        );
    }

    let cell_json: Vec<String> = cells
        .iter()
        .map(|c| {
            let r = &c.report;
            format!(
                "    {{\"devices\": {}, \"shards\": {}, \"events\": {}, \
                 \"events_per_sim_sec\": {:.1}, \"events_per_host_sec\": {:.1}, \
                 \"unlock_p50_ns\": {}, \"unlock_p95_ns\": {}, \"unlock_p99_ns\": {}, \
                 \"unlock_mean_ns\": {:.1}, \"unlock_max_ns\": {}, \"unlocks\": {}, \
                 \"locks\": {}, \"power_cuts_fired\": {}, \"recoveries\": {}, \
                 \"recovered_entries\": {}, \"tampers_planted\": {}, \
                 \"tampers_detected\": {}, \"quarantined_pages\": {}, \
                 \"silent_corruptions\": {}, \"device_errors\": {}, \
                 \"shard_panics\": {}, \"io_bytes\": {}, \"sim_makespan_ns\": {}, \
                 \"sim_busy_ns\": {}, \"setup_sim_ns\": {}, \"host_elapsed_ns\": {}, \
                 \"accel_storms\": {}, \"flaky_disk_intervals\": {}, \
                 \"breaker_trips\": {}, \"watchdog_timeouts\": {}, \
                 \"fallback_crypt_bytes\": {}, \"time_degraded_ns\": {}, \
                 \"disk_retries_recovered\": {}, \"pressure_events\": {}, \
                 \"exit_reclaimed_pages\": {}, \"pressure_sheds\": {}, \
                 \"pressure_spills\": {}, \"pressure_restores\": {}, \
                 \"pressure_denied\": {}, \"pressure_high_water_bytes\": {}}}",
                c.devices,
                c.shards,
                r.events,
                r.events_per_sim_sec(),
                r.events_per_host_sec(),
                r.unlock_hist.percentile(0.50),
                r.unlock_hist.percentile(0.95),
                r.unlock_hist.percentile(0.99),
                r.unlock_hist.mean(),
                r.unlock_hist.max(),
                r.unlocks,
                r.locks,
                r.power_cuts_fired,
                r.recoveries,
                r.recovered_entries,
                r.tampers_planted,
                r.tampers_detected,
                r.quarantined_pages,
                r.silent_corruptions,
                r.device_errors,
                r.shard_panics,
                r.io_bytes,
                r.sim_makespan_ns,
                r.sim_busy_ns,
                r.setup_sim_ns,
                r.host_elapsed_ns,
                r.accel_storms,
                r.flaky_disk_intervals,
                r.health.trips,
                r.health.timeouts,
                r.health.fallback_crypt_bytes,
                r.health.time_degraded_ns,
                r.health.disk.recovered,
                r.pressure_events,
                r.exit_reclaimed_pages,
                r.pressure.sheds,
                r.pressure.spills,
                r.pressure.spill_restores,
                r.pressure.denied,
                r.pressure.high_water_bytes,
            )
        })
        .collect();
    let scaling_json: Vec<String> = scalings
        .iter()
        .map(|(devices, sim, host)| {
            format!(
                "    {{\"devices\": {devices}, \"sim_scaling\": {sim:.3}, \
                 \"host_scaling\": {host:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"fleet\",\n  \"min_scaling\": {MIN_SCALING:.1},\n  \
         \"events_per_device\": {events},\n  \"host_cores\": {},\n  \"cells\": [\n{}\n  ],\n  \
         \"scaling\": [\n{}\n  ]\n}}\n",
        host_cores(),
        cell_json.join(",\n"),
        scaling_json.join(",\n"),
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("\nwrote BENCH_fleet.json");

    if enforce {
        let mut failed = false;
        for c in &cells {
            let r = &c.report;
            let name = format!("{} devices / {} shards", c.devices, c.shards);
            if r.silent_corruptions != 0 {
                eprintln!(
                    "FAIL [{name}]: {} reads returned wrong bytes without an error",
                    r.silent_corruptions
                );
                failed = true;
            }
            if r.device_errors != 0 || r.shard_panics != 0 {
                eprintln!(
                    "FAIL [{name}]: {} device errors, {} shard panics",
                    r.device_errors, r.shard_panics
                );
                failed = true;
            }
            if r.tampers_detected != r.tampers_planted {
                eprintln!(
                    "FAIL [{name}]: only {}/{} planted tampers were detected",
                    r.tampers_detected, r.tampers_planted
                );
                failed = true;
            }
            if r.power_cuts_fired == 0 || r.tampers_planted == 0 {
                eprintln!(
                    "FAIL [{name}]: no faults landed ({} cuts, {} tampers) — the \
                     zero-corruption claim is vacuous",
                    r.power_cuts_fired, r.tampers_planted
                );
                failed = true;
            }
        }
        // Same N ⇒ identical merged report, whatever the shard count.
        for &devices in &sizes {
            let group: Vec<&Cell> = cells.iter().filter(|c| c.devices == devices).collect();
            for pair in group.windows(2) {
                if pair[0].report.digests != pair[1].report.digests {
                    eprintln!(
                        "FAIL [{devices} devices]: end-state digests differ between \
                         {} and {} shards — sharding changed device behaviour",
                        pair[0].shards, pair[1].shards
                    );
                    failed = true;
                }
                if pair[0].report.degradation != pair[1].report.degradation
                    || pair[0].report.health != pair[1].report.health
                {
                    eprintln!(
                        "FAIL [{devices} devices]: degradation columns differ between \
                         {} and {} shards — health accounting is shard-dependent",
                        pair[0].shards, pair[1].shards
                    );
                    failed = true;
                }
                if pair[0].report.pressure_columns != pair[1].report.pressure_columns
                    || pair[0].report.pressure != pair[1].report.pressure
                {
                    eprintln!(
                        "FAIL [{devices} devices]: pressure columns differ between \
                         {} and {} shards — pressure accounting is shard-dependent",
                        pair[0].shards, pair[1].shards
                    );
                    failed = true;
                }
            }
        }
        for (devices, sim, _host) in &scalings {
            if *sim < MIN_SCALING {
                eprintln!(
                    "FAIL [{devices} devices]: sim scaling {sim:.2}x below \
                     {MIN_SCALING:.1}x going 1→{} shards",
                    SHARDS.last().expect("shards")
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        let worst = scalings
            .iter()
            .map(|(_, sim, _)| *sim)
            .fold(f64::INFINITY, f64::min);
        println!(
            "enforce: worst sim scaling {worst:.2}x >= {MIN_SCALING:.1}x, all faults \
             detected, zero silent corruptions, reports shard-count invariant"
        );
    }
}
