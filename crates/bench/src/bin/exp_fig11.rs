//! Figure 11: AES throughput microbenchmarks (4 KiB pages).
//!
//! Left (Nexus 4): user-space OpenSSL AES, the kernel Crypto API AES,
//! and the hardware accelerator — which is *slower* on 4 KiB pages
//! because of per-operation setup cost and the down-scaled clock while
//! the phone is locked (4x faster fully awake).
//!
//! Right (Tegra 3): generic AES vs AES On SoC in a locked L2 way and in
//! iRAM — both within 1% of generic.

use sentry_bench::print_table;
use sentry_core::aes_onsoc::build_engine;
use sentry_core::config::OnSocBackend;
use sentry_core::onsoc::OnSocStore;
use sentry_kernel::crypto_api::{CipherEngine, GenericAesEngine};
use sentry_soc::accel::AccelPowerState;
use sentry_soc::Soc;

const PAGES: usize = 256; // 1 MB of 4 KiB pages per measurement
const KERNEL_CROSSING_NS: u64 = 12_000; // syscall + CryptoAPI dispatch per page

fn measure(soc: &mut Soc, engine: &mut dyn CipherEngine, extra_per_page_ns: u64) -> f64 {
    let mut page = vec![0xA5u8; 4096];
    let iv = [0u8; 16];
    let t0 = soc.clock.now_ns();
    for _ in 0..PAGES {
        soc.clock.advance(extra_per_page_ns);
        engine.encrypt(soc, &iv, &mut page).expect("keyed engine");
    }
    let secs = (soc.clock.now_ns() - t0) as f64 / 1e9;
    (PAGES * 4096) as f64 / secs / 1e6
}

fn main() {
    // ---- Nexus 4 (Figure 11, left).
    let mut soc = Soc::nexus4_small();
    let mut user = GenericAesEngine::new(0);
    user.set_key(&mut soc, &[1u8; 16]).unwrap();
    let user_mb = measure(&mut soc, &mut user, 0);
    let kernel_mb = measure(&mut soc, &mut user, KERNEL_CROSSING_NS);
    let hw_locked = soc.accel.throughput_mb_s(4096);
    soc.accel.state = AccelPowerState::Awake;
    let hw_awake = soc.accel.throughput_mb_s(4096);

    print_table(
        "Figure 11 (left): Nexus 4 AES throughput, 4 KiB pages",
        &["Implementation", "MB/s", "Paper ballpark"],
        &[
            vec![
                "Generic AES (user)".into(),
                format!("{user_mb:.1}"),
                "~45".into(),
            ],
            vec![
                "Generic AES (in kernel)".into(),
                format!("{kernel_mb:.1}"),
                "~40".into(),
            ],
            vec![
                "Crypto Hardware (locked)".into(),
                format!("{hw_locked:.1}"),
                "~10".into(),
            ],
            vec![
                "Crypto Hardware (awake)".into(),
                format!("{hw_awake:.1}"),
                "4x locked".into(),
            ],
        ],
    );

    // ---- Tegra 3 (Figure 11, right).
    let mut soc = Soc::tegra3_small();
    let mut generic = GenericAesEngine::new(0);
    generic.set_key(&mut soc, &[1u8; 16]).unwrap();
    let generic_mb = measure(&mut soc, &mut generic, 0);

    let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc).unwrap();
    let mut locked = build_engine(&mut store, &mut soc, &[1u8; 16]).unwrap();
    let locked_mb = measure(&mut soc, &mut locked, 0);

    let mut soc = Soc::tegra3_small();
    let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
    let mut iram = build_engine(&mut store, &mut soc, &[1u8; 16]).unwrap();
    let iram_mb = measure(&mut soc, &mut iram, 0);

    print_table(
        "Figure 11 (right): Tegra 3 AES throughput, 4 KiB pages (paper: AES On SoC within 1% of generic)",
        &["Implementation", "MB/s", "vs generic"],
        &[
            vec!["Generic AES".into(), format!("{generic_mb:.1}"), "1.000".into()],
            vec![
                "AES_On_SoC (Locked L2)".into(),
                format!("{locked_mb:.1}"),
                format!("{:.3}", locked_mb / generic_mb),
            ],
            vec![
                "AES_On_SoC (iRAM)".into(),
                format!("{iram_mb:.1}"),
                format!("{:.3}", iram_mb / generic_mb),
            ],
        ],
    );
}
