//! Table 3: security analysis of the storage alternatives.
//!
//! Mounts each in-scope attack (cold boot, bus monitoring, DMA) against
//! a secret placed in each storage option — iRAM and locked L2 cache as
//! in the paper's table, plus undefended DRAM as the baseline every cell
//! is implicitly compared against.

use sentry_attacks::matrix::table3;
use sentry_bench::print_table;

fn main() {
    let reports = table3().expect("attack matrix runs");
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.attack.clone(),
                r.target.clone(),
                if r.recovered { "RECOVERED" } else { "Safe" }.to_string(),
                r.evidence.clone(),
            ]
        })
        .collect();
    print_table(
        "Table 3: attacks vs storage alternatives (paper: iRAM and locked L2 are Safe against all three)",
        &["Attack", "Storage", "Outcome", "Evidence"],
        &rows,
    );
}
