//! Table 2: iRAM (SRAM) and DRAM data remanence on a commodity tablet.
//!
//! Methodology (§4.1): fill memory with an 8-byte pattern, apply each of
//! the three reset types five times, and report the average fraction of
//! pattern cells preserved.

use sentry_attacks::coldboot::table2;
use sentry_bench::{pct, print_table};

fn main() {
    let rows = table2(5, 0xC01D).expect("remanence trials run");
    let paper = [("100%", "96.4%"), ("0%", "97.5%"), ("0%", "0.1%")];
    let table: Vec<Vec<String>> = rows
        .iter()
        .zip(paper.iter())
        .map(|((label, iram, dram), (p_iram, p_dram))| {
            vec![
                label.clone(),
                pct(*iram),
                (*p_iram).to_string(),
                pct(*dram),
                (*p_dram).to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 2: data remanence after power events (5-trial average)",
        &[
            "Memory Preserved",
            "iRAM",
            "iRAM(paper)",
            "DRAM",
            "DRAM(paper)",
        ],
        &table,
    );
}
