//! Figures 6–8: performance of background computation while locked.
//!
//! alpine, vlock, and xmms2 run in the background of the locked Tegra
//! prototype with 256 KB and 512 KB of locked L2 cache, compared to the
//! no-Sentry baseline. The paper's anchors: alpine is 2.74x slower with
//! 256 KB; xmms2 keeps a 48% overhead even with 512 KB.

use sentry_bench::{print_table, secs};
use sentry_workloads::{background_catalog, run_background};

fn main() {
    for spec in background_catalog() {
        let base = run_background(&spec, 0).expect("baseline runs");
        let small = run_background(&spec, 256).expect("256 KB runs");
        let large = run_background(&spec, 512).expect("512 KB runs");
        let rows = vec![
            vec![
                "Without Sentry".to_string(),
                secs(base.kernel_secs),
                "1.00x".to_string(),
                base.faults.to_string(),
            ],
            vec![
                "With Sentry (256KB)".to_string(),
                secs(small.kernel_secs),
                format!("{:.2}x", small.kernel_secs / base.kernel_secs),
                small.faults.to_string(),
            ],
            vec![
                "With Sentry (512KB)".to_string(),
                secs(large.kernel_secs),
                format!("{:.2}x", large.kernel_secs / base.kernel_secs),
                large.faults.to_string(),
            ],
        ];
        print_table(
            &format!("Figures 6-8: background computation, {}", spec.name),
            &[
                "Configuration",
                "Time in kernel (s)",
                "Factor",
                "Pager faults",
            ],
            &rows,
        );
    }
}
