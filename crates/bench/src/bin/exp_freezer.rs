//! Extension: the FROST household-freezer attack surface.
//!
//! Müller & Spreitzenbarth's FROST (cited throughout §1/§3) cools the
//! phone before resetting it, slowing DRAM decay enough to recover
//! data. The remanence model reproduces the temperature dependence;
//! this sweep shows why Sentry's on-SoC storage matters even against a
//! *cooled* cold boot: iRAM is zeroed by firmware regardless of
//! temperature.

use sentry_attacks::coldboot::remanence_trial;
use sentry_bench::{pct, print_table};
use sentry_soc::dram::{PowerEvent, RemanenceModel};
use sentry_soc::{Platform, Soc, SocConfig};

fn main() {
    let mut rows = Vec::new();
    for temp_c in [20.0, 5.0, -15.0] {
        for secs in [0.5, 2.0, 10.0] {
            let cfg = SocConfig::new(Platform::Tegra3).with_dram_size(64 << 20);
            let mut soc = Soc::new(SocConfig {
                remanence: RemanenceModel {
                    temperature_c: temp_c,
                    ..RemanenceModel::default()
                },
                ..cfg
            });
            let out = remanence_trial(&mut soc, PowerEvent::HardReset { seconds: secs }, 50_000)
                .expect("trial runs");
            rows.push(vec![
                format!("{temp_c:.0} °C"),
                format!("{secs:.1} s"),
                pct(out.dram_fraction),
                pct(out.iram_fraction),
            ]);
        }
    }
    print_table(
        "Extension: cooled cold boot (FROST) — DRAM survival vs temperature",
        &[
            "Temperature",
            "Power-off",
            "DRAM preserved",
            "iRAM preserved",
        ],
        &rows,
    );
    println!("\nA freezer rescues DRAM contents across multi-second resets —\nbut iRAM still reads 0%: the signed firmware zeroes it at power-on,\nindependent of physics. On-SoC storage defeats FROST.");
}
