//! Ablation: locked-way budget vs background performance vs system
//! cost.
//!
//! More locked ways give the encrypted-DRAM pager more on-SoC slots
//! (fewer faults for the background app) but shrink the cache for
//! everything else (slower kernel compile — Figure 10's cost). This
//! sweep quantifies the §4.5 trade-off the paper describes
//! qualitatively.

use sentry_bench::{print_table, secs};
use sentry_workloads::background::background_catalog;
use sentry_workloads::sweep_locked_ways;

fn main() {
    let alpine = background_catalog()
        .into_iter()
        .find(|s| s.name == "alpine")
        .expect("alpine in catalog");
    let sweep = sweep_locked_ways(&alpine).expect("sweep runs");
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                p.ways.to_string(),
                format!("{} KB", p.ways * 128),
                secs(p.kernel_secs),
                p.faults.to_string(),
                format!("{:.2}", p.compile_minutes),
            ]
        })
        .collect();
    print_table(
        "Ablation: locked ways vs alpine background time vs system compile cost",
        &[
            "Ways",
            "On-SoC budget",
            "alpine kernel (s)",
            "Pager faults",
            "Compile (min)",
        ],
        &rows,
    );
    println!("\nThe knee: alpine stops thrashing once its working set fits\n(~512 KB); further ways only cost the rest of the system.");
}
