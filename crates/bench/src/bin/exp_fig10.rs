//! Figure 10: Linux kernel compile time vs number of locked cache ways.
//!
//! "Compiling Linux gets gradually slower as more cache ways are
//! locked": 14.41 minutes with no ways locked, 14.53 with one (<1%).

use sentry_bench::print_table;
use sentry_workloads::kernelbuild::figure10_series;

fn main() {
    let rows: Vec<Vec<String>> = figure10_series()
        .iter()
        .map(|(ways, minutes)| {
            let locked_kb = ways * 128;
            vec![
                ways.to_string(),
                format!("{locked_kb} KB"),
                format!("{minutes:.2}"),
            ]
        })
        .collect();
    print_table(
        "Figure 10: `make -j 5` Linux kernel compile vs locked ways (paper: 14.41 min at 0, 14.53 at 1)",
        &["Locked ways", "Locked cache", "Minutes"],
        &rows,
    );
}
