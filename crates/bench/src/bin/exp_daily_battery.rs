//! The paper's headline, measured end to end: "Sentry consumes about 2%
//! of a device's battery life to protect an application assuming the
//! user unlocks the device 150 times a day."
//!
//! A [`sentry_core::DeviceAgent`] drives 150 real lock → PIN-unlock →
//! glance cycles through the full machinery for a Maps-sized app and
//! reports the measured energy, alongside the analytic bound.

use sentry_bench::print_table;
use sentry_core::{DeviceAgent, Sentry, SentryConfig};
use sentry_energy::{AesVariant, EnergyModel, CYCLES_PER_DAY};
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::{Platform, Soc, SocConfig};

fn main() {
    let kernel = Kernel::new(Soc::new(
        SocConfig::new(Platform::Nexus4).with_dram_size(256 << 20),
    ));
    let mut sentry = Sentry::new(kernel, SentryConfig::nexus4()).expect("sentry installs");
    let pid = sentry.kernel.spawn("maps");
    sentry.mark_sensitive(pid).expect("pid exists");

    // A Maps-sized app: 48 MB resident; each glance touches ~6 MB.
    let pages = 48 * 256u64;
    let fill = vec![0x5Au8; PAGE_SIZE as usize];
    for vpn in 0..pages {
        sentry.write(pid, vpn * PAGE_SIZE, &fill).expect("populate");
    }
    let glance: Vec<u64> = (0..6 * 256u64).collect();

    let mut agent = DeviceAgent::new(sentry, "4521");
    let day = agent
        .simulate_day(pid, &glance, CYCLES_PER_DAY)
        .expect("day simulates");

    let energy = EnergyModel::nexus4();
    let analytic =
        energy.daily_battery_fraction(AesVariant::CryptoApi, 48 << 20, 38 << 20, CYCLES_PER_DAY);

    print_table(
        "Daily battery cost of protecting one app (150 lock/unlock cycles)",
        &["Quantity", "Value"],
        &[
            vec!["cycles".into(), day.cycles.to_string()],
            vec![
                "GB encrypted / day".into(),
                format!("{:.2}", day.bytes_encrypted as f64 / 1e9),
            ],
            vec![
                "GB decrypted / day".into(),
                format!("{:.2}", day.bytes_decrypted as f64 / 1e9),
            ],
            vec!["energy (J)".into(), format!("{:.1}", day.joules)],
            vec![
                "battery / day (measured)".into(),
                format!("{:.2}%", day.battery_fraction * 100.0),
            ],
            vec![
                "battery / day (paper's conservative bound)".into(),
                format!("{:.2}%", analytic * 100.0),
            ],
        ],
    );
    println!("\nMeasured is below the bound because lazy decryption means untouched\npages stay encrypted across cycles — they are never re-encrypted.");
}
