//! Exhaustive fault-injection matrix over the Sentry lifecycle.
//!
//! For each scenario (sequential locked-L2, parallel locked-L2, the
//! parallel engine under the XTS and CTR page ciphers with their
//! commit-CMAC journal tags, and the iRAM backend) this runs the
//! [`sentry_attacks::faultmatrix`] sweep: record
//! the reachable failpoint steps of a fixed lock/unlock/fault/sweep
//! schedule, then kill the machine at *every* step and check each cell
//! for cold-boot-visible secrets, torn PTEs, recovery errors, and
//! byte-for-byte convergence of the recovered-and-retried run with the
//! uninterrupted reference.
//!
//! Results print as tables (per-scenario summary plus a kill-site
//! histogram) and are written to `BENCH_fault_matrix.json`. With
//! `--enforce`, the run fails unless every cell of every matrix is
//! clean: zero leaks, zero torn PTEs, zero retry failures, zero
//! divergence — and at least one kill landed inside an open journal, so
//! the matrix demonstrably exercised recovery.

use sentry_attacks::faultmatrix::{run_matrix, MatrixOutcome, Scenario};
use sentry_bench::print_table;

/// Scenario constructor paired with its fixed seed.
type SeededScenario = (fn(u64) -> Scenario, u64);

/// Fixed seeds: the matrix is a correctness sweep, not a sampling run —
/// every CI execution enumerates the identical cells.
const SCENARIOS: [SeededScenario; 5] = [
    (Scenario::tegra3, 0xC0FFEE),
    (Scenario::tegra3_parallel, 0xFA11),
    (Scenario::tegra3_xts, 0x1619),
    (Scenario::tegra3_ctr, 0x38A),
    (Scenario::iram, 0xB007),
];

fn emit_json(matrices: &[MatrixOutcome]) -> String {
    // Hand-rolled JSON: fixed schema, numbers and plain names only.
    let entries: Vec<String> = matrices
        .iter()
        .map(|m| {
            let hist: Vec<String> = m
                .site_histogram()
                .iter()
                .map(|(site, n)| format!("{{\"site\": \"{site}\", \"kills\": {n}}}"))
                .collect();
            format!(
                "    {{\"scenario\": \"{}\", \"cells\": {}, \"kills\": {}, \
                 \"recovered_journal_entries\": {}, \"torn_ptes\": {}, \
                 \"coldboot_leaks\": {}, \"retry_failures\": {}, \
                 \"diverged\": {}, \"clean\": {},\n     \"kill_sites\": [{}]}}",
                m.scenario,
                m.cells.len(),
                m.kills(),
                m.recovered_entries(),
                m.torn(),
                m.leaks(),
                m.retry_failures(),
                m.diverged(),
                m.clean(),
                hist.join(", ")
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"fault_matrix\",\n  \"matrices\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce");

    let matrices: Vec<MatrixOutcome> = SCENARIOS
        .iter()
        .map(|&(make, seed)| {
            let scn = make(seed);
            let matrix = run_matrix(&scn).expect("matrix sweep completes");
            println!(
                "{}: {} cells swept ({} kills fired)",
                matrix.scenario,
                matrix.cells.len(),
                matrix.kills()
            );
            matrix
        })
        .collect();

    let rows: Vec<Vec<String>> = matrices
        .iter()
        .map(|m| {
            vec![
                m.scenario.clone(),
                m.cells.len().to_string(),
                m.kills().to_string(),
                m.recovered_entries().to_string(),
                m.torn().to_string(),
                m.leaks().to_string(),
                m.retry_failures().to_string(),
                m.diverged().to_string(),
                if m.clean() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fault matrix: power cut at every reachable failpoint step",
        &[
            "Scenario",
            "Cells",
            "Kills",
            "Recovered",
            "Torn",
            "Leaks",
            "RetryErr",
            "Diverged",
            "Clean",
        ],
        &rows,
    );

    // Kill-site histogram (union over scenarios): shows the cuts landed
    // across the whole lifecycle, not clustered on one site.
    let mut hist: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    for m in &matrices {
        for (site, n) in m.site_histogram() {
            *hist.entry(site).or_default() += n;
        }
    }
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(site, n)| vec![(*site).to_string(), n.to_string()])
        .collect();
    print_table(
        "Kill-site histogram (all scenarios)",
        &["Site", "Kills"],
        &rows,
    );

    let json = emit_json(&matrices);
    std::fs::write("BENCH_fault_matrix.json", &json).expect("write BENCH_fault_matrix.json");
    println!("\nwrote BENCH_fault_matrix.json");

    if enforce {
        let mut failed = false;
        for m in &matrices {
            if m.kills() != m.cells.len() {
                eprintln!(
                    "FAIL [{}]: only {} of {} armed cells fired",
                    m.scenario,
                    m.kills(),
                    m.cells.len()
                );
                failed = true;
            }
            if m.torn() > 0 {
                eprintln!("FAIL [{}]: {} torn PTEs observed", m.scenario, m.torn());
                failed = true;
            }
            if m.leaks() > 0 {
                eprintln!(
                    "FAIL [{}]: {} cold-boot needle hits while locked",
                    m.scenario,
                    m.leaks()
                );
                failed = true;
            }
            if m.retry_failures() > 0 {
                eprintln!(
                    "FAIL [{}]: {} cells failed to retry after recovery",
                    m.scenario,
                    m.retry_failures()
                );
                failed = true;
            }
            if m.diverged() > 0 {
                eprintln!(
                    "FAIL [{}]: {} cells diverged from the reference run",
                    m.scenario,
                    m.diverged()
                );
                failed = true;
            }
            if m.recovered_entries() == 0 {
                eprintln!(
                    "FAIL [{}]: no kill landed inside an open journal — recovery untested",
                    m.scenario
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("enforce: all fault-matrix gates met");
    }
}
