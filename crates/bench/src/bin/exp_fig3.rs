//! Figure 3: performance overhead at runtime (scripted app tasks).
//!
//! Each app runs its scripted task sequence right after unlock,
//! decrypting remaining pages on demand. Paper overheads: Contacts
//! 4.3%, Maps 1.2%, Twitter 1.3%, MP3 0.2%.

use sentry_bench::{mb, pct, print_table, secs};
use sentry_workloads::{app_catalog, run_app_cycle};

fn main() {
    let paper = [4.3, 1.2, 1.3, 0.2];
    let rows: Vec<Vec<String>> = app_catalog()
        .iter()
        .zip(paper.iter())
        .map(|(app, paper_pct)| {
            let r = run_app_cycle(app).expect("cycle runs");
            vec![
                r.name.to_string(),
                secs(r.runtime_overhead * app.script_secs),
                mb(r.runtime_mb),
                pct(r.runtime_overhead),
                format!("{paper_pct}%"),
            ]
        })
        .collect();
    print_table(
        "Figure 3: runtime overhead during scripted tasks",
        &["App", "Added time (s)", "MB decrypted", "Overhead", "Paper"],
        &rows,
    );
}
