//! The §7 full-memory-encryption strawman.
//!
//! Encrypting all of DRAM at every suspend is what a naive design would
//! do: the paper measured over a minute and over 70 J per 2 GB cycle,
//! depleting the battery after only ~410 suspend/resume cycles — the
//! motivation for selective encryption.

use sentry_bench::print_table;
use sentry_energy::EnergyModel;

fn main() {
    let m = EnergyModel::nexus4();
    let rows: Vec<Vec<String>> = [1u64 << 30, 2 << 30, 4 << 30]
        .iter()
        .map(|&bytes| {
            let s = m.strawman(bytes);
            vec![
                format!("{} GB", bytes >> 30),
                format!("{:.1}", s.seconds_per_encrypt),
                format!("{:.1}", s.joules_per_encrypt),
                s.cycles_to_deplete.to_string(),
            ]
        })
        .collect();
    print_table(
        "§7 strawman: full-memory encryption per suspend (paper @2GB: >60 s, >70 J, 410 cycles)",
        &["DRAM", "Seconds", "Joules", "Cycles to empty battery"],
        &rows,
    );
    println!("\nHardware trend: DRAM keeps growing while battery does not —\nselective encryption is the only sustainable design.");
}
