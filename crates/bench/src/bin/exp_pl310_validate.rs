//! The §4.2 PL310 validation experiments.
//!
//! 1. Write an 8-byte random pattern (that never otherwise appears in
//!    DRAM) to an address mapped into a locked cache way, then DMA-read
//!    the DRAM behind it via the UART loopback debug port: the pattern
//!    must not appear — the hardware never writes locked lines back.
//! 2. Flush the entire cache the *unpatched* way: the pattern appears
//!    in DRAM and the ways unlock — the discovered hazard that motivated
//!    the masked-flush OS change (428 → 676 lines in Linux).

use sentry_core::config::OnSocBackend;
use sentry_core::onsoc::OnSocStore;
use sentry_soc::Soc;

fn main() {
    let mut soc = Soc::tegra3_small();
    let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc)
        .expect("tegra supports locking");
    let page = store.alloc_page(&mut soc).expect("way locks");

    let pattern = *b"\x7E\x57\xC0\xDE\xBA\x5E\xBA\x11";
    soc.mem_write(page, &pattern).expect("write to locked way");

    // Experiment 1: DMA the backing DRAM out through the UART loopback.
    soc.dma_to_uart(page, 64).expect("uart dma");
    let observed = soc.uart.read_serial();
    let leaked = observed.windows(8).any(|w| w == pattern);
    println!("[1] locked-way write-back check:");
    println!("    pattern in DRAM via DMA/UART: {leaked} (expected: false)");
    assert!(!leaked, "PL310 model must not write back locked lines");

    // Masked maintenance flush (the patched OS): still safe.
    soc.cache_maintenance_flush();
    soc.dma_to_uart(page, 64).expect("uart dma");
    let leaked = soc.uart.read_serial().windows(8).any(|w| w == pattern);
    println!("[2] after masked maintenance flush: leaked = {leaked} (expected: false)");
    assert!(!leaked);

    // Experiment 2: the raw full flush unlocks and spills.
    soc.cache_flush_all_raw();
    soc.dma_to_uart(page, 64).expect("uart dma");
    let leaked = soc.uart.read_serial().windows(8).any(|w| w == pattern);
    println!("[3] after RAW full flush (unpatched OS): leaked = {leaked} (expected: true)");
    println!(
        "    alloc mask after raw flush: {:#010b} (all ways unlocked)",
        soc.cache.alloc_mask()
    );
    assert!(leaked, "raw flush must demonstrate the hazard");

    println!("\nValidation matches §4.2: locked ways never write back; a full\nunmasked flush unlocks them — hence Sentry's masked flush paths.");
}
