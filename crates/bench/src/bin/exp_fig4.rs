//! Figure 4: performance overhead upon device lock.
//!
//! Encrypt-on-lock of each app's sensitive memory. Paper: 0.7–2 s per
//! app, proportional to the megabytes encrypted (up to 48 MB for Maps).

use sentry_bench::{mb, print_table, secs};
use sentry_workloads::{app_catalog, run_app_cycle};

fn main() {
    let rows: Vec<Vec<String>> = app_catalog()
        .iter()
        .map(|app| {
            let r = run_app_cycle(app).expect("cycle runs");
            vec![r.name.to_string(), secs(r.lock_secs), mb(r.lock_mb)]
        })
        .collect();
    print_table(
        "Figure 4: device-lock (encrypt) overhead",
        &["App", "Time (s)", "MB encrypted"],
        &rows,
    );
}
