//! Lock-path scaling sweep for the parallel page-crypt engine.
//!
//! For each page cipher mode (CBC, XTS, CTR) and each worker count in
//! {1, 2, 4, 8} this measures both sides of the engine on a 256-page
//! (1 MiB) lock-sized batch:
//!
//! * **host wall-clock** of `crypt_batch` itself — real threads, real
//!   AES, median of several repetitions. The thread count handed to the
//!   engine is clamped to the cores the host actually has: threads
//!   beyond that only time-slice, so measuring them as if they were
//!   lanes produced a flat `host_speedup` curve that looked like an
//!   engine bug. `workers_used` reports the honest lane count.
//! * **simulated lock latency** of a full `Sentry::on_lock` transition
//!   over the same working set, where the batch charges the serial AES
//!   cost divided by the lanes used. The sim sweep keeps the *requested*
//!   worker count — it models the device's cores, not the build
//!   machine's.
//!
//! Results print as a table and are written to `BENCH_lock_scaling.json`
//! so CI (and the bench trajectory) can track the sweep.

use std::time::Instant;

use sentry_bench::print_table;
use sentry_core::config::ParallelConfig;
use sentry_core::{Sentry, SentryConfig};
use sentry_crypto::parallel::{crypt_batch, Direction, PageJob};
use sentry_crypto::{Aes, BitslicedAes, PageCipherMode};
use sentry_kernel::Kernel;
use sentry_soc::Soc;

const BATCH_PAGES: usize = 256;
const PAGE: usize = 4096;
const REPS: usize = 7;
const SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Point {
    mode: PageCipherMode,
    workers: usize,
    workers_used: usize,
    host_wall_ns: u64,
    host_mib_s: f64,
    host_speedup: f64,
    sim_lock_ns: u64,
    sim_speedup: f64,
}

fn mk_batch() -> Vec<Vec<u8>> {
    (0..BATCH_PAGES)
        .map(|i| (0..PAGE).map(|j| (i * 31 + j) as u8).collect())
        .collect()
}

/// Median host wall-clock of one 256-page encrypt batch, plus the lane
/// count the engine actually used.
///
/// The page buffers are allocated once and refilled in place between
/// repetitions: allocating 1 MiB of fresh pages per rep put allocator
/// and page-fault time *inside* the measured region, which both inflated
/// the absolute numbers and flattened the speedup curve (the allocation
/// cost does not parallelize). Only `crypt_batch` is timed now, with the
/// same bitsliced backend the lock engine hands its lanes.
fn host_point(bits: &BitslicedAes, mode: PageCipherMode, workers: usize) -> (u64, usize) {
    let mut samples = Vec::with_capacity(REPS);
    let mut workers_used = 1;
    let mut pages = mk_batch();
    // Threads beyond the physical cores only time-slice; clamp so the
    // reported lane count matches the parallelism that can exist.
    let host_workers = workers.min(host_cores());
    for rep in 0..=REPS {
        for (i, page) in pages.iter_mut().enumerate() {
            for (j, b) in page.iter_mut().enumerate() {
                *b = (i * 31 + j) as u8;
            }
        }
        let mut jobs: Vec<PageJob<'_>> = pages
            .iter_mut()
            .enumerate()
            .map(|(i, p)| PageJob {
                iv: [i as u8; 16],
                data: p.as_mut_slice(),
            })
            .collect();
        let t0 = Instant::now();
        let report = crypt_batch(bits, mode, Direction::Encrypt, &mut jobs, host_workers, 1)
            .expect("batch crypt");
        let elapsed = t0.elapsed().as_nanos() as u64;
        workers_used = report.workers_used;
        if rep > 0 {
            // First pass is warm-up (page faults, thread-pool spin-up).
            samples.push(elapsed);
        }
    }
    samples.sort_unstable();
    (samples[samples.len() / 2], workers_used)
}

/// Simulated `on_lock` latency over the same working set.
fn sim_point(mode: PageCipherMode, workers: usize) -> u64 {
    let mut s = Sentry::new(
        Kernel::new(Soc::tegra3_small()),
        SentryConfig::tegra3_locked_l2(2)
            .with_cipher_mode(mode)
            .with_parallel(ParallelConfig {
                workers,
                min_batch_pages: 1,
            }),
    )
    .expect("sentry builds");
    let pid = s.kernel.spawn("sweep");
    s.mark_sensitive(pid).expect("pid exists");
    let data: Vec<u8> = (0..251u8).cycle().take(BATCH_PAGES * PAGE).collect();
    s.write(pid, 0, &data).expect("working set fits");
    let report = s.on_lock().expect("lock succeeds");
    assert_eq!(
        report.batch_pages as usize, BATCH_PAGES,
        "whole set batched"
    );
    report.duration_ns
}

/// CPUs actually available to the worker pool. The host sweep clamps its
/// thread count to this, so `host_speedup` only ever compares runs whose
/// threads could truly execute concurrently; the emitted JSON records
/// the core count so readers (and CI) can interpret a saturated curve.
/// The simulated sweep is unaffected: it models the device's core count,
/// not the build machine's.
fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn json_escape_free(points: &[Point]) -> String {
    // Hand-rolled JSON: fixed schema, numbers and mode names only — no
    // serde needed.
    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"mode\": \"{}\", \"workers\": {}, \"workers_used\": {}, \
                 \"host_wall_ns\": {}, \"host_mib_s\": {:.1}, \"host_speedup\": {:.2}, \
                 \"sim_lock_ns\": {}, \"sim_speedup\": {:.2}}}",
                p.mode.name(),
                p.workers,
                p.workers_used,
                p.host_wall_ns,
                p.host_mib_s,
                p.host_speedup,
                p.sim_lock_ns,
                p.sim_speedup
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"lock_scaling\",\n  \"batch_pages\": {BATCH_PAGES},\n  \
         \"page_bytes\": {PAGE},\n  \"reps\": {REPS},\n  \"host_cores\": {},\n  \
         \"sweep\": [\n{}\n  ]\n}}\n",
        host_cores(),
        entries.join(",\n")
    )
}

fn main() {
    let aes = Aes::new(&[0x6Bu8; 32]).expect("valid key length");
    let bits = BitslicedAes::from_schedule(aes.schedule());
    let batch_bytes = (BATCH_PAGES * PAGE) as f64;

    let mut points: Vec<Point> = Vec::with_capacity(3 * SWEEP.len());
    for mode in PageCipherMode::all() {
        for workers in SWEEP {
            let (host_wall_ns, workers_used) = host_point(&bits, mode, workers);
            let sim_lock_ns = sim_point(mode, workers);
            points.push(Point {
                mode,
                workers,
                workers_used,
                host_wall_ns,
                host_mib_s: batch_bytes / (1 << 20) as f64 / (host_wall_ns as f64 * 1e-9),
                host_speedup: 0.0,
                sim_lock_ns,
                sim_speedup: 0.0,
            });
        }
    }
    // Speedups are relative to the same mode's single-worker point.
    for mode in PageCipherMode::all() {
        let (host_base, sim_base) = {
            let base = points
                .iter()
                .find(|p| p.mode == mode && p.workers == 1)
                .expect("sweep starts at one worker");
            (base.host_wall_ns as f64, base.sim_lock_ns as f64)
        };
        for p in points.iter_mut().filter(|p| p.mode == mode) {
            p.host_speedup = host_base / p.host_wall_ns as f64;
            p.sim_speedup = sim_base / p.sim_lock_ns as f64;
        }
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.mode.name().to_string(),
                p.workers.to_string(),
                p.workers_used.to_string(),
                format!("{:.3}", p.host_wall_ns as f64 * 1e-6),
                format!("{:.1}", p.host_mib_s),
                format!("{:.2}x", p.host_speedup),
                format!("{:.3}", p.sim_lock_ns as f64 * 1e-6),
                format!("{:.2}x", p.sim_speedup),
            ]
        })
        .collect();
    let cores = host_cores();
    print_table(
        &format!("Lock scaling: 256-page batch vs mode and worker count ({cores} host core(s))"),
        &[
            "Mode",
            "Workers",
            "Lanes",
            "Host ms",
            "Host MiB/s",
            "Host speedup",
            "Sim lock ms",
            "Sim speedup",
        ],
        &rows,
    );

    if cores == 1 {
        println!(
            "\nnote: single host core — the host sweep runs every point on one lane \
             (host_speedup pinned at 1.0 by construction); sim_speedup models the device's cores"
        );
    }

    let json = json_escape_free(&points);
    std::fs::write("BENCH_lock_scaling.json", &json).expect("write BENCH_lock_scaling.json");
    println!("\nwrote BENCH_lock_scaling.json");
}
