//! Pressure experiment: the governor's graceful-degradation and
//! encrypted-spill claims, measured and gated.
//!
//! Five cells:
//!
//! 1. **Exhaustion sweep** — the on-SoC store is driven to physical
//!    exhaustion immediately before each lifecycle entry point (lock,
//!    unlock, demand fault, sweep, eviction storm, crash recovery).
//!    Every run must complete (the governor shed or spilled its way to
//!    the space it needed) or surface a typed error, recover any open
//!    journal while still exhausted, and converge byte-identically
//!    after relief. Zero panics, zero untyped outcomes.
//! 2. **Teardown soak** — 10k lifecycle events in
//!    spawn/write/lock/fault/exit rounds, a Critical budget squeeze
//!    every 16 rounds. On-SoC occupancy after the soak must be back at
//!    (or below) its pre-soak baseline: zero leaked pages.
//! 3. **Critical-mode latency** — per-page demand-fault latency after
//!    a spill/relief cycle (each early fault pays a MAC-verified spill
//!    restore) versus the healthy baseline. Inflation must stay under
//!    `MAX_CRITICAL_INFLATION`×.
//! 4. **Spill hygiene and kill matrix** — after a real spill, a raw
//!    dump of the spill device must contain neither the spilled
//!    tag-store plaintext nor any vault page bytes; and a power cut at
//!    each spill-path failpoint (`spill.stage`, `spill.anchor`,
//!    `spill.restore`) must leave a machine that recovers to
//!    byte-identical application data.
//! 5. **Pressure fleet** — the fleet harness with memory-pressure
//!    chaos events (budget shrinks + process-spawn storms) in the mix:
//!    zero silent corruptions, zero device errors, with real squeezes
//!    drawn and real teardown reclaims counted.
//!
//! Results print as tables and land in `BENCH_pressure.json`. With
//! `--enforce`, any untyped outcome, leaked page, blown latency
//! budget, plaintext sighting, or failed recovery fails the run.

use sentry_attacks::tamper::frame_of;
use sentry_bench::print_table;
use sentry_core::config::ReadaheadConfig;
use sentry_core::{DeviceState, PressureStats, Sentry, SentryConfig, SentryError};
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::{FaultAction, FaultPlan, Soc};
use sentry_workloads::fleet::{run_fleet, FleetConfig};

/// Enforced ceiling on per-fault latency after a spill/relief cycle,
/// relative to the healthy demand-fault mean.
const MAX_CRITICAL_INFLATION: f64 = 10.0;

/// Lifecycle events in the teardown soak (each round is six: spawn,
/// write, lock, unlock, demand fault, exit).
const SOAK_EVENTS: usize = 10_000;

/// Events per soak round.
const SOAK_ROUND: usize = 6;

/// A Critical budget squeeze lands every this-many soak rounds.
const SQUEEZE_PERIOD: usize = 16;

/// Vault pages per machine.
const PAGES: usize = 8;

const PAGE: usize = PAGE_SIZE as usize;

/// The spill-path failpoints the kill matrix cuts power at.
const KILL_SITES: [&str; 3] = ["spill.stage", "spill.anchor", "spill.restore"];

fn working_set(seed: u8) -> Vec<u8> {
    (0..PAGES * PAGE)
        .map(|i| {
            seed.wrapping_mul(29)
                .wrapping_add((i * 13 + i / PAGE) as u8)
        })
        .collect()
}

/// A Sentry with every elective on-SoC consumer enabled: readahead
/// clusters, the background sweeper, and a pager slot budget small
/// enough that eviction actually runs.
fn build(seed: u8) -> (Sentry, u32, Vec<u8>) {
    let config = SentryConfig::tegra3_locked_l2(2)
        .with_readahead(ReadaheadConfig::with_cluster(4).sweep_budget(2))
        .with_slot_limit(2);
    let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
    let pid = s.kernel.spawn("vault");
    s.mark_sensitive(pid).expect("mark sensitive");
    let data = working_set(seed);
    s.write(pid, 0, &data).expect("write vault");
    (s, pid, data)
}

/// A locked vault whose tag store holds live tags — the spill lever's
/// natural prey.
fn locked_vault(seed: u8) -> (Sentry, u32, Vec<u8>) {
    let (mut s, pid, data) = build(seed);
    s.on_lock().expect("lock");
    (s, pid, data)
}

// ───────────────────────── cell 1: exhaustion sweep ─────────────────────────

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    Lock,
    Unlock,
    Fault,
    Sweep,
    Evict,
    Recover,
}

const ENTRIES: [Entry; 6] = [
    Entry::Lock,
    Entry::Unlock,
    Entry::Fault,
    Entry::Sweep,
    Entry::Evict,
    Entry::Recover,
];

impl Entry {
    fn name(self) -> &'static str {
        match self {
            Entry::Lock => "lock",
            Entry::Unlock => "unlock",
            Entry::Fault => "fault",
            Entry::Sweep => "sweep",
            Entry::Evict => "evict",
            Entry::Recover => "recover",
        }
    }
}

/// Grab every allocatable on-SoC page, then hand back `leave` of them.
fn exhaust(s: &mut Sentry, leave: usize) -> Vec<u64> {
    let mut hoard = Vec::new();
    loop {
        match s.store.alloc_page(&mut s.kernel.soc) {
            Ok(page) => hoard.push(page),
            Err(SentryError::OnSocExhausted) => break,
            Err(e) => panic!("exhaustion must be typed: {e:?}"),
        }
    }
    for _ in 0..leave {
        if let Some(page) = hoard.pop() {
            s.store.free_page(&mut s.kernel.soc, page).expect("free");
        }
    }
    hoard
}

fn relieve(s: &mut Sentry, hoard: Vec<u64>) {
    for page in hoard {
        s.store.free_page(&mut s.kernel.soc, page).expect("free");
    }
    s.sync_pressure();
}

/// Put the machine in the state `entry` expects.
fn stage(s: &mut Sentry, entry: Entry) {
    match entry {
        Entry::Lock => {}
        Entry::Unlock => {
            s.on_lock().expect("staging lock");
        }
        Entry::Fault | Entry::Sweep | Entry::Evict => {
            s.on_lock().expect("staging lock");
            s.on_unlock().expect("staging unlock");
        }
        Entry::Recover => {
            s.kernel.soc.failpoints.arm(FaultPlan::at_site(
                "txn.publish",
                0,
                FaultAction::PowerCut { decay: None },
            ));
            let err = s.on_lock().expect_err("armed lock must die");
            assert!(err.is_power_loss());
        }
    }
}

fn drive(s: &mut Sentry, pid: u32, entry: Entry) -> Result<(), SentryError> {
    match entry {
        Entry::Lock => s.on_lock().map(drop),
        Entry::Unlock => s.on_unlock().map(drop),
        Entry::Fault => s.touch_pages(pid, &[0, 1]),
        Entry::Sweep => s.sweep(2).map(drop),
        Entry::Evict => {
            let vpns: Vec<u64> = (0..PAGES as u64).collect();
            s.touch_pages(pid, &vpns)
        }
        Entry::Recover => s.recover().map(drop),
    }
}

/// One entry point's row in the exhaustion sweep.
struct ExhaustRow {
    entry: Entry,
    runs: u64,
    completed: u64,
    denied: u64,
    untyped: u64,
    recoveries: u64,
    retry_failures: u64,
    settle_failures: u64,
}

fn exhaust_row(entry: Entry) -> ExhaustRow {
    let mut row = ExhaustRow {
        entry,
        runs: 0,
        completed: 0,
        denied: 0,
        untyped: 0,
        recoveries: 0,
        retry_failures: 0,
        settle_failures: 0,
    };
    for leave in 0..3usize {
        row.runs += 1;
        let seed = 0x40u8
            .wrapping_add(leave as u8)
            .wrapping_mul(31)
            .wrapping_add(entry as u8);
        let (mut s, pid, data) = build(seed);
        stage(&mut s, entry);
        let hoard = exhaust(&mut s, leave);

        match drive(&mut s, pid, entry) {
            Ok(()) => row.completed += 1,
            Err(SentryError::OnSocExhausted | SentryError::TransitionInFlight { .. }) => {
                row.denied += 1;
            }
            Err(_) => row.untyped += 1,
        }
        if s.txn_in_flight() {
            if s.recover().is_err() {
                row.untyped += 1;
                continue;
            }
            row.recoveries += 1;
        }

        relieve(&mut s, hoard);
        if s.txn_in_flight() && s.recover().is_err() {
            row.retry_failures += 1;
            continue;
        }
        match drive(&mut s, pid, entry) {
            Ok(()) | Err(SentryError::WrongState { .. }) => {}
            Err(_) => row.retry_failures += 1,
        }

        // Settle unlocked and check the vault byte-for-byte.
        if s.state() == DeviceState::Locked && s.on_unlock().is_err() {
            row.settle_failures += 1;
            continue;
        }
        let vpns: Vec<u64> = (0..PAGES as u64).collect();
        let mut back = vec![0u8; data.len()];
        let ok = s.touch_pages(pid, &vpns).is_ok()
            && s.read(pid, 0, &mut back).is_ok()
            && back == data
            && s.residual_encrypted_pages() == 0;
        if !ok {
            row.settle_failures += 1;
        }
    }
    row
}

// ───────────────────────── cell 2: teardown soak ─────────────────────────

struct SoakCell {
    events: u64,
    squeezes: u64,
    baseline_bytes: u64,
    final_bytes: u64,
    leaked_pages: u64,
    exit_reclaimed_pages: u64,
    byte_identical: bool,
    pressure: PressureStats,
}

fn soak_cell() -> SoakCell {
    let (mut s, vault, data) = build(0x21);
    s.on_lock().expect("lock");
    s.on_unlock().expect("unlock");
    s.sync_pressure();
    let baseline = s.store.in_use_bytes();

    let mut squeezes = 0u64;
    let mut reclaimed = 0u64;
    let mut events = 0u64;
    let rounds = SOAK_EVENTS.div_ceil(SOAK_ROUND);
    for n in 0..rounds {
        // A short-lived sensitive process that dies mid-lock: the
        // background fault pages its data into an on-SoC pager slot
        // (the encrypted-DRAM path), so the teardown runs with real
        // on-SoC pages to reclaim.
        let pid = s.kernel.spawn("soak");
        s.mark_sensitive(pid).expect("sensitive");
        let img = vec![(n as u8).wrapping_mul(7) ^ 0x3C; PAGE];
        s.write(pid, 0, &img).expect("soak write");
        s.on_lock().expect("soak lock");
        s.touch_pages(pid, &[0]).expect("soak touch");
        reclaimed += s.on_exit(pid).expect("soak exit");
        s.on_unlock().expect("soak unlock");
        events += SOAK_ROUND as u64;
        // The freed-page zeroing thread runs continuously on a real
        // device; drain it so DRAM frames cycle back to the clean pool.
        s.kernel.drain_zero_thread().expect("zero thread");
        if n % SQUEEZE_PERIOD == 0 {
            s.set_onsoc_budget(Some(PAGE_SIZE)).expect("squeeze");
            s.set_onsoc_budget(None).expect("relief");
            squeezes += 1;
        }
    }
    s.sync_pressure();
    let final_bytes = s.store.in_use_bytes();

    // The vault must still read back byte-identically (restoring any
    // tag pages the squeezes spilled along the way).
    let vpns: Vec<u64> = (0..PAGES as u64).collect();
    let mut back = vec![0u8; data.len()];
    let byte_identical =
        s.touch_pages(vault, &vpns).is_ok() && s.read(vault, 0, &mut back).is_ok() && back == data;
    s.sync_pressure();

    SoakCell {
        events,
        squeezes,
        baseline_bytes: baseline,
        final_bytes,
        leaked_pages: final_bytes.saturating_sub(baseline) / PAGE_SIZE,
        exit_reclaimed_pages: reclaimed,
        byte_identical,
        pressure: s.stats.pressure,
    }
}

// ───────────────────────── cell 3: critical-mode latency ─────────────────────────

struct LatencyCell {
    baseline_mean_ns: f64,
    pressure_mean_ns: f64,
    restores: u64,
    baseline_identical: bool,
    pressure_identical: bool,
}

impl LatencyCell {
    fn inflation(&self) -> f64 {
        if self.baseline_mean_ns == 0.0 {
            0.0
        } else {
            self.pressure_mean_ns / self.baseline_mean_ns
        }
    }
}

/// Touch every vault page one fault at a time, returning the mean
/// simulated ns per fault and whether the vault read back identically.
fn faults_mean_ns(s: &mut Sentry, pid: u32, data: &[u8]) -> (f64, bool) {
    let mut total = 0u64;
    for vpn in 0..PAGES as u64 {
        let t0 = s.kernel.soc.clock.now_ns();
        s.touch_pages(pid, &[vpn]).expect("fault");
        total += s.kernel.soc.clock.now_ns() - t0;
    }
    let mut back = vec![0u8; data.len()];
    let identical = s.read(pid, 0, &mut back).is_ok() && back == data;
    (total as f64 / PAGES as f64, identical)
}

fn latency_cell() -> LatencyCell {
    // Healthy baseline: lock, unlock, fault every page in.
    let (mut s, pid, data) = locked_vault(0x7E);
    s.on_unlock().expect("unlock");
    let (baseline_mean_ns, baseline_identical) = faults_mean_ns(&mut s, pid, &data);

    // Critical cycle: squeeze until the governor spills tag pages,
    // relieve, unlock — now the early faults each pay a MAC-verified
    // spill restore on top of the demand decrypt.
    let (mut s, pid, data) = locked_vault(0x7F);
    s.set_onsoc_budget(Some(PAGE_SIZE)).expect("squeeze");
    s.sync_pressure();
    assert!(s.stats.pressure.spills >= 1, "squeeze never spilled");
    s.set_onsoc_budget(None).expect("relief");
    s.on_unlock().expect("unlock");
    let (pressure_mean_ns, pressure_identical) = faults_mean_ns(&mut s, pid, &data);
    s.sync_pressure();

    LatencyCell {
        baseline_mean_ns,
        pressure_mean_ns,
        restores: s.stats.pressure.spill_restores,
        baseline_identical,
        pressure_identical,
    }
}

// ───────────────────────── cell 4: hygiene + kill matrix ─────────────────────────

struct SpillCell {
    spills: u64,
    spilled_pages: u64,
    scan_bytes: u64,
    plaintext_hits: u64,
    kill_sites: u64,
    kill_recovered: u64,
    restores: u64,
    byte_identical: bool,
}

/// Count 16-byte windows of `needle` present in `haystack`.
fn plaintext_hits(haystack: &[u8], needle: &[u8]) -> u64 {
    needle
        .chunks(16)
        .filter(|w| w.len() == 16)
        .filter(|w| haystack.windows(16).any(|h| h == *w))
        .count() as u64
}

#[allow(clippy::too_many_lines)]
fn spill_cell() -> SpillCell {
    // Hygiene scan: capture the live tag bytes an attacker would hunt
    // for, spill, and dump the raw spill device.
    let (mut s, pid, data) = locked_vault(0xA7);
    let mut tag_plain = Vec::new();
    for vpn in 0..PAGES as u64 {
        let frame = frame_of(&s, pid, vpn);
        let addr = s.integrity.tag_slot_addr(frame).expect("tag slot");
        let mut tag = [0u8; 8];
        s.kernel.soc.mem_read(addr, &mut tag).expect("read tag");
        tag_plain.extend_from_slice(&tag);
    }
    s.set_onsoc_budget(Some(PAGE_SIZE)).expect("squeeze");
    s.sync_pressure();
    let spills = s.stats.pressure.spills;
    let spilled_pages = s.integrity.spilled_pages() as u64;
    let raw = s.integrity.spill_region_raw().expect("spill region");
    let hits = plaintext_hits(&raw, &tag_plain) + plaintext_hits(&raw, &data);

    // Drain back and verify the hygiene machine converged.
    s.set_onsoc_budget(None).expect("relief");
    s.on_unlock().expect("unlock");
    let vpns: Vec<u64> = (0..PAGES as u64).collect();
    s.touch_pages(pid, &vpns).expect("drain");
    let mut back = vec![0u8; data.len()];
    let mut byte_identical = s.read(pid, 0, &mut back).is_ok() && back == data;
    s.sync_pressure();
    let mut restores = s.stats.pressure.spill_restores;

    // Kill matrix: power cut at each spill-path failpoint, recover,
    // converge byte-identically.
    let mut kill_recovered = 0u64;
    for (i, site) in KILL_SITES.iter().enumerate() {
        let (mut s, pid, data) = locked_vault(0xC4 + i as u8);
        let vpns: Vec<u64> = (0..PAGES as u64).collect();
        let survived = if *site == "spill.restore" {
            // Spill first, then cut inside the demand-fault restore.
            s.set_onsoc_budget(Some(PAGE_SIZE)).expect("squeeze");
            s.sync_pressure();
            let spilled_before = s.integrity.spilled_pages();
            s.set_onsoc_budget(None).expect("relief");
            s.on_unlock().expect("unlock");
            s.kernel.soc.failpoints.arm(FaultPlan::at_site(
                site,
                0,
                FaultAction::PowerCut { decay: None },
            ));
            let died = s
                .touch_pages(pid, &[0])
                .map_or_else(|e| e.is_power_loss(), |()| false);
            let intact = s.integrity.spilled_pages() == spilled_before;
            if s.txn_in_flight() {
                s.recover().expect("recovery");
            }
            died && intact
        } else {
            // Cut inside the squeeze's spill, recover, retry.
            s.kernel.soc.failpoints.arm(FaultPlan::at_site(
                site,
                0,
                FaultAction::PowerCut { decay: None },
            ));
            let died = s
                .set_onsoc_budget(Some(PAGE_SIZE))
                .map_or_else(|e| e.is_power_loss(), |()| false);
            s.recover().expect("recovery");
            s.set_onsoc_budget(Some(PAGE_SIZE)).expect("retry squeeze");
            s.sync_pressure();
            let respilled = s.stats.pressure.spills >= 1;
            s.set_onsoc_budget(None).expect("relief");
            s.on_unlock().expect("unlock");
            died && respilled
        };
        let converged = s.touch_pages(pid, &vpns).is_ok() && {
            let mut back = vec![0u8; data.len()];
            s.read(pid, 0, &mut back).is_ok() && back == data
        };
        if survived && converged {
            kill_recovered += 1;
        }
        byte_identical &= converged;
        s.sync_pressure();
        restores += s.stats.pressure.spill_restores;
    }

    SpillCell {
        spills,
        spilled_pages,
        scan_bytes: raw.len() as u64,
        plaintext_hits: hits,
        kill_sites: KILL_SITES.len() as u64,
        kill_recovered,
        restores,
        byte_identical,
    }
}

// ───────────────────────── output ─────────────────────────

fn pressure_json(p: &PressureStats) -> String {
    format!(
        "{{\"bytes_resident\": {}, \"high_water_bytes\": {}, \
         \"transitions_high\": {}, \"transitions_critical\": {}, \
         \"sheds\": {}, \"spills\": {}, \"spill_restores\": {}, \
         \"reclaimed_pages\": {}, \"denied\": {}}}",
        p.bytes_resident,
        p.high_water_bytes,
        p.transitions_high,
        p.transitions_critical,
        p.sheds,
        p.spills,
        p.spill_restores,
        p.reclaimed_pages,
        p.denied,
    )
}

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce");

    let sweep: Vec<ExhaustRow> = ENTRIES.iter().map(|&e| exhaust_row(e)).collect();
    let soak = soak_cell();
    let latency = latency_cell();
    let spill = spill_cell();
    let fleet_config = FleetConfig::new(48, 2)
        .with_events_per_device(32)
        .with_master_seed(0x9E55);
    let fleet = run_fleet(&fleet_config);

    let sweep_rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|r| {
            vec![
                r.entry.name().to_string(),
                r.runs.to_string(),
                r.completed.to_string(),
                r.denied.to_string(),
                r.untyped.to_string(),
                r.recoveries.to_string(),
                r.retry_failures.to_string(),
                r.settle_failures.to_string(),
            ]
        })
        .collect();
    print_table(
        "Exhaustion before every lifecycle entry point",
        &[
            "Entry",
            "Runs",
            "Completed",
            "Typed denial",
            "Untyped",
            "Recoveries",
            "Retry fails",
            "Settle fails",
        ],
        &sweep_rows,
    );

    print_table(
        "Teardown soak under periodic Critical squeezes",
        &[
            "Events",
            "Squeezes",
            "Baseline KiB",
            "Final KiB",
            "Leaked pages",
            "Reclaimed pages",
            "Spills",
            "Sheds",
            "Identical",
        ],
        &[vec![
            soak.events.to_string(),
            soak.squeezes.to_string(),
            format!("{:.1}", soak.baseline_bytes as f64 / 1024.0),
            format!("{:.1}", soak.final_bytes as f64 / 1024.0),
            soak.leaked_pages.to_string(),
            soak.exit_reclaimed_pages.to_string(),
            soak.pressure.spills.to_string(),
            soak.pressure.sheds.to_string(),
            soak.byte_identical.to_string(),
        ]],
    );

    print_table(
        "Demand-fault latency after a spill/relief cycle",
        &[
            "Healthy mean (us)",
            "Post-spill mean (us)",
            "Inflation",
            "Restores",
            "Identical",
        ],
        &[vec![
            format!("{:.1}", latency.baseline_mean_ns / 1000.0),
            format!("{:.1}", latency.pressure_mean_ns / 1000.0),
            format!("{:.2}x", latency.inflation()),
            latency.restores.to_string(),
            (latency.baseline_identical && latency.pressure_identical).to_string(),
        ]],
    );

    print_table(
        "Spill hygiene and power-cut kill matrix",
        &[
            "Spills",
            "Spilled pages",
            "Scan KiB",
            "Plaintext hits",
            "Kill sites",
            "Recovered",
            "Restores",
            "Identical",
        ],
        &[vec![
            spill.spills.to_string(),
            spill.spilled_pages.to_string(),
            format!("{:.1}", spill.scan_bytes as f64 / 1024.0),
            spill.plaintext_hits.to_string(),
            spill.kill_sites.to_string(),
            spill.kill_recovered.to_string(),
            spill.restores.to_string(),
            spill.byte_identical.to_string(),
        ]],
    );

    print_table(
        "Pressure fleet (mem-pressure chaos events in the mix)",
        &[
            "Devices",
            "Events",
            "Squeezes",
            "Exit reclaimed",
            "Sheds",
            "Spills",
            "Denied",
            "Silent",
            "Errors",
        ],
        &[vec![
            fleet.devices.to_string(),
            fleet.events.to_string(),
            fleet.pressure_events.to_string(),
            fleet.exit_reclaimed_pages.to_string(),
            fleet.pressure.sheds.to_string(),
            fleet.pressure.spills.to_string(),
            fleet.pressure.denied.to_string(),
            fleet.silent_corruptions.to_string(),
            fleet.device_errors.to_string(),
        ]],
    );

    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|r| {
            format!(
                "    {{\"entry\": \"{}\", \"runs\": {}, \"completed\": {}, \
                 \"denied\": {}, \"untyped\": {}, \"recoveries\": {}, \
                 \"retry_failures\": {}, \"settle_failures\": {}}}",
                r.entry.name(),
                r.runs,
                r.completed,
                r.denied,
                r.untyped,
                r.recoveries,
                r.retry_failures,
                r.settle_failures,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"pressure\",\n  \
         \"max_critical_inflation\": {MAX_CRITICAL_INFLATION:.1},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"soak\": {{\"events\": {}, \"squeezes\": {}, \"baseline_bytes\": {}, \
         \"final_bytes\": {}, \"leaked_pages\": {}, \"exit_reclaimed_pages\": {}, \
         \"byte_identical\": {}, \"pressure\": {}}},\n  \
         \"latency\": {{\"baseline_mean_ns\": {:.1}, \"pressure_mean_ns\": {:.1}, \
         \"inflation\": {:.3}, \"restores\": {}, \"identical\": {}}},\n  \
         \"spill\": {{\"spills\": {}, \"spilled_pages\": {}, \"scan_bytes\": {}, \
         \"plaintext_hits\": {}, \"kill_sites\": {}, \"kill_recovered\": {}, \
         \"restores\": {}, \"byte_identical\": {}}},\n  \
         \"fleet\": {{\"devices\": {}, \"events\": {}, \"pressure_events\": {}, \
         \"exit_reclaimed_pages\": {}, \"silent_corruptions\": {}, \
         \"device_errors\": {}, \"shard_panics\": {}, \"pressure\": {}}}\n}}\n",
        sweep_json.join(",\n"),
        soak.events,
        soak.squeezes,
        soak.baseline_bytes,
        soak.final_bytes,
        soak.leaked_pages,
        soak.exit_reclaimed_pages,
        soak.byte_identical,
        pressure_json(&soak.pressure),
        latency.baseline_mean_ns,
        latency.pressure_mean_ns,
        latency.inflation(),
        latency.restores,
        latency.baseline_identical && latency.pressure_identical,
        spill.spills,
        spill.spilled_pages,
        spill.scan_bytes,
        spill.plaintext_hits,
        spill.kill_sites,
        spill.kill_recovered,
        spill.restores,
        spill.byte_identical,
        fleet.devices,
        fleet.events,
        fleet.pressure_events,
        fleet.exit_reclaimed_pages,
        fleet.silent_corruptions,
        fleet.device_errors,
        fleet.shard_panics,
        pressure_json(&fleet.pressure),
    );
    std::fs::write("BENCH_pressure.json", &json).expect("write BENCH_pressure.json");
    println!("\nwrote BENCH_pressure.json");

    if enforce {
        let mut failed = false;
        // 1. Exhaustion sweep: every outcome typed, every retry and
        //    settle converged. (A panic anywhere aborts the run.)
        for r in &sweep {
            if r.untyped != 0 || r.retry_failures != 0 || r.settle_failures != 0 {
                eprintln!(
                    "FAIL [sweep:{}]: {} untyped outcomes, {} retry failures, \
                     {} settle failures",
                    r.entry.name(),
                    r.untyped,
                    r.retry_failures,
                    r.settle_failures
                );
                failed = true;
            }
        }
        // 2. Soak: zero leaked on-SoC pages after 10k teardowns.
        if soak.leaked_pages != 0 || !soak.byte_identical {
            eprintln!(
                "FAIL [soak]: {} leaked pages ({} -> {} bytes), identical={}",
                soak.leaked_pages, soak.baseline_bytes, soak.final_bytes, soak.byte_identical
            );
            failed = true;
        }
        if soak.exit_reclaimed_pages == 0 || soak.pressure.spills == 0 {
            eprintln!(
                "FAIL [soak]: {} pages reclaimed, {} spills — the zero-leak claim \
                 is vacuous",
                soak.exit_reclaimed_pages, soak.pressure.spills
            );
            failed = true;
        }
        // 3. Post-spill latency inflation bounded.
        if latency.inflation() > MAX_CRITICAL_INFLATION {
            eprintln!(
                "FAIL [latency]: post-spill faults at {:.2}x the healthy mean \
                 (budget {MAX_CRITICAL_INFLATION:.1}x)",
                latency.inflation()
            );
            failed = true;
        }
        if latency.restores == 0 || !latency.baseline_identical || !latency.pressure_identical {
            eprintln!(
                "FAIL [latency]: {} restores, identical={} — the inflation bound \
                 is vacuous",
                latency.restores,
                latency.baseline_identical && latency.pressure_identical
            );
            failed = true;
        }
        // 4. Hygiene: no plaintext in the spill region; every kill
        //    site recovered byte-identically.
        if spill.plaintext_hits != 0 {
            eprintln!(
                "FAIL [spill]: {} plaintext windows found in the raw spill dump",
                spill.plaintext_hits
            );
            failed = true;
        }
        if spill.spills == 0 || spill.kill_recovered != spill.kill_sites || !spill.byte_identical {
            eprintln!(
                "FAIL [spill]: {} spills, {}/{} kill sites recovered, identical={}",
                spill.spills, spill.kill_recovered, spill.kill_sites, spill.byte_identical
            );
            failed = true;
        }
        // 5. Fleet: chaos squeezes drawn and absorbed cleanly.
        if fleet.silent_corruptions != 0 || fleet.device_errors != 0 || fleet.shard_panics != 0 {
            eprintln!(
                "FAIL [fleet]: {} silent corruptions, {} device errors, {} shard panics",
                fleet.silent_corruptions, fleet.device_errors, fleet.shard_panics
            );
            failed = true;
        }
        if fleet.pressure_events == 0 || fleet.exit_reclaimed_pages == 0 {
            eprintln!(
                "FAIL [fleet]: {} squeezes, {} reclaimed pages — the pressure mix \
                 never landed",
                fleet.pressure_events, fleet.exit_reclaimed_pages
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "enforce: all entry points typed under exhaustion, zero leaked pages \
             after {} soak events, post-spill inflation {:.2}x <= {MAX_CRITICAL_INFLATION:.1}x, \
             zero plaintext in the spill region, {}/{} kill sites recovered",
            soak.events,
            latency.inflation(),
            spill.kill_recovered,
            spill.kill_sites
        );
    }
}
