//! Degraded-mode experiment: the health governor riding out sustained
//! accelerator and storage faults.
//!
//! Five cells:
//!
//! 1. **Wedge storm (dm-crypt)** — every descriptor submitted on the
//!    overlapped CTR read path wedges forever. Each read must still
//!    return the written bytes: the watchdog abandons the op, the DMA
//!    bounce window is zeroized, and the bitsliced CPU path redoes the
//!    work. After `trip_failures` abandons the breaker opens — no
//!    further watchdog deadline is ever burned — and reads while Open
//!    go inline with a mean latency at most `MAX_OPEN_INFLATION`× the
//!    healthy mean. Once the storm lifts and the probe interval
//!    elapses, half-open probes close the breaker within the probe
//!    budget.
//! 2. **Corrupt engine (dm-crypt)** — the engine completes but returns
//!    a corrupt status word on every op. No corrupt byte may surface:
//!    every read is redone on the CPU and compared against the written
//!    image.
//! 3. **Wedge storm (lifecycle)** — the same persistent wedge armed
//!    across an unlock's clustered on-demand decrypt batches; every
//!    page must decrypt byte-identically via abandonment and, once the
//!    breaker trips, the open-breaker CPU route.
//! 4. **Flaky disk** — transient `DiskError` faults at a steady rate
//!    on the volume's reads; the governor's bounded retry/backoff must
//!    absorb every one (zero exhausted budgets, zero surfaced errors).
//! 5. **Chaos fleet** — the fleet harness's accel-wedge storms and
//!    flaky-disk intervals at full mix: zero silent corruptions, zero
//!    device errors, with the per-device degradation columns showing
//!    real trips.
//!
//! Results print as tables and land in `BENCH_degraded.json`. With
//! `--enforce`, any surfaced fault, non-identical read, missed trip,
//! blown latency budget, or failed recovery fails the run.

use sentry_bench::print_table;
use sentry_core::config::{PageCipherMode, PipelineConfig, ReadaheadConfig};
use sentry_core::{HealthConfig, HealthState, HealthStats, Sentry, SentryConfig};
use sentry_kernel::block::{RamDisk, SECTOR_SIZE};
use sentry_kernel::crypto_api::{CryptoApi, GenericAesEngine};
use sentry_kernel::dmcrypt::DmCrypt;
use sentry_kernel::Kernel;
use sentry_soc::accel::AccelPowerState;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::{FaultAction, FaultPlan, Soc};
use sentry_workloads::fleet::{run_fleet, FleetConfig};

/// Enforced ceiling on mean read latency while the breaker is Open,
/// relative to the healthy mean.
const MAX_OPEN_INFLATION: f64 = 10.0;

/// Sectors per dm-crypt read in the storm cells.
const READ_SECTORS: usize = 16;

/// Healthy baseline reads before the storm.
const HEALTHY_READS: usize = 8;

/// Reads performed under the wedge storm.
const STORM_READS: usize = 10;

/// Reads performed under the corrupt-engine regime.
const CORRUPT_READS: usize = 6;

/// Reads performed under the flaky-disk regime.
const FLAKY_READS: usize = 6;

/// Vault pages in the lifecycle cell (4 readahead clusters of 4).
const LIFECYCLE_PAGES: u64 = 16;

/// A deterministic test pattern.
fn pattern(len: usize, tag: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect()
}

/// A CTR dm-crypt stack with the async pipeline and an awake
/// accelerator — the configuration where the governor's accel path is
/// live.
fn ctr_stack() -> (CryptoApi, Soc, RamDisk, DmCrypt) {
    let mut api = CryptoApi::new();
    api.register(Box::new(GenericAesEngine::new(0)));
    api.preferred_mut()
        .expect("engine")
        .set_mode(PageCipherMode::Ctr)
        .expect("CTR mode");
    let mut soc = Soc::tegra3_small();
    soc.accel.state = AccelPowerState::Awake;
    let dm = DmCrypt::with_preferred_cipher();
    dm.enable_pipeline(PipelineConfig::enabled());
    dm.set_key(&mut api, &mut soc, &[0x5E; 16])
        .expect("set key");
    (api, soc, RamDisk::new(256), dm)
}

/// What the dm-crypt wedge-storm cell measured.
struct StormCell {
    healthy_mean_ns: f64,
    open_mean_ns: f64,
    open_reads: u64,
    reads: u64,
    identical: u64,
    time_to_open_ns: u64,
    watchdog_ns: u64,
    recovery_reads: u64,
    recovered: bool,
    health: HealthStats,
}

impl StormCell {
    fn inflation(&self) -> f64 {
        if self.healthy_mean_ns == 0.0 {
            0.0
        } else {
            self.open_mean_ns / self.healthy_mean_ns
        }
    }
}

#[allow(clippy::cast_precision_loss)]
fn storm_cell() -> StormCell {
    let (mut api, mut soc, mut disk, dm) = ctr_stack();
    let data = pattern(READ_SECTORS * SECTOR_SIZE, 0xA5);
    dm.write(&mut api, &mut soc, &mut disk, 0, &data)
        .expect("write");

    let read_once = |api: &mut CryptoApi, soc: &mut Soc, disk: &mut RamDisk| {
        let t0 = soc.clock.now_ns();
        let mut back = vec![0u8; data.len()];
        dm.read(api, soc, disk, 0, &mut back).expect("read");
        (soc.clock.now_ns() - t0, back == data)
    };

    let mut healthy_sum = 0u64;
    for _ in 0..HEALTHY_READS {
        let (dt, _) = read_once(&mut api, &mut soc, &mut disk);
        healthy_sum += dt;
    }
    let healthy_mean_ns = healthy_sum as f64 / HEALTHY_READS as f64;
    // The deadline the governor derives for a full-read miss run — the
    // reporting yardstick for time-to-trip.
    let watchdog_ns = sentry_core::HealthGovernor::new(HealthConfig::default())
        .watchdog_ns(soc.accel.op_duration_ns(data.len() as u64));

    soc.failpoints.arm(FaultPlan::at_rate(
        "accel.submit",
        1,
        FaultAction::AccelWedge { wedge_ns: u64::MAX },
    ));
    let storm_t0 = soc.clock.now_ns();
    let mut identical = 0u64;
    let mut open_sum = 0u64;
    let mut open_reads = 0u64;
    let mut time_to_open_ns = 0u64;
    for _ in 0..STORM_READS {
        let was_open = dm.health_state() == HealthState::Open;
        let (dt, same) = read_once(&mut api, &mut soc, &mut disk);
        if same {
            identical += 1;
        }
        if was_open {
            open_sum += dt;
            open_reads += 1;
        }
        if time_to_open_ns == 0 && dm.health_state() == HealthState::Open {
            time_to_open_ns = soc.clock.now_ns() - storm_t0;
        }
    }
    soc.failpoints.disarm();

    // Storm over: cool down past the probe interval, then count the
    // reads (= half-open probes) the breaker needs to close again.
    soc.clock.advance(HealthConfig::default().probe_after_ns);
    let probe_budget = u64::from(HealthConfig::default().probe_successes) + 2;
    let mut recovery_reads = 0u64;
    while dm.health_state() != HealthState::Healthy && recovery_reads < probe_budget {
        let (_, same) = read_once(&mut api, &mut soc, &mut disk);
        if same {
            identical += 1;
        }
        recovery_reads += 1;
    }
    let recovered = dm.health_state() == HealthState::Healthy;
    let health = dm.health_stats(soc.clock.now_ns());
    StormCell {
        healthy_mean_ns,
        open_mean_ns: if open_reads == 0 {
            0.0
        } else {
            open_sum as f64 / open_reads as f64
        },
        open_reads,
        reads: STORM_READS as u64 + recovery_reads,
        identical,
        time_to_open_ns,
        watchdog_ns,
        recovery_reads,
        recovered,
        health,
    }
}

/// What the corrupt-engine cell measured.
struct CorruptCell {
    reads: u64,
    identical: u64,
    health: HealthStats,
}

fn corrupt_cell() -> CorruptCell {
    let (mut api, mut soc, mut disk, dm) = ctr_stack();
    let data = pattern(READ_SECTORS * SECTOR_SIZE, 0x3C);
    dm.write(&mut api, &mut soc, &mut disk, 0, &data)
        .expect("write");
    soc.failpoints.arm(FaultPlan::at_rate(
        "accel.submit",
        1,
        FaultAction::AccelCorrupt,
    ));
    let mut identical = 0u64;
    for _ in 0..CORRUPT_READS {
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .expect("read");
        if back == data {
            identical += 1;
        }
    }
    soc.failpoints.disarm();
    CorruptCell {
        reads: CORRUPT_READS as u64,
        identical,
        health: dm.health_stats(soc.clock.now_ns()),
    }
}

/// What the lifecycle wedge cell measured.
struct LifecycleCell {
    pages: u64,
    identical: u64,
    breaker_open_batches: u64,
    health: HealthStats,
}

fn lifecycle_cell() -> LifecycleCell {
    let config = SentryConfig::tegra3_locked_l2(2)
        .with_cipher_mode(PageCipherMode::Ctr)
        .with_pipeline(PipelineConfig::enabled())
        .with_readahead(ReadaheadConfig::with_cluster(4).sweep_budget(0));
    let mut sentry = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry");
    let app = sentry.kernel.spawn("vault");
    sentry.mark_sensitive(app).expect("mark sensitive");
    let page_len = usize::try_from(PAGE_SIZE).expect("page fits usize");
    let images: Vec<Vec<u8>> = (0..LIFECYCLE_PAGES)
        .map(|vpn| pattern(page_len, vpn as u8))
        .collect();
    for (vpn, img) in images.iter().enumerate() {
        sentry
            .write(app, vpn as u64 * PAGE_SIZE, img)
            .expect("write page");
    }
    sentry.on_lock().expect("lock");
    // Persistent wedge across the unlock and its resume: every routed
    // decrypt batch must complete via watchdog abandonment or the
    // open-breaker CPU route.
    sentry.kernel.soc.failpoints.arm(FaultPlan::at_rate(
        "accel.submit",
        1,
        FaultAction::AccelWedge { wedge_ns: u64::MAX },
    ));
    sentry.on_unlock().expect("unlock");
    let mut identical = 0u64;
    let mut buf = vec![0u8; page_len];
    for (vpn, img) in images.iter().enumerate() {
        sentry
            .read(app, vpn as u64 * PAGE_SIZE, &mut buf)
            .expect("read page");
        if &buf == img {
            identical += 1;
        }
    }
    sentry.kernel.soc.failpoints.disarm();
    sentry.sync_health();
    LifecycleCell {
        pages: LIFECYCLE_PAGES,
        identical,
        breaker_open_batches: sentry.stats.batch_fallback_breaker_open,
        health: sentry.stats.health,
    }
}

/// What the flaky-disk cell measured.
struct FlakyCell {
    reads: u64,
    identical: u64,
    health: HealthStats,
}

fn flaky_cell() -> FlakyCell {
    let (mut api, mut soc, mut disk, dm) = ctr_stack();
    let data = pattern(8 * SECTOR_SIZE, 0x77);
    dm.write(&mut api, &mut soc, &mut disk, 0, &data)
        .expect("write");
    // Every other disk read faults transiently: each dm-crypt read's
    // first attempt fails and its first backed-off retry lands clean.
    soc.failpoints
        .arm(FaultPlan::at_rate("disk.read", 2, FaultAction::DiskError));
    let mut identical = 0u64;
    for _ in 0..FLAKY_READS {
        let mut back = vec![0u8; data.len()];
        dm.read(&mut api, &mut soc, &mut disk, 0, &mut back)
            .expect("read survives transient faults");
        if back == data {
            identical += 1;
        }
    }
    soc.failpoints.disarm();
    FlakyCell {
        reads: FLAKY_READS as u64,
        identical,
        health: dm.health_stats(soc.clock.now_ns()),
    }
}

fn health_json(h: &HealthStats) -> String {
    format!(
        "{{\"trips\": {}, \"probes\": {}, \"timeouts\": {}, \"corrupt_ops\": {}, \
         \"abandoned_bytes\": {}, \"fallback_crypt_bytes\": {}, \"recoveries\": {}, \
         \"time_degraded_ns\": {}, \"disk_attempts\": {}, \"disk_recovered\": {}, \
         \"disk_exhausted\": {}}}",
        h.trips,
        h.probes,
        h.timeouts,
        h.corrupt_ops,
        h.abandoned_bytes,
        h.fallback_crypt_bytes,
        h.recoveries,
        h.time_degraded_ns,
        h.disk.attempts,
        h.disk.recovered,
        h.disk.exhausted,
    )
}

#[allow(clippy::too_many_lines)]
fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce");
    let defaults = HealthConfig::default();

    let storm = storm_cell();
    let corrupt = corrupt_cell();
    let lifecycle = lifecycle_cell();
    let flaky = flaky_cell();
    let fleet_config = FleetConfig::new(12, 2)
        .with_events_per_device(32)
        .with_master_seed(0xFA11);
    let fleet = run_fleet(&fleet_config);

    print_table(
        "Wedge storm on the dm-crypt read path",
        &[
            "Reads",
            "Identical",
            "Timeouts",
            "Trips",
            "Time to Open (us)",
            "Watchdog (us)",
            "Healthy mean (us)",
            "Open mean (us)",
            "Inflation",
            "Recovery reads",
            "Recovered",
        ],
        &[vec![
            storm.reads.to_string(),
            storm.identical.to_string(),
            storm.health.timeouts.to_string(),
            storm.health.trips.to_string(),
            format!("{:.1}", storm.time_to_open_ns as f64 / 1000.0),
            format!("{:.1}", storm.watchdog_ns as f64 / 1000.0),
            format!("{:.1}", storm.healthy_mean_ns / 1000.0),
            format!("{:.1}", storm.open_mean_ns / 1000.0),
            format!("{:.2}x", storm.inflation()),
            storm.recovery_reads.to_string(),
            storm.recovered.to_string(),
        ]],
    );

    print_table(
        "Corrupt engine and flaky disk",
        &[
            "Cell",
            "Reads",
            "Identical",
            "Corrupt ops",
            "Disk retries",
            "Recovered",
            "Exhausted",
        ],
        &[
            vec![
                "corrupt-engine".to_string(),
                corrupt.reads.to_string(),
                corrupt.identical.to_string(),
                corrupt.health.corrupt_ops.to_string(),
                corrupt.health.disk.attempts.to_string(),
                corrupt.health.disk.recovered.to_string(),
                corrupt.health.disk.exhausted.to_string(),
            ],
            vec![
                "flaky-disk".to_string(),
                flaky.reads.to_string(),
                flaky.identical.to_string(),
                flaky.health.corrupt_ops.to_string(),
                flaky.health.disk.attempts.to_string(),
                flaky.health.disk.recovered.to_string(),
                flaky.health.disk.exhausted.to_string(),
            ],
        ],
    );

    print_table(
        "Wedge storm across a lifecycle unlock",
        &[
            "Pages",
            "Identical",
            "Timeouts",
            "Trips",
            "Breaker-open batches",
            "Fallback KiB",
        ],
        &[vec![
            lifecycle.pages.to_string(),
            lifecycle.identical.to_string(),
            lifecycle.health.timeouts.to_string(),
            lifecycle.health.trips.to_string(),
            lifecycle.breaker_open_batches.to_string(),
            format!(
                "{:.1}",
                lifecycle.health.fallback_crypt_bytes as f64 / 1024.0
            ),
        ]],
    );

    print_table(
        "Chaos fleet (accel storms + flaky-disk intervals in the mix)",
        &[
            "Devices",
            "Events",
            "Storms",
            "Flaky intervals",
            "Trips",
            "Timeouts",
            "Fallback KiB",
            "Disk recovered",
            "Silent",
            "Errors",
        ],
        &[vec![
            fleet.devices.to_string(),
            fleet.events.to_string(),
            fleet.accel_storms.to_string(),
            fleet.flaky_disk_intervals.to_string(),
            fleet.health.trips.to_string(),
            fleet.health.timeouts.to_string(),
            format!("{:.1}", fleet.health.fallback_crypt_bytes as f64 / 1024.0),
            fleet.health.disk.recovered.to_string(),
            fleet.silent_corruptions.to_string(),
            fleet.device_errors.to_string(),
        ]],
    );

    let json = format!(
        "{{\n  \"experiment\": \"degraded\",\n  \"max_open_inflation\": {MAX_OPEN_INFLATION:.1},\n  \
         \"trip_failures\": {},\n  \"probe_successes\": {},\n  \
         \"storm\": {{\"reads\": {}, \"identical\": {}, \"open_reads\": {}, \
         \"time_to_open_ns\": {}, \"watchdog_ns\": {}, \"healthy_mean_ns\": {:.1}, \
         \"open_mean_ns\": {:.1}, \"inflation\": {:.3}, \"recovery_reads\": {}, \
         \"recovered\": {}, \"health\": {}}},\n  \
         \"corrupt\": {{\"reads\": {}, \"identical\": {}, \"health\": {}}},\n  \
         \"lifecycle\": {{\"pages\": {}, \"identical\": {}, \"breaker_open_batches\": {}, \
         \"health\": {}}},\n  \
         \"flaky_disk\": {{\"reads\": {}, \"identical\": {}, \"health\": {}}},\n  \
         \"fleet\": {{\"devices\": {}, \"events\": {}, \"accel_storms\": {}, \
         \"flaky_disk_intervals\": {}, \"silent_corruptions\": {}, \"device_errors\": {}, \
         \"health\": {}}}\n}}\n",
        defaults.trip_failures,
        defaults.probe_successes,
        storm.reads,
        storm.identical,
        storm.open_reads,
        storm.time_to_open_ns,
        storm.watchdog_ns,
        storm.healthy_mean_ns,
        storm.open_mean_ns,
        storm.inflation(),
        storm.recovery_reads,
        storm.recovered,
        health_json(&storm.health),
        corrupt.reads,
        corrupt.identical,
        health_json(&corrupt.health),
        lifecycle.pages,
        lifecycle.identical,
        lifecycle.breaker_open_batches,
        health_json(&lifecycle.health),
        flaky.reads,
        flaky.identical,
        health_json(&flaky.health),
        fleet.devices,
        fleet.events,
        fleet.accel_storms,
        fleet.flaky_disk_intervals,
        fleet.silent_corruptions,
        fleet.device_errors,
        health_json(&fleet.health),
    );
    std::fs::write("BENCH_degraded.json", &json).expect("write BENCH_degraded.json");
    println!("\nwrote BENCH_degraded.json");

    if enforce {
        let mut failed = false;
        // 1. 100% completion, byte-identical, under the storm.
        if storm.identical != storm.reads {
            eprintln!(
                "FAIL [storm]: only {}/{} reads returned the written bytes",
                storm.identical, storm.reads
            );
            failed = true;
        }
        // 2. The breaker trips at the K-th watchdog expiry and never
        //    burns another deadline — "trips within one watchdog
        //    deadline" of the K-th failure.
        if storm.health.trips < 1 || storm.health.timeouts != u64::from(defaults.trip_failures) {
            eprintln!(
                "FAIL [storm]: {} timeouts / {} trips — breaker did not trip at the \
                 {}-failure threshold",
                storm.health.timeouts, storm.health.trips, defaults.trip_failures
            );
            failed = true;
        }
        if storm.time_to_open_ns == 0 {
            eprintln!("FAIL [storm]: breaker never observed Open");
            failed = true;
        }
        // 3. Open-mode latency inflation within budget.
        if storm.open_reads == 0 || storm.inflation() > MAX_OPEN_INFLATION {
            eprintln!(
                "FAIL [storm]: open-mode inflation {:.2}x over {} reads exceeds \
                 {MAX_OPEN_INFLATION:.1}x",
                storm.inflation(),
                storm.open_reads
            );
            failed = true;
        }
        // 4. Recovery within the probe budget once the storm lifts.
        if !storm.recovered
            || storm.recovery_reads > u64::from(defaults.probe_successes)
            || storm.health.recoveries < 1
        {
            eprintln!(
                "FAIL [storm]: not Healthy after {} recovery reads (budget {})",
                storm.recovery_reads, defaults.probe_successes
            );
            failed = true;
        }
        // 5. Corrupt output never surfaces.
        if corrupt.identical != corrupt.reads || corrupt.health.corrupt_ops == 0 {
            eprintln!(
                "FAIL [corrupt]: {}/{} identical with {} corrupt ops detected",
                corrupt.identical, corrupt.reads, corrupt.health.corrupt_ops
            );
            failed = true;
        }
        // 6. Lifecycle batches survive the same storm.
        if lifecycle.identical != lifecycle.pages
            || lifecycle.health.timeouts == 0
            || lifecycle.health.trips == 0
            || lifecycle.breaker_open_batches == 0
        {
            eprintln!(
                "FAIL [lifecycle]: {}/{} pages identical, {} timeouts, {} trips, \
                 {} breaker-open batches",
                lifecycle.identical,
                lifecycle.pages,
                lifecycle.health.timeouts,
                lifecycle.health.trips,
                lifecycle.breaker_open_batches
            );
            failed = true;
        }
        // 7. Flaky disk fully absorbed by bounded retry.
        if flaky.identical != flaky.reads
            || flaky.health.disk.recovered != flaky.reads
            || flaky.health.disk.exhausted != 0
        {
            eprintln!(
                "FAIL [flaky-disk]: {}/{} identical, {} recovered, {} exhausted",
                flaky.identical,
                flaky.reads,
                flaky.health.disk.recovered,
                flaky.health.disk.exhausted
            );
            failed = true;
        }
        // 8. Chaos fleet: degradation everywhere, corruption nowhere.
        if fleet.silent_corruptions != 0
            || fleet.device_errors != 0
            || fleet.shard_panics != 0
            || fleet.accel_storms == 0
            || fleet.flaky_disk_intervals == 0
            || fleet.health.trips == 0
            || fleet.health.disk.exhausted != 0
        {
            eprintln!(
                "FAIL [fleet]: {} silent, {} errors, {} storms, {} flaky intervals, \
                 {} trips, {} exhausted disk retries",
                fleet.silent_corruptions,
                fleet.device_errors,
                fleet.accel_storms,
                fleet.flaky_disk_intervals,
                fleet.health.trips,
                fleet.health.disk.exhausted
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "enforce: storms ridden out byte-identically, breaker tripped at {} failures \
             and recovered in {} probes, open-mode inflation {:.2}x <= {MAX_OPEN_INFLATION:.1}x, \
             flaky disk absorbed, chaos fleet clean",
            defaults.trip_failures,
            storm.recovery_reads,
            storm.inflation()
        );
    }
}
