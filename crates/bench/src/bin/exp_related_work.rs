//! §9.1 head-to-head: register-only AES (AESSE/TRESOR/Simmons style)
//! vs AES On SoC, against the full attack suite.
//!
//! Register-only schemes defeat cold boot (no key material in DRAM)
//! but leave the lookup tables — the access-protected state — in
//! ordinary memory, so a bus monitor recovers the per-round lookup
//! indices that cache-attack literature turns into keys. AES On SoC
//! protects both classes of state.

use sentry_attacks::busmon::BusMonitor;
use sentry_attacks::coldboot;
use sentry_attacks::related::RegisterOnlyAes;
use sentry_bench::print_table;
use sentry_core::aes_onsoc::build_engine;
use sentry_core::config::OnSocBackend;
use sentry_core::onsoc::OnSocStore;
use sentry_kernel::crypto_api::CipherEngine;
use sentry_soc::addr::DRAM_BASE;
use sentry_soc::dram::PowerEvent;
use sentry_soc::Soc;

const TABLE_REGION: u64 = DRAM_BASE + (36 << 20);
const KEY: [u8; 16] = [0xABu8; 16];

fn main() {
    // --- Register-only scheme.
    let mut soc = Soc::tegra3_small();
    let tresor = RegisterOnlyAes::install(&mut soc, TABLE_REGION, &KEY).expect("installs");
    let mon = BusMonitor::attach_new(&mut soc.bus);
    let mut block = [0u8; 16];
    tresor.encrypt_block(&mut soc, &mut block);
    let tresor_lookups = mon.table_access_indices(TABLE_REGION, 256, 4).len();
    soc.power_cycle(PowerEvent::ReflashTap).expect("reboots");
    let tresor_keys = coldboot::find_aes128_key_schedules(&coldboot::dump_dram(&mut soc)).len();

    // --- AES On SoC.
    let mut soc = Soc::tegra3_small();
    let mut store =
        OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc).expect("locks");
    let mut onsoc = build_engine(&mut store, &mut soc, &KEY).expect("keys");
    onsoc.set_full_simulation(true);
    let mon = BusMonitor::attach_new(&mut soc.bus);
    let mut data = [0u8; 16];
    onsoc
        .encrypt(&mut soc, &[0u8; 16], &mut data)
        .expect("encrypts");
    let onsoc_observed = mon.len();
    soc.power_cycle(PowerEvent::ReflashTap).expect("reboots");
    let onsoc_keys = coldboot::find_aes128_key_schedules(&coldboot::dump_dram(&mut soc)).len();

    print_table(
        "§9.1: register-only AES (AESSE/TRESOR) vs AES On SoC",
        &[
            "Scheme",
            "Keys via cold boot",
            "Table lookups on bus / block",
            "Verdict",
        ],
        &[
            vec![
                "register-only (TRESOR-style)".into(),
                tresor_keys.to_string(),
                tresor_lookups.to_string(),
                "cold boot: safe; bus monitor: BROKEN".into(),
            ],
            vec![
                "AES On SoC (Sentry)".into(),
                onsoc_keys.to_string(),
                onsoc_observed.to_string(),
                "safe against both".into(),
            ],
        ],
    );
    println!("\n\"To us, it is unclear how to extend these solutions to safeguard the\nvoluminous access-protected state\" — 2.6 KB of tables do not fit in\ndebug registers; they do fit in a locked cache way.");
}
