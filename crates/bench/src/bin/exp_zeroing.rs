//! The §7 freed-page zeroing measurement.
//!
//! Sentry's lock path waits for the kernel zeroing thread to scrub all
//! freed pages. The paper measured 4.014 GB/s and 2.8 µJ/MB on the
//! Nexus 4 — negligible, which justifies the barrier.

use sentry_bench::print_table;
use sentry_kernel::Kernel;
use sentry_soc::Soc;

fn main() {
    let mut kernel = Kernel::new(Soc::new(
        sentry_soc::SocConfig::new(sentry_soc::Platform::Nexus4).with_dram_size(512 << 20),
    ));
    let mut rows = Vec::new();
    for mbytes in [1u64, 16, 64] {
        let frames = mbytes * 256;
        for _ in 0..frames {
            let f = kernel.frames.alloc().expect("pool has room");
            kernel.frames.free(f);
        }
        let ns = kernel.drain_zero_thread().expect("drain runs");
        let gb_s = (frames * 4096) as f64 / (ns as f64 / 1e9) / 1e9;
        rows.push(vec![
            format!("{mbytes} MB"),
            format!("{:.3}", ns as f64 / 1e6),
            format!("{gb_s:.3}"),
            format!("{:.2}", kernel.zero_thread.stats.joules * 1e6),
        ]);
    }
    print_table(
        "§7 freed-page zeroing (paper: 4.014 GB/s, 2.8 µJ/MB)",
        &["Freed", "Drain (ms)", "GB/s", "Total µJ"],
        &rows,
    );
}
