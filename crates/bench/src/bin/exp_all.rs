//! Run every reproduction experiment in sequence — the one-shot
//! "regenerate the paper's evaluation" entry point.
//!
//! Each table/figure also has its own binary (`exp_table2`,
//! `exp_fig9`, …) for iterating on a single experiment.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table2",
    "exp_table3",
    "exp_table4",
    "exp_fig2",
    "exp_fig3",
    "exp_fig4",
    "exp_fig5",
    "exp_fig6to8",
    "exp_fig9",
    "exp_fig10",
    "exp_fig11",
    "exp_fig12",
    "exp_pl310_validate",
    "exp_strawman",
    "exp_zeroing",
    "exp_ablation_ways",
    "exp_ablation_lazy",
    "exp_ablation_tables",
    "exp_freezer",
    "exp_sidechannel",
    "exp_related_work",
    "exp_daily_battery",
    "exp_fleet",
    "exp_degraded",
    "exp_pressure",
];

fn main() {
    // Prefer an already-built sibling binary; otherwise go through
    // cargo so `cargo run --bin exp_all` works from a cold target dir.
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin directory").to_path_buf();
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let release = bin_dir.ends_with("release");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n────────────────────────────── {exp} ──────────────────────────────");
        let sibling = bin_dir.join(exp);
        let status = if sibling.exists() {
            Command::new(sibling).status()
        } else {
            let mut cmd = Command::new(&cargo);
            cmd.args(["run", "--quiet", "-p", "sentry-bench", "--bin", exp]);
            if release {
                cmd.arg("--release");
            }
            cmd.status()
        }
        .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        if !status.success() {
            failures.push(*exp);
        }
    }
    println!(
        "\n{} experiments run, {} failed",
        EXPERIMENTS.len(),
        failures.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
