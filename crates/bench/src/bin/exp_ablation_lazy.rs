//! Ablation: lazy (on-demand) vs eager unlock decryption.
//!
//! §7 chooses lazy decryption "to reduce user-perceived resume latency
//! and to save power … in the case when users unlock their phones,
//! engage in just a few interactions, and re-lock". This experiment
//! measures both strategies for a 1 MB-working-set interaction on apps
//! of various sizes.

use sentry_bench::{print_table, secs};
use sentry_workloads::lazy_vs_eager;

fn main() {
    let mut rows = Vec::new();
    for app_mb in [8u64, 32, 64] {
        let app_pages = app_mb * 256;
        let touched = 256; // the user reads ~1 MB then re-locks
        let (lazy, eager) = lazy_vs_eager(app_pages, touched).expect("runs");
        rows.push(vec![
            format!("{app_mb} MB"),
            secs(lazy.time_to_interactive_secs),
            secs(eager.time_to_interactive_secs),
            format!("{:.1}", lazy.bytes_decrypted as f64 / 1048576.0),
            format!("{:.1}", eager.bytes_decrypted as f64 / 1048576.0),
            format!("{:.2}", lazy.joules),
            format!("{:.2}", eager.joules),
        ]);
    }
    print_table(
        "Ablation: lazy vs eager decrypt-on-unlock (user touches 1 MB then re-locks)",
        &[
            "App size",
            "lazy TTI (s)",
            "eager TTI (s)",
            "lazy MB",
            "eager MB",
            "lazy J",
            "eager J",
        ],
        &rows,
    );
    println!("\nLazy wins by the app-size factor on both latency and energy — the\npaper's on-demand design choice.");
}
