//! Figure 5: energy overhead of encrypt-on-lock and decrypt-on-unlock.
//!
//! Per-app joules for each side of the cycle, plus the paper's headline:
//! at 150 lock/unlock cycles per day, protecting an app costs about 2%
//! of the battery.

use sentry_bench::print_table;
use sentry_energy::{AesVariant, EnergyModel, CYCLES_PER_DAY};
use sentry_workloads::{app_catalog, run_app_cycle};

fn main() {
    let energy = EnergyModel::nexus4();
    let mut rows = Vec::new();
    let mut worst_daily = 0.0f64;
    for app in app_catalog() {
        let r = run_app_cycle(&app).expect("cycle runs");
        let daily = energy.daily_battery_fraction(
            AesVariant::CryptoApi,
            (r.lock_mb * 1048576.0) as u64,
            app.resume_bytes,
            CYCLES_PER_DAY,
        );
        worst_daily = worst_daily.max(daily);
        rows.push(vec![
            r.name.to_string(),
            format!("{:.2}", r.lock_joules),
            format!("{:.2}", r.unlock_joules),
            format!("{:.2}%", daily * 100.0),
        ]);
    }
    print_table(
        "Figure 5: lock/unlock energy (paper: up to 2.3 J; ~2%/day at 150 cycles)",
        &[
            "App",
            "Encrypt-on-Lock (J)",
            "Decrypt-on-Unlock (J)",
            "Daily battery",
        ],
        &rows,
    );
    println!(
        "\nWorst-case daily battery to protect one app: {:.2}%",
        worst_daily * 100.0
    );
}
