//! Figure 2: performance overhead upon device unlock (resume).
//!
//! For each sensitive app, the time to resume after unlock and the
//! megabytes decrypted to do so (eager DMA regions + on-demand resume
//! set). Paper values: ~0.2 s/small for Contacts up to ~1.5 s/38 MB
//! for Google Maps, "roughly proportional to the amount of data to be
//! decrypted".

use sentry_bench::{mb, print_table, secs};
use sentry_workloads::{app_catalog, run_app_cycle};

fn main() {
    let rows: Vec<Vec<String>> = app_catalog()
        .iter()
        .map(|app| {
            let r = run_app_cycle(app).expect("cycle runs");
            vec![r.name.to_string(), secs(r.resume_secs), mb(r.resume_mb)]
        })
        .collect();
    print_table(
        "Figure 2: device-unlock (resume) overhead",
        &["App", "Time (s)", "MB decrypted"],
        &rows,
    );
}
