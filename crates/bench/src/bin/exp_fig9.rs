//! Figure 9: dm-crypt throughput under filebench.
//!
//! randread and randrw, each cached and with direct I/O, across
//! {No Crypto, Generic AES, Sentry}. The paper's shapes: the buffer
//! cache masks encryption for randread; direct I/O exposes it; randrw
//! loses about half its throughput to encryption even when cached; and
//! Sentry tracks generic AES closely.

use sentry_bench::print_table;
use sentry_workloads::{run_filebench, CryptoSetup, FilebenchSpec, Workload};

fn main() {
    for workload in [Workload::RandRead, Workload::RandRw] {
        for direct in [false, true] {
            let spec = FilebenchSpec::new(workload, direct);
            let rows: Vec<Vec<String>> = [
                CryptoSetup::NoCrypto,
                CryptoSetup::GenericAes,
                CryptoSetup::Sentry,
            ]
            .iter()
            .map(|&crypto| {
                let r = run_filebench(&spec, crypto).expect("filebench runs");
                vec![
                    crypto.to_string(),
                    format!("{:.1}", r.mb_per_sec),
                    r.cache_hits.to_string(),
                ]
            })
            .collect();
            print_table(
                &format!(
                    "Figure 9: {workload}{}",
                    if direct { " (direct I/O)" } else { "" }
                ),
                &["Setup", "MB/s", "Cache hits"],
                &rows,
            );
        }
    }
}
