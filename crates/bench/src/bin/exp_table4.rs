//! Table 4: the breakdown of AES state in bytes, by sensitivity class.
//!
//! Regenerated from the *actual* memory layout used by AES On SoC
//! (`sentry_crypto::AesStateLayout`), side by side with the paper's
//! published byte counts. The one deliberate difference: our round-key
//! cache stores both encryption and decryption schedules explicitly
//! (the equivalent inverse cipher), so the "Round Keys" row is larger
//! than the paper's OpenSSL-style accounting.

use sentry_bench::print_table;
use sentry_crypto::{AesStateLayout, KeySize, Sensitivity};

fn main() {
    let layouts: Vec<AesStateLayout> = KeySize::all()
        .iter()
        .map(|ks| AesStateLayout::for_key_size(*ks))
        .collect();

    let mut rows = Vec::new();
    for component in layouts[0].components() {
        let mut row = vec![component.name.to_string()];
        for layout in &layouts {
            let c = layout.component(component.name);
            row.push(format!(
                "{}{}",
                c.bytes,
                c.paper_bytes
                    .filter(|&p| p != c.bytes)
                    .map(|p| format!(" (paper {p})"))
                    .unwrap_or_default()
            ));
        }
        row.push(component.sensitivity.to_string());
        rows.push(row);
    }
    print_table(
        "Table 4: AES state in bytes",
        &["Component", "AES-128", "AES-192", "AES-256", "Sensitivity"],
        &rows,
    );

    println!("\nTotals (AES-128):");
    let l128 = &layouts[0];
    for s in [
        Sensitivity::Secret,
        Sensitivity::AccessProtected,
        Sensitivity::Public,
    ] {
        println!(
            "  {s:<17} ours {:>5} B   paper {:>5} B",
            l128.total_for(s),
            l128.paper_total_for(s)
        );
    }
    println!(
        "  On-SoC footprint: {} B (fits one 4 KiB page: {})",
        l128.on_soc_bytes(),
        l128.total_bytes() <= 4096
    );
}
