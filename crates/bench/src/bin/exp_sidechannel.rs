//! Extension: the bus-monitoring AES access-pattern side channel
//! (§3.1).
//!
//! "While the tables themselves are not secret, the order in which the
//! table entries are accessed can reveal secret information." A bus
//! monitor watches two encryptions of the same plaintext under
//! different keys: with AES state in DRAM the lookup-index traces are
//! fully observable and key-dependent; with AES On SoC the probe sees
//! nothing at all.

use sentry_attacks::busmon::BusMonitor;
use sentry_bench::print_table;
use sentry_core::store::{CachedSocStore, UncachedSocStore};
use sentry_crypto::{AesStateLayout, KeySize, TrackedAes};
use sentry_soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_FIRMWARE_RESERVED};
use sentry_soc::Soc;

fn dram_trace(key: [u8; 16]) -> Vec<u8> {
    let mut soc = Soc::tegra3_small();
    let mon = BusMonitor::attach_new(&mut soc.bus);
    let base = DRAM_BASE + (4 << 20);
    let mut store = UncachedSocStore::new(&mut soc, base);
    let aes = TrackedAes::init(&mut store, &key).expect("16-byte key");
    mon.clear();
    let mut block = [0u8; 16];
    aes.encrypt_block(&mut store, &mut block);
    let layout = AesStateLayout::for_key_size(KeySize::Aes128);
    let te_base = base + layout.component("2 Round Tables").offset as u64;
    mon.table_access_indices(te_base, 256, 4)
}

fn main() {
    let trace_a = dram_trace([0u8; 16]);
    let trace_b = dram_trace([1u8; 16]);
    let differing = trace_a
        .iter()
        .zip(trace_b.iter())
        .filter(|(a, b)| a != b)
        .count();

    let mut soc = Soc::tegra3_small();
    let mon = BusMonitor::attach_new(&mut soc.bus);
    let base = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
    let mut store = CachedSocStore::new(&mut soc, base);
    let aes = TrackedAes::init(&mut store, &[0u8; 16]).expect("16-byte key");
    let mut block = [0u8; 16];
    aes.encrypt_block(&mut store, &mut block);
    let onsoc_observed = mon.len();

    print_table(
        "Side channel: Te-table lookup indices observable by a bus monitor",
        &["AES state placement", "Lookups observed", "Key-dependent?"],
        &[
            vec![
                "DRAM (generic AES)".into(),
                trace_a.len().to_string(),
                format!("{differing}/{} indices differ across keys", trace_a.len()),
            ],
            vec![
                "On-SoC (AES On SoC)".into(),
                onsoc_observed.to_string(),
                "nothing to correlate".into(),
            ],
        ],
    );
    println!(
        "\nFirst 16 observed indices, key A: {:?}",
        &trace_a[..16.min(trace_a.len())]
    );
    println!(
        "First 16 observed indices, key B: {:?}",
        &trace_b[..16.min(trace_b.len())]
    );
    println!("\nTromer-Osvik-Shamir-style key recovery needs exactly these traces;\nprior register-only schemes (AESSE/TRESOR/Simmons) leave the tables\nin DRAM and remain exposed (§9.1). AES On SoC does not.");
}
