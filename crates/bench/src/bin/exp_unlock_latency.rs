//! Unlock-latency sweep for the fault-cluster readahead engine and the
//! background decrypt sweeper.
//!
//! Two questions, both over a 256-page (1 MiB) sensitive working set on
//! the Tegra 3 model with the parallel crypt engine at 4 workers:
//!
//! * **Part A — time to fully decrypted.** After unlock, how long until
//!   the whole working set is plaintext again? Fault-driven paging
//!   (every page first-touched, one fault each) vs the background
//!   sweeper draining the residual encrypted set from the scheduler
//!   tick.
//! * **Part B — per-first-touch latency.** What does the app observe on
//!   each first touch as the readahead cluster size sweeps 1→16? A
//!   cluster of `c` turns `c` fault round-trips into one batched
//!   decrypt, so the *mean* first-touch cost drops even though the
//!   faulting touch itself gets slightly more expensive.
//!
//! Results print as tables and are written to
//! `BENCH_unlock_latency.json`. With `--enforce`, the run fails unless
//! the sweeper beats fault-driven full decryption by ≥3× and the mean
//! first-touch cost at cluster 8 beats cluster 1 by ≥2× — the headline
//! wins of the unlock-latency engine.

use sentry_bench::print_table;
use sentry_core::config::{ParallelConfig, ReadaheadConfig};
use sentry_core::{Sentry, SentryConfig};
use sentry_kernel::Kernel;
use sentry_soc::Soc;

const SET_PAGES: usize = 256;
const PAGE: usize = 4096;
const WORKERS: usize = 4;
const CLUSTER_SWEEP: [usize; 5] = [1, 2, 4, 8, 16];
const SWEEP_BUDGET: usize = 32;

/// Part A result for one full-decryption strategy.
struct DrainPoint {
    label: &'static str,
    total_ns: u64,
    faults: u64,
    sweep_runs: u64,
}

/// Part B result for one cluster size.
struct TouchPoint {
    cluster: usize,
    faults: u64,
    mean_ns: f64,
    p99_ns: u64,
    max_ns: u64,
    speedup: f64,
}

fn unlocked_sentry(readahead: Option<ReadaheadConfig>) -> (Sentry, u32) {
    let mut config = SentryConfig::tegra3_locked_l2(2).with_parallel(ParallelConfig {
        workers: WORKERS,
        min_batch_pages: 2,
    });
    if let Some(ra) = readahead {
        config = config.with_readahead(ra);
    }
    let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).expect("sentry builds");
    let pid = s.kernel.spawn("app");
    s.mark_sensitive(pid).expect("pid exists");
    let data: Vec<u8> = (0..239u8).cycle().take(SET_PAGES * PAGE).collect();
    s.write(pid, 0, &data).expect("working set fits");
    s.on_lock().expect("lock succeeds");
    s.on_unlock().expect("unlock succeeds");
    s.reset_ondemand_stats();
    assert_eq!(s.residual_encrypted_pages(), SET_PAGES);
    (s, pid)
}

/// Part A: simulated time from unlock until zero residual encrypted
/// pages, fault-driven.
fn drain_by_faults() -> DrainPoint {
    let (mut s, pid) = unlocked_sentry(None);
    let t0 = s.kernel.soc.clock.now_ns();
    let all: Vec<u64> = (0..SET_PAGES as u64).collect();
    s.touch_pages(pid, &all).expect("touch succeeds");
    assert_eq!(s.residual_encrypted_pages(), 0);
    DrainPoint {
        label: "fault-driven",
        total_ns: s.kernel.soc.clock.now_ns() - t0,
        faults: s.stats.ondemand_faults,
        sweep_runs: 0,
    }
}

/// Part A: simulated time until zero residual, sweeper-driven from the
/// scheduler tick (the app never touches a page).
fn drain_by_sweeper() -> DrainPoint {
    let (mut s, _pid) = unlocked_sentry(Some(
        ReadaheadConfig::with_cluster(8).sweep_budget(SWEEP_BUDGET),
    ));
    let t0 = s.kernel.soc.clock.now_ns();
    while s.residual_encrypted_pages() > 0 {
        s.scheduler_tick().expect("tick succeeds");
    }
    DrainPoint {
        label: "sweeper",
        total_ns: s.kernel.soc.clock.now_ns() - t0,
        faults: s.stats.ondemand_faults,
        sweep_runs: s.stats.sweep_runs,
    }
}

/// Part B: first-touch every page in order under the given cluster size
/// and record what each touch cost the app in simulated time.
fn touch_sweep(cluster: usize) -> TouchPoint {
    let readahead = (cluster > 1).then(|| ReadaheadConfig::with_cluster(cluster).sweep_budget(0));
    let (mut s, pid) = unlocked_sentry(readahead);
    let mut costs: Vec<u64> = Vec::with_capacity(SET_PAGES);
    for vpn in 0..SET_PAGES as u64 {
        let t0 = s.kernel.soc.clock.now_ns();
        s.touch_pages(pid, &[vpn]).expect("touch succeeds");
        costs.push(s.kernel.soc.clock.now_ns() - t0);
    }
    assert_eq!(s.residual_encrypted_pages(), 0);
    let total: u64 = costs.iter().sum();
    costs.sort_unstable();
    TouchPoint {
        cluster,
        faults: s.stats.ondemand_faults,
        mean_ns: total as f64 / costs.len() as f64,
        p99_ns: costs[costs.len() * 99 / 100],
        max_ns: *costs.last().expect("non-empty"),
        speedup: 0.0,
    }
}

fn emit_json(drains: &[DrainPoint], touches: &[TouchPoint], drain_speedup: f64) -> String {
    // Hand-rolled JSON: fixed schema, numbers only — no serde needed.
    let drain_entries: Vec<String> = drains
        .iter()
        .map(|d| {
            format!(
                "    {{\"strategy\": \"{}\", \"total_ns\": {}, \"faults\": {}, \
                 \"sweep_runs\": {}}}",
                d.label, d.total_ns, d.faults, d.sweep_runs
            )
        })
        .collect();
    let touch_entries: Vec<String> = touches
        .iter()
        .map(|t| {
            format!(
                "    {{\"cluster_pages\": {}, \"faults\": {}, \"mean_touch_ns\": {:.0}, \
                 \"p99_touch_ns\": {}, \"max_touch_ns\": {}, \"mean_speedup\": {:.2}}}",
                t.cluster, t.faults, t.mean_ns, t.p99_ns, t.max_ns, t.speedup
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"unlock_latency\",\n  \"set_pages\": {SET_PAGES},\n  \
         \"page_bytes\": {PAGE},\n  \"workers\": {WORKERS},\n  \
         \"sweep_budget_pages\": {SWEEP_BUDGET},\n  \
         \"time_to_decrypted\": [\n{}\n  ],\n  \"drain_speedup\": {:.2},\n  \
         \"first_touch\": [\n{}\n  ]\n}}\n",
        drain_entries.join(",\n"),
        drain_speedup,
        touch_entries.join(",\n")
    )
}

fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce");

    // Part A.
    let drains = [drain_by_faults(), drain_by_sweeper()];
    let drain_speedup = drains[0].total_ns as f64 / drains[1].total_ns as f64;
    let rows: Vec<Vec<String>> = drains
        .iter()
        .map(|d| {
            vec![
                d.label.to_string(),
                format!("{:.3}", d.total_ns as f64 * 1e-6),
                d.faults.to_string(),
                d.sweep_runs.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Time to fully decrypted: {SET_PAGES}-page set ({WORKERS} workers)"),
        &["Strategy", "Sim ms", "Faults", "Sweeps"],
        &rows,
    );
    println!("sweeper speedup over fault-driven: {drain_speedup:.2}x\n");

    // Part B.
    let mut touches: Vec<TouchPoint> = CLUSTER_SWEEP.iter().map(|&c| touch_sweep(c)).collect();
    let base_mean = touches[0].mean_ns;
    for t in &mut touches {
        t.speedup = base_mean / t.mean_ns;
    }
    let rows: Vec<Vec<String>> = touches
        .iter()
        .map(|t| {
            vec![
                t.cluster.to_string(),
                t.faults.to_string(),
                format!("{:.1}", t.mean_ns * 1e-3),
                format!("{:.1}", t.p99_ns as f64 * 1e-3),
                format!("{:.1}", t.max_ns as f64 * 1e-3),
                format!("{:.2}x", t.speedup),
            ]
        })
        .collect();
    print_table(
        &format!("First-touch latency vs readahead cluster ({SET_PAGES} pages)"),
        &[
            "Cluster",
            "Faults",
            "Mean us",
            "p99 us",
            "Max us",
            "Mean speedup",
        ],
        &rows,
    );

    let json = emit_json(&drains, &touches, drain_speedup);
    std::fs::write("BENCH_unlock_latency.json", &json).expect("write BENCH_unlock_latency.json");
    println!("\nwrote BENCH_unlock_latency.json");

    if enforce {
        let cluster8 = touches
            .iter()
            .find(|t| t.cluster == 8)
            .expect("cluster 8 is in the sweep");
        let mut failed = false;
        if drain_speedup < 3.0 {
            eprintln!(
                "FAIL: sweeper drains the set only {drain_speedup:.2}x faster than \
                 fault-driven paging (gate: >= 3x)"
            );
            failed = true;
        }
        if cluster8.speedup < 2.0 {
            eprintln!(
                "FAIL: cluster 8 mean first-touch speedup {:.2}x (gate: >= 2x)",
                cluster8.speedup
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("enforce: all unlock-latency gates met");
    }
}
