//! Read-overlap experiment: the async crypt pipeline on the filebench
//! read path.
//!
//! Three cells:
//!
//! 1. **Latency** — the filebench read personalities (seqread and
//!    randread, direct I/O) run over CTR-mode dm-crypt twice: inline
//!    (the paper's read path — wait for the device, then decrypt on the
//!    CPU) and overlapped (keystream precomputed into the on-SoC cache
//!    while the device seeks and the accelerator queue crunches miss
//!    runs, CPU finishing cache hits with a XOR). The overlapped mean
//!    per-op latency must be at least `MIN_SPEEDUP`× lower, with a
//!    byte-identical FNV digest.
//! 2. **Discipline** — keystream is single-use (hits never exceed
//!    precomputed sectors, stale-epoch takes are denied, never served)
//!    and the device-lock hook zeroizes every resident sector.
//! 3. **Cold boot** — a power cut at the `accel.dma` failpoint mid
//!    operation freezes the DRAM image; an attacker scan must find
//!    neither keystream nor plaintext anywhere in DRAM or iRAM (the
//!    bounce window holds only staged ciphertext).
//!
//! Results print as tables and land in `BENCH_read_overlap.json`. With
//! `--enforce`, a speedup below `MIN_SPEEDUP`, a digest mismatch, any
//! keystream-discipline violation, or any cold-boot hit fails the run.

use sentry_attacks::coldboot::{dump_dram, dump_iram, search};
use sentry_bench::print_table;
use sentry_core::config::{PageCipherMode, PipelineConfig};
use sentry_crypto::pipeline::ctr_keystream;
use sentry_crypto::BitslicedAes;
use sentry_kernel::block::{RamDisk, SECTOR_SIZE};
use sentry_kernel::crypto_api::{CryptoApi, GenericAesEngine};
use sentry_kernel::dmcrypt::DmCrypt;
use sentry_soc::accel::AccelPowerState;
use sentry_soc::addr::IRAM_BASE;
use sentry_soc::{FaultAction, FaultPlan, Soc};
use sentry_workloads::filebench::{run_read_overlap, FilebenchSpec, ReadOverlapResult, Workload};

/// Enforced floor on the inline/overlapped mean-latency ratio.
const MIN_SPEEDUP: f64 = 1.5;

/// Volume key for the cold-boot cell (the scan derives the expected
/// keystream from it).
const KEY: [u8; 16] = [0xD3; 16];

/// One latency comparison: a workload run inline and overlapped.
struct LatencyCell {
    name: &'static str,
    inline: ReadOverlapResult,
    overlapped: ReadOverlapResult,
}

impl LatencyCell {
    fn speedup(&self) -> f64 {
        self.inline.mean_read_ns / self.overlapped.mean_read_ns
    }

    fn identical(&self) -> bool {
        self.inline.digest == self.overlapped.digest
    }
}

fn latency_cell(name: &'static str, workload: Workload) -> LatencyCell {
    let spec = FilebenchSpec::new(workload, true);
    let inline = run_read_overlap(&spec, None).expect("inline run");
    let overlapped =
        run_read_overlap(&spec, Some(PipelineConfig::enabled())).expect("overlapped run");
    LatencyCell {
        name,
        inline,
        overlapped,
    }
}

/// What the cold-boot cell found in the frozen image.
struct ColdBootCell {
    /// The power cut actually fired mid-DMA (the cell is vacuous
    /// otherwise).
    killed: bool,
    /// 32-byte keystream windows found anywhere in DRAM or iRAM.
    keystream_hits: usize,
    /// Plaintext sentinel windows found anywhere in DRAM or iRAM.
    plaintext_hits: usize,
}

/// Kill the power at the `accel.dma` failpoint mid read and scan the
/// frozen image the way a cold-boot attacker would.
fn cold_boot_cell() -> ColdBootCell {
    let mut api = CryptoApi::new();
    api.register(Box::new(GenericAesEngine::new(0)));
    api.preferred_mut()
        .expect("engine")
        .set_mode(PageCipherMode::Ctr)
        .expect("CTR mode");
    let mut soc = Soc::tegra3_small();
    soc.accel.state = AccelPowerState::Awake;
    let dm = DmCrypt::with_preferred_cipher();
    dm.enable_pipeline(PipelineConfig::enabled());
    dm.set_key(&mut api, &mut soc, &KEY).expect("set key");
    let mut disk = RamDisk::new(2048);

    let sentinel = b"SENTRY-READ-OVERLAP-PLAINTEXT-SENTINEL..";
    let data: Vec<u8> = sentinel
        .iter()
        .copied()
        .cycle()
        .take(32 * SECTOR_SIZE)
        .collect();
    dm.write(&mut api, &mut soc, &mut disk, 0, &data)
        .expect("write");
    dm.write(&mut api, &mut soc, &mut disk, 512, &data)
        .expect("write far range");

    // Prime the pipeline on one range, then kill the power at the DMA
    // staging of a cold range (guaranteed miss run → guaranteed
    // `accel.dma` hit).
    let mut buf = vec![0u8; 16 * SECTOR_SIZE];
    dm.read(&mut api, &mut soc, &mut disk, 0, &mut buf)
        .expect("priming read");
    soc.failpoints.arm(FaultPlan::at_site(
        "accel.dma",
        0,
        FaultAction::PowerCut { decay: None },
    ));
    let killed = dm
        .read(&mut api, &mut soc, &mut disk, 512, &mut buf)
        .is_err();
    soc.failpoints.disarm();

    // Attacker scan of the frozen image: every byte of DRAM plus iRAM.
    let mut dump = dump_dram(&mut soc);
    dump.push((IRAM_BASE, dump_iram(&soc)));
    let bits = BitslicedAes::new(&KEY).expect("key schedule");
    let mut keystream_hits = 0;
    for sector in 0..1024u64 {
        let ks = ctr_keystream(&bits, &DmCrypt::sector_iv(sector), 64);
        keystream_hits += search(&dump, &ks[..32]).len();
    }
    let plaintext_hits = search(&dump, &sentinel[..32]).len();
    ColdBootCell {
        killed,
        keystream_hits,
        plaintext_hits,
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce");

    let cells = [
        latency_cell("seqread/direct", Workload::SeqRead),
        latency_cell("randread/direct", Workload::RandRead),
    ];

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.1}", c.inline.mean_read_ns / 1000.0),
                format!("{:.1}", c.overlapped.mean_read_ns / 1000.0),
                format!("{:.2}x", c.speedup()),
                if c.identical() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Mean read latency — inline vs overlapped (CTR dm-crypt)",
        &[
            "Workload",
            "Inline (us)",
            "Overlapped (us)",
            "Speedup",
            "Identical",
        ],
        &rows,
    );

    let disc_rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            let (stats, ks) = c.overlapped.pipeline.expect("pipeline stats");
            vec![
                c.name.to_string(),
                ks.precomputed.to_string(),
                ks.hits.to_string(),
                ks.stale_epoch_denied.to_string(),
                stats.routed_extents.to_string(),
                stats.fallbacks().to_string(),
                c.overlapped.keystream_resident_after_lock.to_string(),
            ]
        })
        .collect();
    print_table(
        "Keystream discipline",
        &[
            "Workload",
            "Precomputed",
            "Hits",
            "Stale denied",
            "Routed extents",
            "Fallbacks",
            "Resident after lock",
        ],
        &disc_rows,
    );

    let cold = cold_boot_cell();
    print_table(
        "Cold-boot scan after power cut at accel.dma",
        &["Killed mid-DMA", "Keystream hits", "Plaintext hits"],
        &[vec![
            cold.killed.to_string(),
            cold.keystream_hits.to_string(),
            cold.plaintext_hits.to_string(),
        ]],
    );

    // Hand-rolled JSON: fixed schema, numbers and plain names only.
    let cell_json: Vec<String> = cells
        .iter()
        .map(|c| {
            let (stats, ks) = c.overlapped.pipeline.expect("pipeline stats");
            format!(
                "    {{\"workload\": \"{}\", \"ops\": {}, \"bytes\": {}, \
                 \"inline_mean_ns\": {:.1}, \"overlapped_mean_ns\": {:.1}, \
                 \"speedup\": {:.3}, \"identical\": {}, \
                 \"keystream_precomputed\": {}, \"keystream_hits\": {}, \
                 \"keystream_stale_denied\": {}, \"routed_extents\": {}, \
                 \"routed_sectors\": {}, \"inline_sectors\": {}, \
                 \"fallbacks\": {}, \"accel_stall_ns\": {}, \
                 \"resident_after_lock\": {}}}",
                c.name,
                c.overlapped.ops,
                c.overlapped.bytes,
                c.inline.mean_read_ns,
                c.overlapped.mean_read_ns,
                c.speedup(),
                c.identical(),
                ks.precomputed,
                ks.hits,
                ks.stale_epoch_denied,
                stats.routed_extents,
                stats.routed_sectors,
                stats.inline_sectors,
                stats.fallbacks(),
                stats.accel_stall_ns,
                c.overlapped.keystream_resident_after_lock,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"read_overlap\",\n  \"min_speedup\": {MIN_SPEEDUP:.1},\n  \
         \"cells\": [\n{}\n  ],\n  \"cold_boot\": {{\"killed_mid_dma\": {}, \
         \"keystream_hits\": {}, \"plaintext_hits\": {}}}\n}}\n",
        cell_json.join(",\n"),
        cold.killed,
        cold.keystream_hits,
        cold.plaintext_hits,
    );
    std::fs::write("BENCH_read_overlap.json", &json).expect("write BENCH_read_overlap.json");
    println!("\nwrote BENCH_read_overlap.json");

    if enforce {
        let mut failed = false;
        for c in &cells {
            if c.speedup() < MIN_SPEEDUP {
                eprintln!(
                    "FAIL [{}]: overlapped speedup {:.2}x below {MIN_SPEEDUP:.1}x",
                    c.name,
                    c.speedup()
                );
                failed = true;
            }
            if !c.identical() {
                eprintln!(
                    "FAIL [{}]: overlapped read returned different bytes \
                     (digest {:#x} vs {:#x})",
                    c.name, c.overlapped.digest, c.inline.digest
                );
                failed = true;
            }
            let (_, ks) = c.overlapped.pipeline.expect("pipeline stats");
            if ks.hits > ks.precomputed {
                eprintln!(
                    "FAIL [{}]: {} keystream hits exceed {} precomputed sectors — \
                     a buffer was served twice",
                    c.name, ks.hits, ks.precomputed
                );
                failed = true;
            }
            if c.overlapped.keystream_resident_after_lock != 0 {
                eprintln!(
                    "FAIL [{}]: {} keystream sectors survived the device lock",
                    c.name, c.overlapped.keystream_resident_after_lock
                );
                failed = true;
            }
        }
        if !cold.killed {
            eprintln!("FAIL: the accel.dma power cut never fired — cold-boot cell is vacuous");
            failed = true;
        }
        if cold.keystream_hits > 0 || cold.plaintext_hits > 0 {
            eprintln!(
                "FAIL: cold-boot scan found {} keystream and {} plaintext windows",
                cold.keystream_hits, cold.plaintext_hits
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        let worst = cells
            .iter()
            .map(LatencyCell::speedup)
            .fold(f64::INFINITY, f64::min);
        println!(
            "enforce: byte-identical overlap, worst speedup {worst:.2}x >= {MIN_SPEEDUP:.1}x, \
             keystream single-use, zeroized on lock, cold-boot scan clean"
        );
    }
}
