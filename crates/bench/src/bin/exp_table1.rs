//! Table 1: summary of the threat model.

use sentry_attacks::threat_model::{AttackClass, Scope};
use sentry_bench::print_table;

fn main() {
    let rows: Vec<Vec<String>> = AttackClass::all()
        .into_iter()
        .map(|class| match class.scope() {
            Scope::InScope => vec![
                class.name().to_string(),
                "IN SCOPE".into(),
                "implemented: see crates/attacks".into(),
            ],
            Scope::OutOfScope(why) => {
                vec![class.name().to_string(), "out of scope".into(), why.into()]
            }
        })
        .collect();
    print_table(
        "Table 1: summary of the threat model",
        &["Attack class", "Scope", "Rationale / status"],
        &rows,
    );
}
