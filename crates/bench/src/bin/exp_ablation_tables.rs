//! Ablation: the AES table/state trade-off (§6.1).
//!
//! "A faster AES implementation requires more secure storage." The
//! table-driven implementation carries 2.6 KB of access-protected
//! lookup state on the SoC; the tableless reference needs only the
//! S-boxes but pays a large slowdown (AESSE's tableless version was
//! ~100x slower than generic; with tables, 6x).

use sentry_bench::print_table;
use sentry_workloads::aes_table_tradeoff;

fn main() {
    let t = aes_table_tradeoff();
    print_table(
        "Ablation: table-driven vs tableless AES (host-measured)",
        &["Variant", "Access-protected state (B)", "Relative speed"],
        &[
            vec![
                "T-table (ours / OpenSSL-style)".into(),
                t.table_state_bytes.to_string(),
                "1.0x".into(),
            ],
            vec![
                "Tableless reference (spec steps)".into(),
                t.tableless_state_bytes.to_string(),
                format!("{:.1}x slower", t.tableless_slowdown),
            ],
        ],
    );
    println!(
        "\nBuying {:.1}x speed costs {} extra on-SoC bytes — cheap against a\n128 KB way, decisive for register-only schemes like AESSE/TRESOR,\nwhich is why they cannot protect the access-pattern state (§9.1).",
        t.tableless_slowdown,
        t.table_state_bytes - t.tableless_state_bytes
    );
}
