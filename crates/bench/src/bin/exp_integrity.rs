//! Integrity-plane experiment: detection coverage and MAC overhead.
//!
//! Two halves:
//!
//! 1. **Detection coverage** — the [`sentry_attacks::tamper`] matrix
//!    (bit flips, frame splices, stale-epoch replays, planted on every
//!    decrypt path, plus the kill-then-tamper recovery cell) must reach
//!    100% detection with zero silent corruptions on both the
//!    sequential and parallel crypt engines.
//! 2. **MAC overhead** — the same lock → unlock → full-sweep workload
//!    is timed on the simulated clock with the integrity plane on and
//!    off. Tagging and verify-on-decrypt ride the already-streamed
//!    page bytes, so the unlock sweep must cost at most 15% more than
//!    confidentiality-only encrypted DRAM.
//!
//! Results print as tables and land in `BENCH_integrity.json`. With
//! `--enforce`, any missed detection, any silent corruption, or an
//! unlock-sweep overhead above 15% fails the run.

use sentry_attacks::faultmatrix::Scenario;
use sentry_attacks::tamper::{run_tamper_matrix, TamperOutcome};
use sentry_bench::print_table;
use sentry_core::config::ReadaheadConfig;
use sentry_core::{Sentry, SentryConfig};
use sentry_kernel::Kernel;
use sentry_soc::{Platform, Soc, SocConfig, PAGE_SIZE};

/// Pages in the overhead workload: enough to amortise per-transition
/// fixed costs so the measured ratio reflects per-page work.
const SWEEP_PAGES: u64 = 48;

/// Enforced ceiling on the unlock-sweep slowdown from MAC verification.
const MAX_UNLOCK_OVERHEAD_PCT: f64 = 15.0;

/// One lock → unlock → drain run on the simulated clock.
struct SweepCost {
    lock_ns: u64,
    unlock_ns: u64,
}

fn sweep_config() -> SentryConfig {
    SentryConfig::tegra3_locked_l2(2)
        .with_slot_limit(4)
        .with_readahead(ReadaheadConfig::with_cluster(4).sweep_budget(8))
}

fn measure_sweep(config: SentryConfig) -> SweepCost {
    let soc = Soc::new(
        SocConfig::new(Platform::Tegra3)
            .with_dram_size(64 << 20)
            .with_seed(0x0C0C),
    );
    let kernel = Kernel::new(soc);
    let mut s = Sentry::new(kernel, config).expect("construct sentry");
    let pid = s.kernel.spawn("sweep-bench");
    s.mark_sensitive(pid).expect("mark sensitive");
    for vpn in 0..SWEEP_PAGES {
        let page = vec![(vpn as u8).wrapping_mul(0x3B) ^ 0x5A; PAGE_SIZE as usize];
        s.write(pid, vpn * PAGE_SIZE, &page).expect("populate page");
    }

    let t0 = s.kernel.soc.clock.now_ns();
    s.on_lock().expect("lock");
    let t1 = s.kernel.soc.clock.now_ns();

    // The unlock sweep: the eager unlock batch plus the background
    // sweeper draining every remaining encrypted page.
    s.on_unlock().expect("unlock");
    loop {
        let report = s.scheduler_tick().expect("sweep tick");
        if report.residual_pages == 0 {
            break;
        }
    }
    let t2 = s.kernel.soc.clock.now_ns();

    SweepCost {
        lock_ns: t1 - t0,
        unlock_ns: t2 - t1,
    }
}

fn overhead_pct(on: u64, off: u64) -> f64 {
    if off == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        (on as f64 - off as f64) / off as f64 * 100.0
    }
}

fn emit_json(
    matrices: &[TamperOutcome],
    on: &SweepCost,
    off: &SweepCost,
    lock_pct: f64,
    unlock_pct: f64,
) -> String {
    // Hand-rolled JSON: fixed schema, numbers and plain names only.
    let detection: Vec<String> = matrices
        .iter()
        .map(|m| {
            format!(
                "    {{\"scenario\": \"{}\", \"cells\": {}, \"detected\": {}, \
                 \"silent_corruptions\": {}, \"detection_rate\": {:.3}, \"clean\": {}}}",
                m.scenario,
                m.cells.len(),
                m.cells.iter().filter(|c| c.detected).count(),
                m.silent_corruptions(),
                m.detection_rate(),
                m.clean()
            )
        })
        .collect();
    format!(
        "{{\n  \"experiment\": \"integrity\",\n  \"detection\": [\n{}\n  ],\n  \
         \"overhead\": {{\"pages\": {}, \"lock_ns_off\": {}, \"lock_ns_on\": {}, \
         \"unlock_ns_off\": {}, \"unlock_ns_on\": {}, \"lock_overhead_pct\": {:.2}, \
         \"unlock_overhead_pct\": {:.2}, \"max_unlock_overhead_pct\": {:.1}}}\n}}\n",
        detection.join(",\n"),
        SWEEP_PAGES,
        off.lock_ns,
        on.lock_ns,
        off.unlock_ns,
        on.unlock_ns,
        lock_pct,
        unlock_pct,
        MAX_UNLOCK_OVERHEAD_PCT,
    )
}

fn main() {
    let enforce = std::env::args().any(|a| a == "--enforce");

    // Half 1: detection coverage on both crypt engines.
    let scenarios = [Scenario::tegra3(0x7A3B), Scenario::tegra3_parallel(0x7A3C)];
    let matrices: Vec<TamperOutcome> = scenarios
        .iter()
        .map(|scn| run_tamper_matrix(scn).expect("tamper matrix completes"))
        .collect();

    for m in &matrices {
        let rows: Vec<Vec<String>> = m
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.path.name().to_string(),
                    c.vector.name().to_string(),
                    if c.detected { "yes" } else { "NO" }.to_string(),
                    c.quarantined.to_string(),
                    c.silent_corruptions.to_string(),
                    if c.survivors_intact { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Tamper detection — {}", m.scenario),
            &[
                "Decrypt path",
                "Vector",
                "Detected",
                "Quarantined",
                "Silent",
                "Survivors",
            ],
            &rows,
        );
    }

    // Half 2: MAC overhead of the lock transition and the unlock sweep.
    let on = measure_sweep(sweep_config());
    let off = measure_sweep(sweep_config().without_integrity());
    let lock_pct = overhead_pct(on.lock_ns, off.lock_ns);
    let unlock_pct = overhead_pct(on.unlock_ns, off.unlock_ns);
    print_table(
        &format!("MAC overhead ({SWEEP_PAGES}-page lock/unlock sweep)"),
        &[
            "Transition",
            "Integrity off (ns)",
            "Integrity on (ns)",
            "Overhead",
        ],
        &[
            vec![
                "lock (encrypt+tag)".to_string(),
                off.lock_ns.to_string(),
                on.lock_ns.to_string(),
                format!("{lock_pct:.2}%"),
            ],
            vec![
                "unlock sweep (verify+decrypt)".to_string(),
                off.unlock_ns.to_string(),
                on.unlock_ns.to_string(),
                format!("{unlock_pct:.2}%"),
            ],
        ],
    );

    let json = emit_json(&matrices, &on, &off, lock_pct, unlock_pct);
    std::fs::write("BENCH_integrity.json", &json).expect("write BENCH_integrity.json");
    println!("\nwrote BENCH_integrity.json");

    if enforce {
        let mut failed = false;
        for m in &matrices {
            if !m.all_detected() {
                let missed = m.cells.iter().filter(|c| !c.detected).count();
                eprintln!(
                    "FAIL [{}]: {missed} of {} tamper cells went undetected",
                    m.scenario,
                    m.cells.len()
                );
                failed = true;
            }
            if m.silent_corruptions() > 0 {
                eprintln!(
                    "FAIL [{}]: {} reads returned wrong bytes without an error",
                    m.scenario,
                    m.silent_corruptions()
                );
                failed = true;
            }
            if !m.clean() {
                eprintln!(
                    "FAIL [{}]: matrix not clean (missed quarantine or survivor damage)",
                    m.scenario
                );
                failed = true;
            }
        }
        if unlock_pct > MAX_UNLOCK_OVERHEAD_PCT {
            eprintln!(
                "FAIL: unlock-sweep MAC overhead {unlock_pct:.2}% exceeds \
                 {MAX_UNLOCK_OVERHEAD_PCT:.1}%"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("enforce: 100% tamper detection, unlock overhead {unlock_pct:.2}% <= {MAX_UNLOCK_OVERHEAD_PCT:.1}%");
    }
}
