//! Criterion microbenchmarks of the AES implementations (host
//! wall-clock performance of the library itself, complementing the
//! simulated-time results of `exp_fig11`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentry_crypto::modes::{cbc_decrypt, cbc_encrypt};
use sentry_crypto::{Aes, AesRef, AesStateLayout, KeySize, TrackedAes, VecStore};
use std::hint::black_box;

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes_block");
    group.sample_size(20);
    let key = [0x42u8; 16];
    let fast = Aes::new(&key).unwrap();
    let reference = AesRef::new(&key).unwrap();
    group.bench_function("table_driven", |b| {
        let mut block = [7u8; 16];
        b.iter(|| {
            fast.encrypt_block(black_box(&mut block));
        });
    });
    group.bench_function("reference_spec", |b| {
        let mut block = [7u8; 16];
        b.iter(|| {
            reference.encrypt_block(black_box(&mut block));
        });
    });
    group.bench_function("tracked_vecstore", |b| {
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut block = [7u8; 16];
        b.iter(|| {
            tracked.encrypt_block(&mut store, black_box(&mut block));
        });
    });
    group.finish();
}

fn bench_cbc_pages(c: &mut Criterion) {
    let mut group = c.benchmark_group("aes_cbc_4k_page");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(4096));
    let aes = Aes::new(&[1u8; 32]).unwrap();
    let iv = [0u8; 16];
    for keysize in [16usize, 24, 32] {
        let aes = Aes::new(&vec![1u8; keysize]).unwrap();
        group.bench_with_input(
            BenchmarkId::new("encrypt", keysize * 8),
            &keysize,
            |b, _| {
                let mut page = vec![0xAAu8; 4096];
                b.iter(|| cbc_encrypt(&aes, &iv, black_box(&mut page)));
            },
        );
    }
    group.bench_function("decrypt_aes256", |b| {
        let mut page = vec![0xAAu8; 4096];
        b.iter(|| cbc_decrypt(&aes, &iv, black_box(&mut page)));
    });
    group.finish();
}

fn bench_key_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_schedule");
    group.sample_size(30);
    for ks in KeySize::all() {
        let key = vec![9u8; ks.key_len()];
        group.bench_with_input(
            BenchmarkId::new("expand", ks.to_string()),
            &key,
            |b, key| {
                b.iter(|| Aes::new(black_box(key)).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_block, bench_cbc_pages, bench_key_schedule);
criterion_main!(benches);
