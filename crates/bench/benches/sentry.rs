//! Criterion benchmarks of Sentry's end-to-end operations: the
//! lock/unlock cycle and background paging. These measure the host cost
//! of running the full machinery (useful for keeping the simulator
//! usable); the *simulated* costs are what the exp_* binaries report.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sentry_core::{Sentry, SentryConfig};
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::Soc;
use std::hint::black_box;

const APP_PAGES: u64 = 64; // 256 KB app

fn sentry_with_app() -> (Sentry, u32) {
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2)).unwrap();
    let pid = sentry.kernel.spawn("bench-app");
    sentry.mark_sensitive(pid).unwrap();
    let data = vec![0x77u8; PAGE_SIZE as usize];
    for vpn in 0..APP_PAGES {
        sentry.write(pid, vpn * PAGE_SIZE, &data).unwrap();
    }
    (sentry, pid)
}

fn bench_lock_unlock(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifecycle");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(APP_PAGES * PAGE_SIZE));
    group.bench_function("lock_unlock_cycle_256k_app", |b| {
        b.iter_with_setup(sentry_with_app, |(mut sentry, _pid)| {
            sentry.on_lock().unwrap();
            sentry.on_unlock().unwrap();
            black_box(sentry.stats);
        });
    });
    group.finish();
}

fn bench_background_paging(c: &mut Criterion) {
    let mut group = c.benchmark_group("background_paging");
    group.sample_size(10);
    group.bench_function("fault_decrypt_page_in", |b| {
        b.iter_with_setup(
            || {
                let (mut sentry, pid) = sentry_with_app();
                sentry.on_lock().unwrap();
                (sentry, pid)
            },
            |(mut sentry, pid)| {
                let mut buf = [0u8; 64];
                for vpn in 0..16u64 {
                    sentry.read(pid, vpn * PAGE_SIZE, &mut buf).unwrap();
                }
                black_box(sentry.pager.stats);
            },
        );
    });
    group.finish();
}

criterion_group!(benches, bench_lock_unlock, bench_background_paging);
criterion_main!(benches);
