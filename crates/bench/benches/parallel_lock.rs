//! Host-side benchmarks of the parallel page-crypt engine: a 256-page
//! (1 MiB) lock-sized batch, sequential versus fanned out. The
//! acceptance bar for the engine is ≥2× at 4 workers on this batch —
//! visible here on hosts with ≥4 real cores, and always visible in the
//! simulated-time domain (`exp_lock_scaling` reports both, and the
//! lifecycle test `parallel_lock_is_faster_in_simulated_time` asserts
//! the simulated bar).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentry_crypto::parallel::{crypt_batch, Direction, PageJob};
use sentry_crypto::{Aes, PageCipherMode};

const BATCH_PAGES: usize = 256;
const PAGE: usize = 4096;

fn mk_batch() -> Vec<Vec<u8>> {
    (0..BATCH_PAGES)
        .map(|i| (0..PAGE).map(|j| (i * 31 + j) as u8).collect())
        .collect()
}

fn bench_crypt_batch(c: &mut Criterion) {
    let aes = Aes::new(&[0x6Bu8; 32]).unwrap();
    let mut group = c.benchmark_group("parallel_lock");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((BATCH_PAGES * PAGE) as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("encrypt_256_pages", workers),
            &workers,
            |b, &workers| {
                b.iter_with_setup(mk_batch, |mut pages| {
                    let mut jobs: Vec<PageJob<'_>> = pages
                        .iter_mut()
                        .enumerate()
                        .map(|(i, p)| PageJob {
                            iv: [i as u8; 16],
                            data: p.as_mut_slice(),
                        })
                        .collect();
                    crypt_batch(
                        &aes,
                        PageCipherMode::Cbc,
                        Direction::Encrypt,
                        &mut jobs,
                        workers,
                        1,
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crypt_batch);
criterion_main!(benches);
