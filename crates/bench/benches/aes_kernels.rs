//! Criterion benchmarks of the two software AES backends over 4 KiB
//! pages: table-driven scalar vs batched bitsliced, in the three modes
//! the system actually uses. The headline pair is `cbc_dec`: the
//! bitsliced kernel decrypts 16 blocks per call and should win by a wide
//! margin (the `exp_aes_kernels` binary gates on it in CI); `cbc_enc`
//! is serially chained and shows the bitsliced backend's single-block
//! cost instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sentry_crypto::modes::{cbc_decrypt, cbc_encrypt, ctr_xor};
use sentry_crypto::{Aes, BitslicedAes};

const PAGE: usize = 4096;

fn mk_page() -> Vec<u8> {
    (0..PAGE).map(|i| (i * 31) as u8).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let aes = Aes::new(&[0x6Bu8; 32]).unwrap();
    let bits = BitslicedAes::from_schedule(aes.schedule());
    let iv = [7u8; 16];

    let mut group = c.benchmark_group("aes_kernels");
    group.throughput(Throughput::Bytes(PAGE as u64));
    for backend in ["table", "bitsliced"] {
        group.bench_with_input(BenchmarkId::new("cbc_enc", backend), &backend, |b, &be| {
            b.iter_with_setup(mk_page, |mut page| match be {
                "table" => cbc_encrypt(&aes, &iv, &mut page),
                _ => cbc_encrypt(&bits, &iv, &mut page),
            });
        });
        group.bench_with_input(BenchmarkId::new("cbc_dec", backend), &backend, |b, &be| {
            b.iter_with_setup(mk_page, |mut page| match be {
                "table" => cbc_decrypt(&aes, &iv, &mut page),
                _ => cbc_decrypt(&bits, &iv, &mut page),
            });
        });
        group.bench_with_input(BenchmarkId::new("ctr", backend), &backend, |b, &be| {
            b.iter_with_setup(mk_page, |mut page| match be {
                "table" => ctr_xor(&aes, &[1u8; 8], 0, &mut page),
                _ => ctr_xor(&bits, &[1u8; 8], 0, &mut page),
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
