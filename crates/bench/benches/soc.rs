//! Criterion benchmarks of the SoC substrate: cache, DMA, and the
//! way-locking sequences.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sentry_core::config::OnSocBackend;
use sentry_core::onsoc::OnSocStore;
use sentry_soc::addr::DRAM_BASE;
use sentry_soc::Soc;
use std::hint::black_box;

fn bench_cache_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("mem_path");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(4096));

    group.bench_function("cached_page_write", |b| {
        let mut soc = Soc::tegra3_small();
        let page = vec![0x5Au8; 4096];
        let mut addr = DRAM_BASE;
        b.iter(|| {
            soc.mem_write(black_box(addr), &page).unwrap();
            addr = DRAM_BASE + (addr + 4096 - DRAM_BASE) % (16 << 20);
        });
    });

    group.bench_function("cached_page_read_hot", |b| {
        let mut soc = Soc::tegra3_small();
        soc.mem_write(DRAM_BASE, &vec![1u8; 4096]).unwrap();
        let mut buf = vec![0u8; 4096];
        b.iter(|| soc.mem_read(DRAM_BASE, black_box(&mut buf)).unwrap());
    });

    group.bench_function("dma_page_read", |b| {
        let mut soc = Soc::tegra3_small();
        soc.dram.write(DRAM_BASE, &vec![1u8; 4096]);
        b.iter(|| black_box(soc.dma_read(0, DRAM_BASE, 4096).unwrap()));
    });

    group.finish();
}

fn bench_way_locking(c: &mut Criterion) {
    let mut group = c.benchmark_group("way_locking");
    group.sample_size(10);
    group.bench_function("lock_first_way", |b| {
        b.iter(|| {
            let mut soc = Soc::tegra3_small();
            let mut store =
                OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc).unwrap();
            black_box(store.alloc_page(&mut soc).unwrap());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cache_path, bench_way_locking);
criterion_main!(benches);
