//! Fleet-harness correctness: the N=1 fleet is byte- and
//! stats-identical to driving the same device directly with the same
//! event sequence, the merged report is shard-count invariant, and the
//! streaming histogram's percentile math is exact at bucket edges.

use proptest::prelude::*;
use sentry_workloads::fleet::{
    event_stream, run_device, run_fleet, Device, FleetConfig, LatencyHistogram, HISTOGRAM_BUCKETS,
};

fn config(master_seed: u64, events: usize) -> FleetConfig {
    FleetConfig::new(1, 1)
        .with_master_seed(master_seed)
        .with_events_per_device(events)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    /// An N=1 fleet run equals driving the same `Sentry` directly: the
    /// event stream is regenerated from `(master_seed, 0)`, applied
    /// event by event to a hand-built `Device`, and every deterministic
    /// field of the outcome — including the end-state digest over the
    /// device's plaintext pages — must match the fleet's merged report.
    #[test]
    fn n1_fleet_is_identical_to_direct_drive(
        master_seed in any::<u64>(),
        events in 4usize..24,
    ) {
        let cfg = config(master_seed, events);

        // The fleet run.
        let fleet = run_fleet(&cfg);
        prop_assert_eq!(fleet.devices, 1);
        prop_assert_eq!(fleet.device_errors, 0);
        prop_assert_eq!(fleet.shard_panics, 0);

        // The same Sentry, driven directly.
        let stream = event_stream(&cfg, 0);
        prop_assert_eq!(stream.len(), events);
        let mut device = Device::build(&cfg, 0).expect("device build");
        for event in &stream {
            device.apply(event).expect("event apply");
        }
        let direct = device.finish().expect("device finish");

        // Stats-identical.
        prop_assert_eq!(fleet.events, direct.events);
        prop_assert_eq!(fleet.locks, direct.locks);
        prop_assert_eq!(fleet.unlocks, direct.unlocks);
        prop_assert_eq!(&fleet.unlock_hist, &direct.unlock_hist);
        prop_assert_eq!(fleet.power_cuts_fired, direct.power_cuts_fired);
        prop_assert_eq!(fleet.recoveries, direct.recoveries);
        prop_assert_eq!(fleet.tampers_planted, direct.tampers_planted);
        prop_assert_eq!(fleet.tampers_detected, direct.tampers_detected);
        prop_assert_eq!(fleet.quarantined_pages, direct.quarantined_pages);
        prop_assert_eq!(fleet.silent_corruptions, 0);
        prop_assert_eq!(direct.silent_corruptions, 0);
        prop_assert_eq!(fleet.io_bytes, direct.io_bytes);
        prop_assert_eq!(fleet.accel_storms, direct.accel_storms);
        prop_assert_eq!(fleet.flaky_disk_intervals, direct.flaky_disk_intervals);
        prop_assert_eq!(&fleet.health, &direct.health);
        prop_assert_eq!(fleet.sim_busy_ns, direct.sim_ns);
        prop_assert_eq!(fleet.setup_sim_ns, direct.setup_sim_ns);

        // Byte-identical end state.
        prop_assert_eq!(&fleet.digests[..], &[(0u64, direct.digest)][..]);

        // And the standalone-replay entry point is the same function.
        let replay = run_device(&cfg, 0).expect("standalone replay");
        prop_assert_eq!(replay, direct);
    }

    /// The merged fleet report does not depend on the shard count.
    #[test]
    fn report_is_shard_count_invariant(
        master_seed in any::<u64>(),
        shards in 2usize..6,
    ) {
        let base = FleetConfig::new(8, 1)
            .with_master_seed(master_seed)
            .with_events_per_device(10);
        let one = run_fleet(&base);
        let many = run_fleet(&base.clone().with_shards(shards));
        prop_assert_eq!(&one.digests, &many.digests);
        prop_assert_eq!(&one.unlock_hist, &many.unlock_hist);
        prop_assert_eq!(one.events, many.events);
        prop_assert_eq!(one.sim_busy_ns, many.sim_busy_ns);
        prop_assert_eq!(one.recoveries, many.recoveries);
        prop_assert_eq!(one.quarantined_pages, many.quarantined_pages);
        // Degradation accounting (breaker trips, fallback bytes,
        // time-in-degraded per device) is part of the invariant report.
        prop_assert_eq!(&one.health, &many.health);
        prop_assert_eq!(&one.degradation, &many.degradation);
        prop_assert_eq!(one.accel_storms, many.accel_storms);
        prop_assert_eq!(one.flaky_disk_intervals, many.flaky_disk_intervals);
    }

    /// Bucket round trip: every value maps to a bucket whose bounds
    /// contain it, and bucket bounds tile the axis without gaps.
    #[test]
    fn histogram_buckets_contain_their_values(ns in any::<u64>()) {
        let i = LatencyHistogram::bucket_index(ns);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(LatencyHistogram::bucket_lower(i) <= ns);
        prop_assert!(ns <= LatencyHistogram::bucket_upper(i));
    }
}

#[test]
fn bucket_edges_are_exact() {
    // Values below 16 get exact single-value buckets.
    for ns in 0u64..16 {
        let i = LatencyHistogram::bucket_index(ns);
        assert_eq!(LatencyHistogram::bucket_lower(i), ns);
        assert_eq!(LatencyHistogram::bucket_upper(i), ns);
    }
    // The first ranged bucket starts exactly at 16 with width 4.
    let i16 = LatencyHistogram::bucket_index(16);
    assert_eq!(LatencyHistogram::bucket_lower(i16), 16);
    assert_eq!(LatencyHistogram::bucket_upper(i16), 19);
    assert_eq!(LatencyHistogram::bucket_index(19), i16);
    assert_ne!(LatencyHistogram::bucket_index(20), i16);
    // Power-of-two edges open a fresh octave; the value just below
    // belongs to the previous one.
    for o in 5..63u32 {
        let edge = 1u64 << o;
        let below = LatencyHistogram::bucket_index(edge - 1);
        let at = LatencyHistogram::bucket_index(edge);
        assert_eq!(at, below + 1, "octave edge 2^{o}");
        assert_eq!(LatencyHistogram::bucket_lower(at), edge);
        assert_eq!(LatencyHistogram::bucket_upper(below), edge - 1);
    }
    // Buckets tile: each upper bound is the next lower bound minus 1.
    for i in 0..HISTOGRAM_BUCKETS - 1 {
        assert_eq!(
            LatencyHistogram::bucket_upper(i) + 1,
            LatencyHistogram::bucket_lower(i + 1),
            "gap after bucket {i}"
        );
    }
    assert_eq!(
        LatencyHistogram::bucket_upper(HISTOGRAM_BUCKETS - 1),
        u64::MAX
    );
}

#[test]
fn percentiles_at_bucket_edges() {
    // Ten exact-bucket samples: percentiles are exact order statistics.
    let mut h = LatencyHistogram::new();
    for ns in 1..=10u64 {
        h.record(ns);
    }
    assert_eq!(h.count(), 10);
    assert_eq!(h.percentile(0.0), 1); // rank clamps to the minimum
    assert_eq!(h.percentile(0.10), 1);
    assert_eq!(h.percentile(0.50), 5);
    assert_eq!(h.percentile(0.90), 9);
    assert_eq!(h.percentile(1.0), 10);

    // A sample on a ranged-bucket edge reports within its bucket and
    // never past the observed max.
    let mut h = LatencyHistogram::new();
    h.record(16);
    assert_eq!(h.percentile(0.5), 16);
    h.record(19);
    // Both land in [16, 19]; the upper bound is the observed max.
    assert_eq!(h.percentile(1.0), 19);
    assert_eq!(h.percentile(0.25), 19); // same bucket, clamped to bounds

    // An empty histogram reports zeros.
    let h = LatencyHistogram::new();
    assert_eq!(h.percentile(0.99), 0);
    assert_eq!(h.count(), 0);
    assert_eq!(h.max(), 0);
}

#[test]
fn merge_equals_recording_into_one() {
    let mut a = LatencyHistogram::new();
    let mut b = LatencyHistogram::new();
    let mut whole = LatencyHistogram::new();
    for (i, ns) in [3u64, 17, 900, 44_000, 1 << 21, u64::MAX]
        .iter()
        .enumerate()
    {
        if i % 2 == 0 {
            a.record(*ns)
        } else {
            b.record(*ns)
        }
        whole.record(*ns);
    }
    a.merge(&b);
    assert_eq!(a, whole);
    for q in [0.01, 0.25, 0.5, 0.75, 0.99] {
        assert_eq!(a.percentile(q), whole.percentile(q));
    }
}
