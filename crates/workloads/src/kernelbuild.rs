//! The Linux-kernel-compilation experiment (Figure 10).
//!
//! Locking L2 ways shrinks the cache available to everything else; the
//! paper quantifies the system-wide cost by timing `make -j 5` of the
//! Linux kernel with 0–8 ways locked: 14.41 minutes with the full 1 MB
//! cache, 14.53 with one way locked (<1% slower), "gradually slower as
//! more ways are locked".
//!
//! The model is the classic two-component one: a fixed CPU time plus a
//! memory-stall time that grows as the effective cache shrinks. Miss
//! rate follows the square-root rule of thumb (miss ∝ 1/√cache), floored
//! at the L1 capacity that remains even with every L2 way locked. The
//! two calibration points published in the paper pin both constants;
//! the trace-driven test below validates the *qualitative* premise
//! (monotonically growing miss rate) against the actual PL310 model.

use sentry_soc::cache::NUM_WAYS;

/// CPU-bound component of the build, minutes.
const CPU_MINUTES: f64 = 13.0;

/// Memory-stall component at the full 1 MB cache, minutes.
/// `CPU_MINUTES + STALL_AT_FULL = 14.41`, the paper's 0-way time.
const STALL_AT_FULL: f64 = 1.41;

/// Effective floor: L1 caches keep working even with all L2 locked.
const MIN_EFFECTIVE_KB: f64 = 32.0;

/// Full L2 size in KB.
const FULL_KB: f64 = 1024.0;

/// Predicted `make -j 5` duration in minutes with `locked_ways` of the
/// 8 L2 ways locked.
///
/// # Panics
///
/// Panics if `locked_ways > 8`.
#[must_use]
pub fn compile_minutes(locked_ways: usize) -> f64 {
    assert!(locked_ways <= NUM_WAYS, "only 8 ways exist");
    let effective_kb =
        (FULL_KB * (NUM_WAYS - locked_ways) as f64 / NUM_WAYS as f64).max(MIN_EFFECTIVE_KB);
    CPU_MINUTES + STALL_AT_FULL * (FULL_KB / effective_kb).sqrt()
}

/// The full Figure 10 series: minutes for 0..=8 locked ways.
#[must_use]
pub fn figure10_series() -> Vec<(usize, f64)> {
    (0..=NUM_WAYS).map(|w| (w, compile_minutes(w))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::addr::DRAM_BASE;
    use sentry_soc::cache::ALL_WAYS;
    use sentry_soc::rng::DetRng;
    use sentry_soc::Soc;

    #[test]
    fn calibration_points_match_paper() {
        // "It takes 14.53 minutes to compile the Linux kernel with one
        //  locked way versus 14.41 minutes with no locked ways, an
        //  increase of 7.2 seconds (less than 1%)."
        let t0 = compile_minutes(0);
        let t1 = compile_minutes(1);
        assert!((t0 - 14.41).abs() < 0.01, "t0 = {t0}");
        assert!((t1 - 14.53).abs() < 0.12, "t1 = {t1}");
        assert!((t1 - t0) / t0 < 0.01, "one way must cost <1%");
    }

    #[test]
    fn series_is_monotonic_and_gradual() {
        let series = figure10_series();
        for pair in series.windows(2) {
            assert!(pair[1].1 > pair[0].1, "must grow: {series:?}");
        }
        // "gradually slower": even fully locked stays within the
        // figure's ~25-minute axis.
        assert!(series[8].1 < 25.0, "8 ways: {}", series[8].1);
        assert!(series[8].1 > 18.0, "8 ways must hurt: {}", series[8].1);
    }

    #[test]
    fn premise_validated_against_the_real_cache_model() {
        // The analytic curve's premise: restricting allocation to fewer
        // ways increases the miss rate of a fixed workload. Run an
        // identical pseudo-random workload (working set ~2x the cache)
        // against the PL310 model at several allocation masks.
        let mut last_missrate = 0.0;
        for unlocked_ways in [8u32, 4, 2, 1] {
            let mut soc = Soc::tegra3_small();
            let mask = ALL_WAYS >> (8 - unlocked_ways);
            soc.cache.set_alloc_mask(mask);
            let mut rng = DetRng::new(99);
            let span = 2 * 1024 * 1024u64; // 2 MB working set
            let mut buf = [0u8; 32];
            for _ in 0..60_000 {
                let addr = DRAM_BASE + rng.next_below(span / 32) * 32;
                soc.mem_read(addr, &mut buf).unwrap();
            }
            let stats = soc.cache.stats();
            let missrate = stats.misses as f64 / (stats.misses + stats.hits) as f64;
            assert!(
                missrate > last_missrate,
                "{unlocked_ways} ways: miss rate {missrate:.3} vs previous {last_missrate:.3}"
            );
            last_missrate = missrate;
        }
    }
}
