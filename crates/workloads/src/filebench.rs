//! Filebench workloads over dm-crypt (Figure 9).
//!
//! The paper isolates dm-crypt's overhead with a 450 MB in-memory
//! partition and three filebench personalities (sequential read, random
//! read, random read/write), each run twice — through the buffer cache
//! and with direct I/O. The reproduction scales the dataset down (the
//! effects are ratio-driven, not size-driven) and runs the same grid
//! over the simulated storage stack:
//!
//! * **No Crypto** — the raw RAM disk;
//! * **Generic AES** — dm-crypt using the kernel's software AES;
//! * **Sentry** — dm-crypt transparently picking up AES On SoC through
//!   the Crypto API priority mechanism.
//!
//! The headline behaviours asserted by the tests: the buffer cache masks
//! encryption entirely for `randread`; direct I/O exposes it; and
//! `randrw` pays for encryption even when cached, cutting throughput
//! roughly in half.

use sentry_core::aes_onsoc::build_engine;
use sentry_core::config::{OnSocBackend, PageCipherMode, PipelineConfig};
use sentry_core::onsoc::OnSocStore;
use sentry_core::SentryError;
use sentry_crypto::pipeline::KeystreamStats;
use sentry_kernel::bufcache::{Volume, VolumeCrypto, CACHE_BLOCK};
use sentry_kernel::dmcrypt::{DmCrypt, ReadOverlapStats};
use sentry_kernel::vfs::SimpleFs;
use sentry_kernel::Kernel;
use sentry_soc::accel::AccelPowerState;
use sentry_soc::rng::DetRng;
use sentry_soc::Soc;

/// Which filebench personality to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Sequential whole-file reads.
    SeqRead,
    /// Uniform random reads.
    RandRead,
    /// Uniform random 50/50 read/write mix.
    RandRw,
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Workload::SeqRead => write!(f, "seqread"),
            Workload::RandRead => write!(f, "randread"),
            Workload::RandRw => write!(f, "randrw"),
        }
    }
}

/// The crypto column of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoSetup {
    /// Raw device.
    NoCrypto,
    /// dm-crypt + generic kernel AES.
    GenericAes,
    /// dm-crypt + AES On SoC (Sentry).
    Sentry,
}

impl std::fmt::Display for CryptoSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoSetup::NoCrypto => write!(f, "No Crypto"),
            CryptoSetup::GenericAes => write!(f, "Generic AES"),
            CryptoSetup::Sentry => write!(f, "Sentry"),
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilebenchSpec {
    /// Which personality.
    pub workload: Workload,
    /// Bypass the buffer cache.
    pub direct_io: bool,
    /// Number of files in the dataset.
    pub files: u32,
    /// File size in bytes (4 KiB-aligned).
    pub file_size: u64,
    /// I/O operations to issue after warm-up.
    pub ops: u32,
    /// I/O size per operation, bytes (4 KiB-aligned).
    pub io_size: usize,
    /// Per-operation VFS overhead for reads, nanoseconds (path lookup,
    /// locking).
    pub read_op_ns: u64,
    /// Per-operation VFS overhead for writes, nanoseconds (allocation,
    /// journaling) — this is why `randrw` is not crypto-dominated and
    /// encryption "only" halves its throughput.
    pub write_op_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl FilebenchSpec {
    /// The scaled-down default grid cell for a workload.
    #[must_use]
    pub fn new(workload: Workload, direct_io: bool) -> Self {
        FilebenchSpec {
            workload,
            direct_io,
            files: 8,
            file_size: 2 << 20, // 16 MB dataset
            ops: 600,
            io_size: 8192,
            read_op_ns: 10_000,
            write_op_ns: 200_000,
            seed: 0xF11E,
        }
    }
}

/// A measured cell of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilebenchResult {
    /// Workload.
    pub workload: Workload,
    /// Crypto column.
    pub crypto: CryptoSetup,
    /// Whether the cache was bypassed.
    pub direct_io: bool,
    /// Measured throughput, megabytes per second.
    pub mb_per_sec: f64,
    /// Buffer-cache hit count during the measured phase.
    pub cache_hits: u64,
}

/// Run one grid cell.
///
/// # Errors
///
/// Propagates kernel/Sentry errors.
pub fn run_filebench(
    spec: &FilebenchSpec,
    crypto: CryptoSetup,
) -> Result<FilebenchResult, SentryError> {
    let mut kernel = Kernel::new(Soc::tegra3_small());

    // Register AES On SoC for the Sentry column (the Crypto API then
    // prefers it automatically — §7).
    if crypto == CryptoSetup::Sentry {
        let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut kernel.soc)?;
        let engine = build_engine(&mut store, &mut kernel.soc, &[0xD3u8; 16])?;
        kernel.crypto.register(Box::new(engine));
    }

    let volume_crypto = match crypto {
        CryptoSetup::NoCrypto => VolumeCrypto::None,
        CryptoSetup::GenericAes => {
            let dm = DmCrypt::with_cipher("aes-cbc-generic");
            dm.set_key(&mut kernel.crypto, &mut kernel.soc, &[0xD3u8; 16])?;
            VolumeCrypto::DmCrypt(dm)
        }
        CryptoSetup::Sentry => {
            let dm = DmCrypt::with_preferred_cipher();
            dm.set_key(&mut kernel.crypto, &mut kernel.soc, &[0xD3u8; 16])?;
            VolumeCrypto::DmCrypt(dm)
        }
    };

    let dataset = u64::from(spec.files) * spec.file_size;
    let sectors = (dataset * 2) / 512;
    // Cache large enough to hold the dataset: "most of the I/O
    // operations end up being serviced from the cache".
    let cache_blocks = (dataset / CACHE_BLOCK as u64 + 16) as usize;
    let mut vol = Volume::new(sectors, volume_crypto, cache_blocks);
    let mut fs = SimpleFs::new();

    // Warm-up: create the files and write their contents (this also
    // warms the buffer cache, as in the paper).
    let mut rng = DetRng::new(spec.seed);
    let mut chunk = vec![0u8; CACHE_BLOCK];
    for i in 0..spec.files {
        let name = format!("f{i:04}");
        fs.create(&vol, &name, spec.file_size)?;
        let mut off = 0u64;
        while off < spec.file_size {
            rng.fill(&mut chunk);
            fs.write(
                &mut vol,
                &mut kernel.crypto,
                &mut kernel.soc,
                &name,
                off,
                &chunk,
                false,
            )?;
            off += CACHE_BLOCK as u64;
        }
    }

    // Measured phase.
    vol.cache.hits = 0;
    vol.cache.misses = 0;
    let mut buf = vec![0u8; spec.io_size];
    let blocks_per_file = spec.file_size / spec.io_size as u64;
    let t0 = kernel.soc.clock.now_ns();
    let mut bytes = 0u64;
    let mut seq_cursor = 0u64;
    for op in 0..spec.ops {
        let file = format!("f{:04}", rng.next_below(u64::from(spec.files)));
        let offset = match spec.workload {
            Workload::SeqRead => {
                let o = (seq_cursor % blocks_per_file) * spec.io_size as u64;
                seq_cursor += 1;
                o
            }
            _ => rng.next_below(blocks_per_file) * spec.io_size as u64,
        };
        let write = spec.workload == Workload::RandRw && op % 2 == 1;
        if write {
            kernel.soc.clock.advance(spec.write_op_ns);
            rng.fill(&mut buf);
            fs.write(
                &mut vol,
                &mut kernel.crypto,
                &mut kernel.soc,
                &file,
                offset,
                &buf,
                spec.direct_io,
            )?;
        } else {
            kernel.soc.clock.advance(spec.read_op_ns);
            fs.read(
                &mut vol,
                &mut kernel.crypto,
                &mut kernel.soc,
                &file,
                offset,
                &mut buf,
                spec.direct_io,
            )?;
        }
        bytes += spec.io_size as u64;
    }
    let secs = (kernel.soc.clock.now_ns() - t0) as f64 / 1e9;

    Ok(FilebenchResult {
        workload: spec.workload,
        crypto,
        direct_io: spec.direct_io,
        mb_per_sec: bytes as f64 / (1 << 20) as f64 / secs,
        cache_hits: vol.cache.hits,
    })
}

/// One measured run of the read-latency experiment behind
/// `exp_read_overlap`: a filebench read personality over dm-crypt in
/// CTR mode, timed per operation, with an FNV-1a digest of every byte
/// returned so an overlapped run can be checked byte-identical against
/// an inline one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadOverlapResult {
    /// Mean per-operation read latency, nanoseconds.
    pub mean_read_ns: f64,
    /// Slowest single read, nanoseconds.
    pub max_read_ns: u64,
    /// Operations issued.
    pub ops: u32,
    /// Bytes read.
    pub bytes: u64,
    /// FNV-1a digest over every byte returned, in op order.
    pub digest: u64,
    /// Read-path and keystream counters (None on an inline run).
    pub pipeline: Option<(ReadOverlapStats, KeystreamStats)>,
    /// Keystream sectors resident in the on-SoC cache when the measured
    /// phase ended.
    pub keystream_resident: usize,
    /// Keystream sectors resident after the device-lock hook ran — the
    /// zeroize-on-lock discipline requires this to be 0.
    pub keystream_resident_after_lock: usize,
}

/// FNV-1a 64-bit over a byte run.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Seed value for FNV-1a.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Run the read-latency workload once: CTR-mode dm-crypt, reads only,
/// per-op latency on the simulated clock. `pipeline: None` is the
/// inline baseline; `Some(config)` enables the overlapped read path
/// (keystream precompute + accelerator queue) on the same workload, and
/// the accelerator is brought Awake as it would be on an unlocked
/// device.
///
/// # Errors
///
/// Propagates kernel/Sentry errors.
pub fn run_read_overlap(
    spec: &FilebenchSpec,
    pipeline: Option<PipelineConfig>,
) -> Result<ReadOverlapResult, SentryError> {
    let mut kernel = Kernel::new(Soc::tegra3_small());
    kernel
        .crypto
        .preferred_mut()
        .map_err(SentryError::Kernel)?
        .set_mode(PageCipherMode::Ctr)
        .map_err(SentryError::Kernel)?;
    // Unlocked device: the accelerator clock is awake (§8.2). The
    // inline baseline never touches the accelerator, so this only
    // matters to the overlapped run.
    kernel.soc.accel.state = AccelPowerState::Awake;

    let dm = DmCrypt::with_preferred_cipher();
    if let Some(cfg) = pipeline {
        dm.enable_pipeline(cfg);
    }
    dm.set_key(&mut kernel.crypto, &mut kernel.soc, &[0xD3u8; 16])?;

    let dataset = u64::from(spec.files) * spec.file_size;
    let sectors = (dataset * 2) / 512;
    let cache_blocks = (dataset / CACHE_BLOCK as u64 + 16) as usize;
    let mut vol = Volume::new(sectors, VolumeCrypto::DmCrypt(dm), cache_blocks);
    let mut fs = SimpleFs::new();

    // Warm-up: create and populate the dataset (writes stay inline —
    // the pipeline is a read-path optimisation).
    let mut rng = DetRng::new(spec.seed);
    let mut chunk = vec![0u8; CACHE_BLOCK];
    for i in 0..spec.files {
        let name = format!("f{i:04}");
        fs.create(&vol, &name, spec.file_size)?;
        let mut off = 0u64;
        while off < spec.file_size {
            rng.fill(&mut chunk);
            fs.write(
                &mut vol,
                &mut kernel.crypto,
                &mut kernel.soc,
                &name,
                off,
                &chunk,
                false,
            )?;
            off += CACHE_BLOCK as u64;
        }
    }

    // Measured phase: reads only, timed per op.
    let mut buf = vec![0u8; spec.io_size];
    let blocks_per_file = spec.file_size / spec.io_size as u64;
    let mut digest = FNV_OFFSET;
    let mut total_ns = 0u64;
    let mut max_read_ns = 0u64;
    let mut bytes = 0u64;
    let mut seq_cursor = 0u64;
    for _ in 0..spec.ops {
        let file = format!("f{:04}", rng.next_below(u64::from(spec.files)));
        let offset = match spec.workload {
            Workload::SeqRead => {
                let o = (seq_cursor % blocks_per_file) * spec.io_size as u64;
                seq_cursor += 1;
                o
            }
            _ => rng.next_below(blocks_per_file) * spec.io_size as u64,
        };
        let t0 = kernel.soc.clock.now_ns();
        kernel.soc.clock.advance(spec.read_op_ns);
        fs.read(
            &mut vol,
            &mut kernel.crypto,
            &mut kernel.soc,
            &file,
            offset,
            &mut buf,
            spec.direct_io,
        )?;
        let dt = kernel.soc.clock.now_ns() - t0;
        total_ns += dt;
        max_read_ns = max_read_ns.max(dt);
        digest = fnv1a(digest, &buf);
        bytes += spec.io_size as u64;
    }

    let (stats, resident) = match &vol.crypto {
        VolumeCrypto::DmCrypt(dm) => (dm.pipeline_stats(), dm.keystream_resident()),
        VolumeCrypto::None => (None, 0),
    };
    // Device lock: the zeroize hook must leave no keystream resident.
    vol.on_lock();
    let resident_after_lock = match &vol.crypto {
        VolumeCrypto::DmCrypt(dm) => dm.keystream_resident(),
        VolumeCrypto::None => 0,
    };

    #[allow(clippy::cast_precision_loss)]
    Ok(ReadOverlapResult {
        mean_read_ns: total_ns as f64 / f64::from(spec.ops),
        max_read_ns,
        ops: spec.ops,
        bytes,
        digest,
        pipeline: stats,
        keystream_resident: resident,
        keystream_resident_after_lock: resident_after_lock,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: Workload, direct: bool, crypto: CryptoSetup) -> FilebenchResult {
        run_filebench(&FilebenchSpec::new(workload, direct), crypto).unwrap()
    }

    #[test]
    fn cached_randread_shows_no_crypto_overhead() {
        // Figure 9 (left): "Encryption adds no performance overhead for
        // the randread benchmark" when the cache is on.
        let none = cell(Workload::RandRead, false, CryptoSetup::NoCrypto);
        let generic = cell(Workload::RandRead, false, CryptoSetup::GenericAes);
        let sentry = cell(Workload::RandRead, false, CryptoSetup::Sentry);
        assert!(
            generic.mb_per_sec > 0.9 * none.mb_per_sec,
            "{generic:?} vs {none:?}"
        );
        assert!(sentry.mb_per_sec > 0.9 * none.mb_per_sec);
        assert!(sentry.cache_hits > 0);
    }

    #[test]
    fn direct_io_exposes_encryption_cost() {
        // "When we eliminate the system buffer cache by using direct
        // I/O, the impact of encryption on throughput is clearly
        // visible."
        let none = cell(Workload::RandRead, true, CryptoSetup::NoCrypto);
        let generic = cell(Workload::RandRead, true, CryptoSetup::GenericAes);
        assert!(
            none.mb_per_sec > 4.0 * generic.mb_per_sec,
            "no-crypto {:.1} vs generic {:.1} MB/s",
            none.mb_per_sec,
            generic.mb_per_sec
        );
    }

    #[test]
    fn randrw_throughput_is_roughly_halved_by_encryption() {
        // "encryption cuts throughput by a factor of two for the randrw
        // benchmark" (cached).
        let none = cell(Workload::RandRw, false, CryptoSetup::NoCrypto);
        let generic = cell(Workload::RandRw, false, CryptoSetup::GenericAes);
        let factor = none.mb_per_sec / generic.mb_per_sec;
        assert!((1.5..3.0).contains(&factor), "factor {factor:.2}");
    }

    #[test]
    fn sentry_is_close_to_generic_aes() {
        // dm-crypt with AES On SoC performs like dm-crypt with generic
        // AES (Figure 9's adjacent bars).
        for direct in [false, true] {
            let generic = cell(Workload::RandRw, direct, CryptoSetup::GenericAes);
            let sentry = cell(Workload::RandRw, direct, CryptoSetup::Sentry);
            let ratio = sentry.mb_per_sec / generic.mb_per_sec;
            assert!(
                (0.9..1.1).contains(&ratio),
                "direct={direct}: ratio {ratio:.3}"
            );
        }
    }

    #[test]
    fn overlapped_read_is_byte_identical_and_faster() {
        let spec = FilebenchSpec {
            ops: 200,
            ..FilebenchSpec::new(Workload::SeqRead, true)
        };
        let inline = run_read_overlap(&spec, None).unwrap();
        let over = run_read_overlap(&spec, Some(PipelineConfig::enabled())).unwrap();
        assert_eq!(inline.digest, over.digest, "overlap must not change bytes");
        assert!(
            over.mean_read_ns * 1.5 <= inline.mean_read_ns,
            "overlapped {:.0} ns vs inline {:.0} ns",
            over.mean_read_ns,
            inline.mean_read_ns
        );
        let (stats, ks) = over.pipeline.unwrap();
        assert!(stats.routed_extents > 0 && ks.hits > 0, "{stats:?} {ks:?}");
        assert_eq!(
            over.keystream_resident_after_lock, 0,
            "device lock must zeroize all resident keystream"
        );
    }

    #[test]
    fn seqread_behaves_like_randread_under_cache() {
        let none = cell(Workload::SeqRead, false, CryptoSetup::NoCrypto);
        let generic = cell(Workload::SeqRead, false, CryptoSetup::GenericAes);
        assert!(generic.mb_per_sec > 0.9 * none.mb_per_sec);
    }
}
