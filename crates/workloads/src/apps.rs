//! Android application models: the Nexus 4 macrobenchmarks
//! (Figures 2–5).
//!
//! Each app is characterised by its memory footprints and its scripted
//! interactive run. The cycle experiment walks the app through the full
//! Sentry lifecycle on a simulated Nexus 4:
//!
//! 1. populate the app's resident set (and mark its DMA regions),
//! 2. **lock** — encrypt-on-lock (Figure 4),
//! 3. **unlock** — eager DMA decryption, then *resume*: touch the
//!    resume set, decrypting on demand (Figure 2),
//! 4. **script** — run the scripted tasks, touching the remaining pages
//!    on demand while the script's own work advances the clock
//!    (Figure 3),
//! 5. account energy with the calibrated model (Figure 5).

use sentry_core::{Sentry, SentryConfig, SentryError};
use sentry_energy::{AesVariant, EnergyModel};
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::rng::DetRng;
use sentry_soc::Soc;

const MB: u64 = 1 << 20;

/// Static description of one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// Application name.
    pub name: &'static str,
    /// Sensitive resident set encrypted at lock, bytes.
    pub resident_bytes: u64,
    /// Pages touched to resume the app after unlock, bytes.
    pub resume_bytes: u64,
    /// Additional pages touched over the scripted run, bytes.
    pub script_touch_bytes: u64,
    /// GPU / I-O DMA regions (eagerly decrypted on unlock), bytes.
    /// The paper reports 1 MB for Contacts, 3 MB for Twitter, and
    /// 15 MB for Google Maps (§7).
    pub dma_bytes: u64,
    /// Duration of the scripted task sequence, seconds (§8.2: ~23 s for
    /// Contacts, ~20 s Maps, ~17 s Twitter, ~5 min for the MP3 app).
    pub script_secs: f64,
}

/// The four applications of the paper's macrobenchmarks.
#[must_use]
pub fn app_catalog() -> [AppSpec; 4] {
    [
        AppSpec {
            name: "Contacts",
            resident_bytes: 26 * MB,
            resume_bytes: 6 * MB,
            script_touch_bytes: 19 * MB,
            dma_bytes: MB,
            script_secs: 23.0,
        },
        AppSpec {
            name: "Maps",
            resident_bytes: 48 * MB,
            resume_bytes: 38 * MB,
            script_touch_bytes: 5 * MB,
            dma_bytes: 15 * MB,
            script_secs: 20.0,
        },
        AppSpec {
            name: "Twitter",
            resident_bytes: 30 * MB,
            resume_bytes: 20 * MB,
            script_touch_bytes: 4 * MB,
            dma_bytes: 3 * MB,
            script_secs: 17.0,
        },
        AppSpec {
            name: "MP3",
            resident_bytes: 20 * MB,
            resume_bytes: 8 * MB,
            script_touch_bytes: 12 * MB,
            dma_bytes: MB,
            script_secs: 300.0,
        },
    ]
}

/// Results of one full lock/unlock/run cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppCycleResult {
    /// App name.
    pub name: &'static str,
    /// Figure 4: device-lock encryption time, seconds.
    pub lock_secs: f64,
    /// Figure 4: megabytes encrypted at lock.
    pub lock_mb: f64,
    /// Figure 2: resume (unlock + touch resume set) time, seconds.
    pub resume_secs: f64,
    /// Figure 2: megabytes decrypted during resume.
    pub resume_mb: f64,
    /// Figure 3: scripted-run overhead fraction (0.043 = 4.3%).
    pub runtime_overhead: f64,
    /// Figure 3: megabytes decrypted on demand during the script.
    pub runtime_mb: f64,
    /// Figure 5: lock-side energy, joules.
    pub lock_joules: f64,
    /// Figure 5: unlock-side energy, joules.
    pub unlock_joules: f64,
}

/// Run the full cycle for one app on a simulated Nexus 4.
///
/// # Errors
///
/// Propagates Sentry errors (none are expected with catalog inputs).
pub fn run_app_cycle(app: &AppSpec) -> Result<AppCycleResult, SentryError> {
    let kernel = Kernel::new(Soc::new(
        sentry_soc::SocConfig::new(sentry_soc::Platform::Nexus4).with_dram_size(256 << 20),
    ));
    let mut sentry = Sentry::new(kernel, SentryConfig::nexus4())?;
    let pid = sentry.kernel.spawn(app.name);
    sentry.mark_sensitive(pid)?;

    // Populate the resident set with app data.
    let total_pages = app.resident_bytes / PAGE_SIZE;
    let mut rng = DetRng::new(0xA99 ^ app.resident_bytes);
    let mut page = vec![0u8; PAGE_SIZE as usize];
    for vpn in 0..total_pages {
        rng.fill(&mut page);
        sentry.write(pid, vpn * PAGE_SIZE, &page)?;
    }
    // Mark the DMA regions (the first dma_bytes of the address space).
    for vpn in 0..app.dma_bytes / PAGE_SIZE {
        sentry
            .kernel
            .proc_mut(pid)?
            .page_table
            .get_mut(vpn)
            .expect("populated")
            .dma_region = true;
    }

    // ---- Device lock (Figure 4).
    let lock = sentry.on_lock()?;

    // ---- Device unlock + resume (Figure 2). Resume touches the pages
    // needed to redraw the app: the DMA regions (eager) plus the front
    // of the resident set (lazy).
    let t0 = sentry.kernel.soc.clock.now_ns();
    sentry.reset_ondemand_stats();
    let unlock = sentry.on_unlock()?;
    let dma_pages = app.dma_bytes / PAGE_SIZE;
    let lazy_resume_pages = (app.resume_bytes / PAGE_SIZE).saturating_sub(dma_pages);
    let resume_vpns: Vec<u64> = (dma_pages..dma_pages + lazy_resume_pages).collect();
    sentry.touch_pages(pid, &resume_vpns)?;
    let resume_ns = sentry.kernel.soc.clock.now_ns() - t0;
    let resume_bytes = unlock.eager_bytes_decrypted + sentry.stats.ondemand_bytes;

    // ---- Scripted run (Figure 3): the script's own work takes
    // `script_secs`; on-demand decryption of the remaining touched pages
    // adds overhead.
    sentry.reset_ondemand_stats();
    let script_first = dma_pages + lazy_resume_pages;
    let script_pages =
        (app.script_touch_bytes / PAGE_SIZE).min(total_pages.saturating_sub(script_first));
    let t0 = sentry.kernel.soc.clock.now_ns();
    for vpn in script_first..script_first + script_pages {
        sentry.touch_pages(pid, &[vpn])?;
    }
    let overhead_ns = sentry.kernel.soc.clock.now_ns() - t0;
    let runtime_overhead = overhead_ns as f64 / 1e9 / app.script_secs;
    let runtime_bytes = sentry.stats.ondemand_bytes;

    // ---- Energy (Figure 5): lock encrypts `lock.bytes_encrypted`; a
    // full unlock eventually decrypts the resident set as the user keeps
    // using the app. The paper measures decrypt-all conservatively.
    let energy = EnergyModel::nexus4();
    let lock_joules = energy.crypt_joules(AesVariant::CryptoApi, lock.bytes_encrypted);
    let unlock_joules = energy.crypt_joules(AesVariant::CryptoApi, app.resume_bytes);

    Ok(AppCycleResult {
        name: app.name,
        lock_secs: lock.duration_ns as f64 / 1e9,
        lock_mb: lock.bytes_encrypted as f64 / MB as f64,
        resume_secs: resume_ns as f64 / 1e9,
        resume_mb: resume_bytes as f64 / MB as f64,
        runtime_overhead,
        runtime_mb: runtime_bytes as f64 / MB as f64,
        lock_joules,
        unlock_joules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_name(name: &str) -> AppCycleResult {
        let app = app_catalog()
            .into_iter()
            .find(|a| a.name == name)
            .expect("catalog app");
        run_app_cycle(&app).expect("cycle runs")
    }

    #[test]
    fn maps_matches_figure_2_and_4_shape() {
        let r = by_name("Maps");
        // Figure 2: Maps is the slowest resume (paper: ~1.5 s, ~38 MB).
        assert!(
            (1.0..2.5).contains(&r.resume_secs),
            "resume {}",
            r.resume_secs
        );
        assert!(
            (35.0..41.0).contains(&r.resume_mb),
            "resume MB {}",
            r.resume_mb
        );
        // Figure 4: lock takes ~1-2 s for ~48 MB.
        assert!((0.8..2.5).contains(&r.lock_secs), "lock {}", r.lock_secs);
        assert!((46.0..50.0).contains(&r.lock_mb));
    }

    #[test]
    fn contacts_resume_is_subsecond() {
        let r = by_name("Contacts");
        // Paper: ~200 ms. Ours lands in the same sub-second regime.
        assert!(r.resume_secs < 0.7, "resume {}", r.resume_secs);
    }

    #[test]
    fn runtime_overheads_match_figure_3() {
        // Paper: Contacts 4.3%, Maps 1.2%, Twitter 1.3%, MP3 0.2%.
        let targets = [
            ("Contacts", 0.043),
            ("Maps", 0.012),
            ("Twitter", 0.013),
            ("MP3", 0.002),
        ];
        for (name, target) in targets {
            let r = by_name(name);
            assert!(
                (r.runtime_overhead - target).abs() < target * 0.5 + 0.002,
                "{name}: got {:.4}, paper {target}",
                r.runtime_overhead
            );
        }
    }

    #[test]
    fn lock_energy_matches_figure_5() {
        // Paper: up to 2.3 J for Maps; all others below.
        let maps = by_name("Maps");
        assert!(
            (1.5..2.4).contains(&maps.lock_joules),
            "{}",
            maps.lock_joules
        );
        let contacts = by_name("Contacts");
        assert!(contacts.lock_joules < maps.lock_joules);
    }

    #[test]
    fn overhead_is_proportional_to_bytes() {
        // "the overhead is roughly proportional to the amount of data to
        //  be decrypted" (Figure 2 discussion).
        let maps = by_name("Maps");
        let twitter = by_name("Twitter");
        let ratio_time = maps.resume_secs / twitter.resume_secs;
        let ratio_mb = maps.resume_mb / twitter.resume_mb;
        assert!(
            (ratio_time / ratio_mb - 1.0).abs() < 0.25,
            "time ratio {ratio_time:.2} vs MB ratio {ratio_mb:.2}"
        );
    }
}
