//! Fleet-scale Sentry: thousands of independent device stacks driven by
//! a deterministic heavy-traffic event stream, sharded shared-nothing
//! across worker threads, folded into one aggregated percentile report.
//!
//! Every other workload in this crate drives *one* simulated SoC. The
//! fleet harness is the layer above it — the "million users" of the
//! ROADMAP's north star: `N` fully independent device+Sentry stacks
//! (own SoC, kernel, pager, keys, dm-crypt volume), each replaying a
//! seeded event mix of lock/unlock churn, background-app paging under
//! the lock, dm-crypt I/O bursts, random power cuts (failpoint plane →
//! [`Sentry::recover`]), and active DRAM tampers (integrity plane →
//! quarantine).
//!
//! Three properties the design commits to:
//!
//! * **Shared-nothing sharding.** Device `i` is assigned to shard
//!   `i % shards` and is built, driven, verified, and dropped entirely
//!   inside that shard's worker thread. No lock, channel, or atomic is
//!   touched on the hot path; shards only meet at the final fold. The
//!   pool shape mirrors `sentry_crypto::parallel::crypt_batch`: scoped
//!   threads, panic containment per worker, deterministic results.
//! * **Standalone replay.** Device `i`'s workload, failpoint, tamper,
//!   and SoC seeds are split from one fleet master seed
//!   ([`DeviceSeeds::split`]), so any failing cell reproduces outside
//!   the fleet from just `(master_seed, device_index)` — see
//!   [`run_device`]. Because devices never interact, the merged report
//!   is bit-identical for every shard count.
//! * **Allocation-free metrics.** Unlock latencies stream into a
//!   fixed-bucket [`LatencyHistogram`] (exact below 16 ns, then
//!   4 sub-buckets per power of two — ≤ 25 % relative bucket width);
//!   recording is two adds and merging is a bucket-wise sum, so 10k
//!   devices × thousands of events cost zero per-event allocations.
//!
//! Every read in the stream is checked against a shadow model (page
//! images and disk sectors are pure functions of the device index and a
//! version counter), so an injected fault that slipped past recovery or
//! MAC verification shows up as a **silent corruption** — the number
//! `exp_fleet --enforce` gates at zero.

use sentry_attacks::tamper::flip_bit;
use sentry_core::config::{PipelineConfig, ReadaheadConfig};
use sentry_core::{
    DeviceState, HealthStats, PageCipherMode, PressureLevel, PressureStats, Sentry, SentryConfig,
    SentryError,
};
use sentry_kernel::block::{RamDisk, SECTOR_SIZE};
use sentry_kernel::crypto_api::{CryptoApi, GenericAesEngine};
use sentry_kernel::dmcrypt::DmCrypt;
use sentry_kernel::pagetable::Backing;
use sentry_kernel::{Kernel, Pid};
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::failpoint::{FaultAction, FaultPlan};
use sentry_soc::rng::{DetRng, DeviceSeeds};
use sentry_soc::{Platform, Soc, SocConfig};

/// Sensitive pages per device (the vault working set).
pub const SECRET_PAGES: u64 = 4;

/// DRAM per fleet device. Frames are lazily allocated, so this is an
/// address-space bound, not a footprint: the kernel layout reserves the
/// first 32 MiB (kernel + locked window), so 48 MiB leaves a 16 MiB
/// user frame pool.
const DEVICE_DRAM: u64 = 48 << 20;

/// Sectors on each device's dm-crypt volume (64 × 512 B = 32 KiB).
const DISK_SECTORS: u64 = 64;

/// Sectors in each accel-wedge-storm burst — large enough that the
/// overlapped read path always clears `min_accel_sectors` and routes to
/// the (wedged) engine.
const STORM_SECTORS: u64 = 8;

/// Reachable-step bound a seeded power cut is drawn over. A bare lock
/// transition of the vault working set traverses ~15 failpoint steps
/// and an unlock plus its resume touches a couple dozen, so a bound of
/// 16 makes most armed cuts actually fire; draws beyond the
/// transition's real reach simply never fire (the cut samples the
/// transition's prefix, like the fault matrix's kill cells).
const POWER_CUT_STEPS: u64 = 16;

// ---------------------------------------------------------------------
// Streaming histogram
// ---------------------------------------------------------------------

/// Buckets in a [`LatencyHistogram`]: 16 exact single-nanosecond
/// buckets, then 4 sub-buckets per power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 16 + 60 * 4;

/// A fixed-bucket streaming latency histogram.
///
/// Values below 16 land in exact buckets; a value with floor-log2 `o ≥
/// 4` lands in one of four sub-buckets of `[2^o, 2^(o+1))` selected by
/// its next two bits, so the relative bucket width never exceeds 25 %.
/// Recording allocates nothing; merging is a bucket-wise sum, which is
/// what lets every shard keep a private histogram and fold at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket index `ns` falls into.
    #[must_use]
    pub fn bucket_index(ns: u64) -> usize {
        if ns < 16 {
            return usize::try_from(ns).expect("ns < 16");
        }
        let o = 63 - ns.leading_zeros() as usize;
        let sub = ((ns >> (o - 2)) & 3) as usize;
        16 + (o - 4) * 4 + sub
    }

    /// The smallest value mapping to bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_lower(i: usize) -> u64 {
        assert!(i < HISTOGRAM_BUCKETS, "bucket out of range");
        if i < 16 {
            return i as u64;
        }
        let o = 4 + (i - 16) / 4;
        let sub = ((i - 16) % 4) as u64;
        (1u64 << o) + sub * (1u64 << (o - 2))
    }

    /// The largest value mapping to bucket `i` (saturating at
    /// `u64::MAX` for the final bucket).
    #[must_use]
    pub fn bucket_upper(i: usize) -> u64 {
        if i + 1 < HISTOGRAM_BUCKETS {
            LatencyHistogram::bucket_lower(i + 1) - 1
        } else {
            u64::MAX
        }
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[LatencyHistogram::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), reported as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` sample, clamped to the
    /// observed extremes so exact buckets stay exact and the tail never
    /// over-reports past the true maximum. Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return LatencyHistogram::bucket_upper(i)
                    .min(self.max)
                    .max(LatencyHistogram::bucket_lower(i).max(self.min));
            }
        }
        self.max
    }
}

// ---------------------------------------------------------------------
// Event stream
// ---------------------------------------------------------------------

/// Relative weights of the event kinds in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMix {
    /// Lock/unlock churn (toggles the device's lock state; unlocks
    /// feed the latency histogram).
    pub churn: u32,
    /// Background-app paging: a read or write of a vault page, valid in
    /// either lock state (encrypted paging while locked).
    pub background: u32,
    /// A dm-crypt I/O burst: write then read-back of a few sectors.
    pub io_burst: u32,
    /// A seeded power cut armed over the next lock transition, followed
    /// by [`Sentry::recover`] and a retry.
    pub power_cut: u32,
    /// An active DRAM tamper (bit flip) on an encrypted vault page,
    /// followed by a forced decrypt that must fail closed.
    pub tamper: u32,
    /// A sustained accelerator-wedge storm over a dm-crypt burst: every
    /// descriptor submitted during the storm wedges forever; the health
    /// governor's watchdog must abandon each one and its breaker must
    /// route the remainder to the CPU path, byte-identically.
    pub accel_storm: u32,
    /// A flaky-disk interval: transient `DiskError` faults at a steady
    /// rate across a dm-crypt read-back, absorbed by the governor's
    /// bounded retry/backoff.
    pub flaky_disk: u32,
    /// A memory-pressure squeeze: the on-SoC budget is choked to a few
    /// pages while a storm of short-lived sensitive processes spawns,
    /// writes, and exits — the pressure governor must shed/spill and
    /// the teardown path must return every on-SoC page.
    pub mem_pressure: u32,
}

impl Default for EventMix {
    fn default() -> Self {
        EventMix {
            churn: 42,
            background: 28,
            io_burst: 12,
            power_cut: 6,
            tamper: 4,
            accel_storm: 4,
            flaky_disk: 4,
            mem_pressure: 6,
        }
    }
}

impl EventMix {
    fn total(&self) -> u32 {
        self.churn
            + self.background
            + self.io_burst
            + self.power_cut
            + self.tamper
            + self.accel_storm
            + self.flaky_disk
            + self.mem_pressure
    }
}

/// One event in a device's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// Toggle the lock state (lock if unlocked, unlock — and record the
    /// latency — if locked).
    Churn,
    /// Read a vault page and check it against the shadow model.
    BackgroundRead {
        /// Target virtual page.
        vpn: u64,
    },
    /// Rewrite a vault page with the next version of its image.
    BackgroundWrite {
        /// Target virtual page.
        vpn: u64,
    },
    /// Write then read back `sectors` dm-crypt sectors at `sector`.
    IoBurst {
        /// First sector of the burst.
        sector: u64,
        /// Sectors in the burst.
        sectors: u64,
    },
    /// Arm a seeded power cut over the next lock transition, recover,
    /// retry, and re-verify.
    PowerCut {
        /// Seed for `Failpoints::arm_seeded`.
        seed: u64,
    },
    /// Flip one ciphertext bit of an encrypted vault page, then force a
    /// decrypt that must surface an integrity violation.
    Tamper {
        /// Target virtual page.
        vpn: u64,
        /// Byte offset within the page.
        offset: u64,
        /// Bit within the byte.
        bit: u8,
    },
    /// Write a `STORM_SECTORS`-sector burst, then read it back `reads`
    /// times with every submitted accelerator descriptor wedged
    /// (`AccelWedge` with an infinite stall). Each read must still
    /// return the written bytes via watchdog abandonment + CPU fallback
    /// (and, once the breaker trips, the open-breaker inline route).
    AccelWedgeStorm {
        /// First sector of the storm burst.
        sector: u64,
        /// Read-backs performed under the storm.
        reads: u64,
    },
    /// Write then read back `sectors` sectors with transient
    /// `DiskError` faults firing every `period`-th disk read; the
    /// governor's bounded retry must absorb them.
    FlakyDiskInterval {
        /// First sector of the burst.
        sector: u64,
        /// Sectors in the burst.
        sectors: u64,
        /// Matching disk reads between consecutive faults (≥ 2, so a
        /// single retry of the faulted read always lands clean).
        period: u64,
    },
    /// Choke the on-SoC budget to `budget_pages` pages, run a storm of
    /// `spawns` short-lived sensitive processes (spawn → write → exit),
    /// then lift the budget and re-verify the vault. Allocation denials
    /// under the squeeze must surface as typed `OnSocExhausted`, never a
    /// panic; the governor sheds/spills; teardown must leak nothing.
    MemPressure {
        /// Pages the on-SoC budget is clamped to during the squeeze.
        budget_pages: u64,
        /// Short-lived sensitive processes spawned under the squeeze.
        spawns: u64,
    },
}

/// The full fleet configuration. A fleet run is a pure function of this
/// value: same config, same report (host timings aside), regardless of
/// shard count.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Devices in the fleet.
    pub devices: usize,
    /// Shared-nothing worker shards (device `i` belongs to shard
    /// `i % shards`).
    pub shards: usize,
    /// Events drawn per device.
    pub events_per_device: usize,
    /// Relative weights of the event kinds.
    pub event_mix: EventMix,
    /// The one seed everything derives from (see [`DeviceSeeds`]).
    pub master_seed: u64,
    /// Per-device Sentry configuration.
    pub sentry: SentryConfig,
}

impl FleetConfig {
    /// A fleet of `devices` across `shards` with the default traffic
    /// mix and a readahead-enabled Tegra 3 Sentry on every device.
    #[must_use]
    pub fn new(devices: usize, shards: usize) -> Self {
        FleetConfig {
            devices: devices.max(1),
            shards: shards.max(1),
            events_per_device: 24,
            event_mix: EventMix::default(),
            master_seed: 0xF1EE_7000,
            sentry: SentryConfig::tegra3_locked_l2(2)
                .with_readahead(ReadaheadConfig::with_cluster(2).sweep_budget(0)),
        }
    }

    /// Builder: events drawn per device.
    #[must_use]
    pub fn with_events_per_device(mut self, events: usize) -> Self {
        self.events_per_device = events;
        self
    }

    /// Builder: the fleet master seed.
    #[must_use]
    pub fn with_master_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Builder: shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

/// Device `index`'s event stream: a pure function of
/// `(config.master_seed, index)` and the mix/length knobs, so a failing
/// cell replays standalone without the rest of the fleet.
#[must_use]
pub fn event_stream(config: &FleetConfig, index: u64) -> Vec<FleetEvent> {
    let seeds = DeviceSeeds::split(config.master_seed, index);
    let mut rng = DetRng::new(seeds.workload);
    let mut fail_rng = DetRng::new(seeds.failpoint);
    let mut tamper_rng = DetRng::new(seeds.tamper);
    let mix = config.event_mix;
    let total = u64::from(mix.total().max(1));
    (0..config.events_per_device)
        .map(|_| {
            let mut draw = rng.next_below(total);
            if draw < u64::from(mix.churn) {
                return FleetEvent::Churn;
            }
            draw -= u64::from(mix.churn);
            if draw < u64::from(mix.background) {
                let vpn = rng.next_below(SECRET_PAGES);
                return if rng.next_below(4) == 0 {
                    FleetEvent::BackgroundWrite { vpn }
                } else {
                    FleetEvent::BackgroundRead { vpn }
                };
            }
            draw -= u64::from(mix.background);
            if draw < u64::from(mix.io_burst) {
                let sectors = 1 + rng.next_below(4);
                let sector = rng.next_below(DISK_SECTORS - sectors);
                return FleetEvent::IoBurst { sector, sectors };
            }
            draw -= u64::from(mix.io_burst);
            if draw < u64::from(mix.power_cut) {
                return FleetEvent::PowerCut {
                    seed: fail_rng.next_u64(),
                };
            }
            draw -= u64::from(mix.power_cut);
            if draw < u64::from(mix.tamper) {
                return FleetEvent::Tamper {
                    vpn: tamper_rng.next_below(SECRET_PAGES),
                    offset: tamper_rng.next_below(PAGE_SIZE),
                    bit: u8::try_from(tamper_rng.next_below(8)).expect("bit < 8"),
                };
            }
            draw -= u64::from(mix.tamper);
            if draw < u64::from(mix.mem_pressure) {
                return FleetEvent::MemPressure {
                    budget_pages: 2 + rng.next_below(6),
                    spawns: 1 + rng.next_below(3),
                };
            }
            draw -= u64::from(mix.mem_pressure);
            if draw < u64::from(mix.accel_storm) {
                // 3..=5 read-backs: enough wedged submits to trip the
                // default breaker (3 failures) inside one storm, plus
                // open-breaker reads after it.
                return FleetEvent::AccelWedgeStorm {
                    sector: rng.next_below(DISK_SECTORS - STORM_SECTORS),
                    reads: 3 + fail_rng.next_below(3),
                };
            }
            let sectors = 2 + rng.next_below(3);
            FleetEvent::FlakyDiskInterval {
                sector: rng.next_below(DISK_SECTORS - sectors),
                sectors,
                period: 2 + fail_rng.next_below(3),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// One device
// ---------------------------------------------------------------------

/// Everything one device's run produced. All fields are deterministic
/// functions of `(config, index)` — host wall-clock is aggregated at
/// the shard level, never here — which is what makes the N=1
/// fleet-vs-direct identity test exact.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeviceOutcome {
    /// The device's fleet index.
    pub index: u64,
    /// Events applied.
    pub events: u64,
    /// Lock transitions performed.
    pub locks: u64,
    /// Unlock transitions performed.
    pub unlocks: u64,
    /// Unlock latencies (simulated ns of the eager unlock phase).
    pub unlock_hist: LatencyHistogram,
    /// Power cuts that actually fired mid-transition.
    pub power_cuts_fired: u64,
    /// `recover()` calls after a fired cut.
    pub recoveries: u64,
    /// Journal entries recovery rolled forward.
    pub recovered_entries: u64,
    /// Tampers actually planted in an encrypted frame.
    pub tampers_planted: u64,
    /// Tampers surfaced as a typed integrity violation.
    pub tampers_detected: u64,
    /// Vault pages quarantined by the integrity plane.
    pub quarantined_pages: u64,
    /// Reads that returned wrong bytes without an error. The fleet gate
    /// holds this at zero.
    pub silent_corruptions: u64,
    /// Bytes moved through dm-crypt bursts.
    pub io_bytes: u64,
    /// Accel-wedge storms driven (each one `STORM_SECTORS` sectors ×
    /// several wedged read-backs).
    pub accel_storms: u64,
    /// Flaky-disk intervals driven.
    pub flaky_disk_intervals: u64,
    /// Memory-pressure squeezes driven.
    pub pressure_events: u64,
    /// On-SoC pages the teardown path returned across the storms'
    /// process exits (pager slots shrunk + tag pages reaped).
    pub exit_reclaimed_pages: u64,
    /// The device's pressure-governor counters at end of run: watermark
    /// transitions, sheds, spills/restores, reclaims, typed denials.
    pub pressure: PressureStats,
    /// Merged health-governor statistics from the device's two
    /// governors (the lifecycle engine's and dm-crypt's): breaker
    /// trips, watchdog timeouts, fallback crypt bytes, time spent
    /// degraded, and disk-retry accounting.
    pub health: HealthStats,
    /// Total simulated ns the device consumed (construction included).
    pub sim_ns: u64,
    /// Simulated ns of `Sentry::new` alone (see
    /// `sentry_core::DeviceStats`).
    pub setup_sim_ns: u64,
    /// FNV-1a digest of the device's end state: every surviving page
    /// image, the quarantine map, and the page versions.
    pub digest: u64,
}

/// One live fleet device: an independent Sentry stack plus its dm-crypt
/// volume and the shadow model every read is checked against.
#[derive(Debug)]
pub struct Device {
    /// The device's fleet index.
    pub index: u64,
    /// The device's Sentry stack (own SoC and kernel).
    pub sentry: Sentry,
    vault: Pid,
    dm_api: CryptoApi,
    dm: DmCrypt,
    disk: RamDisk,
    /// Shadow model: current image version per vault page.
    versions: [u64; SECRET_PAGES as usize],
    quarantined: [bool; SECRET_PAGES as usize],
    io_bursts: u64,
    /// Keystream-cache cap applied while pressure is ≥ High (from the
    /// device's `PressureConfig`).
    keystream_cap_high: usize,
    outcome: DeviceOutcome,
}

/// The deterministic image of page `vpn` at `version` on device
/// `index`.
#[must_use]
pub fn page_image(index: u64, vpn: u64, version: u64) -> Vec<u8> {
    let mut img = vec![0u8; usize::try_from(PAGE_SIZE).expect("page fits usize")];
    DetRng::new(0x9A6E_0000 ^ index.rotate_left(24) ^ vpn.rotate_left(8) ^ version).fill(&mut img);
    img
}

/// The deterministic payload of dm-crypt burst number `burst` on device
/// `index` (`sectors` whole sectors).
#[must_use]
pub fn burst_image(index: u64, burst: u64, sectors: u64) -> Vec<u8> {
    let len = usize::try_from(sectors).expect("burst fits usize") * SECTOR_SIZE;
    let mut data = vec![0u8; len];
    DetRng::new(0xD15C_0000 ^ index.rotate_left(20) ^ burst).fill(&mut data);
    data
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

impl Device {
    /// Build device `index` of the fleet: SoC, kernel, Sentry, vault
    /// process with [`SECRET_PAGES`] sensitive pages, and a keyed
    /// dm-crypt volume — all seeded from the split of the master seed.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from any layer.
    pub fn build(config: &FleetConfig, index: u64) -> Result<Self, SentryError> {
        let seeds = DeviceSeeds::split(config.master_seed, index);
        let soc = Soc::new(
            SocConfig::new(Platform::Tegra3)
                .with_dram_size(DEVICE_DRAM)
                .with_seed(seeds.soc),
        );
        let kernel = Kernel::new(soc);
        let mut sentry = Sentry::new(kernel, config.sentry.clone())?;
        let vault = sentry.kernel.spawn("vault");
        sentry.mark_sensitive(vault)?;
        for vpn in 0..SECRET_PAGES {
            sentry.write(vault, vpn * PAGE_SIZE, &page_image(index, vpn, 0))?;
        }
        // The dm-crypt volume gets its own engine registry so its
        // volume key never disturbs the Sentry engine's root key. It
        // runs CTR with the async read pipeline so that I/O bursts and
        // chaos storms exercise the accelerator-routed path — and with
        // it the health governor's watchdog, breaker, and CPU fallback.
        let mut dm_api = CryptoApi::new();
        dm_api.register(Box::new(GenericAesEngine::new(0)));
        dm_api
            .preferred_mut()
            .map_err(SentryError::Kernel)?
            .set_mode(PageCipherMode::Ctr)
            .map_err(SentryError::Kernel)?;
        let dm = DmCrypt::with_preferred_cipher();
        dm.enable_pipeline(PipelineConfig::enabled());
        let mut volume_key = [0u8; 16];
        DetRng::new(seeds.soc ^ 0x0D15_C4E1).fill(&mut volume_key);
        dm.set_key(&mut dm_api, &mut sentry.kernel.soc, &volume_key)
            .map_err(SentryError::Kernel)?;
        let outcome = DeviceOutcome {
            index,
            setup_sim_ns: sentry.device_stats.setup_sim_ns,
            ..DeviceOutcome::default()
        };
        Ok(Device {
            index,
            sentry,
            vault,
            dm_api,
            dm,
            disk: RamDisk::new(DISK_SECTORS),
            versions: [0; SECRET_PAGES as usize],
            quarantined: [false; SECRET_PAGES as usize],
            io_bursts: 0,
            keystream_cap_high: config.sentry.pressure.keystream_cap_high,
            outcome,
        })
    }

    fn vpn_slot(vpn: u64) -> usize {
        usize::try_from(vpn).expect("vpn < SECRET_PAGES")
    }

    /// The DRAM frame backing `vpn`, if it is DRAM-backed right now.
    fn dram_frame(&self, vpn: u64) -> Option<u64> {
        match self.sentry.kernel.procs[&self.vault]
            .page_table
            .get(vpn)?
            .backing
        {
            Backing::Dram(frame) => Some(frame),
            Backing::OnSoc(_) => None,
        }
    }

    /// Note an integrity violation on `vpn`: the page is quarantined;
    /// stop using it. Only a *newly* quarantined page counts as a
    /// detection — an already-poisoned page riding into a later
    /// readahead cluster re-raises the same violation.
    fn note_violation(&mut self, vpn: u64) {
        let slot = Device::vpn_slot(vpn);
        if !self.quarantined[slot] {
            self.quarantined[slot] = true;
            self.outcome.quarantined_pages += 1;
            self.outcome.tampers_detected += 1;
        }
    }

    /// Read `vpn` and check it against the shadow model. Returns `Ok`
    /// whether the bytes matched, a violation was (correctly) raised,
    /// or the page is quarantined; silent mismatches are counted.
    fn checked_read(&mut self, vpn: u64) -> Result<(), SentryError> {
        if self.quarantined[Device::vpn_slot(vpn)] {
            return Ok(());
        }
        let mut buf = vec![0u8; usize::try_from(PAGE_SIZE).expect("page fits usize")];
        match self.sentry.read(self.vault, vpn * PAGE_SIZE, &mut buf) {
            Ok(()) => {
                let expected = page_image(self.index, vpn, self.versions[Device::vpn_slot(vpn)]);
                if buf != expected {
                    self.outcome.silent_corruptions += 1;
                }
                Ok(())
            }
            Err(SentryError::IntegrityViolation { vpn: bad, .. }) => {
                // The violation may name a readahead rider, not the
                // page we asked for; quarantine whichever it names.
                self.note_violation(bad);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Perform one lock transition and account it.
    fn lock(&mut self) -> Result<(), SentryError> {
        self.sentry.on_lock()?;
        self.outcome.locks += 1;
        Ok(())
    }

    /// Perform one unlock transition plus the resume — the foreground
    /// app touching its whole working set, which is where the lazy
    /// decrypt actually runs — and record the end-to-end simulated
    /// latency. This is the fleet's headline percentile metric: eager
    /// unlock work plus on-demand decrypt until the app is usable.
    fn unlock(&mut self) -> Result<(), SentryError> {
        let t0 = self.sentry.kernel.soc.clock.now_ns();
        self.sentry.on_unlock()?;
        self.outcome.unlocks += 1;
        for vpn in 0..SECRET_PAGES {
            self.checked_read(vpn)?;
        }
        let now = self.sentry.kernel.soc.clock.now_ns();
        self.outcome.unlock_hist.record(now - t0);
        Ok(())
    }

    /// Apply one event.
    ///
    /// # Errors
    ///
    /// Propagates *unexpected* errors only — injected power cuts are
    /// recovered and retried here, and integrity violations are
    /// absorbed as detections.
    #[allow(clippy::too_many_lines)]
    pub fn apply(&mut self, event: &FleetEvent) -> Result<(), SentryError> {
        self.outcome.events += 1;
        let result = match *event {
            FleetEvent::Churn => {
                if self.sentry.state() == DeviceState::Unlocked {
                    self.lock()
                } else {
                    self.unlock()
                }
            }
            FleetEvent::BackgroundRead { vpn } => self.checked_read(vpn),
            FleetEvent::BackgroundWrite { vpn } => {
                let slot = Device::vpn_slot(vpn);
                if self.quarantined[slot] {
                    return Ok(());
                }
                self.versions[slot] += 1;
                let img = page_image(self.index, vpn, self.versions[slot]);
                match self.sentry.write(self.vault, vpn * PAGE_SIZE, &img) {
                    Ok(()) => Ok(()),
                    Err(SentryError::IntegrityViolation { vpn: bad, .. }) => {
                        // The write's page-in (or a readahead rider)
                        // tripped the integrity plane; roll the shadow
                        // version back — the image was never applied.
                        if bad == vpn {
                            self.versions[slot] -= 1;
                        }
                        self.note_violation(bad);
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            FleetEvent::IoBurst { sector, sectors } => {
                let data = burst_image(self.index, self.io_bursts, sectors);
                self.io_bursts += 1;
                let soc = &mut self.sentry.kernel.soc;
                self.dm
                    .write(&mut self.dm_api, soc, &mut self.disk, sector, &data)
                    .map_err(SentryError::Kernel)?;
                let mut back = vec![0u8; data.len()];
                self.dm
                    .read(&mut self.dm_api, soc, &mut self.disk, sector, &mut back)
                    .map_err(SentryError::Kernel)?;
                if back != data {
                    self.outcome.silent_corruptions += 1;
                }
                self.outcome.io_bytes += 2 * data.len() as u64;
                Ok(())
            }
            FleetEvent::PowerCut { seed } => {
                let before = self.sentry.state();
                self.sentry.kernel.soc.failpoints.arm_seeded(
                    seed,
                    POWER_CUT_STEPS,
                    FaultAction::PowerCut { decay: None },
                );
                let attempt = if before == DeviceState::Locked {
                    self.unlock()
                } else {
                    self.lock()
                };
                match attempt {
                    Ok(()) => {
                        self.sentry.kernel.soc.failpoints.disarm();
                        Ok(())
                    }
                    Err(e) if e.is_power_loss() => {
                        self.sentry.kernel.soc.failpoints.disarm();
                        self.outcome.power_cuts_fired += 1;
                        let report = self.sentry.recover()?;
                        self.outcome.recoveries += 1;
                        self.outcome.recovered_entries += report.completed as u64;
                        self.outcome.quarantined_pages += report.quarantined as u64;
                        // If the cut landed before the transition
                        // committed, retry it (the fault matrix's
                        // kill-recover-retry cycle); a cut during the
                        // post-commit resume just left the state
                        // already toggled. Either way, audit every
                        // surviving page against the shadow model.
                        if self.sentry.state() == before {
                            if before == DeviceState::Locked {
                                self.unlock()?;
                            } else {
                                self.lock()?;
                            }
                        }
                        for vpn in 0..SECRET_PAGES {
                            self.checked_read(vpn)?;
                        }
                        Ok(())
                    }
                    Err(e) => Err(e),
                }
            }
            FleetEvent::Tamper { vpn, offset, bit } => {
                if self.quarantined[Device::vpn_slot(vpn)] {
                    return Ok(());
                }
                if self.sentry.state() == DeviceState::Unlocked {
                    self.lock()?;
                }
                // Only ciphertext in DRAM can be tampered with; a page
                // currently resident in an on-SoC pager slot is out of
                // the DRAM attacker's reach, so the draw is a no-op.
                let Some(frame) = self.dram_frame(vpn) else {
                    return Ok(());
                };
                flip_bit(&mut self.sentry.kernel.soc, frame, offset, bit);
                self.outcome.tampers_planted += 1;
                // Force the poisoned bytes through the on-demand
                // decrypt path; the MAC must fail closed.
                self.checked_read(vpn)
            }
            FleetEvent::AccelWedgeStorm { sector, reads } => {
                // The accelerator is only clocked up while unlocked;
                // wake it so the storm lands on the routed path rather
                // than a cold engine that would fall back anyway.
                if self.sentry.state() == DeviceState::Locked {
                    self.unlock()?;
                }
                let data = burst_image(self.index, self.io_bursts, STORM_SECTORS);
                self.io_bursts += 1;
                self.dm
                    .write(
                        &mut self.dm_api,
                        &mut self.sentry.kernel.soc,
                        &mut self.disk,
                        sector,
                        &data,
                    )
                    .map_err(SentryError::Kernel)?;
                // Every descriptor submitted while the plan is armed
                // wedges forever; completion only ever comes from the
                // watchdog + CPU fallback, and after enough abandons
                // the breaker stops submitting at all.
                self.sentry.kernel.soc.failpoints.arm(FaultPlan::at_rate(
                    "accel.submit",
                    1,
                    FaultAction::AccelWedge { wedge_ns: u64::MAX },
                ));
                let mut result = Ok(());
                for _ in 0..reads {
                    let mut back = vec![0u8; data.len()];
                    result = self
                        .dm
                        .read(
                            &mut self.dm_api,
                            &mut self.sentry.kernel.soc,
                            &mut self.disk,
                            sector,
                            &mut back,
                        )
                        .map_err(SentryError::Kernel);
                    if result.is_err() {
                        break;
                    }
                    if back != data {
                        self.outcome.silent_corruptions += 1;
                    }
                    self.outcome.io_bytes += data.len() as u64;
                }
                self.sentry.kernel.soc.failpoints.disarm();
                self.outcome.accel_storms += 1;
                result
            }
            FleetEvent::FlakyDiskInterval {
                sector,
                sectors,
                period,
            } => {
                let data = burst_image(self.index, self.io_bursts, sectors);
                self.io_bursts += 1;
                self.dm
                    .write(
                        &mut self.dm_api,
                        &mut self.sentry.kernel.soc,
                        &mut self.disk,
                        sector,
                        &data,
                    )
                    .map_err(SentryError::Kernel)?;
                self.sentry.kernel.soc.failpoints.arm(FaultPlan::at_rate(
                    "disk.read",
                    period,
                    FaultAction::DiskError,
                ));
                let mut back = vec![0u8; data.len()];
                let result = self
                    .dm
                    .read(
                        &mut self.dm_api,
                        &mut self.sentry.kernel.soc,
                        &mut self.disk,
                        sector,
                        &mut back,
                    )
                    .map_err(SentryError::Kernel);
                self.sentry.kernel.soc.failpoints.disarm();
                result?;
                if back != data {
                    self.outcome.silent_corruptions += 1;
                }
                self.outcome.io_bytes += 2 * data.len() as u64;
                self.outcome.flaky_disk_intervals += 1;
                Ok(())
            }
            FleetEvent::MemPressure {
                budget_pages,
                spawns,
            } => self.mem_pressure(budget_pages, spawns),
        };
        // The one shed lever the device (not the Sentry engine) owns:
        // while the store sits at High or worse, cap elective
        // keystream-cache fill on the dm-crypt volume; lift the cap the
        // moment pressure relents.
        if self.sentry.pressure_level() >= PressureLevel::High {
            self.dm.set_keystream_cap(Some(self.keystream_cap_high));
        } else {
            self.dm.set_keystream_cap(None);
        }
        result
    }

    /// The memory-pressure squeeze: clamp the on-SoC budget to
    /// `budget_pages`, spawn/write/exit `spawns` short-lived sensitive
    /// processes under the clamp (typed `OnSocExhausted` denials are the
    /// expected graceful outcome; anything else propagates), then lift
    /// the budget and verify the vault rode it out byte-identically.
    fn mem_pressure(&mut self, budget_pages: u64, spawns: u64) -> Result<(), SentryError> {
        self.sentry
            .set_onsoc_budget(Some(budget_pages * PAGE_SIZE))?;
        for n in 0..spawns {
            let pid = self.sentry.kernel.spawn("storm");
            self.sentry.mark_sensitive(pid)?;
            let img = page_image(self.index, SECRET_PAGES + n, budget_pages);
            match self.sentry.write(pid, 0, &img) {
                Ok(()) | Err(SentryError::OnSocExhausted) => {}
                Err(e) => {
                    // Leave the device in a sane state before surfacing.
                    self.sentry.on_exit(pid)?;
                    self.sentry.set_onsoc_budget(None)?;
                    return Err(e);
                }
            }
            self.outcome.exit_reclaimed_pages += self.sentry.on_exit(pid)?;
        }
        self.sentry.set_onsoc_budget(None)?;
        self.outcome.pressure_events += 1;
        for vpn in 0..SECRET_PAGES {
            self.checked_read(vpn)?;
        }
        Ok(())
    }

    /// Finish the run: return to the unlocked state, audit every
    /// surviving page byte-for-byte against the shadow model, and
    /// compute the end-state digest.
    ///
    /// # Errors
    ///
    /// Propagates unexpected transition or read errors.
    pub fn finish(mut self) -> Result<DeviceOutcome, SentryError> {
        if self.sentry.state() == DeviceState::Locked {
            self.unlock()?;
        }
        // Fold both governors' views (lifecycle accel + dm-crypt
        // accel/disk) into the outcome's degradation columns.
        self.sentry.sync_health();
        self.sentry.sync_pressure();
        let now = self.sentry.kernel.soc.clock.now_ns();
        let mut health = self.sentry.stats.health;
        health.merge(&self.dm.health_stats(now));
        self.outcome.health = health;
        self.outcome.pressure = self.sentry.stats.pressure;
        let mut digest = 0xCBF2_9CE4_8422_2325u64;
        let page_len = usize::try_from(PAGE_SIZE).expect("page fits usize");
        for vpn in 0..SECRET_PAGES {
            let slot = Device::vpn_slot(vpn);
            if self.quarantined[slot] {
                fnv1a(&mut digest, b"quarantined");
                continue;
            }
            let mut buf = vec![0u8; page_len];
            match self.sentry.read(self.vault, vpn * PAGE_SIZE, &mut buf) {
                Ok(()) => {
                    if buf != page_image(self.index, vpn, self.versions[slot]) {
                        self.outcome.silent_corruptions += 1;
                    }
                    fnv1a(&mut digest, &buf);
                }
                Err(SentryError::IntegrityViolation { vpn: bad, .. }) => {
                    self.note_violation(bad);
                    fnv1a(&mut digest, b"quarantined");
                }
                Err(e) => return Err(e),
            }
            fnv1a(&mut digest, &self.versions[slot].to_le_bytes());
        }
        for q in self.quarantined {
            fnv1a(&mut digest, &[u8::from(q)]);
        }
        self.outcome.digest = digest;
        self.outcome.sim_ns = self.sentry.kernel.soc.clock.now_ns();
        Ok(self.outcome)
    }
}

/// Build and drive device `index` standalone: the exact run the fleet
/// performs for this cell, reproducible from `(config.master_seed,
/// index)` alone.
///
/// # Errors
///
/// Propagates unexpected errors from any event.
pub fn run_device(config: &FleetConfig, index: u64) -> Result<DeviceOutcome, SentryError> {
    let events = event_stream(config, index);
    let mut device = Device::build(config, index)?;
    for event in &events {
        device.apply(event)?;
    }
    device.finish()
}

// ---------------------------------------------------------------------
// The sharded fleet
// ---------------------------------------------------------------------

/// What one shard accumulated over its devices.
#[derive(Debug, Clone, Default)]
struct ShardFold {
    devices: u64,
    events: u64,
    locks: u64,
    unlocks: u64,
    unlock_hist: LatencyHistogram,
    power_cuts_fired: u64,
    recoveries: u64,
    recovered_entries: u64,
    tampers_planted: u64,
    tampers_detected: u64,
    quarantined_pages: u64,
    silent_corruptions: u64,
    io_bytes: u64,
    accel_storms: u64,
    flaky_disk_intervals: u64,
    pressure_events: u64,
    exit_reclaimed_pages: u64,
    pressure: PressureStats,
    health: HealthStats,
    sim_ns: u64,
    setup_sim_ns: u64,
    device_errors: u64,
    digests: Vec<(u64, u64)>,
    degradation: Vec<(u64, u64, u64, u64)>,
    pressure_columns: Vec<(u64, u64, u64, u64)>,
}

impl ShardFold {
    fn add(&mut self, outcome: &DeviceOutcome) {
        self.devices += 1;
        self.events += outcome.events;
        self.locks += outcome.locks;
        self.unlocks += outcome.unlocks;
        self.unlock_hist.merge(&outcome.unlock_hist);
        self.power_cuts_fired += outcome.power_cuts_fired;
        self.recoveries += outcome.recoveries;
        self.recovered_entries += outcome.recovered_entries;
        self.tampers_planted += outcome.tampers_planted;
        self.tampers_detected += outcome.tampers_detected;
        self.quarantined_pages += outcome.quarantined_pages;
        self.silent_corruptions += outcome.silent_corruptions;
        self.io_bytes += outcome.io_bytes;
        self.accel_storms += outcome.accel_storms;
        self.flaky_disk_intervals += outcome.flaky_disk_intervals;
        self.pressure_events += outcome.pressure_events;
        self.exit_reclaimed_pages += outcome.exit_reclaimed_pages;
        self.pressure.merge(&outcome.pressure);
        self.health.merge(&outcome.health);
        self.sim_ns += outcome.sim_ns;
        self.setup_sim_ns += outcome.setup_sim_ns;
        self.digests.push((outcome.index, outcome.digest));
        self.degradation.push((
            outcome.index,
            outcome.health.trips,
            outcome.health.fallback_crypt_bytes,
            outcome.health.time_degraded_ns,
        ));
        self.pressure_columns.push((
            outcome.index,
            outcome.pressure.sheds,
            outcome.pressure.spills,
            outcome.pressure.denied,
        ));
    }
}

/// The aggregated fleet report.
///
/// Throughput comes in two honesties: `host_elapsed_ns` is real wall
/// clock on however many host cores exist (a single-core host pins it
/// flat), while `sim_makespan_ns` is the modeled fleet-host time — each
/// shard's devices run back-to-back on that shard's core, shards run in
/// parallel, so the makespan is the busiest shard's simulated total.
/// The scaling gate is defined over the simulated makespan, like
/// `exp_lock_scaling`'s `sim_speedup`.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Devices driven.
    pub devices: u64,
    /// Shards used.
    pub shards: u64,
    /// Events applied fleet-wide.
    pub events: u64,
    /// Lock transitions fleet-wide.
    pub locks: u64,
    /// Unlock transitions fleet-wide.
    pub unlocks: u64,
    /// Merged unlock-latency histogram.
    pub unlock_hist: LatencyHistogram,
    /// Power cuts that fired mid-transition.
    pub power_cuts_fired: u64,
    /// Recoveries run after fired cuts.
    pub recoveries: u64,
    /// Journal entries recovery rolled forward.
    pub recovered_entries: u64,
    /// Tampers planted in encrypted frames.
    pub tampers_planted: u64,
    /// Tampers surfaced as typed integrity violations.
    pub tampers_detected: u64,
    /// Pages quarantined fleet-wide.
    pub quarantined_pages: u64,
    /// Reads returning wrong bytes without an error (gated at zero).
    pub silent_corruptions: u64,
    /// Bytes moved through dm-crypt bursts.
    pub io_bytes: u64,
    /// Accel-wedge storms driven fleet-wide.
    pub accel_storms: u64,
    /// Flaky-disk intervals driven fleet-wide.
    pub flaky_disk_intervals: u64,
    /// Memory-pressure squeezes driven fleet-wide.
    pub pressure_events: u64,
    /// On-SoC pages returned by process teardown across the fleet.
    pub exit_reclaimed_pages: u64,
    /// Merged pressure-governor counters across every device: watermark
    /// transitions, sheds, encrypted spills/restores, reclaims, typed
    /// allocation denials.
    pub pressure: PressureStats,
    /// Merged health-governor statistics across every device's two
    /// governors (lifecycle and dm-crypt): trips, timeouts, fallback
    /// crypt bytes, time degraded, disk retries.
    pub health: HealthStats,
    /// Per-device degradation columns, sorted by device index:
    /// `(index, breaker trips, fallback crypt bytes, time degraded
    /// ns)` — the fleet report's view of which devices rode out
    /// hardware trouble and for how long.
    pub degradation: Vec<(u64, u64, u64, u64)>,
    /// Per-device pressure columns, sorted by device index:
    /// `(index, sheds, spills, denied)` — which devices hit the
    /// watermarks and what the governor did about it.
    pub pressure_columns: Vec<(u64, u64, u64, u64)>,
    /// Devices whose run aborted with an unexpected error (gated at
    /// zero).
    pub device_errors: u64,
    /// Shard workers that panicked (gated at zero).
    pub shard_panics: u64,
    /// Summed simulated ns across all devices.
    pub sim_busy_ns: u64,
    /// Simulated fleet makespan: the busiest shard's summed device ns.
    pub sim_makespan_ns: u64,
    /// Summed simulated `Sentry::new` ns across all devices.
    pub setup_sim_ns: u64,
    /// Host wall-clock of the whole sharded run.
    pub host_elapsed_ns: u64,
    /// Per-device end-state digests, sorted by device index.
    pub digests: Vec<(u64, u64)>,
}

impl FleetReport {
    /// Fleet throughput in events per simulated second (computed over
    /// the shard makespan — the number the scaling gate uses).
    #[must_use]
    pub fn events_per_sim_sec(&self) -> f64 {
        if self.sim_makespan_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.sim_makespan_ns as f64
        }
    }

    /// Fleet throughput in events per host second (flat on a
    /// single-core host — reported, never gated).
    #[must_use]
    pub fn events_per_host_sec(&self) -> f64 {
        if self.host_elapsed_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.host_elapsed_ns as f64
        }
    }
}

/// Run the fleet: `config.devices` independent devices, sharded
/// round-robin over `config.shards` scoped worker threads, folded into
/// one [`FleetReport`].
///
/// Shards are shared-nothing — each builds, drives, verifies, and drops
/// its own devices (one at a time, so peak memory is one device per
/// shard) and keeps private statistics; merging happens once, after the
/// scope joins. A panicking shard is contained and counted, mirroring
/// `sentry_crypto::parallel::crypt_batch`.
#[must_use]
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    let shards = config.shards.max(1).min(config.devices.max(1));
    let host_start = std::time::Instant::now();
    let mut folds: Vec<Option<ShardFold>> = Vec::with_capacity(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                scope.spawn(move || {
                    let mut fold = ShardFold::default();
                    let mut index = shard;
                    while index < config.devices {
                        match run_device(config, index as u64) {
                            Ok(outcome) => fold.add(&outcome),
                            Err(_) => fold.device_errors += 1,
                        }
                        index += shards;
                    }
                    fold
                })
            })
            .collect();
        for handle in handles {
            folds.push(handle.join().ok());
        }
    });
    let host_elapsed_ns = u64::try_from(host_start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let mut report = FleetReport {
        devices: 0,
        shards: shards as u64,
        host_elapsed_ns,
        ..FleetReport::default()
    };
    for fold in folds {
        let Some(fold) = fold else {
            report.shard_panics += 1;
            continue;
        };
        report.devices += fold.devices;
        report.events += fold.events;
        report.locks += fold.locks;
        report.unlocks += fold.unlocks;
        report.unlock_hist.merge(&fold.unlock_hist);
        report.power_cuts_fired += fold.power_cuts_fired;
        report.recoveries += fold.recoveries;
        report.recovered_entries += fold.recovered_entries;
        report.tampers_planted += fold.tampers_planted;
        report.tampers_detected += fold.tampers_detected;
        report.quarantined_pages += fold.quarantined_pages;
        report.silent_corruptions += fold.silent_corruptions;
        report.io_bytes += fold.io_bytes;
        report.accel_storms += fold.accel_storms;
        report.flaky_disk_intervals += fold.flaky_disk_intervals;
        report.pressure_events += fold.pressure_events;
        report.exit_reclaimed_pages += fold.exit_reclaimed_pages;
        report.pressure.merge(&fold.pressure);
        report.health.merge(&fold.health);
        report.device_errors += fold.device_errors;
        report.sim_busy_ns += fold.sim_ns;
        report.sim_makespan_ns = report.sim_makespan_ns.max(fold.sim_ns);
        report.setup_sim_ns += fold.setup_sim_ns;
        report.digests.extend(fold.digests);
        report.degradation.extend(fold.degradation);
        report.pressure_columns.extend(fold.pressure_columns);
    }
    report.digests.sort_unstable();
    report.degradation.sort_unstable();
    report.pressure_columns.sort_unstable();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FleetConfig {
        FleetConfig::new(6, 2).with_events_per_device(12)
    }

    #[test]
    fn fleet_is_deterministic_across_shard_counts() {
        let one = run_fleet(&small_config().with_shards(1));
        let three = run_fleet(&small_config().with_shards(3));
        assert_eq!(one.digests, three.digests);
        assert_eq!(one.events, three.events);
        assert_eq!(one.unlock_hist, three.unlock_hist);
        assert_eq!(one.silent_corruptions, 0);
        assert_eq!(one.device_errors, 0);
        assert_eq!(one.shard_panics, 0);
        assert_eq!(one.sim_busy_ns, three.sim_busy_ns);
        // Degradation accounting is part of the deterministic report:
        // same trips, fallback bytes, and time-in-degraded per device
        // regardless of shard count.
        assert_eq!(one.health, three.health);
        assert_eq!(one.degradation, three.degradation);
        // So is pressure accounting: watermark transitions, sheds,
        // spills, and denials are shard-count invariant.
        assert_eq!(one.pressure, three.pressure);
        assert_eq!(one.pressure_columns, three.pressure_columns);
        assert_eq!(one.pressure_events, three.pressure_events);
        assert_eq!(one.exit_reclaimed_pages, three.exit_reclaimed_pages);
    }

    #[test]
    fn faults_are_injected_and_contained() {
        // Enough devices/events that the default mix statistically
        // plants both fault kinds; the seed below is checked to do so.
        let config = FleetConfig::new(12, 3)
            .with_events_per_device(32)
            .with_master_seed(0xFA11);
        let report = run_fleet(&config);
        assert!(report.power_cuts_fired > 0, "no power cut fired");
        assert!(report.tampers_planted > 0, "no tamper planted");
        assert_eq!(report.tampers_detected, report.tampers_planted);
        assert_eq!(report.silent_corruptions, 0);
        assert_eq!(report.device_errors, 0);
        // The sustained-fault chaos kinds must also have landed — and
        // been ridden out by the health governor, not surfaced.
        assert!(report.accel_storms > 0, "no accel storm drawn");
        assert!(report.flaky_disk_intervals > 0, "no flaky-disk interval");
        assert!(report.health.timeouts > 0, "no wedge hit the watchdog");
        assert!(report.health.trips > 0, "no breaker trip");
        assert!(
            report.health.fallback_crypt_bytes > 0,
            "no CPU fallback crypt"
        );
        assert!(report.health.disk.recovered > 0, "no disk retry recovered");
        assert_eq!(report.health.disk.exhausted, 0, "a disk retry exhausted");
        assert!(
            report.degradation.iter().any(|&(_, trips, _, _)| trips > 0),
            "per-device degradation columns show no trips"
        );
        // The memory-pressure squeezes must have landed, driven the
        // governor through its watermarks, and leaked nothing.
        assert!(report.pressure_events > 0, "no pressure squeeze drawn");
        assert!(
            report.pressure.transitions_high > 0,
            "no squeeze crossed the High watermark: {:?}",
            report.pressure
        );
        assert!(
            report.exit_reclaimed_pages > 0,
            "teardown returned no on-SoC pages"
        );
    }

    #[test]
    fn standalone_replay_matches_fleet_cell() {
        let config = small_config();
        let fleet = run_fleet(&config);
        for index in 0..config.devices as u64 {
            let solo = run_device(&config, index).expect("standalone replay");
            let slot = usize::try_from(index).expect("index fits");
            assert_eq!(fleet.digests[slot], (index, solo.digest));
        }
    }

    #[test]
    fn sentry_stacks_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Device>();
        assert_send::<Sentry>();
    }
}
