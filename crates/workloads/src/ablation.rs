//! Ablation studies of Sentry's design choices (DESIGN.md's list).
//!
//! These go beyond the paper's figures to quantify the trade-offs its
//! design discussion argues qualitatively:
//!
//! * **locked-way budget** (§4.5 "increasing performance overhead as
//!   additional ways are locked" vs more on-SoC slots for paging);
//! * **lazy vs eager unlock decryption** (§7's on-demand choice);
//! * **table-driven vs tableless AES** (§6.1's state-vs-speed
//!   trade-off; AESSE's 100x tableless slowdown vs 6x with tables).

use crate::background::{run_background, BackgroundSpec};
use sentry_core::{Sentry, SentryConfig, SentryError};
use sentry_energy::{AesVariant, EnergyModel};
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::Soc;

/// One point of the locked-way sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaySweepPoint {
    /// Ways locked for Sentry.
    pub ways: usize,
    /// Kernel time of the background run, seconds.
    pub kernel_secs: f64,
    /// Pager faults taken.
    pub faults: u64,
    /// Predicted system-wide kernel-compile time at this budget,
    /// minutes (the cost side of the trade-off, Figure 10).
    pub compile_minutes: f64,
}

/// Sweep the locked-way budget for a thrash-prone background app: more
/// ways help the app but slow the rest of the system.
///
/// # Errors
///
/// Propagates Sentry errors.
pub fn sweep_locked_ways(spec: &BackgroundSpec) -> Result<Vec<WaySweepPoint>, SentryError> {
    let mut out = Vec::new();
    for ways in 1..=7usize {
        let r = run_background(spec, (ways * 128) as u64)?;
        out.push(WaySweepPoint {
            ways,
            kernel_secs: r.kernel_secs,
            faults: r.faults,
            compile_minutes: crate::kernelbuild::compile_minutes(ways),
        });
    }
    Ok(out)
}

/// Result of one unlock-strategy run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnlockStrategyResult {
    /// Time until the user's first interaction completes, seconds.
    pub time_to_interactive_secs: f64,
    /// Total bytes decrypted before the device re-locked.
    pub bytes_decrypted: u64,
    /// Crypto energy spent for the whole cycle, joules.
    pub joules: f64,
}

/// Compare lazy (paper) vs eager unlock decryption for a user who
/// touches only `touched_pages` of an `app_pages`-page app before
/// re-locking.
///
/// # Errors
///
/// Propagates Sentry errors.
pub fn lazy_vs_eager(
    app_pages: u64,
    touched_pages: u64,
) -> Result<(UnlockStrategyResult, UnlockStrategyResult), SentryError> {
    assert!(touched_pages <= app_pages);
    let energy = EnergyModel::nexus4();
    let run = |eager: bool| -> Result<UnlockStrategyResult, SentryError> {
        let kernel = Kernel::new(Soc::new(
            sentry_soc::SocConfig::new(sentry_soc::Platform::Nexus4).with_dram_size(128 << 20),
        ));
        let mut sentry = Sentry::new(kernel, SentryConfig::nexus4())?;
        let pid = sentry.kernel.spawn("app");
        sentry.mark_sensitive(pid)?;
        let fill = vec![0x42u8; PAGE_SIZE as usize];
        for vpn in 0..app_pages {
            sentry.write(pid, vpn * PAGE_SIZE, &fill)?;
        }
        sentry.on_lock()?;

        let t0 = sentry.kernel.soc.clock.now_ns();
        sentry.on_unlock()?;
        if eager {
            // Strawman: decrypt everything before the user sees the
            // home screen.
            let all: Vec<u64> = (0..app_pages).collect();
            sentry.touch_pages(pid, &all)?;
        }
        // The user's first interaction: touch the working pages.
        let touched: Vec<u64> = (0..touched_pages).collect();
        sentry.touch_pages(pid, &touched)?;
        let tti = (sentry.kernel.soc.clock.now_ns() - t0) as f64 / 1e9;

        let bytes = sentry.stats.ondemand_bytes;
        Ok(UnlockStrategyResult {
            time_to_interactive_secs: tti,
            bytes_decrypted: bytes,
            joules: energy.crypt_joules(AesVariant::CryptoApi, bytes),
        })
    };
    Ok((run(false)?, run(true)?))
}

/// The table-driven vs tableless AES trade-off: on-SoC state bytes vs
/// host-measured relative speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AesTradeoff {
    /// Access-protected state of the table-driven implementation, bytes.
    pub table_state_bytes: usize,
    /// Access-protected state of the tableless reference, bytes
    /// (S-boxes only).
    pub tableless_state_bytes: usize,
    /// Measured slowdown of the tableless implementation (>1).
    pub tableless_slowdown: f64,
}

/// Measure the trade-off on the host.
#[must_use]
pub fn aes_table_tradeoff() -> AesTradeoff {
    use sentry_crypto::{Aes, AesRef};
    use std::time::Instant;

    let key = [7u8; 16];
    let fast = Aes::new(&key).unwrap();
    let slow = AesRef::new(&key).unwrap();
    let mut block = [0u8; 16];

    // Best-of-N trials: the minimum is robust against scheduler noise
    // when the suite runs many test threads on few cores.
    let iters = 5_000;
    let trials = 5;
    let mut measure = |encrypt: &mut dyn FnMut(&mut [u8; 16])| -> u128 {
        encrypt(&mut block); // warm-up (page in tables/code)
        (0..trials)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    encrypt(&mut block);
                }
                t.elapsed().as_nanos().max(1)
            })
            .min()
            .unwrap()
    };
    let fast_ns = measure(&mut |b| fast.encrypt_block(b));
    let slow_ns = measure(&mut |b| slow.encrypt_block(b));

    AesTradeoff {
        // Te + Td + S + IS + Rcon.
        table_state_bytes: 2048 + 512 + 40,
        // S + IS + Rcon only.
        tableless_state_bytes: 512 + 40,
        tableless_slowdown: slow_ns as f64 / fast_ns as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::background_catalog;

    #[test]
    fn more_ways_help_the_app_but_cost_the_system() {
        let alpine = background_catalog()
            .into_iter()
            .find(|s| s.name == "alpine")
            .unwrap();
        let sweep = sweep_locked_ways(&alpine).unwrap();
        assert_eq!(sweep.len(), 7);
        // App-side: kernel time is non-increasing in ways (more slots).
        for pair in sweep.windows(2) {
            assert!(
                pair[1].kernel_secs <= pair[0].kernel_secs * 1.02,
                "{pair:?}"
            );
        }
        // System-side: compile time is strictly increasing.
        for pair in sweep.windows(2) {
            assert!(pair[1].compile_minutes > pair[0].compile_minutes);
        }
        // The knee: 2 ways (256 KB) thrash alpine, 4 ways do not.
        assert!(sweep[1].faults > 4 * sweep[3].faults);
    }

    #[test]
    fn lazy_wins_when_usage_is_brief() {
        // The §7 rationale: users often "unlock their phones, engage in
        // just a few interactions, and re-lock".
        let (lazy, eager) = lazy_vs_eager(256, 8).unwrap();
        assert!(
            lazy.time_to_interactive_secs * 5.0 < eager.time_to_interactive_secs,
            "lazy {} vs eager {}",
            lazy.time_to_interactive_secs,
            eager.time_to_interactive_secs
        );
        assert!(lazy.joules < eager.joules / 5.0);
        assert!(lazy.bytes_decrypted < eager.bytes_decrypted);
    }

    #[test]
    fn lazy_and_eager_converge_when_everything_is_touched() {
        let (lazy, eager) = lazy_vs_eager(64, 64).unwrap();
        let ratio = eager.time_to_interactive_secs / lazy.time_to_interactive_secs;
        assert!((0.9..1.4).contains(&ratio), "ratio {ratio}");
        assert_eq!(lazy.bytes_decrypted, eager.bytes_decrypted);
    }

    #[test]
    fn tables_buy_speed_for_state() {
        let t = aes_table_tradeoff();
        assert!(t.table_state_bytes > 4 * t.tableless_state_bytes);
        assert!(
            t.tableless_slowdown > 2.0,
            "reference must be much slower, got {:.1}x",
            t.tableless_slowdown
        );
    }
}
