//! Workload models driving the paper's evaluation (§8).
//!
//! Each module models one family of workloads from the evaluation and
//! drives the *real* Sentry machinery (page tables, faults, the pager,
//! AES On SoC) with synthetic-but-calibrated access patterns:
//!
//! * [`apps`] — the four Android applications (Contacts, Google Maps,
//!   Twitter, the ServeStream MP3 app) whose lock/resume/runtime
//!   behaviour produces Figures 2–5;
//! * [`background`] — the three Linux applications (alpine, vlock,
//!   xmms2) run in the background on the locked Tegra prototype,
//!   producing Figures 6–8;
//! * [`filebench`] — the randread/randrw filebench workloads over
//!   dm-crypt, producing Figure 9;
//! * [`kernelbuild`] — the `make -j 5` Linux-kernel-compilation model
//!   under reduced effective cache, producing Figure 10;
//! * [`fleet`] — beyond the paper: N independent device stacks driven
//!   by a seeded heavy-traffic event stream (lock/unlock churn,
//!   background paging, dm-crypt bursts, power cuts, tampers), sharded
//!   shared-nothing across worker threads with aggregated percentile
//!   metrics.
//!
//! The footprint numbers (resident megabytes, DMA-region sizes, script
//! durations) come from the paper's text where stated (e.g., DMA regions
//! of 1 MB for Contacts, 3 MB for Twitter, 15 MB for Google Maps) and
//! are otherwise chosen so the reproduced figures match the published
//! shapes; EXPERIMENTS.md records both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod apps;
pub mod background;
pub mod filebench;
pub mod fleet;
pub mod kernelbuild;

pub use ablation::{aes_table_tradeoff, lazy_vs_eager, sweep_locked_ways};
pub use apps::{app_catalog, run_app_cycle, AppCycleResult, AppSpec};
pub use background::{background_catalog, run_background, BackgroundResult, BackgroundSpec};
pub use filebench::{run_filebench, CryptoSetup, FilebenchResult, FilebenchSpec, Workload};
pub use fleet::{
    run_device, run_fleet, DeviceOutcome, EventMix, FleetConfig, FleetEvent, FleetReport,
    LatencyHistogram,
};
pub use kernelbuild::compile_minutes;
