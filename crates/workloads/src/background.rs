//! Background computation on the locked Tegra prototype
//! (Figures 6–8).
//!
//! Three Linux applications were ported to Sentry: **alpine** (a pine-
//! based mail reader), **vlock** (a console lock screen), and **xmms2**
//! (an MP3 player) — "the types of actions users do when their
//! smartphones are locked". Each runs in the background for several
//! seconds while the device is locked, with its working set paged
//! through 256 KB or 512 KB of locked L2 cache, and the experiment
//! reports time spent inside the kernel with and without Sentry.
//!
//! Access traces are synthesized per app:
//!
//! * alpine — random-ish references over a mail-index working set
//!   larger than 256 KB of slots (so the small configuration thrashes);
//! * vlock — a tiny working set touched a few times;
//! * xmms2 — a streaming scan over megabytes of MP3 data interleaved
//!   with hot code/heap pages (the stream is compulsory-miss bound, so
//!   even 512 KB keeps an appreciable overhead — the paper's 48%).

use sentry_core::{Sentry, SentryConfig, SentryError};
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::rng::DetRng;
use sentry_soc::Soc;

/// Static description of one background app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundSpec {
    /// Application name.
    pub name: &'static str,
    /// Hot working set in pages (index/code/heap).
    pub hot_pages: u64,
    /// Sequentially streamed pages (0 for non-streaming apps).
    pub stream_pages: u64,
    /// One in `stream_every` operations touches the stream (0 = never).
    pub stream_every: u32,
    /// Number of kernel-entering operations in the run.
    pub operations: u32,
    /// Base in-kernel cost per operation without Sentry, nanoseconds.
    pub base_op_ns: u64,
}

/// The three ported applications.
#[must_use]
pub fn background_catalog() -> [BackgroundSpec; 3] {
    [
        BackgroundSpec {
            name: "alpine",
            hot_pages: 120, // 480 KB of mail index and heap
            stream_pages: 0,
            stream_every: 0,
            operations: 4500,
            base_op_ns: 110_000,
        },
        BackgroundSpec {
            name: "vlock",
            hot_pages: 12,
            stream_pages: 0,
            stream_every: 0,
            operations: 800,
            base_op_ns: 140_000,
        },
        BackgroundSpec {
            name: "xmms2",
            hot_pages: 8,       // decoder code/heap stays tiny
            stream_pages: 1550, // ~6 MB of MP3 data over the run
            stream_every: 3,
            operations: 4650,
            base_op_ns: 280_000,
        },
    ]
}

/// Result of one background run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundResult {
    /// App name.
    pub name: &'static str,
    /// Locked-cache budget used (bytes of on-SoC slots), or 0 for the
    /// no-Sentry baseline.
    pub locked_bytes: u64,
    /// Time spent in the kernel, seconds.
    pub kernel_secs: f64,
    /// Pager faults taken.
    pub faults: u64,
}

/// Generate the access trace (VPN per operation).
fn trace(spec: &BackgroundSpec) -> Vec<u64> {
    let mut rng = DetRng::new(0xBAC0 ^ spec.hot_pages ^ (spec.stream_pages << 17));
    let mut out = Vec::with_capacity(spec.operations as usize);
    let mut stream_pos = 0u64;
    for i in 0..spec.operations {
        if spec.stream_every > 0 && spec.stream_pages > 0 && i % spec.stream_every == 0 {
            // Streaming touch: the next page of MP3 data.
            out.push(spec.hot_pages + (stream_pos % spec.stream_pages));
            stream_pos += 1;
        } else {
            // Hot-set touch.
            out.push(rng.next_below(spec.hot_pages));
        }
    }
    out
}

/// Run `spec` in the background of a locked Tegra device with
/// `locked_kb` of on-SoC slot budget (256 or 512 in the paper), or with
/// Sentry disabled when `locked_kb == 0`.
///
/// # Errors
///
/// Propagates Sentry errors.
pub fn run_background(
    spec: &BackgroundSpec,
    locked_kb: u64,
) -> Result<BackgroundResult, SentryError> {
    let kernel = Kernel::new(Soc::new(
        sentry_soc::SocConfig::new(sentry_soc::Platform::Tegra3).with_dram_size(128 << 20),
    ));
    let with_sentry = locked_kb > 0;

    // Slot budget: the locked ways hold the volatile key page, the AES
    // state page, and the page slots.
    let (config, slot_limit) = if with_sentry {
        let ways = (locked_kb / 128).max(1) as usize;
        let total_pages = locked_kb * 1024 / PAGE_SIZE;
        (
            SentryConfig::tegra3_locked_l2(ways),
            Some((total_pages as usize).saturating_sub(2)),
        )
    } else {
        (SentryConfig::tegra3_locked_l2(1), None)
    };
    // Figures 6–8 calibrate against the paper's prototype, which is
    // confidentiality-only — no per-page MAC on the pager path.
    let config = config.without_integrity();
    let config = match slot_limit {
        Some(limit) => config.with_slot_limit(limit),
        None => config,
    };

    let mut sentry = Sentry::new(kernel, config)?;
    let pid = sentry.kernel.spawn(spec.name);

    // Populate the full working set.
    let total_pages = spec.hot_pages + spec.stream_pages;
    let fill = vec![0x5Au8; PAGE_SIZE as usize];
    for vpn in 0..total_pages {
        sentry.write(pid, vpn * PAGE_SIZE, &fill)?;
    }

    if with_sentry {
        sentry.mark_sensitive(pid)?;
        sentry.on_lock()?;
    }

    let accesses = trace(spec);
    let faults_before = sentry.pager.stats.faults;
    let t0 = sentry.kernel.soc.clock.now_ns();
    let mut buf = [0u8; 64];
    for &vpn in &accesses {
        // The operation's own kernel work...
        sentry.kernel.soc.clock.advance(spec.base_op_ns);
        // ...plus its memory touch (which pages through Sentry while
        // locked).
        sentry.read(pid, vpn * PAGE_SIZE + 128, &mut buf)?;
    }
    let kernel_ns = sentry.kernel.soc.clock.now_ns() - t0;

    Ok(BackgroundResult {
        name: spec.name,
        locked_bytes: locked_kb * 1024,
        kernel_secs: kernel_ns as f64 / 1e9,
        faults: sentry.pager.stats.faults - faults_before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> BackgroundSpec {
        background_catalog()
            .into_iter()
            .find(|s| s.name == name)
            .expect("catalog app")
    }

    #[test]
    fn alpine_overhead_matches_figure_6() {
        // Paper: "a factor of 2.74 in the case of alpine when running
        // with 256 KB of locked L2 cache"; noticeably better at 512 KB.
        let base = run_background(&spec("alpine"), 0).unwrap();
        let small = run_background(&spec("alpine"), 256).unwrap();
        let large = run_background(&spec("alpine"), 512).unwrap();
        let factor_small = small.kernel_secs / base.kernel_secs;
        let factor_large = large.kernel_secs / base.kernel_secs;
        assert!(
            (2.2..3.3).contains(&factor_small),
            "256 KB factor {factor_small:.2} (paper 2.74)"
        );
        assert!(
            factor_large < factor_small * 0.6,
            "512 KB must be much better"
        );
    }

    #[test]
    fn vlock_overhead_is_small() {
        // Figure 7: vlock's kernel time is ~0.1 s and Sentry adds little.
        let base = run_background(&spec("vlock"), 0).unwrap();
        let small = run_background(&spec("vlock"), 256).unwrap();
        assert!(base.kernel_secs < 0.2);
        assert!(small.kernel_secs / base.kernel_secs < 1.5);
    }

    #[test]
    fn xmms2_keeps_48_percent_overhead_at_512kb() {
        // Paper: "48% in the case of xmms2 when running with 512 KB".
        let base = run_background(&spec("xmms2"), 0).unwrap();
        let large = run_background(&spec("xmms2"), 512).unwrap();
        let overhead = large.kernel_secs / base.kernel_secs - 1.0;
        assert!(
            (0.30..0.70).contains(&overhead),
            "512 KB overhead {overhead:.2} (paper 0.48)"
        );
        // The stream is compulsory-miss bound: more cache helps less
        // than for alpine.
        let small = run_background(&spec("xmms2"), 256).unwrap();
        assert!(small.kernel_secs >= large.kernel_secs);
    }

    #[test]
    fn apps_remain_responsive() {
        // "applications remain responsive when run in the background"
        // — no access takes pathologically long; total runtime stays in
        // seconds.
        for s in background_catalog() {
            let r = run_background(&s, 256).unwrap();
            assert!(r.kernel_secs < 10.0, "{}: {}", s.name, r.kernel_secs);
        }
    }

    #[test]
    fn baseline_takes_no_pager_faults() {
        let base = run_background(&spec("alpine"), 0).unwrap();
        assert_eq!(base.faults, 0);
    }
}
