//! Active DRAM-tamper adversary against the integrity plane.
//!
//! The cold-boot/bus/DMA attackers of [`crate::matrix`] only *read*
//! memory. This module models the stronger §3 adversary who can also
//! *write* DRAM while the device runs — rowhammer-style bit disturbance,
//! splicing ciphertext between frames, or replaying a stale-epoch
//! ciphertext recorded before an earlier unlock. Confidentiality alone
//! cannot stop such an attacker from corrupting what the victim will
//! later decrypt; the per-page CMAC tags in the on-SoC store (out of the
//! attacker's reach) must catch every manipulation at decrypt time.
//!
//! [`run_tamper_matrix`] drives a vector × decrypt-path grid. Each cell
//! builds a fresh world, plants one tamper while the target pages sit
//! encrypted in DRAM, then forces the bytes through one specific decrypt
//! path — the on-demand fault, the fault-cluster readahead, the unlock
//! DMA batch, the background sweeper, or crash recovery — and checks:
//!
//! * **Detection** — the tamper surfaces as a typed
//!   `IntegrityViolation` (directly, or as a quarantined page whose
//!   next explicit access errors);
//! * **No silent corruption** — no read anywhere in the world ever
//!   returns bytes that differ from the written plaintext without an
//!   error;
//! * **Liveness** — untampered pages keep working and a full
//!   lock/unlock cycle still succeeds after the quarantine.

use crate::faultmatrix::{public_page, secret_page, Actors, Scenario};
use crate::AttackReport;
use sentry_core::{Sentry, SentryError};
use sentry_kernel::pagetable::Backing;
use sentry_kernel::Pid;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::cache::LINE_SIZE;
use sentry_soc::failpoint::{FaultAction, FaultPlan};
use sentry_soc::Soc;

/// How the attacker manipulates ciphertext in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperVector {
    /// Flip a single bit of one ciphertext page (bus glitch, rowhammer).
    BitFlip,
    /// Swap the ciphertext of two encrypted frames (both images are
    /// valid ciphertext — only the tag's IV binding to `(pid, vpn)`
    /// tells them apart).
    Splice,
    /// Record a frame's ciphertext under one lock epoch and write it
    /// back after the page was re-encrypted under a later epoch (a
    /// fully valid stale image; only the epoch in the tag IV differs).
    Replay,
}

impl TamperVector {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TamperVector::BitFlip => "bit-flip",
            TamperVector::Splice => "splice",
            TamperVector::Replay => "epoch-replay",
        }
    }
}

/// Which decrypt path is forced to consume the tampered bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecryptPath {
    /// `handle_fault` on the tampered page itself.
    OnDemand,
    /// The tampered page rides into a fault-cluster readahead for a
    /// *clean* neighbour.
    Readahead,
    /// The eager DMA-region batch inside `on_unlock`.
    UnlockBatch,
    /// The background decrypt sweeper (`scheduler_tick`).
    Sweeper,
    /// `Sentry::recover` rolling an interrupted unlock forward.
    Recovery,
}

impl DecryptPath {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DecryptPath::OnDemand => "on-demand fault",
            DecryptPath::Readahead => "readahead",
            DecryptPath::UnlockBatch => "unlock batch",
            DecryptPath::Sweeper => "sweeper",
            DecryptPath::Recovery => "recovery",
        }
    }
}

/// What one tamper cell observed.
#[derive(Debug, Clone)]
pub struct TamperCell {
    /// The decrypt path that consumed the tampered bytes.
    pub path: DecryptPath,
    /// The manipulation planted.
    pub vector: TamperVector,
    /// The tamper surfaced as a typed integrity violation.
    pub detected: bool,
    /// Pages in quarantine at the end of the cell.
    pub quarantined: usize,
    /// Reads that returned wrong bytes *without* an error (must be 0).
    pub silent_corruptions: usize,
    /// Untampered pages all read back intact and a lock/unlock cycle
    /// still worked after the quarantine.
    pub survivors_intact: bool,
    /// Human-readable trace of what happened.
    pub evidence: String,
}

impl TamperCell {
    /// The defence held: detected, nothing silently corrupted, rest of
    /// the system alive.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.detected && self.silent_corruptions == 0 && self.survivors_intact
    }
}

/// The full vector × path grid for one scenario.
#[derive(Debug, Clone)]
pub struct TamperOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Every cell, in grid order.
    pub cells: Vec<TamperCell>,
}

impl TamperOutcome {
    /// Every cell detected its tamper.
    #[must_use]
    pub fn all_detected(&self) -> bool {
        self.cells.iter().all(|c| c.detected)
    }

    /// Total silent-corruption observations (must be 0).
    #[must_use]
    pub fn silent_corruptions(&self) -> usize {
        self.cells.iter().map(|c| c.silent_corruptions).sum()
    }

    /// Fraction of cells whose tamper was detected.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.cells.is_empty() {
            return 1.0;
        }
        let hit = self.cells.iter().filter(|c| c.detected).count();
        hit as f64 / self.cells.len() as f64
    }

    /// Every cell clean.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.cells.iter().all(TamperCell::clean)
    }

    /// Summarize as an [`AttackReport`] row (the Table 3 idiom).
    #[must_use]
    pub fn report(&self) -> AttackReport {
        if self.clean() {
            AttackReport::safe(
                "active DRAM tamper",
                self.scenario.clone(),
                format!(
                    "{} tampers across {} decrypt paths: all detected, \
                     0 silent corruptions",
                    self.cells.len(),
                    5
                ),
            )
        } else {
            let missed = self.cells.iter().filter(|c| !c.clean()).count();
            AttackReport::broken(
                "active DRAM tamper",
                self.scenario.clone(),
                format!(
                    "{missed}/{} cells leaked or corrupted silently",
                    self.cells.len()
                ),
            )
        }
    }
}

/// The DRAM frame currently backing `(pid, vpn)`.
/// The DRAM frame currently backing `(pid, vpn)`.
///
/// Public so other harnesses (the fleet event stream) can aim the same
/// tamper helpers at a specific victim page.
///
/// # Panics
///
/// Panics if the vpn is unmapped or currently resident on-SoC.
#[must_use]
pub fn frame_of(s: &Sentry, pid: Pid, vpn: u64) -> u64 {
    match s.kernel.procs[&pid]
        .page_table
        .get(vpn)
        .expect("target vpn mapped")
        .backing
    {
        Backing::Dram(frame) => frame,
        Backing::OnSoc(_) => panic!("target page unexpectedly on-SoC"),
    }
}

/// Read a frame's raw DRAM bytes (the attacker's probe view).
#[must_use]
pub fn raw_read_page(soc: &mut Soc, frame: u64) -> Vec<u8> {
    let mut page = vec![0u8; PAGE_SIZE as usize];
    soc.dram.read(frame, &mut page);
    page
}

/// Write raw bytes into a frame behind the cache's back, dropping any
/// stale cache lines so the CPU observes the tampered image — the same
/// model as [`FaultAction::TamperDramBit`].
pub fn raw_write_page(soc: &mut Soc, frame: u64, bytes: &[u8]) {
    soc.dram.write(frame, bytes);
    let mut addr = frame;
    while addr < frame + PAGE_SIZE {
        soc.cache.invalidate_line(addr);
        addr += LINE_SIZE as u64;
    }
}

/// Flip one ciphertext bit in `frame`.
pub fn flip_bit(soc: &mut Soc, frame: u64, offset: u64, bit: u8) {
    let mut page = raw_read_page(soc, frame);
    page[offset as usize] ^= 1 << (bit & 7);
    raw_write_page(soc, frame, &page);
}

/// Swap the full ciphertext images of two frames.
fn splice_frames(soc: &mut Soc, a: u64, b: u64) {
    let pa = raw_read_page(soc, a);
    let pb = raw_read_page(soc, b);
    raw_write_page(soc, a, &pb);
    raw_write_page(soc, b, &pa);
}

/// The plaintext a vault/public page is expected to hold (the scenario
/// builder's images — this module never uses `Op::Write`).
fn expected_page(scn: &Scenario, vpn: u64) -> Vec<u8> {
    if vpn < scn.secret_pages {
        secret_page(vpn, 0x11)
    } else {
        public_page()
    }
}

/// Audit the whole world after the attack: count reads that return
/// wrong bytes without an error, and check every *untampered* page
/// reads back intact. Quarantined tampered pages erroring is the
/// expected outcome, not a liveness failure.
fn audit(
    s: &mut Sentry,
    scn: &Scenario,
    actors: &Actors,
    tampered: &[u64],
) -> (usize, bool, Vec<String>) {
    let mut silent = 0usize;
    let mut survivors_intact = true;
    let mut notes = Vec::new();
    for vpn in 0..=scn.secret_pages {
        let mut page = vec![0u8; PAGE_SIZE as usize];
        match s.read(actors.vault, vpn * PAGE_SIZE, &mut page) {
            Ok(()) => {
                if page != expected_page(scn, vpn) {
                    silent += 1;
                    notes.push(format!("vpn {vpn}: wrong bytes returned without error"));
                }
            }
            Err(e) if e.is_integrity_violation() => {
                if !tampered.contains(&vpn) {
                    survivors_intact = false;
                    notes.push(format!("vpn {vpn}: untampered page quarantined: {e}"));
                }
            }
            Err(e) => {
                survivors_intact = false;
                notes.push(format!("vpn {vpn}: unexpected error: {e}"));
            }
        }
    }
    (silent, survivors_intact, notes)
}

/// Drive the background sweeper until the residual gauge reaches zero.
/// Returns whether it drained within the tick budget — quarantined
/// frames are excluded from the gauge, so a poisoned page must not make
/// this spin.
fn drain_sweeper(s: &mut Sentry) -> Result<bool, SentryError> {
    for _ in 0..16 {
        if s.scheduler_tick()?.residual_pages == 0 {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Plant `vector` on the pages `path` will consume, with the world
/// locked and the targets encrypted in DRAM. Returns the tampered vpns.
fn plant(
    s: &mut Sentry,
    actors: &Actors,
    path: DecryptPath,
    vector: TamperVector,
) -> Result<Vec<u64>, SentryError> {
    // Primary target per path: the page that specific path decrypts.
    // vpn 2 is the DMA region (unlock batch / recovery); vpn 1 fronts
    // the cluster-mate of vpn 0 (readahead); vpn 3 is a plain private
    // page (on-demand, sweeper).
    let target = match path {
        DecryptPath::OnDemand | DecryptPath::Sweeper => 3,
        DecryptPath::Readahead => 1,
        DecryptPath::UnlockBatch | DecryptPath::Recovery => 2,
    };
    match vector {
        TamperVector::BitFlip => {
            s.on_lock()?;
            s.kernel.soc.cache_maintenance_flush();
            let frame = frame_of(s, actors.vault, target);
            flip_bit(&mut s.kernel.soc, frame, 1234, 5);
            Ok(vec![target])
        }
        TamperVector::Splice => {
            // Splice the target against another encrypted private page
            // (both tags break: each frame now fronts the other's IV).
            let other = if target == 3 { 1 } else { 3 };
            s.on_lock()?;
            s.kernel.soc.cache_maintenance_flush();
            let fa = frame_of(s, actors.vault, target);
            let fb = frame_of(s, actors.vault, other);
            splice_frames(&mut s.kernel.soc, fa, fb);
            Ok(vec![target, other])
        }
        TamperVector::Replay => {
            // Record the epoch-1 ciphertext, let the victim decrypt and
            // re-encrypt under epoch 2, then write the stale image back.
            s.on_lock()?;
            s.kernel.soc.cache_maintenance_flush();
            let frame = frame_of(s, actors.vault, target);
            let stale = raw_read_page(&mut s.kernel.soc, frame);
            s.on_unlock()?;
            s.touch_pages(actors.vault, &[target])?;
            s.on_lock()?;
            s.kernel.soc.cache_maintenance_flush();
            let frame2 = frame_of(s, actors.vault, target);
            raw_write_page(&mut s.kernel.soc, frame2, &stale);
            Ok(vec![target])
        }
    }
}

/// Run one cell of the grid.
///
/// # Errors
///
/// Propagates unexpected (non-injected, non-violation) errors.
///
/// # Panics
///
/// Panics if a target page is unmapped or on-SoC when the tamper is
/// planted (scenario invariants).
pub fn run_cell(
    scn: &Scenario,
    path: DecryptPath,
    vector: TamperVector,
) -> Result<TamperCell, SentryError> {
    let (mut s, actors) = scn.build()?;
    let mut evidence = Vec::new();

    // Recovery exercises its own kill-then-tamper prologue; every other
    // path starts from the planted, locked world.
    let tampered = if path == DecryptPath::Recovery {
        // Kill the unlock at its first publish: the DMA page's journal
        // entry is open, its ciphertext still in DRAM, its tag still in
        // the on-SoC store. Then corrupt the in-flight frame.
        s.on_lock()?;
        let frame = frame_of(&s, actors.vault, 2);
        s.kernel.soc.failpoints.arm(FaultPlan::at_site(
            "txn.publish",
            0,
            FaultAction::PowerCut { decay: None },
        ));
        let err = s.on_unlock().expect_err("armed power cut must fire");
        assert!(err.is_power_loss(), "unexpected unlock error: {err}");
        s.kernel.soc.failpoints.disarm();
        flip_bit(&mut s.kernel.soc, frame, 77, 2);
        let report = s.recover()?;
        evidence.push(format!(
            "recovery completed {} entries with the in-flight frame tampered",
            report.completed
        ));
        // Recovery must quarantine the frame, not roll it forward.
        s.on_unlock()?;
        vec![2]
    } else {
        plant(&mut s, &actors, path, vector)?
    };

    // Force the tampered bytes through the chosen decrypt path.
    let mut detected = false;
    let mut path_ok = true;
    match path {
        DecryptPath::OnDemand => {
            s.on_unlock()?;
            let err = s.touch_pages(actors.vault, &tampered[..1]);
            detected = matches!(&err, Err(e) if e.is_integrity_violation());
            evidence.push(format!("direct touch -> {err:?}"));
        }
        DecryptPath::Readahead => {
            s.on_unlock()?;
            // vpn 0 is clean; its fault-cluster readahead pulls vpn 1.
            s.touch_pages(actors.vault, &[0])?;
            let pulled = s.integrity.quarantined_count();
            evidence.push(format!("clean neighbour touch quarantined {pulled} pages"));
        }
        DecryptPath::UnlockBatch => {
            // The unlock itself must survive, quarantining the DMA page.
            s.on_unlock()?;
            evidence.push(format!(
                "unlock survived with {} pages quarantined",
                s.integrity.quarantined_count()
            ));
        }
        DecryptPath::Sweeper => {
            s.on_unlock()?;
            let drained = drain_sweeper(&mut s)?;
            evidence.push(format!(
                "sweeper drained={drained} around {} quarantined pages",
                s.integrity.quarantined_count()
            ));
            path_ok &= drained;
        }
        DecryptPath::Recovery => {}
    }

    // Whichever path consumed the bytes, every tampered page's next
    // explicit access must surface the typed violation.
    for &vpn in &tampered {
        let err = s.touch_pages(actors.vault, &[vpn]);
        if matches!(&err, Err(e) if e.is_integrity_violation()) {
            detected = true;
        } else if path == DecryptPath::OnDemand {
            // The direct touch above already decided this cell.
        } else {
            detected = false;
            evidence.push(format!("vpn {vpn} touch after attack -> {err:?}"));
            break;
        }
    }

    let quarantined = s.integrity.quarantined_count();
    let (silent, audit_ok, notes) = audit(&mut s, scn, &actors, &tampered);
    let mut survivors_intact = audit_ok && path_ok;
    evidence.extend(notes);

    // Liveness: a full lock/unlock cycle still works with pages in
    // quarantine, and the survivors are intact afterwards too.
    if s.on_lock().is_err() || s.on_unlock().is_err() {
        survivors_intact = false;
        evidence.push("lock/unlock cycle failed after quarantine".into());
    } else {
        let (silent2, ok2, notes2) = audit(&mut s, scn, &actors, &tampered);
        survivors_intact &= ok2 && silent2 == 0;
        evidence.extend(notes2);
    }

    Ok(TamperCell {
        path,
        vector,
        detected,
        quarantined,
        silent_corruptions: silent,
        survivors_intact,
        evidence: evidence.join("; "),
    })
}

/// Run the full vector × path grid against `scn`. The recovery path is
/// driven with the bit-flip vector only (splice/replay need a second
/// committed epoch, which an interrupted unlock doesn't have).
///
/// # Errors
///
/// Propagates the first unexpected error from any cell.
pub fn run_tamper_matrix(scn: &Scenario) -> Result<TamperOutcome, SentryError> {
    let mut cells = Vec::new();
    for vector in [
        TamperVector::BitFlip,
        TamperVector::Splice,
        TamperVector::Replay,
    ] {
        for path in [
            DecryptPath::OnDemand,
            DecryptPath::Readahead,
            DecryptPath::UnlockBatch,
            DecryptPath::Sweeper,
        ] {
            cells.push(run_cell(scn, path, vector)?);
        }
    }
    cells.push(run_cell(scn, DecryptPath::Recovery, TamperVector::BitFlip)?);
    Ok(TamperOutcome {
        scenario: scn.name.to_string(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tamper_cell_is_detected_with_no_silent_corruption() {
        let outcome = run_tamper_matrix(&Scenario::tegra3(11)).unwrap();
        assert_eq!(outcome.cells.len(), 13);
        for cell in &outcome.cells {
            assert!(
                cell.clean(),
                "{} via {}: detected={} silent={} survivors={} [{}]",
                cell.vector.name(),
                cell.path.name(),
                cell.detected,
                cell.silent_corruptions,
                cell.survivors_intact,
                cell.evidence
            );
        }
        assert!((outcome.detection_rate() - 1.0).abs() < f64::EPSILON);
        assert!(!outcome.report().recovered, "defence must hold");
    }

    #[test]
    fn parallel_engine_detects_tampers_too() {
        let outcome = run_tamper_matrix(&Scenario::tegra3_parallel(12)).unwrap();
        assert!(outcome.clean(), "{:#?}", outcome.cells);
    }

    #[test]
    fn xts_and_ctr_modes_detect_every_tamper() {
        // The non-chaining page ciphers must hold the same 13/13 line:
        // the integrity CMAC binds (pid, vpn, epoch) through the IV
        // regardless of mode, so bit flips, frame splices, and
        // stale-epoch replays all still break the tag.
        for scn in [Scenario::tegra3_xts(14), Scenario::tegra3_ctr(15)] {
            let outcome = run_tamper_matrix(&scn).unwrap();
            assert_eq!(outcome.cells.len(), 13);
            assert!(
                outcome.clean(),
                "{} tamper matrix not clean: {:#?}",
                scn.name,
                outcome.cells
            );
            assert!((outcome.detection_rate() - 1.0).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn disabled_integrity_plane_is_actually_broken() {
        // Sanity check on the harness itself: without the tag store the
        // bit flip decrypts to garbage and nobody notices — the exact
        // failure mode the plane exists to close.
        let mut scn = Scenario::tegra3(13);
        scn.config = scn.config.clone().without_integrity();
        let cell = run_cell(&scn, DecryptPath::OnDemand, TamperVector::BitFlip).unwrap();
        assert!(!cell.detected);
        assert!(cell.silent_corruptions > 0, "{}", cell.evidence);
    }
}
