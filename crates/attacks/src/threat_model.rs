//! The threat model of §3, Table 1, as a typed enumeration.
//!
//! Keeping the scope machine-readable lets the experiment harness print
//! Table 1 and lets tests assert that every in-scope attack has an
//! implementation in this crate (no silently-dropped threat).

/// An attack class from the paper's threat-model discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackClass {
    /// Exploit RAM data remanence across a reset (§3.1).
    ColdBoot,
    /// Passive probe on the memory bus (§3.1).
    BusMonitoring,
    /// Rogue/compromised DMA peripheral (§3.1).
    DmaAttack,
    /// Malware / software compromise of the running system (§3.2).
    SoftwareAttack,
    /// Timing/power side channels of the crypto implementation (§3.2).
    PhysicalSideChannel,
    /// Injecting or modifying code (bus write override etc., §3.2).
    CodeInjection,
    /// Debug-port extraction (§3.2).
    Jtag,
    /// Decapping/electron-microscope analysis of the SoC (§3.2).
    SophisticatedPhysical,
}

/// Scope of an attack class in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Sentry defends against it; implemented in this crate.
    InScope,
    /// Explicitly out of scope, with the paper's rationale.
    OutOfScope(&'static str),
}

impl AttackClass {
    /// All classes, in Table 1 order.
    #[must_use]
    pub fn all() -> [AttackClass; 8] {
        [
            AttackClass::ColdBoot,
            AttackClass::BusMonitoring,
            AttackClass::DmaAttack,
            AttackClass::SoftwareAttack,
            AttackClass::PhysicalSideChannel,
            AttackClass::CodeInjection,
            AttackClass::Jtag,
            AttackClass::SophisticatedPhysical,
        ]
    }

    /// Table 1's classification.
    #[must_use]
    pub fn scope(self) -> Scope {
        match self {
            AttackClass::ColdBoot | AttackClass::BusMonitoring | AttackClass::DmaAttack => {
                Scope::InScope
            }
            AttackClass::SoftwareAttack => Scope::OutOfScope(
                "requires running compromised software; Sentry targets attacks on a device in the attacker's hands",
            ),
            AttackClass::PhysicalSideChannel => Scope::OutOfScope(
                "timing/power analysis needs high sophistication without code execution on the device",
            ),
            AttackClass::CodeInjection => Scope::OutOfScope(
                "bus-override writes are electrically unsound; expert estimate: several $100k minimum",
            ),
            AttackClass::Jtag => Scope::OutOfScope(
                "preventable: depopulated connectors, hardware fuses, authenticated JTAG",
            ),
            AttackClass::SophisticatedPhysical => Scope::OutOfScope(
                "electron-microscope extraction takes specialized equipment and months",
            ),
        }
    }

    /// Human-readable name matching Table 1's rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttackClass::ColdBoot => "cold boot",
            AttackClass::BusMonitoring => "bus monitoring",
            AttackClass::DmaAttack => "DMA attacks",
            AttackClass::SoftwareAttack => "software attacks (malware)",
            AttackClass::PhysicalSideChannel => "physical side-channel attacks",
            AttackClass::CodeInjection => "code-injection",
            AttackClass::Jtag => "JTAG attacks",
            AttackClass::SophisticatedPhysical => "sophisticated physical attacks",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_in_scope_and_five_out() {
        let in_scope: Vec<_> = AttackClass::all()
            .into_iter()
            .filter(|a| a.scope() == Scope::InScope)
            .collect();
        assert_eq!(
            in_scope,
            vec![
                AttackClass::ColdBoot,
                AttackClass::BusMonitoring,
                AttackClass::DmaAttack
            ]
        );
        assert_eq!(AttackClass::all().len() - in_scope.len(), 5);
    }

    #[test]
    fn every_in_scope_class_has_an_implementation() {
        // Compile-time linkage: the three in-scope classes map to the
        // three attack modules of this crate.
        for class in AttackClass::all() {
            if class.scope() == Scope::InScope {
                match class {
                    AttackClass::ColdBoot => {
                        let _ = crate::coldboot::table2;
                    }
                    AttackClass::BusMonitoring => {
                        let _ = crate::busmon::BusMonitor::attach_new;
                    }
                    AttackClass::DmaAttack => {
                        let _ = crate::dmaattack::dma_dump;
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn out_of_scope_rationales_are_present() {
        for class in AttackClass::all() {
            if let Scope::OutOfScope(why) = class.scope() {
                assert!(!why.is_empty(), "{}", class.name());
            }
        }
    }
}
