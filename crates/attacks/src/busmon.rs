//! Bus monitoring attacks (§3.1).
//!
//! A bus monitor is a passive probe on the memory bus: it sees every
//! transaction between the SoC and DRAM — addresses and data. Beyond
//! grepping traffic for secrets, it enables an access-pattern side
//! channel: AES implementations look up precomputed tables whose *entry
//! indices* are key-dependent, and "previous work has shown fast ways to
//! break AES if its state access patterns are known".
//!
//! The monitor here is an ordinary [`BusObserver`]; attaching it needs
//! physical access only.

use sentry_soc::bus::{BusObserver, BusOp, BusTransaction};
use std::sync::Arc;
use std::sync::Mutex;

/// A recording bus probe.
#[derive(Debug, Default)]
pub struct BusMonitor {
    log: Mutex<Vec<BusTransaction>>,
}

impl BusMonitor {
    /// Create a monitor and return the `Arc` to attach via
    /// [`sentry_soc::bus::Bus::attach`].
    #[must_use]
    pub fn attach_new(bus: &mut sentry_soc::bus::Bus) -> Arc<Self> {
        let mon = Arc::new(BusMonitor::default());
        bus.attach(mon.clone());
        mon
    }

    /// Number of recorded transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.log.lock().expect("bus monitor lock poisoned").len()
    }

    /// Whether nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.log
            .lock()
            .expect("bus monitor lock poisoned")
            .is_empty()
    }

    /// Clear the log (e.g., between experiment phases).
    pub fn clear(&self) {
        self.log.lock().expect("bus monitor lock poisoned").clear();
    }

    /// Search all observed data for a byte needle. Returns the addresses
    /// of transactions whose payload contained it.
    #[must_use]
    pub fn find_in_traffic(&self, needle: &[u8]) -> Vec<u64> {
        self.log
            .lock()
            .expect("bus monitor lock poisoned")
            .iter()
            .filter(|tx| tx.data.windows(needle.len()).any(|w| w == needle))
            .map(|tx| tx.addr)
            .collect()
    }

    /// Extract the access-pattern side channel: the sequence of entry
    /// indices read from a lookup table occupying
    /// `[table_base, table_base + entries * entry_size)`.
    #[must_use]
    pub fn table_access_indices(&self, table_base: u64, entries: u64, entry_size: u64) -> Vec<u8> {
        let end = table_base + entries * entry_size;
        self.log
            .lock()
            .expect("bus monitor lock poisoned")
            .iter()
            .filter(|tx| tx.op == BusOp::Read && tx.addr >= table_base && tx.addr < end)
            .map(|tx| ((tx.addr - table_base) / entry_size) as u8)
            .collect()
    }

    /// Total bytes observed crossing the bus.
    #[must_use]
    pub fn bytes_observed(&self) -> u64 {
        self.log
            .lock()
            .expect("bus monitor lock poisoned")
            .iter()
            .map(|tx| tx.data.len() as u64)
            .sum()
    }
}

impl BusObserver for BusMonitor {
    fn observe(&self, tx: &BusTransaction) {
        self.log
            .lock()
            .expect("bus monitor lock poisoned")
            .push(tx.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_core::store::{CachedSocStore, UncachedSocStore};
    use sentry_crypto::{AesStateLayout, KeySize, TrackedAes};
    use sentry_soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_FIRMWARE_RESERVED};
    use sentry_soc::Soc;

    #[test]
    fn monitor_greps_secrets_from_dram_traffic() {
        let mut soc = Soc::tegra3_small();
        let mon = BusMonitor::attach_new(&mut soc.bus);
        soc.mem_write_uncached(DRAM_BASE + 0x100, b"PIN:4521")
            .unwrap();
        assert_eq!(mon.find_in_traffic(b"PIN:4521").len(), 1);
    }

    #[test]
    fn dram_aes_leaks_key_dependent_table_access_pattern() {
        // The side channel: with AES state in DRAM, the monitor sees
        // which Te entries each encryption touches, and the sequence
        // depends on the key.
        let trace_for_key = |key: [u8; 16]| {
            let mut soc = Soc::tegra3_small();
            let mon = BusMonitor::attach_new(&mut soc.bus);
            let base = DRAM_BASE + (4 << 20);
            let mut store = UncachedSocStore::new(&mut soc, base);
            let aes = TrackedAes::init(&mut store, &key).unwrap();
            mon.clear(); // ignore key-schedule traffic
            let mut block = [0u8; 16];
            aes.encrypt_block(&mut store, &mut block);
            let layout = AesStateLayout::for_key_size(KeySize::Aes128);
            let te_base = base + layout.component("2 Round Tables").offset as u64;
            mon.table_access_indices(te_base, 256, 4)
        };
        let a = trace_for_key([0u8; 16]);
        let b = trace_for_key([1u8; 16]);
        assert!(
            a.len() >= 9 * 16,
            "all main-round lookups observed: {}",
            a.len()
        );
        assert_ne!(a, b, "pattern must be key-dependent");
    }

    #[test]
    fn onsoc_aes_is_invisible_to_the_monitor() {
        let mut soc = Soc::tegra3_small();
        let mon = BusMonitor::attach_new(&mut soc.bus);
        let base = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
        let mut store = CachedSocStore::new(&mut soc, base);
        let aes = TrackedAes::init(&mut store, &[9u8; 16]).unwrap();
        let mut block = *b"super secret txt";
        aes.encrypt_block(&mut store, &mut block);
        assert!(mon.is_empty(), "on-SoC AES must produce zero bus traffic");
        assert!(mon.find_in_traffic(b"super secret txt").is_empty());
    }

    #[test]
    fn clear_and_counters() {
        let mut soc = Soc::tegra3_small();
        let mon = BusMonitor::attach_new(&mut soc.bus);
        soc.mem_write_uncached(DRAM_BASE, &[1u8; 64]).unwrap();
        assert_eq!(mon.bytes_observed(), 64);
        assert_eq!(mon.len(), 1);
        mon.clear();
        assert!(mon.is_empty());
    }
}
