//! Related-work baselines (§9.1): register-only AES schemes.
//!
//! AESSE, TRESOR, and Simmons' scheme keep the AES *key* (and sometimes
//! the round keys) in CPU/debug registers, out of DRAM's reach — but
//! their lookup tables stay in ordinary memory: "most of these previous
//! solutions fail to guard access-protected state and thus are subject
//! to bus monitoring attacks". This module implements that design point
//! so the claim can be demonstrated rather than asserted:
//! [`RegisterOnlyAes`] holds all *secret* state in host values (playing
//! the role of registers) while its round tables and S-boxes live in
//! simulated DRAM, fetched uncached per lookup.

use sentry_crypto::tables::TABLE_BYTES;
use sentry_crypto::{sbox, tables};
use sentry_soc::{Soc, SocError};

/// A TRESOR-style AES-128: secrets in registers, tables in DRAM.
#[derive(Debug)]
pub struct RegisterOnlyAes {
    /// Round keys, held in "registers" (host memory; never written to
    /// the simulated DRAM — this part of the scheme works).
    round_keys: Vec<u32>,
    /// DRAM base where the Te table lives.
    table_base: u64,
    /// DRAM base of the S-box.
    sbox_base: u64,
}

impl RegisterOnlyAes {
    /// Install the scheme: key schedule in registers, tables at
    /// `table_region` in DRAM.
    ///
    /// # Errors
    ///
    /// Propagates DRAM write errors.
    pub fn install(soc: &mut Soc, table_region: u64, key: &[u8; 16]) -> Result<Self, SocError> {
        let schedule = sentry_crypto::key_schedule::KeySchedule::expand(key).expect("16-byte key");
        // The tables are public data, so writing them to DRAM is "safe"
        // — contents-wise.
        let mut te_bytes = Vec::with_capacity(TABLE_BYTES);
        for w in tables::te() {
            te_bytes.extend_from_slice(&w.to_be_bytes());
        }
        soc.mem_write_uncached(table_region, &te_bytes)?;
        soc.mem_write_uncached(table_region + TABLE_BYTES as u64, sbox::sbox())?;
        Ok(RegisterOnlyAes {
            round_keys: schedule.enc_words().to_vec(),
            table_base: table_region,
            sbox_base: table_region + TABLE_BYTES as u64,
        })
    }

    fn te(&self, soc: &mut Soc, index: u8) -> u32 {
        let mut b = [0u8; 4];
        soc.mem_read_uncached(self.table_base + 4 * u64::from(index), &mut b)
            .expect("table region mapped");
        u32::from_be_bytes(b)
    }

    fn sub(&self, soc: &mut Soc, index: u8) -> u8 {
        let mut b = [0u8; 1];
        soc.mem_read_uncached(self.sbox_base + u64::from(index), &mut b)
            .expect("table region mapped");
        b[0]
    }

    /// Encrypt one block. The computation uses register-resident round
    /// keys, but every table lookup crosses the memory bus.
    pub fn encrypt_block(&self, soc: &mut Soc, block: &mut [u8; 16]) {
        let rk = &self.round_keys;
        let mut s = [0u32; 4];
        for (c, slot) in s.iter_mut().enumerate() {
            *slot = u32::from_be_bytes([
                block[4 * c],
                block[4 * c + 1],
                block[4 * c + 2],
                block[4 * c + 3],
            ]) ^ rk[c];
        }
        let mut t = [0u32; 4];
        for round in 1..10 {
            for c in 0..4 {
                t[c] = self.te(soc, (s[c] >> 24) as u8)
                    ^ self
                        .te(soc, ((s[(c + 1) % 4] >> 16) & 0xff) as u8)
                        .rotate_right(8)
                    ^ self
                        .te(soc, ((s[(c + 2) % 4] >> 8) & 0xff) as u8)
                        .rotate_right(16)
                    ^ self.te(soc, (s[(c + 3) % 4] & 0xff) as u8).rotate_right(24)
                    ^ rk[4 * round + c];
            }
            s = t;
        }
        for c in 0..4 {
            t[c] = (u32::from(self.sub(soc, (s[c] >> 24) as u8)) << 24)
                | (u32::from(self.sub(soc, ((s[(c + 1) % 4] >> 16) & 0xff) as u8)) << 16)
                | (u32::from(self.sub(soc, ((s[(c + 2) % 4] >> 8) & 0xff) as u8)) << 8)
                | u32::from(self.sub(soc, (s[(c + 3) % 4] & 0xff) as u8));
            t[c] ^= rk[40 + c];
        }
        for (c, word) in t.iter().enumerate() {
            block[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::busmon::BusMonitor;
    use crate::coldboot;
    use sentry_soc::addr::DRAM_BASE;
    use sentry_soc::dram::PowerEvent;

    const TABLE_REGION: u64 = DRAM_BASE + (36 << 20);

    #[test]
    fn register_only_aes_is_functionally_correct() {
        let mut soc = Soc::tegra3_small();
        let key = [0u8; 16];
        let aes = RegisterOnlyAes::install(&mut soc, TABLE_REGION, &key).unwrap();
        let mut block: [u8; 16] =
            *b"\x00\x11\x22\x33\x44\x55\x66\x77\x88\x99\xaa\xbb\xcc\xdd\xee\xff";
        // FIPS-197 Appendix C.1 with the incrementing key.
        let aes2 =
            RegisterOnlyAes::install(&mut soc, TABLE_REGION, &core::array::from_fn(|i| i as u8))
                .unwrap();
        aes2.encrypt_block(&mut soc, &mut block);
        assert_eq!(
            block,
            *b"\x69\xc4\xe0\xd8\x6a\x7b\x04\x30\xd8\xcd\xb7\x80\x70\xb4\xc5\x5a"
        );
        drop(aes);
    }

    #[test]
    fn tresor_survives_cold_boot_for_the_key_itself() {
        // The part of the related work that *does* hold: no key
        // schedule in DRAM, so aeskeyfind comes up empty.
        let mut soc = Soc::tegra3_small();
        let key = [0xABu8; 16];
        let aes = RegisterOnlyAes::install(&mut soc, TABLE_REGION, &key).unwrap();
        let mut block = [0u8; 16];
        aes.encrypt_block(&mut soc, &mut block);
        soc.power_cycle(PowerEvent::ReflashTap).unwrap();
        let dram = coldboot::dump_dram(&mut soc);
        assert!(coldboot::find_aes128_key_schedules(&dram).is_empty());
    }

    #[test]
    fn tresor_leaks_access_patterns_to_a_bus_monitor() {
        // The paper's §9.1 critique, demonstrated: the Te-lookup index
        // sequence is fully visible and key-dependent.
        let trace = |key: [u8; 16]| {
            let mut soc = Soc::tegra3_small();
            let aes = RegisterOnlyAes::install(&mut soc, TABLE_REGION, &key).unwrap();
            let mon = BusMonitor::attach_new(&mut soc.bus);
            let mut block = [0u8; 16];
            aes.encrypt_block(&mut soc, &mut block);
            mon.table_access_indices(TABLE_REGION, 256, 4)
        };
        let a = trace([0u8; 16]);
        let b = trace([1u8; 16]);
        assert_eq!(a.len(), 9 * 16, "all main-round lookups observed");
        assert_ne!(a, b, "trace is key-dependent: the side channel is live");
    }
}
