//! Memory attacks against the simulated SoC — the threat model of §3.
//!
//! Three attack classes are implemented, each as a faithful adversary
//! that uses only capabilities available to someone holding a stolen,
//! screen-locked device:
//!
//! * [`coldboot`] — power-cycle the device (warm reboot, reflash tap, or
//!   a held reset) and scan surviving memory for patterns and AES key
//!   schedules (the FROST / aeskeyfind methodology);
//! * [`busmon`] — attach a probe to the memory bus, record every DRAM
//!   transaction, grep the traffic for secrets, and extract AES
//!   table-access patterns (the side channel of Tromer–Osvik–Shamir);
//! * [`dmaattack`] — program a DMA controller to dump physical memory
//!   without CPU cooperation (Firewire-style).
//!
//! [`matrix`] runs all three against each storage option and produces
//! the paper's Table 3. [`faultmatrix`] turns the attacks inward:
//! exhaustive power-cut injection at every reachable failpoint of a
//! lock/unlock/fault/sweep schedule, with a cold-boot scan and a
//! recovery-convergence check at each kill point. [`tamper`] upgrades
//! the adversary from reading DRAM to *writing* it — bit flips, frame
//! splices, stale-epoch replays — and checks the integrity plane turns
//! every manipulation into a typed violation instead of silent
//! corruption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod busmon;
pub mod coldboot;
pub mod dmaattack;
pub mod faultmatrix;
pub mod matrix;
pub mod related;
pub mod tamper;
pub mod threat_model;

/// The result of running one attack against one target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackReport {
    /// Attack name (e.g. "cold boot (reflash)").
    pub attack: String,
    /// What was targeted (e.g. "iRAM", "locked L2", "DRAM").
    pub target: String,
    /// Whether any secret material was recovered.
    pub recovered: bool,
    /// Human-readable evidence (what was found, or why nothing was).
    pub evidence: String,
}

impl AttackReport {
    /// Shorthand for a failed attack (the defence held).
    #[must_use]
    pub fn safe(
        attack: impl Into<String>,
        target: impl Into<String>,
        why: impl Into<String>,
    ) -> Self {
        AttackReport {
            attack: attack.into(),
            target: target.into(),
            recovered: false,
            evidence: why.into(),
        }
    }

    /// Shorthand for a successful attack.
    #[must_use]
    pub fn broken(
        attack: impl Into<String>,
        target: impl Into<String>,
        what: impl Into<String>,
    ) -> Self {
        AttackReport {
            attack: attack.into(),
            target: target.into(),
            recovered: true,
            evidence: what.into(),
        }
    }
}
