//! The Table 3 security matrix: every in-scope attack against every
//! storage option.
//!
//! For each storage alternative (iRAM, locked L2 cache — plus DRAM as
//! the undefended baseline the table implies), a secret is placed via
//! the corresponding mechanism and all three attacks are mounted on the
//! *same* simulated device state. An entry is "Safe" iff the attack
//! recovered neither the secret bytes nor any AES key schedule.

use crate::busmon::BusMonitor;
use crate::coldboot;
use crate::dmaattack::dma_dump;
use crate::AttackReport;
use sentry_core::config::OnSocBackend;
use sentry_core::onsoc::OnSocStore;
use sentry_soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_SIZE};
use sentry_soc::dram::PowerEvent;
use sentry_soc::Soc;

/// The storage alternatives evaluated by Table 3 (plus the DRAM
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageOption {
    /// Undefended DRAM — every attack succeeds.
    Dram,
    /// On-SoC iRAM with TrustZone DMA protection.
    Iram,
    /// A locked L2 cache way.
    LockedL2,
}

impl std::fmt::Display for StorageOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageOption::Dram => write!(f, "DRAM"),
            StorageOption::Iram => write!(f, "iRAM"),
            StorageOption::LockedL2 => write!(f, "Locked L2 Cache"),
        }
    }
}

const SECRET: &[u8] = b"VOLATILE-ROOT-KEY-0123456789ABCD";

/// Build a device with the secret placed in the given storage.
fn place_secret(option: StorageOption) -> Result<(Soc, u64), sentry_core::SentryError> {
    let mut soc = Soc::tegra3_small();
    // The secret is replicated across the page, as key material
    // typically is (key + expanded schedule + copies in callers): the
    // attacks only need one surviving copy.
    let page: Vec<u8> = SECRET.iter().copied().cycle().take(2048).collect();
    let addr = match option {
        StorageOption::Dram => {
            let addr = DRAM_BASE + (40 << 20);
            soc.mem_write(addr, &page)?;
            // Steady state: assume the lines were evicted at some point,
            // as they would be on a busy system.
            soc.cache_maintenance_flush();
            addr
        }
        StorageOption::Iram => {
            let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc)?;
            let slot = store.alloc_page(&mut soc)?;
            soc.mem_write(slot, &page)?;
            slot
        }
        StorageOption::LockedL2 => {
            let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc)?;
            let slot = store.alloc_page(&mut soc)?;
            soc.mem_write(slot, &page)?;
            slot
        }
    };
    Ok((soc, addr))
}

/// Mount a cold boot attack (reflash tap) against the storage option.
///
/// # Errors
///
/// Propagates SoC errors from the power cycle.
pub fn cold_boot_cell(option: StorageOption) -> Result<AttackReport, sentry_core::SentryError> {
    let (mut soc, _addr) = place_secret(option)?;
    let findings = coldboot::attack(&mut soc, PowerEvent::ReflashTap, SECRET)
        .map_err(sentry_core::SentryError::Soc)?;
    Ok(if findings.recovered_anything() {
        AttackReport::broken(
            "cold boot",
            option.to_string(),
            format!("{} pattern hits after reflash", findings.pattern_hits.len()),
        )
    } else {
        AttackReport::safe(
            "cold boot",
            option.to_string(),
            "nothing survived the reset + firmware zeroing",
        )
    })
}

/// Mount a bus monitoring attack: record all traffic while the device
/// re-reads and re-writes the secret, then grep the log.
///
/// # Errors
///
/// Propagates SoC errors.
pub fn bus_monitor_cell(option: StorageOption) -> Result<AttackReport, sentry_core::SentryError> {
    let (mut soc, addr) = place_secret(option)?;
    let mon = BusMonitor::attach_new(&mut soc.bus);
    // The device keeps using the secret while the probe listens.
    let mut buf = vec![0u8; SECRET.len()];
    for _ in 0..16 {
        soc.mem_read(addr, &mut buf)?;
        soc.mem_write(addr, &buf)?;
    }
    if option == StorageOption::Dram {
        // A busy system's cache pressure eventually writes DRAM lines
        // back; model one eviction cycle.
        soc.cache_maintenance_flush();
        soc.mem_read(addr, &mut buf)?;
    }
    let hits = mon.find_in_traffic(SECRET);
    Ok(if hits.is_empty() {
        AttackReport::safe(
            "bus monitoring",
            option.to_string(),
            format!(
                "{} transactions observed, secret never crossed the bus",
                mon.len()
            ),
        )
    } else {
        AttackReport::broken(
            "bus monitoring",
            option.to_string(),
            format!("secret observed in {} transactions", hits.len()),
        )
    })
}

/// Mount a DMA attack: sweep DRAM and iRAM through a DMA controller.
///
/// # Errors
///
/// Propagates SoC errors.
pub fn dma_cell(option: StorageOption) -> Result<AttackReport, sentry_core::SentryError> {
    let (mut soc, _addr) = place_secret(option)?;
    let dram_size = soc.dram.size();
    let mut dump = dma_dump(&mut soc, DRAM_BASE, dram_size, 4096);
    let iram = dma_dump(&mut soc, IRAM_BASE, IRAM_SIZE, 4096);
    dump.data.extend(iram.data);
    dump.denied.extend(iram.denied);
    let hits = dump.search(SECRET);
    Ok(if hits.is_empty() {
        AttackReport::safe(
            "DMA attack",
            option.to_string(),
            format!(
                "{} bytes swept ({} ranges TrustZone-denied), secret absent",
                dump.bytes_read(),
                dump.denied.len()
            ),
        )
    } else {
        AttackReport::broken(
            "DMA attack",
            option.to_string(),
            format!("secret at {:#x}", hits[0]),
        )
    })
}

/// Produce the full Table 3 matrix.
///
/// # Errors
///
/// Propagates SoC errors.
pub fn table3() -> Result<Vec<AttackReport>, sentry_core::SentryError> {
    let mut rows = Vec::new();
    for option in [
        StorageOption::Dram,
        StorageOption::Iram,
        StorageOption::LockedL2,
    ] {
        rows.push(cold_boot_cell(option)?);
        rows.push(bus_monitor_cell(option)?);
        rows.push(dma_cell(option)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let rows = table3().unwrap();
        for report in &rows {
            let expect_safe = report.target != "DRAM";
            assert_eq!(
                !report.recovered, expect_safe,
                "{} vs {}: {:?}",
                report.attack, report.target, report.evidence
            );
        }
        // Nine cells: 3 attacks x 3 storage options.
        assert_eq!(rows.len(), 9);
    }
}
