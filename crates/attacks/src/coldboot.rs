//! Cold boot attacks (§3.1) and the Table 2 remanence methodology.
//!
//! The attacker power-cycles a stolen device into attacker-controlled
//! code and dumps whatever memory survived. Two analyses run over the
//! dump:
//!
//! * **pattern counting** — the paper's own remanence measurement: fill
//!   memory with an 8-byte pattern, reset, grep and count (Table 2);
//! * **AES key-schedule search** — the `aeskeyfind` technique used by
//!   Halderman et al. and FROST: slide a 16-byte window over the dump,
//!   expand it as an AES-128 key, and accept it if the expanded round
//!   keys appear contiguously after it. Random data never passes; real
//!   cached key schedules always do.

use sentry_crypto::key_schedule::KeySchedule;
use sentry_soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_SIZE, PAGE_SIZE};
use sentry_soc::dram::PowerEvent;
use sentry_soc::Soc;

/// The paper's fill pattern experiment (Table 2): returns the fraction
/// of 8-byte cells preserved in DRAM and in iRAM after `event`.
///
/// `cells` 8-byte cells are written to each memory before the reset.
///
/// # Errors
///
/// Propagates SoC errors from the fill or the reboot.
pub fn remanence_trial(
    soc: &mut Soc,
    event: PowerEvent,
    cells: u64,
) -> Result<RemanenceOutcome, sentry_soc::SocError> {
    let pattern = *b"SENTRYOK";

    // Fill DRAM (uncached so the pattern is actually in DRAM, as a
    // 1 GB allocation loop would be after touching far more than the
    // cache size).
    for i in 0..cells {
        soc.dram.write(DRAM_BASE + (8 << 20) + i * 8, &pattern);
    }
    // Fill usable iRAM.
    let iram_cells = (IRAM_SIZE - sentry_soc::addr::IRAM_FIRMWARE_RESERVED) / 8;
    let iram_base = IRAM_BASE + sentry_soc::addr::IRAM_FIRMWARE_RESERVED;
    for i in 0..iram_cells {
        soc.mem_write(iram_base + i * 8, &pattern)?;
    }

    soc.power_cycle(event)?;

    let dram_survived = soc.dram.count_pattern(&pattern);
    let iram_survived = soc.iram.count_pattern(&pattern);
    Ok(RemanenceOutcome {
        dram_fraction: dram_survived as f64 / cells as f64,
        iram_fraction: iram_survived as f64 / iram_cells as f64,
    })
}

/// One remanence trial's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemanenceOutcome {
    /// Fraction of DRAM cells preserved.
    pub dram_fraction: f64,
    /// Fraction of iRAM cells preserved.
    pub iram_fraction: f64,
}

/// Dump all of DRAM the way an attacker OS would (raw reads; the cache
/// was reset by the reboot).
#[must_use]
pub fn dump_dram(soc: &mut Soc) -> Vec<(u64, Vec<u8>)> {
    soc.dram
        .iter_frames()
        .map(|(addr, bytes)| (addr, bytes.to_vec()))
        .collect()
}

/// Dump all of iRAM.
#[must_use]
pub fn dump_iram(soc: &Soc) -> Vec<u8> {
    soc.iram.as_bytes().to_vec()
}

/// Search a dump for a byte needle; returns the physical addresses of
/// hits.
#[must_use]
pub fn search(dump: &[(u64, Vec<u8>)], needle: &[u8]) -> Vec<u64> {
    let mut hits = Vec::new();
    for (base, bytes) in dump {
        for (off, w) in bytes.windows(needle.len()).enumerate() {
            if w == needle {
                hits.push(base + off as u64);
            }
        }
    }
    hits
}

/// `aeskeyfind`: locate AES-128 keys by their expanded schedules.
///
/// For every 16-byte-aligned offset, treat the bytes as a candidate key,
/// expand it, and check that the next 160 bytes equal round keys 1–10.
/// Returns `(address, key)` pairs.
#[must_use]
pub fn find_aes128_key_schedules(dump: &[(u64, Vec<u8>)]) -> Vec<(u64, [u8; 16])> {
    let mut found = Vec::new();
    for (base, bytes) in dump {
        if bytes.len() < 176 {
            continue;
        }
        for off in (0..=bytes.len() - 176).step_by(4) {
            let candidate: [u8; 16] = bytes[off..off + 16].try_into().expect("sized");
            // Quick reject: an all-zero "key" region is not a schedule.
            if candidate.iter().all(|&b| b == 0) {
                continue;
            }
            let schedule = KeySchedule::expand(&candidate).expect("16 bytes");
            let mut expected = Vec::with_capacity(176);
            for w in schedule.enc_words() {
                expected.extend_from_slice(&w.to_be_bytes());
            }
            if bytes[off..off + 176] == expected[..] {
                found.push((base + off as u64, candidate));
            }
        }
    }
    found
}

/// A full cold-boot attack: reset via `event`, then scan DRAM and iRAM
/// for `needle` and for AES key schedules.
///
/// # Errors
///
/// Propagates SoC errors from the power cycle.
pub fn attack(
    soc: &mut Soc,
    event: PowerEvent,
    needle: &[u8],
) -> Result<ColdBootFindings, sentry_soc::SocError> {
    soc.power_cycle(event)?;
    let dram = dump_dram(soc);
    let iram = dump_iram(soc);
    let mut pattern_hits = search(&dram, needle);
    for (off, w) in iram.windows(needle.len()).enumerate() {
        if w == needle {
            pattern_hits.push(IRAM_BASE + off as u64);
        }
    }
    let mut keys = find_aes128_key_schedules(&dram);
    keys.extend(find_aes128_key_schedules(&[(IRAM_BASE, iram)]));
    Ok(ColdBootFindings { pattern_hits, keys })
}

/// What a cold-boot attack recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdBootFindings {
    /// Addresses where the searched-for plaintext appeared.
    pub pattern_hits: Vec<u64>,
    /// Recovered AES-128 keys with their addresses.
    pub keys: Vec<(u64, [u8; 16])>,
}

impl ColdBootFindings {
    /// Did the attack recover anything at all?
    #[must_use]
    pub fn recovered_anything(&self) -> bool {
        !self.pattern_hits.is_empty() || !self.keys.is_empty()
    }
}

/// Number of cells used by the default Table 2 trial (a scaled-down
/// stand-in for the paper's 1 GB fill; remanence is per-cell i.i.d., so
/// the fraction estimate only needs enough cells for tight variance).
pub const DEFAULT_TRIAL_CELLS: u64 = 200_000;

/// Run the full Table 2 experiment: `trials` repetitions of each reset
/// type, averaged.
///
/// # Errors
///
/// Propagates SoC errors.
pub fn table2(trials: u32, seed: u64) -> Result<Vec<(String, f64, f64)>, sentry_soc::SocError> {
    let events: [(&str, PowerEvent); 3] = [
        ("OS Reboot (no power loss)", PowerEvent::WarmReboot),
        ("Device Reflash (power loss)", PowerEvent::ReflashTap),
        (
            "2 Second Reset (power loss)",
            PowerEvent::HardReset { seconds: 2.0 },
        ),
    ];
    let mut rows = Vec::new();
    for (label, event) in events {
        let mut iram_sum = 0.0;
        let mut dram_sum = 0.0;
        for t in 0..trials {
            let cfg = sentry_soc::SocConfig::new(sentry_soc::Platform::Tegra3)
                .with_dram_size(64 << 20)
                .with_seed(seed ^ (u64::from(t) << 32) ^ event_tag(event));
            let mut soc = Soc::new(cfg);
            let out = remanence_trial(&mut soc, event, DEFAULT_TRIAL_CELLS)?;
            iram_sum += out.iram_fraction;
            dram_sum += out.dram_fraction;
        }
        rows.push((
            label.to_string(),
            iram_sum / f64::from(trials),
            dram_sum / f64::from(trials),
        ));
    }
    Ok(rows)
}

fn event_tag(event: PowerEvent) -> u64 {
    match event {
        PowerEvent::WarmReboot => 1,
        PowerEvent::ReflashTap => 2,
        PowerEvent::HardReset { .. } => 3,
    }
}

// Keep PAGE_SIZE referenced for dump alignment sanity in tests.
const _: u64 = PAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::addr::IRAM_FIRMWARE_RESERVED;

    #[test]
    fn table2_shape_matches_paper() {
        let rows = table2(2, 42).unwrap();
        // OS reboot: iRAM 100%, DRAM ~96.4%.
        assert!((rows[0].1 - 1.0).abs() < 1e-9, "iRAM warm: {}", rows[0].1);
        assert!((rows[0].2 - 0.964).abs() < 0.01, "DRAM warm: {}", rows[0].2);
        // Reflash: iRAM 0% (firmware zeroing), DRAM ~97.5%.
        assert!(rows[1].1 < 1e-9, "iRAM reflash: {}", rows[1].1);
        assert!(
            (rows[1].2 - 0.975).abs() < 0.01,
            "DRAM reflash: {}",
            rows[1].2
        );
        // 2s reset: iRAM 0%, DRAM ~0.1%.
        assert!(rows[2].1 < 1e-9);
        assert!(rows[2].2 < 0.005, "DRAM 2s: {}", rows[2].2);
    }

    #[test]
    fn warm_reboot_recovers_dram_plaintext_but_not_after_power_loss() {
        let mut soc = Soc::tegra3_small();
        let secret = b"0xFRODO_BAGGINS_SSN";
        soc.mem_write(DRAM_BASE + (20 << 20), secret).unwrap();
        soc.cache_maintenance_flush(); // steady state: data reaches DRAM

        let findings = attack(&mut soc, PowerEvent::WarmReboot, secret).unwrap();
        assert!(findings.recovered_anything(), "warm reboot leaks DRAM");

        let mut soc = Soc::tegra3_small();
        soc.mem_write(DRAM_BASE + (20 << 20), secret).unwrap();
        soc.cache_maintenance_flush();
        let findings = attack(&mut soc, PowerEvent::HardReset { seconds: 5.0 }, secret).unwrap();
        assert!(
            findings.pattern_hits.is_empty(),
            "5 s power cut destroys DRAM"
        );
    }

    #[test]
    fn iram_secrets_are_never_recovered_after_power_loss() {
        let mut soc = Soc::tegra3_small();
        let secret = b"volatile-root-key-bytes!";
        soc.mem_write(IRAM_BASE + IRAM_FIRMWARE_RESERVED, secret)
            .unwrap();
        let findings = attack(&mut soc, PowerEvent::ReflashTap, secret).unwrap();
        assert!(!findings.recovered_anything());
    }

    #[test]
    fn aeskeyfind_recovers_generic_engine_keys() {
        use sentry_kernel::crypto_api::{CipherEngine, GenericAesEngine};
        let mut soc = Soc::tegra3_small();
        let mut engine = GenericAesEngine::new(0);
        let key = [0xC4u8; 16];
        engine.set_key(&mut soc, &key).unwrap();

        // Reflash tap: most DRAM survives, including the key schedule.
        soc.power_cycle(PowerEvent::ReflashTap).unwrap();
        let dram = dump_dram(&mut soc);
        let keys = find_aes128_key_schedules(&dram);
        assert!(
            keys.iter().any(|(_, k)| *k == key),
            "aeskeyfind must locate the DRAM-resident schedule"
        );
    }

    #[test]
    fn aeskeyfind_has_no_false_positives_on_patterned_memory() {
        let mut soc = Soc::tegra3_small();
        for i in 0..10_000u64 {
            soc.dram
                .write(DRAM_BASE + (30 << 20) + i * 8, &i.to_le_bytes());
        }
        let dram = dump_dram(&mut soc);
        assert!(find_aes128_key_schedules(&dram).is_empty());
    }

    #[test]
    fn search_reports_addresses() {
        let dump = vec![(0x1000u64, b"xxNEEDLExx".to_vec())];
        assert_eq!(search(&dump, b"NEEDLE"), vec![0x1002]);
    }
}
