//! DMA attacks (§3.1).
//!
//! "An attacker could program a DMA-capable peripheral to manipulate the
//! DMA controller and read arbitrary memory regions… DMA attacks are
//! successful even when the mobile device is PIN-locked." The attacker
//! here does exactly that: walk physical memory through a DMA
//! controller, collecting everything readable. TrustZone range
//! protection (iRAM) and software-managed cache coherence (locked L2
//! ways) are the two defences §4.4 analyses.

use sentry_soc::{Soc, SocError};

/// Dump `len` bytes at `base` via DMA, in `chunk`-byte transfers.
/// Regions the controller cannot read (TrustZone-denied or unmapped) are
/// reported separately rather than aborting the sweep — a real attacker
/// skips errors and keeps scanning.
#[must_use]
pub fn dma_dump(soc: &mut Soc, base: u64, len: u64, chunk: usize) -> DmaDump {
    let mut data = Vec::new();
    let mut denied = Vec::new();
    let mut addr = base;
    let end = base + len;
    while addr < end {
        let n = chunk.min((end - addr) as usize);
        match soc.dma_read(0, addr, n) {
            Ok(bytes) => data.push((addr, bytes)),
            Err(SocError::DmaDenied { .. }) => denied.push(addr),
            Err(_) => {} // unmapped: skip
        }
        addr += n as u64;
    }
    DmaDump { data, denied }
}

/// The result of a DMA sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaDump {
    /// Readable regions: `(address, bytes)`.
    pub data: Vec<(u64, Vec<u8>)>,
    /// Addresses where TrustZone denied the transfer.
    pub denied: Vec<u64>,
}

impl DmaDump {
    /// Search the dump for a needle; returns hit addresses.
    #[must_use]
    pub fn search(&self, needle: &[u8]) -> Vec<u64> {
        let mut hits = Vec::new();
        for (base, bytes) in &self.data {
            for (off, w) in bytes.windows(needle.len()).enumerate() {
                if w == needle {
                    hits.push(base + off as u64);
                }
            }
        }
        hits
    }

    /// Total bytes successfully read.
    #[must_use]
    pub fn bytes_read(&self) -> u64 {
        self.data.iter().map(|(_, b)| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_SIZE};
    use sentry_soc::trustzone::ProtectedRange;

    #[test]
    fn dma_reads_plaintext_from_unprotected_dram() {
        let mut soc = Soc::tegra3_small();
        soc.mem_write(DRAM_BASE + 0x9000, b"credit card 4111")
            .unwrap();
        soc.cache_maintenance_flush(); // steady state
        let dump = dma_dump(&mut soc, DRAM_BASE + 0x8000, 0x4000, 4096);
        assert_eq!(dump.search(b"credit card 4111").len(), 1);
        assert!(dump.denied.is_empty());
    }

    #[test]
    fn dma_cannot_read_trustzone_protected_iram() {
        let mut soc = Soc::tegra3_small();
        let base = IRAM_BASE + sentry_soc::addr::IRAM_FIRMWARE_RESERVED;
        soc.mem_write(base, b"root key").unwrap();
        soc.in_secure_world(|soc| {
            assert!(soc.trustzone.protect(ProtectedRange {
                range: base..IRAM_BASE + IRAM_SIZE,
                deny_dma: true,
                deny_normal_cpu: false,
            }));
        });
        let dump = dma_dump(&mut soc, IRAM_BASE, IRAM_SIZE, 4096);
        assert!(dump.search(b"root key").is_empty());
        assert!(!dump.denied.is_empty(), "TrustZone must deny the sweep");
    }

    #[test]
    fn dma_sees_stale_dram_behind_locked_way() {
        use sentry_core::config::OnSocBackend;
        use sentry_core::onsoc::OnSocStore;
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc).unwrap();
        let page = store.alloc_page(&mut soc).unwrap();
        soc.mem_write(page, b"decrypted page contents").unwrap();
        // DMA bypasses the cache entirely: the locked line's data never
        // appears.
        let dump = dma_dump(&mut soc, page, 4096, 4096);
        assert!(dump.search(b"decrypted page contents").is_empty());
        assert_eq!(dump.bytes_read(), 4096, "the window itself is readable");
    }

    #[test]
    fn sweep_skips_unmapped_holes() {
        let mut soc = Soc::tegra3_small();
        let end = DRAM_BASE + soc.dram.size();
        let dump = dma_dump(&mut soc, end - 4096, 8192, 4096);
        assert_eq!(dump.bytes_read(), 4096);
    }
}
