//! Exhaustive interruption-sweep harness over the Sentry lifecycle.
//!
//! The crash-consistency claim is that a power cut at *any* instruction
//! boundary of a lock/unlock/fault/sweep schedule leaves the device in
//! a state from which (a) a cold-boot scan of DRAM recovers no secret
//! bytes, and (b) [`Sentry::recover`] plus a retry of the interrupted
//! operation converges byte-for-byte with a run that was never
//! interrupted.
//!
//! The harness turns that claim into a finite enumeration. A **record
//! pass** drives a fixed schedule with the SoC failpoint registry in
//! record mode, counting every reachable failpoint hit. Then, for each
//! step index, a **kill cell** rebuilds the identical world, arms a
//! [`FaultPlan`] that injects a power cut at exactly that hit, drives
//! the schedule until the cut fires, and checks:
//!
//! * **Torn-PTE scan** — every PTE that claims `encrypted` over a DRAM
//!   frame must front a frame with no plaintext secret in it (checked
//!   both immediately after the kill and after recovery);
//! * **Cold-boot scan** — while the device is in the committed Locked
//!   state (and the kill did not interrupt an unlock, whose whole job
//!   is to put plaintext back), the [`crate::coldboot`] dump of DRAM
//!   must contain zero occurrences of the secret needle;
//! * **Convergence** — after `recover()` the schedule is re-driven from
//!   the killed operation, and the end state (coherent DRAM image,
//!   page-table views, on-SoC page contents, lock epoch, device state)
//!   must equal the uninterrupted reference run's.

use crate::coldboot;
use sentry_core::{DeviceState, RecoveryReport, Sentry, SentryConfig, SentryError};
use sentry_kernel::pagetable::{Backing, Pte, Sharing};
use sentry_kernel::{Kernel, Pid};
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::failpoint::{FaultAction, FaultPlan};
use sentry_soc::{Platform, Soc, SocConfig};

/// The 16-byte needle stamped into every sensitive page. The cold-boot
/// and torn-PTE scans grep DRAM for exactly these bytes.
pub const SECRET: &[u8; 16] = b"SENTRY-TOPSECRET";

/// Harmless filler for pages shared with non-sensitive processes (the
/// §7 policy deliberately leaves them plaintext, so they must not carry
/// the needle).
pub const PUBLIC: &[u8; 16] = b"public-harmless!";

/// Which process an [`Op`] acts on, resolved against [`Actors`] so a
/// schedule is independent of any particular `Sentry` instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actor {
    /// The sensitive process whose pages carry [`SECRET`].
    Vault,
    /// A second sensitive process sharing one frame with the vault.
    Peer,
    /// A non-sensitive process (shares one public frame with the vault).
    Browser,
}

/// The processes of one built scenario.
#[derive(Debug, Clone, Copy)]
pub struct Actors {
    /// Pid of the secret-holding sensitive process.
    pub vault: Pid,
    /// Pid of the sensitive sharer.
    pub peer: Pid,
    /// Pid of the non-sensitive process.
    pub browser: Pid,
}

impl Actors {
    /// Resolve an [`Actor`] to its pid.
    #[must_use]
    pub fn pid(&self, who: Actor) -> Pid {
        match who {
            Actor::Vault => self.vault,
            Actor::Peer => self.peer,
            Actor::Browser => self.browser,
        }
    }
}

/// One step of a fault-matrix schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `Sentry::on_lock`.
    Lock,
    /// `Sentry::on_unlock`.
    Unlock,
    /// One scheduler tick (runs a budgeted sweep while unlocked).
    Tick,
    /// Touch pages (first-touch faults decrypt or page in on demand).
    Touch {
        /// Acting process.
        who: Actor,
        /// Virtual page numbers to touch, in order.
        vpns: Vec<u64>,
    },
    /// Write one full page (faults like a touch, then dirties it).
    Write {
        /// Acting process.
        who: Actor,
        /// Virtual page number to write.
        vpn: u64,
        /// Fill byte for the page body (the needle is stamped on top
        /// for the vault, so the page stays scannable).
        fill: u8,
    },
    /// Touch every mapped page of every actor (drives the end state to
    /// a fully-decrypted fixed point so interrupted-and-retried runs
    /// and the reference run meet).
    TouchAll,
}

/// A reproducible world + schedule: everything a kill cell needs to
/// rebuild the exact run the record pass measured.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (bench tables, JSON).
    pub name: &'static str,
    /// Sentry configuration under test.
    pub config: SentryConfig,
    /// SoC RNG seed (DRAM decay etc.); fixed per scenario so every
    /// rebuild is bit-identical.
    pub seed: u64,
    /// Number of secret-carrying private pages in the vault (≥ 3; page
    /// 1 is additionally shared with the peer, page 2 is a DMA region).
    pub secret_pages: u64,
}

impl Scenario {
    /// The default scenario: locked-L2 backend, two pager slots,
    /// readahead cluster of 2, sequential crypt engine.
    #[must_use]
    pub fn tegra3(seed: u64) -> Self {
        Scenario {
            name: "tegra3-l2-seq",
            config: SentryConfig::tegra3_locked_l2(2)
                .with_slot_limit(2)
                .with_readahead(
                    sentry_core::config::ReadaheadConfig::with_cluster(2).sweep_budget(2),
                ),
            seed,
            secret_pages: 4,
        }
    }

    /// Same schedule through the parallel crypt engine (worker pool,
    /// minimum batch of 2 pages).
    #[must_use]
    pub fn tegra3_parallel(seed: u64) -> Self {
        Scenario {
            name: "tegra3-l2-par",
            config: SentryConfig::tegra3_locked_l2(2)
                .with_slot_limit(2)
                .with_parallel_workers(2)
                .with_readahead(
                    sentry_core::config::ReadaheadConfig::with_cluster(2).sweep_budget(2),
                ),
            seed,
            secret_pages: 4,
        }
    }

    /// The parallel scenario under the XTS page cipher: the lane-filling
    /// mode plus the commit-CMAC journal tags that replace the
    /// final-CBC-block scheme (non-chaining modes have tail-collision
    /// problems the CMAC closes — see `sentry_core::CommitTagger`).
    #[must_use]
    pub fn tegra3_xts(seed: u64) -> Self {
        Scenario {
            name: "tegra3-l2-xts",
            config: SentryConfig::tegra3_locked_l2(2)
                .with_cipher_mode(sentry_core::PageCipherMode::Xts)
                .with_slot_limit(2)
                .with_parallel_workers(2)
                .with_readahead(
                    sentry_core::config::ReadaheadConfig::with_cluster(2).sweep_budget(2),
                ),
            seed,
            secret_pages: 4,
        }
    }

    /// The parallel scenario under the CTR page cipher (same commit-CMAC
    /// journal tags as XTS).
    #[must_use]
    pub fn tegra3_ctr(seed: u64) -> Self {
        Scenario {
            name: "tegra3-l2-ctr",
            config: SentryConfig::tegra3_locked_l2(2)
                .with_cipher_mode(sentry_core::PageCipherMode::Ctr)
                .with_slot_limit(2)
                .with_parallel_workers(2)
                .with_readahead(
                    sentry_core::config::ReadaheadConfig::with_cluster(2).sweep_budget(2),
                ),
            seed,
            secret_pages: 4,
        }
    }

    /// The iRAM backend (journal and pager slots both in iRAM).
    #[must_use]
    pub fn iram(seed: u64) -> Self {
        Scenario {
            name: "tegra3-iram",
            config: SentryConfig::tegra3_iram()
                .with_slot_limit(2)
                .with_readahead(
                    sentry_core::config::ReadaheadConfig::with_cluster(2).sweep_budget(2),
                ),
            seed,
            secret_pages: 4,
        }
    }

    /// Build the world: spawn the actors, write the secret and public
    /// pages, wire up the shared frames and the DMA region.
    ///
    /// # Errors
    ///
    /// Propagates construction and write errors.
    ///
    /// # Panics
    ///
    /// Panics if `secret_pages < 3` (the schedule needs the shared page
    /// at vpn 1 and the DMA page at vpn 2 to be distinct secrets).
    pub fn build(&self) -> Result<(Sentry, Actors), SentryError> {
        assert!(self.secret_pages >= 3, "scenario needs >= 3 secret pages");
        let soc = Soc::new(
            SocConfig::new(Platform::Tegra3)
                .with_dram_size(64 << 20)
                .with_seed(self.seed),
        );
        let kernel = Kernel::new(soc);
        let mut s = Sentry::new(kernel, self.config.clone())?;
        let actors = Actors {
            vault: s.kernel.spawn("vault"),
            peer: s.kernel.spawn("peer"),
            browser: s.kernel.spawn("browser"),
        };
        s.mark_sensitive(actors.vault)?;
        s.mark_sensitive(actors.peer)?;
        for vpn in 0..self.secret_pages {
            s.write(actors.vault, vpn * PAGE_SIZE, &secret_page(vpn, 0x11))?;
        }
        // One public page past the secrets, shared with the browser:
        // the §7 policy keeps it plaintext, so it must not carry the
        // needle.
        s.write(actors.vault, self.secret_pages * PAGE_SIZE, &public_page())?;
        s.write(actors.browser, 0, &public_page())?;
        s.kernel
            .map_shared(actors.vault, 1, actors.peer, 0)
            .map_err(SentryError::Kernel)?;
        s.kernel
            .map_shared(actors.vault, self.secret_pages, actors.browser, 2)
            .map_err(SentryError::Kernel)?;
        s.kernel
            .proc_mut(actors.vault)
            .map_err(SentryError::Kernel)?
            .page_table
            .get_mut(2)
            .expect("vpn 2 mapped above")
            .dma_region = true;
        Ok((s, actors))
    }

    /// The fixed schedule: lock, background paging under the lock
    /// (page-in, a dirty write, a slot-pressure eviction), unlock,
    /// demand faults and a sweep, a second lock/unlock cycle, then a
    /// full touch so every run ends at the same fixed point.
    #[must_use]
    pub fn schedule(&self) -> Vec<Op> {
        vec![
            Op::Lock,
            Op::Touch {
                who: Actor::Vault,
                vpns: vec![0, 3],
            },
            Op::Write {
                who: Actor::Vault,
                vpn: 0,
                fill: 0xA5,
            },
            // Third background page with only two slots: forces a
            // journaled eviction of the dirty vpn 0 while locked.
            Op::Touch {
                who: Actor::Vault,
                vpns: vec![2],
            },
            Op::Touch {
                who: Actor::Browser,
                vpns: vec![0],
            },
            Op::Unlock,
            Op::Touch {
                who: Actor::Vault,
                vpns: vec![1],
            },
            Op::Tick,
            Op::Lock,
            Op::Unlock,
            Op::TouchAll,
            Op::Tick,
            Op::Tick,
        ]
    }

    /// Every `(actor, vpn)` the scenario maps (used by [`Op::TouchAll`]).
    #[must_use]
    pub fn all_pages(&self) -> Vec<(Actor, u64)> {
        let mut pages: Vec<(Actor, u64)> = (0..=self.secret_pages)
            .map(|vpn| (Actor::Vault, vpn))
            .collect();
        pages.push((Actor::Peer, 0));
        pages.push((Actor::Browser, 0));
        pages.push((Actor::Browser, 2));
        pages
    }
}

/// A secret page image: `fill`-patterned body with the [`SECRET`]
/// needle stamped at the head and the middle.
#[must_use]
pub fn secret_page(vpn: u64, fill: u8) -> Vec<u8> {
    let mut page = vec![fill ^ (vpn as u8).wrapping_mul(0x3D); PAGE_SIZE as usize];
    page[..SECRET.len()].copy_from_slice(SECRET);
    page[2048..2048 + SECRET.len()].copy_from_slice(SECRET);
    page
}

/// A public page image carrying [`PUBLIC`] and never [`SECRET`].
#[must_use]
pub fn public_page() -> Vec<u8> {
    let mut page = vec![0x50u8; PAGE_SIZE as usize];
    page[..PUBLIC.len()].copy_from_slice(PUBLIC);
    page
}

/// Apply one op. Errors are returned, not panicked, so the kill-run
/// driver can classify the injected power cut.
fn apply(s: &mut Sentry, scn: &Scenario, actors: &Actors, op: &Op) -> Result<(), SentryError> {
    match op {
        Op::Lock => s.on_lock().map(drop),
        Op::Unlock => s.on_unlock().map(drop),
        Op::Tick => s.scheduler_tick().map(drop),
        Op::Touch { who, vpns } => s.touch_pages(actors.pid(*who), vpns),
        Op::Write { who, vpn, fill } => {
            let page = if *who == Actor::Vault {
                secret_page(*vpn, *fill)
            } else {
                public_page()
            };
            s.write(actors.pid(*who), vpn * PAGE_SIZE, &page)
        }
        Op::TouchAll => {
            for (who, vpn) in scn.all_pages() {
                s.touch_pages(actors.pid(who), &[vpn])?;
            }
            Ok(())
        }
    }
}

/// Drive `ops[from..]`; on failure, report which op index failed.
fn drive(
    s: &mut Sentry,
    scn: &Scenario,
    actors: &Actors,
    ops: &[Op],
    from: usize,
) -> Result<(), (usize, SentryError)> {
    for (ix, op) in ops.iter().enumerate().skip(from) {
        apply(s, scn, actors, op).map_err(|e| (ix, e))?;
    }
    Ok(())
}

/// A normalized page-table entry for cross-run comparison. On-SoC slot
/// addresses are erased (slot *assignment* may legally differ after a
/// recovery; slot *contents* are compared separately by `(pid, vpn)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PteView {
    /// Owning process.
    pub pid: Pid,
    /// Virtual page number.
    pub vpn: u64,
    /// Ciphertext bit.
    pub encrypted: bool,
    /// Accessed bit.
    pub young: bool,
    /// Dirty bit.
    pub dirty: bool,
    /// DMA-region flag.
    pub dma_region: bool,
    /// Sharing classification.
    pub sharing: Sharing,
    /// IV epoch of the current ciphertext.
    pub crypt_epoch: u64,
    /// `Some(frame)` for DRAM backing, `None` for on-SoC.
    pub dram_frame: Option<u64>,
    /// The DRAM home frame while resident on-SoC.
    pub home_frame: Option<u64>,
}

impl PteView {
    fn of(pid: Pid, vpn: u64, pte: &Pte) -> Self {
        PteView {
            pid,
            vpn,
            encrypted: pte.encrypted,
            young: pte.young,
            dirty: pte.dirty,
            dma_region: pte.dma_region,
            sharing: pte.sharing,
            crypt_epoch: pte.crypt_epoch,
            dram_frame: match pte.backing {
                Backing::Dram(f) => Some(f),
                Backing::OnSoc(_) => None,
            },
            home_frame: pte.home_frame,
        }
    }
}

/// The comparable end state of a run: coherent DRAM image (after a
/// cache clean), normalized PTE views, on-SoC page contents keyed by
/// `(pid, vpn)`, and the committed lifecycle state. The clock, stats,
/// bus log, and journal area are deliberately excluded — they record
/// *how* a run got here, not *where* it is.
#[derive(Debug, Clone, PartialEq)]
pub struct EndState {
    /// Committed lock epoch.
    pub lock_epoch: u64,
    /// Committed device state.
    pub state: DeviceState,
    /// Populated DRAM frames after a cache maintenance flush.
    pub dram: Vec<(u64, Vec<u8>)>,
    /// Normalized page-table views, sorted by `(pid, vpn)`.
    pub ptes: Vec<PteView>,
    /// Contents of on-SoC-resident pages, keyed by `(pid, vpn)`.
    pub onsoc: Vec<(Pid, u64, Vec<u8>)>,
}

impl EndState {
    /// Capture the comparable state of `s`.
    ///
    /// # Panics
    ///
    /// Panics if an on-SoC-resident page cannot be read back.
    #[must_use]
    pub fn capture(s: &mut Sentry) -> Self {
        // Clean the cache so DRAM is the coherent memory image; cache
        // dynamics (victim rotation, dirty sets) differ between an
        // interrupted-and-retried run and the reference run even when
        // the logical contents agree.
        s.kernel.soc.cache_maintenance_flush();
        let dram = coldboot::dump_dram(&mut s.kernel.soc);
        let pids: Vec<Pid> = s.kernel.procs.keys().copied().collect();
        let mut ptes = Vec::new();
        let mut onsoc = Vec::new();
        for pid in pids {
            let entries: Vec<(u64, Pte)> = s.kernel.procs[&pid]
                .page_table
                .iter()
                .map(|(vpn, pte)| (vpn, *pte))
                .collect();
            for (vpn, pte) in entries {
                ptes.push(PteView::of(pid, vpn, &pte));
                if let Backing::OnSoc(addr) = pte.backing {
                    let mut page = vec![0u8; PAGE_SIZE as usize];
                    s.kernel
                        .soc
                        .mem_read(addr, &mut page)
                        .expect("on-SoC page readable");
                    onsoc.push((pid, vpn, page));
                }
            }
        }
        ptes.sort_by_key(|p| (p.pid, p.vpn));
        onsoc.sort_by_key(|e| (e.0, e.1));
        EndState {
            lock_epoch: s.lock_epoch(),
            state: s.state(),
            dram,
            ptes,
            onsoc,
        }
    }
}

/// The record pass: total reachable failpoint steps, the site trace,
/// and the uninterrupted end state every kill cell converges against.
#[derive(Debug, Clone)]
pub struct Reference {
    /// Total failpoint hits over the whole schedule.
    pub steps: u64,
    /// `(site, step)` trace from the record pass.
    pub sites: Vec<(&'static str, u64)>,
    /// End state of the uninterrupted run.
    pub end: EndState,
}

/// Run the schedule once in record mode.
///
/// # Errors
///
/// Propagates driver errors (a record pass must complete cleanly).
pub fn record(scn: &Scenario) -> Result<Reference, SentryError> {
    let (mut s, actors) = scn.build()?;
    // Recording starts *after* world construction: step indices must
    // index the schedule, not the setup.
    s.kernel.soc.failpoints.record();
    let ops = scn.schedule();
    drive(&mut s, scn, &actors, &ops, 0).map_err(|(_, e)| e)?;
    let steps = s.kernel.soc.failpoints.steps();
    let sites = s.kernel.soc.failpoints.trace().to_vec();
    s.kernel.soc.failpoints.disarm();
    let end = EndState::capture(&mut s);
    Ok(Reference { steps, sites, end })
}

/// What one kill cell observed.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The step index the power cut was armed at.
    pub step: u64,
    /// The failpoint site that fired (None if the plan never fired).
    pub site: Option<&'static str>,
    /// Schedule index of the op that died.
    pub killed_op: Option<usize>,
    /// Torn PTEs (encrypted PTE over a plaintext frame), post-kill +
    /// post-recovery.
    pub torn_ptes: usize,
    /// Cold-boot needle hits in DRAM while nominally locked, post-kill.
    pub leaks_post_kill: usize,
    /// Same scan, after recovery.
    pub leaks_post_recovery: usize,
    /// What recovery found and did.
    pub recovery: RecoveryReport,
    /// Error from the retried schedule, if any (must be None).
    pub retry_error: Option<String>,
    /// End state equals the reference end state.
    pub converged: bool,
    /// The diverging end state, kept only when `converged` is false so
    /// failures can be diffed against the reference.
    pub end: Option<Box<EndState>>,
}

impl CellOutcome {
    /// A cell is clean when nothing leaked, nothing tore, the retry ran
    /// and the run converged.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.torn_ptes == 0
            && self.leaks_post_kill == 0
            && self.leaks_post_recovery == 0
            && self.retry_error.is_none()
            && self.converged
    }
}

/// Scan for torn PTEs (always) and cold-boot-visible secrets (only in
/// the committed Locked state, and not when the killed op was the
/// unlock that is *supposed* to be putting plaintext back).
fn scan(s: &mut Sentry, killed_mid_unlock: bool) -> (usize, usize) {
    // Clean first: a dirty cache line over a published frame must land
    // before the raw-DRAM grep, and any plaintext hiding in an
    // (unlocked) cache way would be flushed into the open where the
    // scan catches it.
    s.kernel.soc.cache_maintenance_flush();
    let dump = coldboot::dump_dram(&mut s.kernel.soc);
    let mut torn = 0usize;
    let pids: Vec<Pid> = s.kernel.procs.keys().copied().collect();
    for pid in pids {
        for (_vpn, pte) in s.kernel.procs[&pid].page_table.iter() {
            if !pte.encrypted {
                continue;
            }
            if let Backing::Dram(frame) = pte.backing {
                let torn_here = dump.iter().any(|(base, bytes)| {
                    *base == frame && bytes.windows(SECRET.len()).any(|w| w == SECRET)
                });
                if torn_here {
                    torn += 1;
                }
            }
        }
    }
    let leaks = if s.state() == DeviceState::Locked && !killed_mid_unlock {
        coldboot::search(&dump, SECRET).len()
    } else {
        0
    };
    (torn, leaks)
}

/// Run one kill cell: rebuild, arm a power cut at `step`, drive to the
/// kill, scan, recover, scan again, retry, compare end states.
///
/// # Errors
///
/// Propagates unexpected (non-injected) errors from the drive, the
/// scans, or recovery.
pub fn run_cell(
    scn: &Scenario,
    reference: &Reference,
    step: u64,
) -> Result<CellOutcome, SentryError> {
    let (mut s, actors) = scn.build()?;
    let ops = scn.schedule();
    s.kernel.soc.failpoints.arm(FaultPlan::at_step(
        step,
        FaultAction::PowerCut { decay: None },
    ));
    match drive(&mut s, scn, &actors, &ops, 0) {
        Ok(()) => {
            // The plan never fired (step beyond the armed run's reach);
            // the run is just the reference run again.
            s.kernel.soc.failpoints.disarm();
            let end = EndState::capture(&mut s);
            let converged = end == reference.end;
            Ok(CellOutcome {
                step,
                site: None,
                killed_op: None,
                torn_ptes: 0,
                leaks_post_kill: 0,
                leaks_post_recovery: 0,
                recovery: RecoveryReport::default(),
                retry_error: None,
                converged,
                end: (!converged).then(|| Box::new(end)),
            })
        }
        Err((ix, err)) => {
            if !err.is_power_loss() {
                return Err(err);
            }
            let site = s.kernel.soc.failpoints.fired().map(|f| f.site);
            let killed_mid_unlock = matches!(ops[ix], Op::Unlock);
            let (torn_a, leaks_post_kill) = scan(&mut s, killed_mid_unlock);
            let recovery = s.recover()?;
            let (torn_b, leaks_post_recovery) = scan(&mut s, killed_mid_unlock);
            let (retry_error, converged, end) = match drive(&mut s, scn, &actors, &ops, ix) {
                Ok(()) => {
                    let end = EndState::capture(&mut s);
                    let converged = end == reference.end;
                    (None, converged, (!converged).then(|| Box::new(end)))
                }
                Err((_, e)) => (Some(e.to_string()), false, None),
            };
            Ok(CellOutcome {
                step,
                site,
                killed_op: Some(ix),
                torn_ptes: torn_a + torn_b,
                leaks_post_kill,
                leaks_post_recovery,
                recovery,
                retry_error,
                converged,
                end,
            })
        }
    }
}

/// What one **decay cell** observed: a power cut at `step` followed by
/// bit rot in encrypted DRAM frames while the machine was down, then a
/// reboot whose recovery must quarantine the rotten frames and converge
/// with the reference *on the surviving set*.
#[derive(Debug, Clone)]
pub struct DecayCellOutcome {
    /// The step index the power cut was armed at.
    pub step: u64,
    /// Whether the armed plan actually fired.
    pub fired: bool,
    /// Frames whose ciphertext decayed while power was out.
    pub decayed_frames: Vec<u64>,
    /// Frames the boot-time audit quarantined immediately.
    pub quarantined_by_recovery: usize,
    /// Frames in quarantine the moment `recover()` returned (audit +
    /// journal roll-forward quarantines together).
    pub quarantined_at_boot: usize,
    /// Frames in quarantine after the full retried schedule.
    pub quarantined_final: usize,
    /// Torn PTEs + cold-boot needle hits across both scans.
    pub torn_ptes: usize,
    /// Cold-boot needle hits (post-kill + post-recovery).
    pub leaks: usize,
    /// Unexpected (non-violation) error from the retried schedule.
    pub retry_error: Option<String>,
    /// Masked end state (quarantined frames and their mappings removed
    /// from both sides) equals the masked reference end state.
    pub survivors_converged: bool,
}

impl DecayCellOutcome {
    /// The cell is clean: nothing leaked or tore, every decayed frame
    /// that was not healed by journal roll-forward sits in quarantine,
    /// the retry ran, and the survivors converged.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.torn_ptes == 0
            && self.leaks == 0
            && self.retry_error.is_none()
            && self.survivors_converged
    }
}

/// Strip the quarantined `frames` (and every page-table view mapping
/// them) out of an end state, leaving the surviving set both runs are
/// compared on.
fn mask_end_state(end: &EndState, frames: &std::collections::BTreeSet<u64>) -> EndState {
    let masked_pages: std::collections::BTreeSet<(Pid, u64)> = end
        .ptes
        .iter()
        .filter(|p| p.dram_frame.is_some_and(|f| frames.contains(&f)))
        .map(|p| (p.pid, p.vpn))
        .collect();
    EndState {
        lock_epoch: end.lock_epoch,
        state: end.state,
        dram: end
            .dram
            .iter()
            .filter(|(base, _)| !frames.contains(base))
            .cloned()
            .collect(),
        ptes: end
            .ptes
            .iter()
            .filter(|p| !masked_pages.contains(&(p.pid, p.vpn)))
            .cloned()
            .collect(),
        onsoc: end
            .onsoc
            .iter()
            .filter(|(pid, vpn, _)| !masked_pages.contains(&(*pid, *vpn)))
            .cloned()
            .collect(),
    }
}

/// Drive `ops[from..]` tolerating integrity violations: a retried
/// schedule must keep running around quarantined pages (each violating
/// touch/write is skipped), while any other error still aborts.
fn drive_tolerant(
    s: &mut Sentry,
    scn: &Scenario,
    actors: &Actors,
    ops: &[Op],
    from: usize,
) -> Result<(), (usize, SentryError)> {
    for (ix, op) in ops.iter().enumerate().skip(from) {
        let per_page: Vec<(Actor, u64)> = match op {
            Op::Touch { who, vpns } => vpns.iter().map(|&v| (*who, v)).collect(),
            Op::TouchAll => scn.all_pages(),
            _ => Vec::new(),
        };
        if per_page.is_empty() {
            match apply(s, scn, actors, op) {
                Ok(()) => {}
                Err(e) if e.is_integrity_violation() => {}
                Err(e) => return Err((ix, e)),
            }
            continue;
        }
        for (who, vpn) in per_page {
            match s.touch_pages(actors.pid(who), &[vpn]) {
                Ok(()) => {}
                Err(e) if e.is_integrity_violation() => {}
                Err(e) => return Err((ix, e)),
            }
        }
    }
    Ok(())
}

/// Run one decay cell: rebuild, arm a power cut at `step`, drive to the
/// kill, decay up to `decay_frames` encrypted vault frames (one flipped
/// bit each, raw to the DRAM array), reboot via `recover()`, then
/// re-drive the schedule around the quarantine and compare the
/// surviving set against the reference.
///
/// # Errors
///
/// Propagates unexpected (non-injected) errors.
pub fn run_decay_cell(
    scn: &Scenario,
    reference: &Reference,
    step: u64,
    decay_frames: usize,
) -> Result<DecayCellOutcome, SentryError> {
    let (mut s, actors) = scn.build()?;
    let ops = scn.schedule();
    s.kernel.soc.failpoints.arm(FaultPlan::at_step(
        step,
        FaultAction::PowerCut { decay: None },
    ));
    let (ix, err) = match drive(&mut s, scn, &actors, &ops, 0) {
        Ok(()) => {
            s.kernel.soc.failpoints.disarm();
            let end = EndState::capture(&mut s);
            return Ok(DecayCellOutcome {
                step,
                fired: false,
                decayed_frames: Vec::new(),
                quarantined_by_recovery: 0,
                quarantined_at_boot: 0,
                quarantined_final: 0,
                torn_ptes: 0,
                leaks: 0,
                retry_error: None,
                survivors_converged: end == reference.end,
            });
        }
        Err((ix, err)) => (ix, err),
    };
    if !err.is_power_loss() {
        return Err(err);
    }
    let killed_mid_unlock = matches!(ops[ix], Op::Unlock);

    // While power is out, DRAM cells rot: flip one bit in each of the
    // first `decay_frames` encrypted vault frames (deterministic by vpn
    // order). The cache is flushed first so the frozen DRAM image is
    // the coherent one, exactly as `scan` assumes.
    s.kernel.soc.cache_maintenance_flush();
    let mut decayed = Vec::new();
    {
        let table = &s.kernel.procs[&actors.vault].page_table;
        let mut frames: Vec<(u64, u64)> = table
            .iter()
            .filter_map(|(vpn, pte)| match pte.backing {
                Backing::Dram(f) if pte.encrypted => Some((vpn, f)),
                _ => None,
            })
            .collect();
        frames.sort_unstable();
        for &(_, frame) in frames.iter().take(decay_frames) {
            decayed.push(frame);
        }
    }
    for &frame in &decayed {
        crate::tamper::flip_bit(&mut s.kernel.soc, frame, 513, 3);
    }

    let (torn_a, leaks_a) = scan(&mut s, killed_mid_unlock);
    let recovery = s.recover()?;
    let quarantined_at_boot = s.integrity.quarantined_count();
    let (torn_b, leaks_b) = scan(&mut s, killed_mid_unlock);
    let (retry_error, end) = match drive_tolerant(&mut s, scn, &actors, &ops, ix) {
        Ok(()) => (None, Some(EndState::capture(&mut s))),
        Err((_, e)) => (Some(e.to_string()), None),
    };
    let qframes: std::collections::BTreeSet<u64> =
        s.integrity.quarantined().iter().map(|q| q.frame).collect();
    let survivors_converged = end.as_ref().is_some_and(|end| {
        mask_end_state(end, &qframes) == mask_end_state(&reference.end, &qframes)
    });
    Ok(DecayCellOutcome {
        step,
        fired: true,
        decayed_frames: decayed,
        quarantined_by_recovery: recovery.quarantined,
        quarantined_at_boot,
        quarantined_final: qframes.len(),
        torn_ptes: torn_a + torn_b,
        leaks: leaks_a + leaks_b,
        retry_error,
        survivors_converged,
    })
}

/// The full matrix for one scenario.
#[derive(Debug, Clone)]
pub struct MatrixOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Total reachable steps (= number of cells).
    pub total_steps: u64,
    /// Every cell's observations, in step order.
    pub cells: Vec<CellOutcome>,
}

impl MatrixOutcome {
    /// Cells where the armed power cut actually fired.
    #[must_use]
    pub fn kills(&self) -> usize {
        self.cells.iter().filter(|c| c.site.is_some()).count()
    }

    /// Total torn-PTE observations across all cells.
    #[must_use]
    pub fn torn(&self) -> usize {
        self.cells.iter().map(|c| c.torn_ptes).sum()
    }

    /// Total cold-boot needle hits across all cells (both scans).
    #[must_use]
    pub fn leaks(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.leaks_post_kill + c.leaks_post_recovery)
            .sum()
    }

    /// Cells whose retried run failed to converge with the reference.
    #[must_use]
    pub fn diverged(&self) -> usize {
        self.cells.iter().filter(|c| !c.converged).count()
    }

    /// Cells whose retry errored.
    #[must_use]
    pub fn retry_failures(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.retry_error.is_some())
            .count()
    }

    /// Journal entries recovery had to complete, summed over cells.
    #[must_use]
    pub fn recovered_entries(&self) -> usize {
        self.cells.iter().map(|c| c.recovery.completed).sum()
    }

    /// The whole matrix is clean: every cell passed every assertion.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.cells.iter().all(CellOutcome::clean)
    }

    /// Kill counts per failpoint site, sorted by site name.
    #[must_use]
    pub fn site_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut hist: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for cell in &self.cells {
            if let Some(site) = cell.site {
                *hist.entry(site).or_default() += 1;
            }
        }
        hist.into_iter().collect()
    }
}

/// Enumerate every reachable step of `scn`'s schedule and run one kill
/// cell at each.
///
/// # Errors
///
/// Propagates the first unexpected error from any cell.
pub fn run_matrix(scn: &Scenario) -> Result<MatrixOutcome, SentryError> {
    let reference = record(scn)?;
    let mut cells = Vec::with_capacity(usize::try_from(reference.steps).unwrap_or(0));
    for step in 0..reference.steps {
        cells.push(run_cell(scn, &reference, step)?);
    }
    Ok(MatrixOutcome {
        scenario: scn.name.to_string(),
        total_steps: reference.steps,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_pass_reaches_failpoints_and_a_fixed_point() {
        let scn = Scenario::tegra3(7);
        let reference = record(&scn).unwrap();
        assert!(reference.steps > 20, "schedule too shallow to matter");
        assert_eq!(reference.end.state, DeviceState::Unlocked);
        assert_eq!(reference.end.lock_epoch, 2);
        // The trace covers the interesting sites.
        let sites: std::collections::BTreeSet<&str> =
            reference.sites.iter().map(|(s, _)| *s).collect();
        for expected in [
            "lock.begin",
            "unlock.begin",
            "fault.begin",
            "sweep.begin",
            "crypt.dispatch",
            "txn.publish",
            "txn.flip",
            "pager.pagein",
            "pager.evict",
            "dram.write",
        ] {
            assert!(sites.contains(expected), "site {expected} never reached");
        }
        // The end state is internally consistent: no secret needle
        // outside frames mapped plaintext.
        assert!(
            reference.end.ptes.iter().all(|p| p.dram_frame.is_some()),
            "fixed point leaves nothing on-SoC"
        );
    }

    #[test]
    fn record_is_deterministic() {
        let a = record(&Scenario::tegra3(7)).unwrap();
        let b = record(&Scenario::tegra3(7)).unwrap();
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.end, b.end);
    }

    #[test]
    fn decay_cell_quarantines_rotten_frames_and_converges_on_survivors() {
        let scn = Scenario::tegra3(7);
        let reference = record(&scn).unwrap();
        // A kill somewhere past the lock leaves encrypted vault frames
        // in DRAM for the decay to hit; step 12 lands mid-schedule.
        let cell = run_decay_cell(&scn, &reference, 12, 2).unwrap();
        assert!(cell.fired);
        assert!(cell.clean(), "cell not clean: {cell:?}");
        assert!(
            !cell.decayed_frames.is_empty(),
            "no encrypted frame to decay at this step"
        );
        assert!(
            cell.quarantined_final > 0,
            "decayed frames must end in quarantine: {cell:?}"
        );
    }

    #[test]
    fn first_step_kill_recovers_and_converges() {
        let scn = Scenario::tegra3(7);
        let reference = record(&scn).unwrap();
        let cell = run_cell(&scn, &reference, 0).unwrap();
        assert_eq!(cell.site, Some("lock.begin"));
        assert!(cell.clean(), "cell not clean: {cell:?}");
    }

    #[test]
    fn xts_and_ctr_kill_cells_recover_under_the_commit_cmac_tags() {
        // The full every-step sweep for these scenarios runs in
        // `exp_fault_matrix`; here a spread of kill steps checks that
        // recovery's published/not-published decision — now a commit
        // CMAC over IV ‖ ciphertext instead of the final CBC block —
        // still converges with the uninterrupted reference.
        for scn in [Scenario::tegra3_xts(7), Scenario::tegra3_ctr(7)] {
            let reference = record(&scn).unwrap();
            assert!(reference.steps > 20, "schedule too shallow to matter");
            for step in [0, 4, 8, 12, 16, 20] {
                let cell = run_cell(&scn, &reference, step).unwrap();
                assert!(cell.clean(), "{} step {step} not clean: {cell:?}", scn.name);
            }
        }
    }
}
