//! Teardown paths: releasing pager slots and unlocking cache ways
//! without leaking what they held.

use sentry_core::config::OnSocBackend;
use sentry_core::onsoc::OnSocStore;
use sentry_core::{Sentry, SentryConfig, TxnJournal};
use sentry_kernel::Kernel;
use sentry_soc::addr::{IRAM_BASE, PAGE_SIZE};
use sentry_soc::cache::ALL_WAYS;
use sentry_soc::Soc;

#[test]
fn pager_slots_can_be_released_back_to_the_store() {
    let kernel = Kernel::new(Soc::tegra3_small());
    let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2)).unwrap();
    let pid = sentry.kernel.spawn("app");
    sentry.mark_sensitive(pid).unwrap();
    sentry.write(pid, 0, &[7u8; 8 * 4096]).unwrap();
    sentry.on_lock().unwrap();

    // Background work acquires slots.
    let mut buf = [0u8; 64];
    for vpn in 0..8u64 {
        sentry.read(pid, vpn * PAGE_SIZE, &mut buf).unwrap();
    }
    assert!(sentry.pager.slot_count() > 0);
    assert!(sentry.pager.resident_count() > 0);

    // Evict everything and hand the slots back. Driving the pager
    // directly means supplying a journal; the last iRAM page (far past
    // the real journal and the integrity tag store) serves.
    let epoch = sentry.lock_epoch();
    let mut txn = TxnJournal::new(IRAM_BASE + sentry_soc::addr::IRAM_SIZE - PAGE_SIZE);
    let Sentry {
        kernel,
        store,
        pager,
        integrity,
        commit,
        ..
    } = &mut sentry;
    pager
        .evict_all(store, kernel, &mut txn, integrity, commit, epoch)
        .unwrap();
    assert_eq!(pager.resident_count(), 0);
    pager.release_slots(store, kernel).unwrap();
    assert_eq!(pager.slot_count(), 0);

    // All data still intact after unlock.
    sentry.on_unlock().unwrap();
    let mut page = vec![0u8; 8 * 4096];
    sentry.read(pid, 0, &mut page).unwrap();
    assert!(page.iter().all(|&b| b == 7));
}

#[test]
fn unlock_all_erases_contents_and_restores_the_cache() {
    let mut soc = Soc::tegra3_small();
    let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 3 }, &mut soc).unwrap();
    let mut pages = Vec::new();
    // Lock all three ways by allocating past two ways' capacity.
    for _ in 0..65 {
        pages.push(store.alloc_page(&mut soc).unwrap());
    }
    assert_eq!(store.locked_mask().count_ones(), 3);
    for &p in &pages {
        soc.mem_write(p, b"WAYSECRET").unwrap();
    }

    store.unlock_all(&mut soc).unwrap();
    assert_eq!(store.locked_mask(), 0);
    assert_eq!(soc.cache.alloc_mask(), ALL_WAYS);
    assert_eq!(soc.cache.flush_mask(), ALL_WAYS);

    // Whatever is readable at those addresses now, it is not the secret
    // (erased with 0xFF before unlocking), and a DMA sweep finds
    // nothing either.
    for &p in &pages {
        let mut buf = [0u8; 9];
        soc.mem_read(p, &mut buf).unwrap();
        assert_ne!(&buf, b"WAYSECRET");
        let dma = soc.dma_read(0, p, 4096).unwrap();
        assert!(!dma.windows(9).any(|w| w == b"WAYSECRET"));
    }
}

#[test]
fn freed_onsoc_pages_are_wiped_before_reuse() {
    let mut soc = Soc::tegra3_small();
    let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
    let page = store.alloc_page(&mut soc).unwrap();
    soc.mem_write(page, b"stale key material").unwrap();
    store.free_page(&mut soc, page).unwrap();
    let again = store.alloc_page(&mut soc).unwrap();
    assert_eq!(again, page, "freed page is recycled");
    let mut buf = [0u8; 18];
    soc.mem_read(again, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 18], "recycled page must be zeroed");
}
