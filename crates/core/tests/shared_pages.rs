//! The §7 shared-page policy over *real* shared frames.
//!
//! "If a memory page is shared with an application deemed non-sensitive,
//! Sentry assumes that the contents of this memory page are not secret
//! and skips encrypting it. However, if the page is shared only between
//! sensitive applications, Sentry encrypts the page."

use sentry_core::{Sentry, SentryConfig};
use sentry_kernel::pagetable::Sharing;
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::Soc;

const SHARED_DATA: &[u8] = b"shared session token: 9f3a2c";

fn sentry() -> Sentry {
    Sentry::new(
        Kernel::new(Soc::tegra3_small()),
        SentryConfig::tegra3_locked_l2(2),
    )
    .unwrap()
}

#[test]
fn page_shared_between_sensitive_apps_is_encrypted_once() {
    let mut s = sentry();
    let a = s.kernel.spawn("mail");
    let b = s.kernel.spawn("calendar");
    s.mark_sensitive(a).unwrap();
    s.mark_sensitive(b).unwrap();

    s.write(a, 0, SHARED_DATA).unwrap();
    s.kernel.map_shared(a, 0, b, 7).unwrap();

    // Both views see the same bytes.
    let mut buf = vec![0u8; SHARED_DATA.len()];
    s.read(b, 7 * PAGE_SIZE, &mut buf).unwrap();
    assert_eq!(buf, SHARED_DATA);

    let report = s.on_lock().unwrap();
    // Exactly one page encrypted for the shared frame (not two).
    assert_eq!(report.bytes_encrypted, PAGE_SIZE);
    assert_eq!(report.skipped_shared_pages, 0);

    // No plaintext in DRAM.
    s.kernel.soc.cache_maintenance_flush();
    for (_addr, frame) in s.kernel.soc.dram.iter_frames() {
        assert!(!frame.windows(12).any(|w| w == &SHARED_DATA[..12]));
    }

    // After unlock, either sharer's first touch decrypts for both.
    s.on_unlock().unwrap();
    s.read(b, 7 * PAGE_SIZE, &mut buf).unwrap();
    assert_eq!(buf, SHARED_DATA);
    let mut via_a = vec![0u8; SHARED_DATA.len()];
    s.read(a, 0, &mut via_a).unwrap();
    assert_eq!(via_a, SHARED_DATA, "second sharer must not double-decrypt");
    assert_eq!(
        s.kernel.proc(a).unwrap().page_table.get(0).unwrap().sharing,
        Sharing::SharedSensitiveOnly
    );
}

#[test]
fn page_shared_with_non_sensitive_app_is_skipped() {
    let mut s = sentry();
    let a = s.kernel.spawn("mail");
    let b = s.kernel.spawn("keyboard-extension"); // not sensitive
    s.mark_sensitive(a).unwrap();

    s.write(a, 0, SHARED_DATA).unwrap();
    s.write(a, PAGE_SIZE, b"private mail body pages.........")
        .unwrap();
    s.kernel.map_shared(a, 0, b, 0).unwrap();

    let report = s.on_lock().unwrap();
    // Only the private page was encrypted; the shared one was skipped
    // and tagged.
    assert_eq!(report.bytes_encrypted, PAGE_SIZE);
    assert_eq!(report.skipped_shared_pages, 1);
    assert_eq!(
        s.kernel.proc(a).unwrap().page_table.get(0).unwrap().sharing,
        Sharing::SharedWithNonSensitive
    );

    // The non-sensitive app can keep using the page while locked —
    // it never traps.
    let mut buf = vec![0u8; SHARED_DATA.len()];
    s.kernel.read(b, 0, &mut buf).unwrap();
    assert_eq!(buf, SHARED_DATA);
}

#[test]
fn repeated_cycles_keep_shared_pages_consistent() {
    let mut s = sentry();
    let a = s.kernel.spawn("a");
    let b = s.kernel.spawn("b");
    s.mark_sensitive(a).unwrap();
    s.mark_sensitive(b).unwrap();
    s.write(a, 0, SHARED_DATA).unwrap();
    s.kernel.map_shared(a, 0, b, 3).unwrap();

    for cycle in 0..4u8 {
        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        // Alternate which sharer touches first.
        let mut buf = vec![0u8; SHARED_DATA.len()];
        if cycle % 2 == 0 {
            s.read(a, 0, &mut buf).unwrap();
        } else {
            s.read(b, 3 * PAGE_SIZE, &mut buf).unwrap();
        }
        assert_eq!(buf, SHARED_DATA, "cycle {cycle}");
    }
}

#[test]
fn writes_through_one_mapping_are_visible_through_the_other() {
    let mut s = sentry();
    let a = s.kernel.spawn("a");
    let b = s.kernel.spawn("b");
    s.write(a, 0, b"before").unwrap();
    s.kernel.map_shared(a, 0, b, 0).unwrap();
    s.write(b, 0, b"after!").unwrap();
    let mut buf = [0u8; 6];
    s.read(a, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"after!");
}
