//! The Sentry lifecycle: encrypt-on-lock, decrypt-on-unlock, background
//! execution, and the fault dispatcher.
//!
//! Sentry's main observation (§2): protecting memory while the device is
//! *unlocked* is pointless — anyone holding an unlocked device can read
//! the data through the UI. So Sentry encrypts the memory of sensitive
//! applications when the screen locks, decrypts on demand after unlock
//! (lazily, to keep resume latency and energy low, §7), and — on
//! platforms with cache locking — lets sensitive apps keep running in
//! the background with their working set confined to the SoC.

use crate::aes_onsoc::build_engine;
use crate::config::{OnSocBackend, SentryConfig};
use crate::encdram::{page_iv, Pager};
use crate::error::SentryError;
use crate::integrity::{IntegrityPlane, QuarantinedPage, VerifyOutcome};
use crate::keys::VolatileRootKey;
use crate::onsoc::OnSocStore;
use crate::pressure::{PressureLevel, PressureStats};
use crate::txn::{CommitTagger, JournalEntry, TxnJournal, TxnOp, MAX_ENTRIES};
use sentry_crypto::parallel::{crypt_batch, BatchReport, Direction, PageJob};
use sentry_crypto::{
    Aes, CryptoError, FailureKind, FallbackReason, HealthGovernor, HealthStats, PageCipherMode,
    RetryStats,
};
use sentry_kernel::crypto_api::CipherEngine;
use sentry_kernel::fault::{FaultResolution, PageFault};
use sentry_kernel::layout::{ACCEL_DMA_BASE, ACCEL_DMA_CONTROLLER, ACCEL_DMA_SIZE};
use sentry_kernel::pagetable::{Backing, Pte, Sharing};
use sentry_kernel::{Kernel, KernelError, Pid};
use sentry_soc::accel::{AccelPowerState, WaitOutcome};
use sentry_soc::addr::{IRAM_BASE, IRAM_FIRMWARE_RESERVED, PAGE_SIZE};

/// Whether the device screen is locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Screen on, user authenticated. Sentry adds (almost) no overhead.
    Unlocked,
    /// Screen locked: sensitive state is ciphertext in DRAM.
    Locked,
}

/// What a lock transition did (drives Figures 4 and 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockReport {
    /// Total simulated time of the transition, nanoseconds.
    pub duration_ns: u64,
    /// Bytes encrypted.
    pub bytes_encrypted: u64,
    /// Time spent waiting for the freed-page zeroing drain.
    pub zero_drain_ns: u64,
    /// Pages skipped because they are shared with non-sensitive apps.
    pub skipped_shared_pages: u64,
    /// Pages dispatched through the batch crypt engine.
    pub batch_pages: u64,
    /// Worker lanes the batch actually used (1 on the sequential path).
    pub workers_used: usize,
}

/// What an unlock transition did eagerly (DMA regions; Figure 2's
/// lazy remainder shows up in [`LifecycleStats`] as apps resume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnlockReport {
    /// Total simulated time of the eager part, nanoseconds.
    pub duration_ns: u64,
    /// Bytes of DMA-region memory decrypted eagerly.
    pub eager_bytes_decrypted: u64,
    /// Worker lanes the eager batch used (1 on the sequential path).
    pub workers_used: usize,
}

/// Cumulative on-demand (post-unlock) decryption statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Lock transitions performed.
    pub locks: u64,
    /// Unlock transitions performed.
    pub unlocks: u64,
    /// On-demand page decryptions since the last reset.
    pub ondemand_faults: u64,
    /// Bytes decrypted on demand since the last reset.
    pub ondemand_bytes: u64,
    /// Simulated time spent in on-demand decryption since the last
    /// reset.
    pub ondemand_ns: u64,
    /// Batches dispatched through the bulk crypt engine (lock and eager
    /// unlock transitions with at least one page).
    pub crypt_batches: u64,
    /// Pages across all such batches.
    pub crypt_batch_pages: u64,
    /// Largest single batch seen, in pages.
    pub largest_batch_pages: u64,
    /// Slowest single on-demand fault resolution seen, nanoseconds.
    pub ondemand_max_ns: u64,
    /// Faults that pulled at least one readahead companion in.
    pub readahead_clusters: u64,
    /// Extra pages decrypted by readahead (beyond the faulting pages
    /// themselves).
    pub readahead_pages: u64,
    /// Background sweeper steps that ran (with a non-empty residual).
    pub sweep_runs: u64,
    /// Pages drained by the background sweeper.
    pub sweep_pages: u64,
    /// Simulated time spent in background sweeper steps.
    pub sweep_ns: u64,
    /// Transient crypt/dispatch faults absorbed by the bounded-retry
    /// policy on the fault-readahead and sweeper paths, in the unified
    /// retry shape: `attempts` counts transparent retries, `recovered`
    /// batches that succeeded after one, `exhausted` budgets that ran
    /// out (each surfacing a typed [`SentryError::RetriesExhausted`]).
    pub crypt: RetryStats,
    /// Decrypt batches routed through the accelerator queue (pipeline
    /// routing enabled, accelerator Awake, non-chaining cipher mode).
    pub routed_batches: u64,
    /// Pages across all accelerator-routed decrypt batches.
    pub routed_batch_pages: u64,
    /// Time the CPU stalled waiting on routed batch completions.
    pub routed_stall_ns: u64,
    /// Batches that fell back inline because the accelerator clock was
    /// down-scaled (device locked, §8.2).
    pub batch_fallback_down_scaled: u64,
    /// Batches that fell back inline because the configured cipher mode
    /// is chaining (CBC) and the keystream/extent queue path needs a
    /// counter-style mode.
    pub batch_fallback_unsupported_mode: u64,
    /// Batches below the routing threshold (a lone page keeps the exact
    /// single-page dispatch).
    pub batch_fallback_below_threshold: u64,
    /// Batches routed to the CPU path because the health breaker was
    /// open for the accelerator (see [`crate::health`]).
    pub batch_fallback_breaker_open: u64,
    /// Health-governor counters (breaker trips, probes, watchdog
    /// timeouts, abandoned and CPU-fallback bytes), mirrored from
    /// [`Sentry::health`] after every governed dispatch.
    pub health: HealthStats,
    /// On-SoC pressure telemetry (occupancy, high-water mark, watermark
    /// transitions, shed/spill/reclaim counters), mirrored from the
    /// store's tracker by [`Sentry::sync_pressure`].
    pub pressure: PressureStats,
}

/// What one background sweeper step did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Frames decrypted by this step.
    pub pages: usize,
    /// Simulated time of the step, nanoseconds.
    pub duration_ns: u64,
    /// Encrypted DRAM mappings remaining after the step (the
    /// residual-encrypted-pages gauge).
    pub residual_pages: usize,
}

/// One gathered page of fault-cluster or sweeper work: a mapping, the
/// frame behind it, and the IV its ciphertext was produced under.
#[derive(Clone, Copy)]
struct ClusterPage {
    pid: Pid,
    vpn: u64,
    frame: u64,
    iv: [u8; 16],
}

/// Who owns a bulk-encrypt job's frame — what the publish loop must
/// flip once the ciphertext lands.
enum JobOwner {
    /// A single private mapping.
    Private(Pid, u64),
    /// A freshly encrypted shared frame: every sharer's PTE flips.
    Shared(Vec<(Pid, u64)>),
}

/// What [`Sentry::recover`] did with the journal it found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entries in the journaled chunk that was open at the kill.
    pub journaled: usize,
    /// Entries recovery completed (published and/or flipped).
    pub completed: usize,
    /// Entries already marked done before the kill.
    pub already_done: usize,
    /// Encrypted frames the boot-time integrity audit quarantined
    /// (decayed or tampered while power was out).
    pub quarantined: usize,
}

/// Cumulative parallel-engine statistics. Kept separate from
/// [`LifecycleStats`] because the per-lane byte loads are variable
/// length (one slot per worker lane ever used).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Batches recorded (sequential fallback included).
    pub batches: u64,
    /// Batches that actually fanned out across more than one lane.
    pub parallel_batches: u64,
    /// Cumulative bytes transformed by each worker lane (index = lane;
    /// the sequential path accounts all its bytes to lane 0).
    pub per_worker_bytes: Vec<u64>,
}

impl ParallelStats {
    fn record(&mut self, report: &BatchReport) {
        self.batches += 1;
        if !report.sequential_fallback {
            self.parallel_batches += 1;
        }
        if self.per_worker_bytes.len() < report.per_worker_bytes.len() {
            self.per_worker_bytes
                .resize(report.per_worker_bytes.len(), 0);
        }
        for (acc, lane) in self
            .per_worker_bytes
            .iter_mut()
            .zip(&report.per_worker_bytes)
        {
            *acc += *lane;
        }
    }
}

/// One-time device-construction statistics.
///
/// `Sentry::new` is on the fleet harness's critical path — constructing
/// 10k devices means 10k key generations, key-schedule expansions, and
/// on-SoC allocations — so its cost is measured, not guessed. The
/// simulated cost covers everything `new` charges to the SoC clock
/// (tracked key expansion in the IRQ-critical section, on-SoC stores);
/// the host cost is the wall-clock price of one stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Simulated nanoseconds consumed building the device stack.
    pub setup_sim_ns: u64,
    /// Host nanoseconds spent in `Sentry::new`.
    pub setup_host_ns: u64,
    /// Expansions of the volatile *root* key schedule during setup.
    /// One native expansion is shared by the engine, the integrity
    /// plane, and the commit tagger; the tracked on-SoC expansion is
    /// the simulated device's own and is counted separately by
    /// `setup_sim_ns`.
    pub root_key_schedules: u64,
    /// Expansions of derived (domain-separated) key schedules: the
    /// integrity MAC key and the commit-tag key.
    pub derived_key_schedules: u64,
}

/// The Sentry system: the kernel plus Sentry's storage, pager, and keys.
#[derive(Debug)]
pub struct Sentry {
    /// The underlying kernel (and through it, the SoC).
    pub kernel: Kernel,
    /// On-SoC storage.
    pub store: OnSocStore,
    /// The encrypted-DRAM pager.
    pub pager: Pager,
    /// Configuration.
    pub config: SentryConfig,
    /// Cumulative statistics.
    pub stats: LifecycleStats,
    /// Cumulative parallel-engine statistics (per-lane byte loads).
    pub parallel: ParallelStats,
    /// One-time construction cost of this device stack (see
    /// [`DeviceStats`]).
    pub device_stats: DeviceStats,
    /// The most recently resolved on-demand fault (telemetry; `pages >
    /// 1` means the readahead cluster pulled in encrypted neighbours).
    pub last_fault: Option<FaultResolution>,
    /// The authenticated-DRAM integrity plane: per-page CMAC tags in an
    /// on-SoC tag store, verified on every decrypt path, with poisoned
    /// pages quarantined (see [`crate::integrity`]).
    pub integrity: IntegrityPlane,
    /// Journal commit-tag scheme for the configured cipher mode: the
    /// final ciphertext block under CBC, a commit CMAC over
    /// IV ‖ ciphertext under XTS/CTR (see [`CommitTagger`]).
    pub commit: CommitTagger,
    /// Health governor for the lifecycle's accelerator dispatch:
    /// watchdog deadlines on routed batch waits, circuit breaker routing
    /// dispatch back to the CPU path while the engine is distrusted, and
    /// half-open probes to recover (see [`crate::health`]).
    pub health: HealthGovernor,
    state: DeviceState,
    volatile_key: VolatileRootKey,
    /// The crash-consistency transition journal (one on-SoC page).
    txn: TxnJournal,
    /// Monotone lock counter mixed into every page IV so ciphertext
    /// never repeats across lock cycles under the surviving volatile
    /// key. Incremented at the start of each lock transition.
    lock_epoch: u64,
    /// Background sweeper resume point: the first (pid, vpn) at or after
    /// which the next sweep step scans. Faults push it past their
    /// cluster window, so the sweeper drains in recency order — right
    /// behind wherever the app is touching.
    sweep_cursor: Option<(Pid, u64)>,
}

impl Sentry {
    /// Install Sentry into `kernel`: set up on-SoC storage, generate the
    /// volatile root key on-SoC, build AES On SoC keyed with it, and
    /// register the engine with the Crypto API at high priority.
    ///
    /// # Errors
    ///
    /// Propagates on-SoC allocation failures (e.g., requesting the
    /// locked-L2 backend on a platform whose firmware disables cache
    /// locking).
    pub fn new(mut kernel: Kernel, config: SentryConfig) -> Result<Self, SentryError> {
        let host_start = std::time::Instant::now();
        let sim_start = kernel.soc.clock.now_ns();
        let mut store =
            OnSocStore::with_pressure(config.backend, config.pressure, &mut kernel.soc)?;
        let key_page = store.alloc_page(&mut kernel.soc)?;
        let volatile_key =
            VolatileRootKey::generate(&mut kernel.soc, key_page, 0xB007_0000 ^ key_page)?;
        let key = volatile_key.read(&mut kernel.soc)?;
        let mut engine = build_engine(&mut store, &mut kernel.soc, &key)?;
        engine
            .set_mode(config.cipher_mode)
            .map_err(SentryError::Kernel)?;
        kernel.crypto.register(Box::new(engine));
        // The transition journal lives in iRAM — on-SoC, so it dies with
        // power exactly like the volatile key. With the iRAM backend it
        // is an allocated page; with locked L2, iRAM is otherwise unused
        // and the first post-firmware page is taken directly.
        let journal_page = match config.backend {
            OnSocBackend::Iram => store.alloc_page(&mut kernel.soc)?,
            OnSocBackend::LockedL2 { .. } => IRAM_BASE + IRAM_FIRMWARE_RESERVED,
        };
        // The root-key schedule is expanded exactly once and shared by
        // every derived-key consumer below; re-expanding it per consumer
        // made per-device construction measurably more expensive at
        // fleet scale (10k devices × 2 redundant expansions).
        let root = Aes::new(&key).map_err(CryptoError::from)?;
        // The integrity plane's MAC key derives from the volatile root
        // key, and its tag store sits next to the journal on-SoC: both
        // die with power, exactly like the ciphertext they authenticate.
        let mut integrity = IntegrityPlane::with_root(config.integrity, config.backend, &root)?;
        integrity.set_spill_allowed(config.pressure.spill);
        // The journal commit-tag scheme follows the cipher mode: the
        // CMAC it may need is keyed once here, from the same root key.
        let commit = CommitTagger::with_root(config.cipher_mode, &root)?;
        let device_stats = DeviceStats {
            setup_sim_ns: kernel.soc.clock.now_ns() - sim_start,
            setup_host_ns: u64::try_from(host_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            // The engine's native schedule plus the single hoisted
            // expansion shared by the integrity plane and commit tagger.
            root_key_schedules: 2,
            derived_key_schedules: u64::from(config.integrity.enabled) + 1,
        };
        let governor = HealthGovernor::new(config.health);
        Ok(Sentry {
            kernel,
            store,
            pager: Pager::new(config.slot_limit),
            config,
            stats: LifecycleStats::default(),
            parallel: ParallelStats::default(),
            device_stats,
            health: governor,
            last_fault: None,
            integrity,
            commit,
            state: DeviceState::Unlocked,
            volatile_key,
            txn: TxnJournal::new(journal_page),
            lock_epoch: 0,
            sweep_cursor: None,
        })
    }

    /// Current lock state.
    #[must_use]
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// The volatile root key handle (on-SoC address).
    #[must_use]
    pub fn volatile_key(&self) -> VolatileRootKey {
        self.volatile_key
    }

    /// The current lock epoch (number of lock transitions so far).
    #[must_use]
    pub fn lock_epoch(&self) -> u64 {
        self.lock_epoch
    }

    /// Fold any still-open degraded interval up to the current sim time
    /// and mirror the governor's counters onto
    /// [`LifecycleStats::health`]. Call before reading
    /// `stats.health.time_degraded_ns` at a report boundary.
    pub fn sync_health(&mut self) {
        let now = self.kernel.soc.clock.now_ns();
        self.health.finalize(now);
        self.stats.health = self.health.stats;
    }

    /// Re-derive on-SoC occupancy and mirror the pressure tracker's
    /// counters onto [`LifecycleStats::pressure`]. Call before reading
    /// pressure telemetry at a report boundary.
    pub fn sync_pressure(&mut self) {
        self.store.refresh_pressure();
        self.stats.pressure = self.store.pressure().stats;
    }

    /// The store's current watermark level.
    #[must_use]
    pub fn pressure_level(&self) -> PressureLevel {
        self.store.pressure_level()
    }

    /// Install (or clear, with `None`) an on-SoC budget tighter than the
    /// physical capacity — the fleet's memory-pressure chaos knob — then
    /// immediately run the governor so reclaim starts before the next
    /// allocation hits the shrunken budget.
    ///
    /// # Errors
    ///
    /// Propagates spill I/O errors from the reclaim pass.
    pub fn set_onsoc_budget(&mut self, budget: Option<u64>) -> Result<(), SentryError> {
        self.store.pressure_mut().set_budget_override(budget);
        self.store.refresh_pressure();
        self.govern_pressure()?;
        self.sync_pressure();
        Ok(())
    }

    /// The reclaim loop: while the store sits at Critical, shed cold
    /// tag-store pages (reap empties, spill cold ones to the encrypted
    /// region) and return free pager slots, until the level drops or no
    /// lever makes progress. Runs at every lifecycle entry point, so
    /// relief happens *before* work that needs on-SoC space — an
    /// allocation is refused only when everything reclaimable is gone.
    ///
    /// # Errors
    ///
    /// Propagates spill I/O and SoC errors.
    fn govern_pressure(&mut self) -> Result<(), SentryError> {
        if !self.config.pressure.enabled {
            return Ok(());
        }
        while self.store.pressure_level() == PressureLevel::Critical {
            let shed = self
                .integrity
                .shed_cold_page(&mut self.kernel.soc, &mut self.store)?;
            let shrunk = self
                .pager
                .shrink_free_slots(&mut self.store, &mut self.kernel)?;
            if !shed && shrunk == 0 {
                break;
            }
            self.store.pressure_mut().note_shed();
            self.store.refresh_pressure();
        }
        Ok(())
    }

    /// Process teardown: release every on-SoC and DRAM resource the
    /// dying process pins, so long spawn/exit churn never leaks the
    /// store into [`SentryError::OnSocExhausted`]. In order: the pager
    /// drops (and wipes) the pid's resident slots, the kernel unmaps the
    /// address space and frees its frames (shared frames only with the
    /// last mapper), the integrity plane retires the dead frames' tags
    /// and quarantine entries and reaps emptied tag pages, and free
    /// pager slots at the table tail return to the store. Returns the
    /// number of on-SoC pages reclaimed.
    ///
    /// # Errors
    ///
    /// [`SentryError::TransitionInFlight`] while a journaled transition
    /// is open, [`KernelError::UnknownPid`] for bad pids; propagated
    /// memory errors otherwise.
    pub fn on_exit(&mut self, pid: Pid) -> Result<u64, SentryError> {
        self.ensure_no_txn("on_exit")?;
        let _ = self.kernel.proc(pid)?;
        self.pager.drop_pid(&mut self.kernel, pid)?;
        // Frames that die with the process: DRAM-backed frames with no
        // surviving sharer, plus home frames of on-SoC-resident pages.
        let mut frames: Vec<u64> = Vec::new();
        for (_vpn, pte) in self.kernel.procs[&pid].page_table.iter() {
            let frame = match pte.backing {
                Backing::Dram(f) => f,
                Backing::OnSoc(_) => match pte.home_frame {
                    Some(f) => f,
                    None => continue,
                },
            };
            let last_mapper = self
                .kernel
                .shared_frames
                .get(&frame)
                .is_none_or(|s| s.iter().all(|&(p, _)| p == pid));
            if last_mapper {
                frames.push(frame);
            }
        }
        self.kernel.exit(pid)?;
        let reclaimed =
            self.integrity
                .release_frames(&mut self.kernel.soc, &mut self.store, &frames)?;
        let shrunk = self
            .pager
            .shrink_free_slots(&mut self.store, &mut self.kernel)?;
        if self
            .sweep_cursor
            .is_some_and(|(cursor_pid, _)| cursor_pid == pid)
        {
            self.sweep_cursor = None;
        }
        self.sync_pressure();
        Ok(reclaimed + shrunk)
    }

    /// Mark a process sensitive — the settings-menu toggle of §7.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownPid`] via [`SentryError::Kernel`].
    pub fn mark_sensitive(&mut self, pid: Pid) -> Result<(), SentryError> {
        self.kernel.proc_mut(pid)?.sensitive = true;
        Ok(())
    }

    fn sensitive_pids(&self) -> Vec<Pid> {
        self.kernel
            .procs
            .values()
            .filter(|p| p.sensitive)
            .map(|p| p.pid)
            .collect()
    }

    /// Whether a journaled transition chunk is open right now — i.e., a
    /// previous transition was killed mid-commit and [`Sentry::recover`]
    /// has not yet run.
    #[must_use]
    pub fn txn_in_flight(&self) -> bool {
        self.txn.in_flight()
    }

    /// Re-entrancy guard: every transition entry point refuses to start
    /// while a journaled transition is still in flight.
    fn ensure_no_txn(&self, op: &'static str) -> Result<(), SentryError> {
        if self.txn.in_flight() {
            Err(SentryError::TransitionInFlight { op })
        } else {
            Ok(())
        }
    }

    /// Run a batch of DRAM-side `(frame, iv)` crypt jobs — the bulk path
    /// of every transition — *into host scratch buffers*, without
    /// touching DRAM. Returns the transformed pages (one contiguous
    /// buffer, page-sized chunks in job order), the per-page ciphertext
    /// tags (first 16 bytes of each page's *ciphertext* image — post-
    /// transform for encrypt, pre-transform for decrypt), and the batch
    /// report. The caller journals the tags, then publishes each chunk
    /// with its PTE flip as a two-phase commit.
    ///
    /// With `parallel.workers <= 1`, or a batch below
    /// `parallel.min_batch_pages`, every page dispatches one at a time
    /// through the registered cipher engine, exactly like the serial
    /// prototype — byte- and cycle-identical to the unbatched code.
    /// Otherwise the ciphertext work fans out across the scoped worker
    /// pool of [`sentry_crypto::parallel`] under a single AES context
    /// expanded once per batch from the volatile root key, and the
    /// simulated clock is charged the serial AES cost divided by the
    /// lane count (one IRQ-disabled critical section for the whole
    /// batch; the page copies to and from DRAM still run through the
    /// SoC at full cost). AES On SoC itself stays single-lane — its
    /// state page cannot be replicated — so the parallel path models
    /// per-core register-resident contexts derived from the same key.
    #[allow(clippy::type_complexity)]
    fn crypt_frames_to_buffers(
        &mut self,
        direction: Direction,
        jobs: &[(u64, [u8; 16])],
    ) -> Result<(Vec<u8>, Vec<[u8; 16]>, BatchReport), SentryError> {
        if jobs.is_empty() {
            let report = BatchReport {
                pages: 0,
                bytes: 0,
                workers_used: 1,
                per_worker_bytes: vec![0],
                sequential_fallback: true,
            };
            return Ok((Vec::new(), Vec::new(), report));
        }
        let mut buf = self.gather_frames(jobs)?;
        let (tags, report) = self.crypt_buffers(direction, jobs, &mut buf)?;
        Ok((buf, tags, report))
    }

    /// Gather every job's source frame into one contiguous scratch run.
    /// Nothing here writes DRAM. Split out of the crypt dispatch so the
    /// decrypt paths can MAC-verify the gathered ciphertext against the
    /// on-SoC tag store *before* the block cipher ever runs on it.
    fn gather_frames(&mut self, jobs: &[(u64, [u8; 16])]) -> Result<Vec<u8>, SentryError> {
        let page = PAGE_SIZE as usize;
        let mut buf = vec![0u8; jobs.len() * page];
        for (chunk, &(frame, _)) in buf.chunks_exact_mut(page).zip(jobs) {
            self.kernel.soc.mem_read(frame, chunk)?;
        }
        Ok(buf)
    }

    /// Transform already-gathered pages in place (the dispatch half of
    /// [`Sentry::crypt_frames_to_buffers`]). Returns the per-page
    /// ciphertext tags and the batch report.
    fn crypt_buffers(
        &mut self,
        direction: Direction,
        jobs: &[(u64, [u8; 16])],
        buf: &mut [u8],
    ) -> Result<(Vec<[u8; 16]>, BatchReport), SentryError> {
        let pages = jobs.len();
        let bytes = pages as u64 * PAGE_SIZE;
        let page = PAGE_SIZE as usize;
        self.kernel.soc.failpoint("crypt.dispatch")?;
        let workers = self.config.parallel.workers;
        let min_batch = self.config.parallel.min_batch_pages.max(1);
        let ivs: Vec<[u8; 16]> = jobs.iter().map(|&(_, iv)| iv).collect();

        // Decrypt jobs carry the ciphertext *now*; snapshot the commit
        // tags before the transform destroys them.
        let pre_tags = (direction == Direction::Decrypt).then(|| self.commit.tags(&ivs, buf));

        let report = if workers <= 1 || pages < min_batch {
            if pages == 1 {
                // A lone page takes the exact single-page dispatch —
                // byte- and cycle-identical to the unbatched prototype.
                let iv = jobs[0].1;
                let Kernel { soc, crypto, .. } = &mut self.kernel;
                let engine = crypto.preferred_mut().map_err(SentryError::Kernel)?;
                match direction {
                    Direction::Encrypt => engine.encrypt(soc, &iv, buf),
                    Direction::Decrypt => engine.decrypt(soc, &iv, buf),
                }
                .map_err(SentryError::Kernel)?;
            } else {
                // One extent call: one batched kernel stream, one
                // IRQ-critical section. The engine charge is linear in
                // bytes, so this is cycle-identical to the per-page
                // loop, while the backend batches across page
                // boundaries (the encrypt side fills its lanes with
                // independent page chains).
                let Kernel { soc, crypto, .. } = &mut self.kernel;
                let engine = crypto.preferred_mut().map_err(SentryError::Kernel)?;
                match direction {
                    Direction::Encrypt => engine.encrypt_extent(soc, &ivs, buf),
                    Direction::Decrypt => engine.decrypt_extent(soc, &ivs, buf),
                }
                .map_err(SentryError::Kernel)?;
            }
            BatchReport {
                pages,
                bytes,
                workers_used: 1,
                per_worker_bytes: vec![bytes],
                sequential_fallback: true,
            }
        } else {
            // Expand the key schedule exactly once for the whole batch;
            // worker lanes share the expanded context by reference.
            let key = self.volatile_key.read(&mut self.kernel.soc)?;
            let aes = Aes::new(&key).map_err(|e| SentryError::Crypto(CryptoError::Key(e)))?;

            let mut batch: Vec<PageJob<'_>> = buf
                .chunks_exact_mut(page)
                .zip(jobs)
                .map(|(data, &(_, iv))| PageJob { iv, data })
                .collect();
            // Both directions run the batched bitsliced kernel: decrypt
            // lanes stream each page 16 blocks per call (CBC decryption
            // is data-parallel within a page), encrypt lanes fill the 16
            // lanes with independent page chains. All lanes share one
            // reference — the schedule expanded above is the only key
            // expansion in the whole batch.
            let bits = sentry_crypto::BitslicedAes::from_schedule(aes.schedule());
            let report = crypt_batch(
                &bits,
                self.config.cipher_mode,
                direction,
                &mut batch,
                workers,
                min_batch,
            )
            .map_err(SentryError::Crypto)?;

            // Same calibrated per-block cost as the AES-On-SoC engine,
            // spread across the lanes that actually ran.
            let state_access = match self.config.backend {
                OnSocBackend::Iram => self.kernel.soc.costs.iram_access_ns,
                OnSocBackend::LockedL2 { .. } => self.kernel.soc.costs.cache_hit_ns,
            };
            let serial_ns =
                (bytes / 16) * (self.kernel.soc.costs.aes_block_compute_ns + 4 * state_access);
            let charged_ns = serial_ns.div_ceil(report.workers_used as u64);
            let soc = &mut self.kernel.soc;
            let was_enabled = soc.cpu.begin_critical();
            soc.clock.advance(charged_ns);
            soc.cpu.end_critical(was_enabled, charged_ns);
            report
        };

        let tags = pre_tags.unwrap_or_else(|| self.commit.tags(&ivs, buf));
        if report.pages > 0 {
            self.stats.crypt_batches += 1;
            self.stats.crypt_batch_pages += report.pages as u64;
            self.stats.largest_batch_pages =
                self.stats.largest_batch_pages.max(report.pages as u64);
            self.parallel.record(&report);
        }
        Ok((tags, report))
    }

    /// Dispatch a decrypt batch either inline ([`Sentry::crypt_buffers`])
    /// or through the accelerator queue, per
    /// [`crate::config::SentryConfig::pipeline`].
    ///
    /// Routing keeps the *functional* transform on the host path — the
    /// batched bitsliced kernel produces exactly the bytes the engine
    /// model would — and substitutes the accelerator-queue completion
    /// horizon for the CPU charge via `set_now_ns` (the sanctioned
    /// cost-substitution convention; see `SimClock::set_now_ns`). The
    /// ciphertext is staged through the DMA bounce window *before* the
    /// `accel.dma` failpoint and the plaintext written back only after
    /// the queue completes, so accelerator traffic stays visible to a
    /// bus monitor and a power cut mid-operation leaves only ciphertext
    /// in the window.
    ///
    /// Typed fallbacks (counted on [`LifecycleStats`]): a chaining
    /// cipher mode ([`FallbackReason::UnsupportedCipherMode`]), a
    /// down-scaled accelerator clock while the device is locked
    /// ([`FallbackReason::AccelDownScaled`], §8.2), and batches too
    /// small to amortise descriptor setup
    /// ([`FallbackReason::BelowThreshold`]).
    fn route_or_crypt_decrypt(
        &mut self,
        jobs: &[(u64, [u8; 16])],
        buf: &mut [u8],
    ) -> Result<(Vec<[u8; 16]>, BatchReport), SentryError> {
        let p = self.config.pipeline;
        if !(p.enabled && p.route_lifecycle_batches) || jobs.is_empty() {
            return self.crypt_buffers(Direction::Decrypt, jobs, buf);
        }
        let reason = if self.config.cipher_mode == PageCipherMode::Cbc {
            Some(FallbackReason::UnsupportedCipherMode)
        } else if self.kernel.soc.accel.state != AccelPowerState::Awake {
            Some(FallbackReason::AccelDownScaled)
        } else if jobs.len() < 2 {
            Some(FallbackReason::BelowThreshold)
        } else if !self.health.allow_accel(self.kernel.soc.clock.now_ns()) {
            // Breaker open, probe interval not yet elapsed: the engine is
            // distrusted, the bitsliced CPU path carries the batch.
            Some(FallbackReason::BreakerOpen)
        } else {
            None
        };
        if let Some(reason) = reason {
            match reason {
                FallbackReason::AccelDownScaled => self.stats.batch_fallback_down_scaled += 1,
                FallbackReason::UnsupportedCipherMode => {
                    self.stats.batch_fallback_unsupported_mode += 1;
                }
                FallbackReason::BreakerOpen => {
                    self.stats.batch_fallback_breaker_open += 1;
                    self.health.note_fallback_crypt(buf.len() as u64);
                    self.stats.health = self.health.stats;
                }
                _ => self.stats.batch_fallback_below_threshold += 1,
            }
            return self.crypt_buffers(Direction::Decrypt, jobs, buf);
        }

        // Stage the ciphertext and submit the descriptor. The queue
        // captures the engine's clock state *now*, so a batch submitted
        // while Awake keeps its throughput even if the device locks
        // (and down-scales the accelerator) before it completes.
        let soc = &mut self.kernel.soc;
        let staged = buf.len().min(ACCEL_DMA_SIZE as usize);
        soc.dma_write(ACCEL_DMA_CONTROLLER, ACCEL_DMA_BASE, &buf[..staged])?;
        soc.failpoint("accel.dma")?;
        // Sustained-fault site: an armed AccelWedge/Corrupt/Slow plan
        // here stages the fault onto the descriptor submitted below.
        soc.failpoint("accel.submit")?;
        let t0 = soc.clock.now_ns();
        let id = soc.accel_queue.submit(&soc.accel, t0, buf.len() as u64);
        // Watchdog deadline: the op's own modeled duration times the
        // configured margin, anchored at submit.
        let deadline = t0.saturating_add(
            self.health
                .watchdog_ns(soc.accel.op_duration_ns(buf.len() as u64)),
        );

        // Functional transform on the host path (same bytes the engine
        // would produce); its CPU charge — including any parallel-lane
        // critical-section advance — is then replaced wholesale by the
        // queue completion, because the lifecycle batch blocks on the
        // result: elapsed time is exactly the engine's horizon.
        let (tags, report) = self.crypt_buffers(Direction::Decrypt, jobs, buf)?;
        let soc = &mut self.kernel.soc;
        // Capture the host-path CPU charge before the substitution
        // rewind: if the engine fails, the batch re-pays exactly this.
        let cpu_cost = soc.clock.now_ns() - t0;
        soc.clock.set_now_ns(t0);
        match soc.accel_queue.wait_deadline(id, &mut soc.clock, deadline) {
            WaitOutcome::Done { stall_ns } => {
                // Plaintext lands in the bounce window only at
                // completion.
                soc.dma_write(ACCEL_DMA_CONTROLLER, ACCEL_DMA_BASE, &buf[..staged])?;
                self.stats.routed_batches += 1;
                self.stats.routed_batch_pages += jobs.len() as u64;
                self.stats.routed_stall_ns += stall_ns;
                let now = soc.clock.now_ns();
                self.health.record_success(now);
            }
            outcome @ (WaitOutcome::TimedOut { .. } | WaitOutcome::Corrupt { .. }) => {
                // Degraded mode. The clock sits at the watchdog deadline
                // (timeout) or the corrupt completion; the correct bytes
                // are already in `buf` — the host transform ran — so the
                // batch re-pays the captured CPU charge and proceeds on
                // the bitsliced path. The engine's output is discarded:
                // zeroize the bounce window so the abandoned transfer
                // leaves nothing for a bus monitor or cold-boot dump.
                let now = soc.clock.now_ns();
                match outcome {
                    WaitOutcome::TimedOut { .. } => {
                        self.health.record_failure(now, FailureKind::Timeout);
                        self.health.note_abandoned(staged as u64);
                    }
                    WaitOutcome::Corrupt { .. } => {
                        self.health.record_failure(now, FailureKind::Corrupt);
                    }
                    WaitOutcome::Done { .. } => unreachable!(),
                }
                soc.dma_write(ACCEL_DMA_CONTROLLER, ACCEL_DMA_BASE, &vec![0u8; staged])?;
                soc.clock.advance(cpu_cost);
                self.health.note_fallback_crypt(buf.len() as u64);
            }
        }
        self.stats.health = self.health.stats;
        Ok((tags, report))
    }

    /// The IV a frame's ciphertext was produced under: shared frames
    /// were encrypted under the *first* sharer's mapping identity, at
    /// the epoch stored in the IV owner's PTE; private frames under
    /// their own mapping.
    fn frame_iv(&self, pid: Pid, vpn: u64, pte: &Pte, frame: u64) -> [u8; 16] {
        let (iv_pid, iv_vpn) = self
            .kernel
            .sharers_of(frame)
            .and_then(|s| s.first().copied())
            .unwrap_or((pid, vpn));
        let stored_epoch = self
            .kernel
            .procs
            .get(&iv_pid)
            .and_then(|p| p.page_table.get(iv_vpn))
            .map_or(pte.crypt_epoch, |p| p.crypt_epoch);
        page_iv(iv_pid, iv_vpn, stored_epoch)
    }

    /// Decrypt a gathered set of encrypted DRAM pages in one dispatch
    /// and flip every mapping of each decrypted frame back to plaintext
    /// state. Returns the number of frames decrypted.
    ///
    /// Coherence rule: the PTE `encrypted` bit is the single source of
    /// truth, re-checked here immediately before the kernel call, and
    /// frames are deduped within the batch — so a fault cluster racing
    /// the sweeper (or two mappings of one shared frame landing in the
    /// same batch) can never decrypt the same frame twice, which under
    /// CBC would turn plaintext into garbage.
    fn decrypt_gathered(&mut self, pages: &[ClusterPage]) -> Result<usize, SentryError> {
        let mut jobs: Vec<(u64, [u8; 16])> = Vec::with_capacity(pages.len());
        let mut live: Vec<ClusterPage> = Vec::with_capacity(pages.len());
        for cp in pages {
            let still_encrypted = self
                .kernel
                .procs
                .get(&cp.pid)
                .and_then(|p| p.page_table.get(cp.vpn))
                .is_some_and(|pte| pte.encrypted);
            if !still_encrypted
                || self.integrity.is_quarantined(cp.frame)
                || jobs.iter().any(|&(f, _)| f == cp.frame)
            {
                continue;
            }
            jobs.push((cp.frame, cp.iv));
            live.push(*cp);
        }
        if jobs.is_empty() {
            return Ok(0);
        }
        let mut buf = self.gather_frames(&jobs)?;

        // MAC-verify the gathered ciphertext against the on-SoC tag
        // store *before* the block cipher runs. Pages that fail (after
        // the bounded re-reads) are quarantined — dropped from the
        // batch, PTE left encrypted — and the authentic remainder
        // proceeds: graceful degradation, not a panic.
        if self.integrity.enabled() {
            let outcomes = self.integrity.verify_frames(
                &mut self.kernel.soc,
                &mut self.store,
                &jobs,
                &mut buf,
            )?;
            if outcomes
                .iter()
                .any(|o| matches!(o, VerifyOutcome::Mismatch { .. }))
            {
                let page = PAGE_SIZE as usize;
                let mut kept_jobs = Vec::with_capacity(jobs.len());
                let mut kept_live = Vec::with_capacity(live.len());
                let mut kept_buf = Vec::with_capacity(buf.len());
                for (i, outcome) in outcomes.iter().enumerate() {
                    if let VerifyOutcome::Mismatch { expected, got } = *outcome {
                        let cp = live[i];
                        let epoch = self
                            .kernel
                            .procs
                            .get(&cp.pid)
                            .and_then(|p| p.page_table.get(cp.vpn))
                            .map_or(self.lock_epoch, |pte| pte.crypt_epoch);
                        let _ = self.integrity.quarantine(QuarantinedPage {
                            pid: cp.pid,
                            vpn: cp.vpn,
                            frame: cp.frame,
                            epoch,
                            tag_expected: expected,
                            tag_got: got,
                        });
                    } else {
                        kept_jobs.push(jobs[i]);
                        kept_live.push(live[i]);
                        kept_buf.extend_from_slice(&buf[i * page..(i + 1) * page]);
                    }
                }
                jobs = kept_jobs;
                live = kept_live;
                buf = kept_buf;
                if jobs.is_empty() {
                    return Ok(0);
                }
            }
        }
        let (tags, _report) = self.route_or_crypt_decrypt(&jobs, &mut buf)?;

        // Publish in journaled chunks. Decrypt order is flip-first: the
        // PTE's encrypted bit clears *before* the plaintext lands in the
        // frame, preserving the invariant that a PTE claiming
        // "encrypted" never fronts a plaintext frame.
        let page = PAGE_SIZE as usize;
        let epoch = self.lock_epoch;
        let mut start = 0usize;
        while start < jobs.len() {
            let end = (start + MAX_ENTRIES).min(jobs.len());
            let entries: Vec<JournalEntry> = (start..end)
                .map(|i| JournalEntry {
                    pid: live[i].pid,
                    vpn: live[i].vpn,
                    src: jobs[i].0,
                    frame: jobs[i].0,
                    epoch,
                    iv: jobs[i].1,
                    tag: tags[i],
                    done: false,
                })
                .collect();
            self.txn
                .open(&mut self.kernel.soc, TxnOp::Decrypt, epoch, &entries)?;
            for i in start..end {
                let cp = live[i];
                self.kernel.soc.failpoint("txn.flip")?;
                // Re-arm every mapping of the frame, not just the
                // gathered one — a second sharer must not decrypt the
                // now-plaintext frame again.
                if let Some(sharers) = self.kernel.sharers_of(cp.frame).map(<[(u32, u64)]>::to_vec)
                {
                    for (spid, svpn) in sharers {
                        if let Some(spte) = self
                            .kernel
                            .procs
                            .get_mut(&spid)
                            .and_then(|p| p.page_table.get_mut(svpn))
                        {
                            spte.encrypted = false;
                            spte.young = true;
                        }
                    }
                }
                if let Some(proc) = self.kernel.procs.get_mut(&cp.pid) {
                    if let Some(pte) = proc.page_table.get_mut(cp.vpn) {
                        pte.encrypted = false;
                        pte.young = true;
                    }
                    proc.stats.bytes_decrypted += PAGE_SIZE;
                }
                self.kernel.soc.failpoint("txn.publish")?;
                self.kernel
                    .soc
                    .mem_write(jobs[i].0, &buf[i * page..(i + 1) * page])?;
                // The frame is plaintext now: retire its tag before the
                // entry is marked done, so a kill in between re-runs the
                // (idempotent) retire rather than leaving a stale tag
                // that would poison the frame's next encrypt cycle.
                self.integrity.retire_tag(&mut self.kernel.soc, jobs[i].0)?;
                self.txn.mark_done(&mut self.kernel.soc, i - start)?;
            }
            self.txn.close(&mut self.kernel.soc)?;
            start = end;
        }
        Ok(jobs.len())
    }

    /// Run [`Sentry::decrypt_gathered`] under the bounded-retry policy
    /// for *transient* faults: an injected crypt/dispatch error fails
    /// the batch cleanly before any DRAM mutates, so the whole gather is
    /// simply re-attempted, up to `integrity.max_crypt_retries` total
    /// attempts. Exceeding the cap reports a typed
    /// [`SentryError::RetriesExhausted`] — the fault is persistent and
    /// retrying forever would spin. Non-transient errors (power loss,
    /// integrity violations, real memory errors) propagate immediately.
    fn decrypt_gathered_with_retry(
        &mut self,
        op: &'static str,
        pages: &[ClusterPage],
    ) -> Result<usize, SentryError> {
        let cap = self.integrity.config().max_crypt_retries.max(1);
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match self.decrypt_gathered(pages) {
                Err(e) if e.is_injected_crypt_fault() => {
                    if attempts < cap {
                        self.stats.crypt.attempts += 1;
                    } else {
                        self.stats.crypt.exhausted += 1;
                        return Err(SentryError::RetriesExhausted { op, attempts });
                    }
                }
                other => {
                    if other.is_ok() && attempts > 1 {
                        self.stats.crypt.recovered += 1;
                    }
                    return other;
                }
            }
        }
    }

    /// Residual-encrypted-pages gauge: encrypted DRAM mappings across
    /// all sensitive processes. Zero means post-unlock decryption is
    /// complete and no further first-touch fault can cost a decrypt.
    ///
    /// Quarantined frames are excluded: they can never be decrypted, so
    /// counting them would report a residue no sweep can drain and the
    /// sweeper would spin re-attempting known-bad frames every tick.
    #[must_use]
    pub fn residual_encrypted_pages(&self) -> usize {
        self.kernel
            .procs
            .values()
            .filter(|p| p.sensitive)
            .map(|p| {
                p.page_table
                    .iter()
                    .filter(|(_, pte)| {
                        pte.encrypted
                            && matches!(pte.backing, Backing::Dram(f)
                                if !self.integrity.is_quarantined(f))
                    })
                    .count()
            })
            .sum()
    }

    /// One budgeted background-sweeper step — the paper's "decrypt the
    /// rest in the background" (§7). Walks the residual encrypted set
    /// starting at the sweep cursor (just past the most recent fault
    /// cluster or previous sweep batch, i.e. recency order) and drains
    /// up to `budget_pages` frames through the bulk decrypt engine.
    ///
    /// A no-op unless the device is unlocked. Pages the demand path
    /// decrypts between steps are skipped by the gather step's coherence
    /// re-check of the PTE `encrypted` bit.
    ///
    /// # Errors
    ///
    /// Propagates memory and cipher errors.
    pub fn sweep(&mut self, budget_pages: usize) -> Result<SweepReport, SentryError> {
        self.ensure_no_txn("sweep")?;
        if self.state != DeviceState::Unlocked || budget_pages == 0 {
            return Ok(SweepReport {
                residual_pages: self.residual_encrypted_pages(),
                ..SweepReport::default()
            });
        }
        self.kernel.soc.failpoint("sweep.begin")?;
        let t0 = self.kernel.soc.clock.now_ns();
        // Candidates in (pid, vpn) order, rotated so the scan resumes at
        // the cursor and wraps.
        let mut all: Vec<(Pid, u64, u64)> = Vec::new();
        for pid in self.sensitive_pids() {
            let proc = self.kernel.proc(pid)?;
            for (vpn, pte) in proc.page_table.iter() {
                if let Backing::Dram(frame) = pte.backing {
                    // Quarantined frames are permanently undecryptable;
                    // sweeping them would spin without progress.
                    if pte.encrypted && !self.integrity.is_quarantined(frame) {
                        all.push((pid, vpn, frame));
                    }
                }
            }
        }
        if all.is_empty() {
            return Ok(SweepReport::default());
        }
        let start = self
            .sweep_cursor
            .and_then(|cur| all.iter().position(|&(pid, vpn, _)| (pid, vpn) >= cur))
            .unwrap_or(0);
        all.rotate_left(start);

        let mut gathered: Vec<ClusterPage> = Vec::with_capacity(budget_pages.min(all.len()));
        for &(pid, vpn, frame) in &all {
            if gathered.len() >= budget_pages {
                break;
            }
            if gathered.iter().any(|g| g.frame == frame) {
                continue;
            }
            let pte = *self
                .kernel
                .proc(pid)?
                .page_table
                .get(vpn)
                .expect("walked above");
            let iv = self.frame_iv(pid, vpn, &pte, frame);
            gathered.push(ClusterPage {
                pid,
                vpn,
                frame,
                iv,
            });
        }
        let next_cursor = gathered.last().map(|g| (g.pid, g.vpn + 1));
        let pages = self.decrypt_gathered_with_retry("sweep", &gathered)?;
        if let Some(cur) = next_cursor {
            self.sweep_cursor = Some(cur);
        }
        let duration_ns = self.kernel.soc.clock.now_ns() - t0;
        self.stats.sweep_runs += 1;
        self.stats.sweep_pages += pages as u64;
        self.stats.sweep_ns += duration_ns;
        Ok(SweepReport {
            pages,
            duration_ns,
            residual_pages: self.residual_encrypted_pages(),
        })
    }

    /// Deliver one scheduler timer tick: bump the kernel scheduler's
    /// tick counter and, when readahead is enabled and the device is
    /// unlocked, run one budgeted sweeper step.
    ///
    /// # Errors
    ///
    /// Propagates sweeper errors.
    pub fn scheduler_tick(&mut self) -> Result<SweepReport, SentryError> {
        self.kernel.sched.tick();
        self.govern_pressure()?;
        // Shed lever: the background sweeper is elective load — under
        // High or Critical pressure its decrypt batches would only add
        // on-SoC traffic while the governor is trying to reclaim, so the
        // tick skips it until pressure falls back to Normal.
        if self.config.pressure.enabled && self.store.pressure_level() >= PressureLevel::High {
            self.store.pressure_mut().note_shed();
            return Ok(SweepReport {
                residual_pages: self.residual_encrypted_pages(),
                ..SweepReport::default()
            });
        }
        if self.config.readahead.enabled && self.state == DeviceState::Unlocked {
            self.sweep(self.config.readahead.sweep_budget_pages)
        } else {
            Ok(SweepReport {
                residual_pages: self.residual_encrypted_pages(),
                ..SweepReport::default()
            })
        }
    }

    /// Transition to the locked state (§7): drain the freed-page zeroing
    /// thread, page out any on-SoC resident pages, then walk every
    /// sensitive process's page table and encrypt its DRAM pages —
    /// skipping pages shared with non-sensitive applications. On
    /// platforms without background support, sensitive processes are
    /// parked unschedulable.
    ///
    /// # Errors
    ///
    /// [`SentryError::WrongState`] if already locked; propagated memory
    /// and cipher errors otherwise.
    pub fn on_lock(&mut self) -> Result<LockReport, SentryError> {
        self.ensure_no_txn("on_lock")?;
        if self.state == DeviceState::Locked {
            return Err(SentryError::WrongState {
                expected_locked: false,
            });
        }
        self.kernel.soc.failpoint("lock.begin")?;
        // Screen off ⇒ the power manager down-scales the accelerator
        // clock (§8.2) *before* the encrypt sweep runs, so
        // encrypt-on-lock models locked throughput — Figure 11's
        // slow-when-locked band — instead of silently keeping Awake
        // speed. Descriptors already in the queue keep the clock state
        // they were submitted under.
        self.kernel.soc.accel.state = AccelPowerState::DownScaled;
        let t0 = self.kernel.soc.clock.now_ns();
        // This cycle's epoch, computed locally and committed only in the
        // atomic tail: a transition killed mid-flight leaves lock_epoch
        // untouched, so a retry recomputes the *same* target epoch —
        // hence the same IVs and byte-identical ciphertext — and
        // converges with the uninterrupted run. The zero-thread drain
        // and the pager's eviction sweep belong to this cycle's IV
        // namespace too.
        let epoch = self.lock_epoch + 1;
        // Spill anchors written during this transition bind to the new
        // epoch; a replayed old-epoch blob then fails its anchor CMAC.
        self.integrity.set_epoch(epoch);
        self.govern_pressure()?;
        let zero_drain_ns = self.kernel.drain_zero_thread()?;
        self.pager.evict_all(
            &mut self.store,
            &mut self.kernel,
            &mut self.txn,
            &mut self.integrity,
            &self.commit,
            epoch,
        )?;

        // Phase 1: collect every crypt job — private pages of every
        // sensitive process, then the shared-frame pass — into one
        // batch. The jobs are independent (per-page IVs), so collecting
        // first and dispatching once lets the engine fan them out.
        let mut skipped = 0u64;
        let mut jobs: Vec<(u64, [u8; 16])> = Vec::new();
        let mut owners: Vec<JobOwner> = Vec::new();
        for pid in self.sensitive_pids() {
            let targets: Vec<(u64, u64)> = {
                let proc = self.kernel.proc(pid)?;
                proc.page_table
                    .iter()
                    .filter_map(|(vpn, pte)| match pte.backing {
                        Backing::Dram(frame)
                            if !pte.encrypted && pte.sharing != Sharing::SharedWithNonSensitive =>
                        {
                            Some((vpn, frame))
                        }
                        _ => None,
                    })
                    // Frames mapped by several processes are classified
                    // and encrypted once, below — never per mapping.
                    .filter(|(_, frame)| self.kernel.sharers_of(*frame).is_none())
                    .collect()
            };
            skipped += self
                .kernel
                .proc(pid)?
                .page_table
                .vpns_where(|p| p.sharing == Sharing::SharedWithNonSensitive)
                .len() as u64;

            for (vpn, frame) in targets {
                jobs.push((frame, page_iv(pid, vpn, epoch)));
                owners.push(JobOwner::Private(pid, vpn));
            }
            if !self.config.background_support {
                self.kernel.proc_mut(pid)?.schedulable = false;
            }
        }

        // §7 shared-page policy, applied to *actual* shared frames: a
        // frame shared only among sensitive processes is encrypted —
        // exactly once, under the first sharer's IV — and every mapper's
        // PTE is re-armed; a frame shared with any non-sensitive process
        // is assumed non-secret and skipped (its mappings are tagged
        // accordingly).
        let shared: Vec<(u64, Vec<(Pid, u64)>)> = self
            .kernel
            .shared_frames
            .iter()
            .filter(|(_, sharers)| sharers.len() > 1)
            .map(|(&frame, sharers)| (frame, sharers.clone()))
            .collect();
        let mut shared_rearms: Vec<(Vec<(Pid, u64)>, u64)> = Vec::new();
        for (frame, sharers) in shared {
            let all_sensitive = sharers
                .iter()
                .all(|&(pid, _)| self.kernel.procs.get(&pid).is_some_and(|p| p.sensitive));
            let any_sensitive = sharers
                .iter()
                .any(|&(pid, _)| self.kernel.procs.get(&pid).is_some_and(|p| p.sensitive));
            if !any_sensitive {
                continue;
            }
            if all_sensitive {
                // A frame still ciphertext from an earlier cycle keeps
                // the epoch it was encrypted under; its PTEs must keep
                // decrypting with the original IV.
                let stored_epoch = sharers.iter().find_map(|&(pid, vpn)| {
                    self.kernel
                        .procs
                        .get(&pid)
                        .and_then(|p| p.page_table.get(vpn))
                        .filter(|pte| pte.encrypted)
                        .map(|pte| pte.crypt_epoch)
                });
                match stored_epoch {
                    // Already ciphertext: a pure PTE re-arm, no bytes
                    // move, so no journal entry is needed (the flip is
                    // idempotent and happens after the journaled
                    // publishes).
                    Some(e) => shared_rearms.push((sharers, e)),
                    None => {
                        let (pid0, vpn0) = sharers[0];
                        jobs.push((frame, page_iv(pid0, vpn0, epoch)));
                        owners.push(JobOwner::Shared(sharers));
                    }
                }
            } else {
                skipped += 1;
                for &(pid, vpn) in &sharers {
                    if let Some(pte) = self
                        .kernel
                        .procs
                        .get_mut(&pid)
                        .and_then(|p| p.page_table.get_mut(vpn))
                    {
                        pte.sharing = Sharing::SharedWithNonSensitive;
                    }
                }
            }
        }

        // Phase 2: one dispatch for the whole transition — into scratch
        // buffers. DRAM is untouched until each page's journaled
        // publish below.
        let (buf, tags, report) = self.crypt_frames_to_buffers(Direction::Encrypt, &jobs)?;

        // Integrity tags go on-SoC *before* any ciphertext is published
        // to DRAM: a frame whose ciphertext is visible always has its
        // tag recorded, so there is no window for unrecorded tampering.
        // Idempotent on a killed-and-retried lock — the same epoch
        // yields the same IVs, ciphertext, and tags.
        self.integrity
            .store_tags(&mut self.kernel.soc, &mut self.store, &jobs, &buf)?;

        // Phase 3: publish + flip as a two-phase commit, in journal
        // chunks. Encrypt order is publish-first: the ciphertext lands,
        // *then* the PTE flips — a kill in between leaves a PTE that
        // still says plaintext over a ciphertext frame, which recovery
        // (tag comparison) completes by flipping.
        let page = PAGE_SIZE as usize;
        let mut start = 0usize;
        while start < jobs.len() {
            let end = (start + MAX_ENTRIES).min(jobs.len());
            let entries: Vec<JournalEntry> = (start..end)
                .map(|i| {
                    let (pid, vpn) = match &owners[i] {
                        JobOwner::Private(pid, vpn) => (*pid, *vpn),
                        JobOwner::Shared(sharers) => sharers[0],
                    };
                    JournalEntry {
                        pid,
                        vpn,
                        src: jobs[i].0,
                        frame: jobs[i].0,
                        epoch,
                        iv: jobs[i].1,
                        tag: tags[i],
                        done: false,
                    }
                })
                .collect();
            self.txn
                .open(&mut self.kernel.soc, TxnOp::Encrypt, epoch, &entries)?;
            for i in start..end {
                self.kernel.soc.failpoint("txn.publish")?;
                self.kernel
                    .soc
                    .mem_write(jobs[i].0, &buf[i * page..(i + 1) * page])?;
                self.kernel.soc.failpoint("txn.flip")?;
                match &owners[i] {
                    JobOwner::Private(pid, vpn) => {
                        let proc = self.kernel.proc_mut(*pid)?;
                        let pte = proc.page_table.get_mut(*vpn).expect("walked above");
                        pte.encrypted = true;
                        pte.young = false;
                        pte.dirty = false;
                        pte.crypt_epoch = epoch;
                        proc.stats.bytes_encrypted += PAGE_SIZE;
                    }
                    JobOwner::Shared(sharers) => {
                        for &(pid, vpn) in sharers {
                            if let Some(pte) = self
                                .kernel
                                .procs
                                .get_mut(&pid)
                                .and_then(|p| p.page_table.get_mut(vpn))
                            {
                                pte.encrypted = true;
                                pte.young = false;
                                pte.dirty = false;
                                pte.sharing = Sharing::SharedSensitiveOnly;
                                pte.crypt_epoch = epoch;
                            }
                        }
                    }
                }
                self.txn.mark_done(&mut self.kernel.soc, i - start)?;
            }
            self.txn.close(&mut self.kernel.soc)?;
            start = end;
        }

        // Re-arm-only shared frames (still ciphertext from an earlier
        // cycle): idempotent PTE flips, journal-free.
        for (sharers, effective_epoch) in shared_rearms {
            for &(pid, vpn) in &sharers {
                if let Some(pte) = self
                    .kernel
                    .procs
                    .get_mut(&pid)
                    .and_then(|p| p.page_table.get_mut(vpn))
                {
                    pte.encrypted = true;
                    pte.young = false;
                    pte.dirty = false;
                    pte.sharing = Sharing::SharedSensitiveOnly;
                    pte.crypt_epoch = effective_epoch;
                }
            }
        }

        // Atomic tail: only now does the transition commit.
        self.lock_epoch = epoch;
        self.state = DeviceState::Locked;
        self.stats.locks += 1;
        Ok(LockReport {
            duration_ns: self.kernel.soc.clock.now_ns() - t0,
            bytes_encrypted: report.bytes,
            zero_drain_ns,
            skipped_shared_pages: skipped,
            batch_pages: report.pages as u64,
            workers_used: report.workers_used,
        })
    }

    /// Transition to the unlocked state: un-park sensitive processes and
    /// eagerly decrypt DMA regions (devices access them by physical
    /// address and never fault, §7). Everything else decrypts lazily on
    /// first touch.
    ///
    /// # Errors
    ///
    /// [`SentryError::WrongState`] if already unlocked; propagated
    /// memory and cipher errors otherwise.
    pub fn on_unlock(&mut self) -> Result<UnlockReport, SentryError> {
        self.ensure_no_txn("on_unlock")?;
        if self.state == DeviceState::Unlocked {
            return Err(SentryError::WrongState {
                expected_locked: true,
            });
        }
        self.kernel.soc.failpoint("unlock.begin")?;
        self.govern_pressure()?;
        // Screen on ⇒ clocks restored: the eager DMA-region decrypt and
        // everything after it run at Awake accelerator throughput.
        self.kernel.soc.accel.state = AccelPowerState::Awake;
        let t0 = self.kernel.soc.clock.now_ns();
        // DMA regions are decrypted eagerly and batched like the lock
        // path: collect every (frame, iv) job first, dispatch once.
        // Un-parking is idempotent, so a killed-and-retried unlock
        // converges.
        let mut jobs: Vec<(u64, [u8; 16])> = Vec::new();
        let mut updates: Vec<(Pid, u64, u64)> = Vec::new();
        for pid in self.sensitive_pids() {
            self.kernel.proc_mut(pid)?.schedulable = true;
            let dma_pages: Vec<(u64, u64, u64)> = self
                .kernel
                .proc(pid)?
                .page_table
                .iter()
                .filter_map(|(vpn, pte)| match pte.backing {
                    Backing::Dram(frame) if pte.encrypted && pte.dma_region => {
                        Some((vpn, frame, pte.crypt_epoch))
                    }
                    _ => None,
                })
                .collect();
            for (vpn, frame, stored_epoch) in dma_pages {
                // Quarantined DMA frames stay encrypted; the violation
                // surfaces on explicit access, not here — the unlock
                // itself must keep working for every healthy page.
                if self.integrity.is_quarantined(frame) {
                    continue;
                }
                jobs.push((frame, page_iv(pid, vpn, stored_epoch)));
                updates.push((pid, vpn, stored_epoch));
            }
        }

        // Gather, MAC-verify, then decrypt — the same verify-before-
        // cipher discipline as `decrypt_gathered`, with failed pages
        // quarantined out of the batch.
        let mut buf = self.gather_frames(&jobs)?;
        if self.integrity.enabled() && !jobs.is_empty() {
            let outcomes = self.integrity.verify_frames(
                &mut self.kernel.soc,
                &mut self.store,
                &jobs,
                &mut buf,
            )?;
            if outcomes
                .iter()
                .any(|o| matches!(o, VerifyOutcome::Mismatch { .. }))
            {
                let page = PAGE_SIZE as usize;
                let mut kept_jobs = Vec::with_capacity(jobs.len());
                let mut kept_updates = Vec::with_capacity(updates.len());
                let mut kept_buf = Vec::with_capacity(buf.len());
                for (i, outcome) in outcomes.iter().enumerate() {
                    if let VerifyOutcome::Mismatch { expected, got } = *outcome {
                        let (pid, vpn, epoch) = updates[i];
                        let _ = self.integrity.quarantine(QuarantinedPage {
                            pid,
                            vpn,
                            frame: jobs[i].0,
                            epoch,
                            tag_expected: expected,
                            tag_got: got,
                        });
                    } else {
                        kept_jobs.push(jobs[i]);
                        kept_updates.push(updates[i]);
                        kept_buf.extend_from_slice(&buf[i * page..(i + 1) * page]);
                    }
                }
                jobs = kept_jobs;
                updates = kept_updates;
                buf = kept_buf;
            }
        }
        let (tags, report) = if jobs.is_empty() {
            (
                Vec::new(),
                BatchReport {
                    pages: 0,
                    bytes: 0,
                    workers_used: 1,
                    per_worker_bytes: vec![0],
                    sequential_fallback: true,
                },
            )
        } else {
            self.route_or_crypt_decrypt(&jobs, &mut buf)?
        };

        // Journaled publish, flip-first (see `decrypt_gathered`).
        let page = PAGE_SIZE as usize;
        let mut start = 0usize;
        while start < jobs.len() {
            let end = (start + MAX_ENTRIES).min(jobs.len());
            let entries: Vec<JournalEntry> = (start..end)
                .map(|i| JournalEntry {
                    pid: updates[i].0,
                    vpn: updates[i].1,
                    src: jobs[i].0,
                    frame: jobs[i].0,
                    epoch: updates[i].2,
                    iv: jobs[i].1,
                    tag: tags[i],
                    done: false,
                })
                .collect();
            self.txn.open(
                &mut self.kernel.soc,
                TxnOp::Decrypt,
                self.lock_epoch,
                &entries,
            )?;
            for i in start..end {
                let (pid, vpn, _) = updates[i];
                self.kernel.soc.failpoint("txn.flip")?;
                let proc = self.kernel.proc_mut(pid)?;
                let pte = proc.page_table.get_mut(vpn).expect("walked above");
                pte.encrypted = false;
                pte.young = true;
                proc.stats.bytes_decrypted += PAGE_SIZE;
                self.kernel.soc.failpoint("txn.publish")?;
                self.kernel
                    .soc
                    .mem_write(jobs[i].0, &buf[i * page..(i + 1) * page])?;
                self.integrity.retire_tag(&mut self.kernel.soc, jobs[i].0)?;
                self.txn.mark_done(&mut self.kernel.soc, i - start)?;
            }
            self.txn.close(&mut self.kernel.soc)?;
            start = end;
        }

        // Atomic tail.
        self.state = DeviceState::Unlocked;
        self.stats.unlocks += 1;
        // Each unlock starts a fresh drain of the encrypted residue.
        self.sweep_cursor = None;
        Ok(UnlockReport {
            duration_ns: self.kernel.soc.clock.now_ns() - t0,
            eager_bytes_decrypted: report.bytes,
            workers_used: report.workers_used,
        })
    }

    /// Resolve a page fault according to the device state (the §5/§7
    /// dispatcher).
    fn handle_fault(&mut self, fault: &PageFault) -> Result<(), SentryError> {
        self.ensure_no_txn("handle_fault")?;
        self.kernel.soc.failpoint("fault.begin")?;
        self.govern_pressure()?;
        let sensitive = self.kernel.proc(fault.pid)?.sensitive;
        match self.state {
            DeviceState::Locked => {
                if sensitive && self.config.background_support {
                    self.pager.handle_fault(
                        &mut self.store,
                        &mut self.kernel,
                        &mut self.txn,
                        &mut self.integrity,
                        &self.commit,
                        fault,
                        self.lock_epoch,
                    )
                } else {
                    // Foreground apps are parked while locked; a fault
                    // here is a programming error in the caller.
                    Err(SentryError::Unresolvable {
                        pid: fault.pid,
                        vpn: fault.vpn,
                    })
                }
            }
            DeviceState::Unlocked => {
                let t0 = self.kernel.soc.clock.now_ns();
                self.kernel
                    .soc
                    .clock
                    .advance(self.kernel.soc.costs.page_fault_ns);
                let pte = *self
                    .kernel
                    .proc(fault.pid)?
                    .page_table
                    .get(fault.vpn)
                    .ok_or(SentryError::Unresolvable {
                        pid: fault.pid,
                        vpn: fault.vpn,
                    })?;
                match pte.backing {
                    Backing::Dram(frame) if pte.encrypted => {
                        // A quarantined frame can never be decrypted:
                        // report the stored violation instead of
                        // faulting forever. Everything else keeps
                        // running — quarantine is per-page.
                        if let Some(err) = self.integrity.violation_for(frame) {
                            return Err(err);
                        }
                        // On-demand decryption in the fault handler (§7),
                        // with fault-cluster readahead: gather the
                        // faulting page plus its spatially-adjacent
                        // encrypted DRAM neighbours in the same aligned
                        // window and decrypt them in one batched kernel
                        // call — N first-touch faults become 1.
                        let shed_cluster = self.config.pressure.enabled
                            && self.store.pressure_level() >= PressureLevel::High;
                        let cluster = if self.config.readahead.enabled && !shed_cluster {
                            self.config.readahead.cluster_pages.max(1)
                        } else {
                            // Shed lever: under High pressure readahead
                            // companions are elective — the cluster
                            // shrinks to the faulting page alone.
                            if shed_cluster && self.config.readahead.cluster_pages > 1 {
                                self.store.pressure_mut().note_shed();
                            }
                            1
                        };
                        let base = fault.vpn - fault.vpn % cluster as u64;
                        let mut gathered: Vec<ClusterPage> = Vec::with_capacity(cluster);
                        for vpn in base..base + cluster as u64 {
                            let cand = match self.kernel.proc(fault.pid)?.page_table.get(vpn) {
                                Some(p) => *p,
                                None => continue,
                            };
                            let frame = match cand.backing {
                                Backing::Dram(f)
                                    if cand.encrypted && !self.integrity.is_quarantined(f) =>
                                {
                                    f
                                }
                                _ => continue,
                            };
                            let iv = self.frame_iv(fault.pid, vpn, &cand, frame);
                            gathered.push(ClusterPage {
                                pid: fault.pid,
                                vpn,
                                frame,
                                iv,
                            });
                        }
                        let decrypted =
                            self.decrypt_gathered_with_retry("handle_fault", &gathered)?;
                        // If the *faulting* page itself just failed its
                        // MAC it was quarantined mid-batch: surface its
                        // violation (readahead companions that failed
                        // are reported lazily, on their own first touch).
                        if let Some(err) = self.integrity.violation_for(frame) {
                            return Err(err);
                        }
                        let duration_ns = self.kernel.soc.clock.now_ns() - t0;
                        self.stats.ondemand_faults += 1;
                        self.stats.ondemand_bytes += decrypted as u64 * PAGE_SIZE;
                        self.stats.ondemand_ns += duration_ns;
                        self.stats.ondemand_max_ns = self.stats.ondemand_max_ns.max(duration_ns);
                        if decrypted > 1 {
                            self.stats.readahead_clusters += 1;
                            self.stats.readahead_pages += decrypted as u64 - 1;
                        }
                        self.last_fault = Some(FaultResolution {
                            pid: fault.pid,
                            vpn: fault.vpn,
                            pages: decrypted,
                            duration_ns,
                        });
                        if self.config.readahead.enabled {
                            // Recency hint: the sweeper resumes right
                            // past this cluster's window.
                            self.sweep_cursor = Some((fault.pid, base + cluster as u64));
                        }
                        Ok(())
                    }
                    _ => {
                        // A leftover trap (e.g., a page still on-SoC from
                        // a background stint): just re-arm.
                        let proc = self.kernel.proc_mut(fault.pid)?;
                        let pte = proc.page_table.get_mut(fault.vpn).expect("present");
                        pte.young = true;
                        Ok(())
                    }
                }
            }
        }
    }

    /// Process read with transparent fault handling.
    ///
    /// The access proceeds page by page, as hardware would: a fault on
    /// page *n* never forces pages before *n* to be re-touched, so even
    /// a single on-SoC slot makes forward progress (the two-page minimum
    /// configuration of §7).
    ///
    /// # Errors
    ///
    /// Propagates unresolvable faults and memory errors.
    pub fn read(&mut self, pid: Pid, vaddr: u64, buf: &mut [u8]) -> Result<(), SentryError> {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let cur = vaddr + done as u64;
            let n = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min(len - done);
            self.access_one_page(pid, cur, |kernel| -> Result<(), KernelError> {
                kernel.read(pid, cur, &mut buf[done..done + n])
            })?;
            done += n;
        }
        Ok(())
    }

    /// Process write with transparent fault handling; see
    /// [`Sentry::read`] for the paging discipline.
    ///
    /// # Errors
    ///
    /// Propagates unresolvable faults and memory errors.
    pub fn write(&mut self, pid: Pid, vaddr: u64, data: &[u8]) -> Result<(), SentryError> {
        let len = data.len();
        let mut done = 0usize;
        while done < len {
            let cur = vaddr + done as u64;
            let n = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min(len - done);
            self.access_one_page(pid, cur, |kernel| -> Result<(), KernelError> {
                kernel.write(pid, cur, &data[done..done + n])
            })?;
            done += n;
        }
        Ok(())
    }

    /// Retry a single-page access across fault resolutions. A page needs
    /// at most a handful of retries (resolve trap → hit); more indicates
    /// a livelock and is surfaced as unresolvable.
    fn access_one_page(
        &mut self,
        pid: Pid,
        vaddr: u64,
        mut op: impl FnMut(&mut Kernel) -> Result<(), KernelError>,
    ) -> Result<(), SentryError> {
        for _ in 0..4 {
            match op(&mut self.kernel) {
                Ok(()) => return Ok(()),
                Err(KernelError::Fault(f)) => self.handle_fault(&f)?,
                Err(e) => return Err(e.into()),
            }
        }
        Err(SentryError::Unresolvable {
            pid,
            vpn: vaddr / PAGE_SIZE,
        })
    }

    /// Touch one byte of every page in `vpns` (drives resume and
    /// scripted-run experiments).
    ///
    /// # Errors
    ///
    /// Propagates access errors.
    pub fn touch_pages(&mut self, pid: Pid, vpns: &[u64]) -> Result<(), SentryError> {
        for &vpn in vpns {
            let mut b = [0u8; 1];
            self.read(pid, vpn * PAGE_SIZE, &mut b)?;
        }
        Ok(())
    }

    /// Reset the on-demand counters (between experiment phases).
    pub fn reset_ondemand_stats(&mut self) {
        self.stats.ondemand_faults = 0;
        self.stats.ondemand_bytes = 0;
        self.stats.ondemand_ns = 0;
        self.stats.ondemand_max_ns = 0;
        self.stats.readahead_clusters = 0;
        self.stats.readahead_pages = 0;
        self.last_fault = None;
    }

    /// Boot-time (and post-kill) crash recovery: read the transition
    /// journal back from iRAM and complete every entry that had not
    /// marked done, idempotently.
    ///
    /// For each undone entry the frame's first 16 bytes are compared
    /// against the journaled ciphertext tag — CBC under the journaled IV
    /// is deterministic, so the tag tells recovery exactly which side of
    /// the publish the kill landed on:
    ///
    /// * **Encrypt** entries: tag match ⇒ the ciphertext already landed,
    ///   only the PTE flip remains. Mismatch ⇒ the source bytes (the
    ///   frame itself, or an on-SoC slot for evictions) are still
    ///   plaintext: re-encrypt under the journaled IV (byte-identical
    ///   ciphertext) and publish, then flip.
    /// * **Decrypt** entries: tag match ⇒ the frame still holds
    ///   ciphertext: decrypt, publish, flip. Mismatch ⇒ the plaintext
    ///   already landed, only the (idempotent) flip remains.
    ///
    /// Afterwards the pager's in-memory state is reconciled against the
    /// page tables. Running recover on a clean system is a no-op. The
    /// device's committed state (`lock_epoch`, locked/unlocked) is
    /// *never* advanced here — the killed operation simply retries,
    /// recomputes the same target epoch, and converges with an
    /// uninterrupted run.
    ///
    /// # Errors
    ///
    /// Propagates memory and cipher errors.
    pub fn recover(&mut self) -> Result<RecoveryReport, SentryError> {
        let mut report = RecoveryReport::default();
        if let Some((op, _target_epoch, entries)) = self.txn.load(&mut self.kernel.soc)? {
            report.journaled = entries.len();
            for (i, entry) in entries.iter().enumerate() {
                if entry.done {
                    report.already_done += 1;
                    continue;
                }
                match op {
                    TxnOp::Encrypt => self.recover_encrypt(entry)?,
                    TxnOp::Decrypt => self.recover_decrypt(entry)?,
                }
                self.txn.mark_done(&mut self.kernel.soc, i)?;
                report.completed += 1;
            }
            self.txn.close(&mut self.kernel.soc)?;
        }
        self.pager.reconcile(&self.kernel);
        report.quarantined = self.audit_encrypted_frames()?;
        Ok(report)
    }

    /// Boot-time integrity audit: a power event can decay or tamper
    /// DRAM while the machine is down, so after the journal is rolled
    /// forward every encrypted, tagged frame is MAC-verified against the
    /// on-SoC tag store. Decayed frames are quarantined now — the reboot
    /// converges on the surviving set instead of decrypting rot into
    /// plaintext on some later fault. Returns the number of frames newly
    /// quarantined. A shared frame verifies if *any* sharer's IV
    /// matches (the tag was computed under whichever mapping encrypted
    /// it).
    fn audit_encrypted_frames(&mut self) -> Result<usize, SentryError> {
        if !self.integrity.enabled() {
            return Ok(0);
        }
        // frame -> every (pid, vpn, epoch) mapping it encrypted-backs.
        let mut frames: std::collections::BTreeMap<u64, Vec<(Pid, u64, u64)>> =
            std::collections::BTreeMap::new();
        let pids: Vec<Pid> = self.kernel.procs.keys().copied().collect();
        for pid in pids {
            for (vpn, pte) in self.kernel.procs[&pid].page_table.iter() {
                if let Backing::Dram(frame) = pte.backing {
                    if pte.encrypted {
                        frames
                            .entry(frame)
                            .or_default()
                            .push((pid, vpn, pte.crypt_epoch));
                    }
                }
            }
        }
        let mut quarantined = 0usize;
        for (frame, mappings) in frames {
            if !self.integrity.has_tag(frame) || self.integrity.is_quarantined(frame) {
                continue;
            }
            let mut page = vec![0u8; PAGE_SIZE as usize];
            self.kernel.soc.mem_read(frame, &mut page)?;
            let mut verdict = VerifyOutcome::Ok;
            for &(pid, vpn, epoch) in &mappings {
                let iv = page_iv(pid, vpn, epoch);
                verdict = self.integrity.verify_one(
                    &mut self.kernel.soc,
                    &mut self.store,
                    frame,
                    &iv,
                    &mut page,
                )?;
                if matches!(verdict, VerifyOutcome::Ok | VerifyOutcome::Untagged) {
                    break;
                }
            }
            if let VerifyOutcome::Mismatch { expected, got } = verdict {
                let (pid, vpn, epoch) = mappings[0];
                let _ = self.integrity.quarantine(QuarantinedPage {
                    pid,
                    vpn,
                    frame,
                    epoch,
                    tag_expected: expected,
                    tag_got: got,
                });
                quarantined += 1;
            }
        }
        Ok(quarantined)
    }

    /// Commit tag of the ciphertext image a frame currently holds,
    /// computed exactly as the journal recorded it. Under the chaining
    /// mode only the frame's 16-byte tail is read (the tag *is* the
    /// final CBC block); under XTS/CTR the whole frame is read and the
    /// commit CMAC recomputed over IV ‖ contents.
    fn frame_commit_tag(&mut self, iv: &[u8; 16], frame: u64) -> Result<[u8; 16], SentryError> {
        if self.commit.mode().is_chaining() {
            let mut tail = [0u8; 16];
            self.kernel
                .soc
                .mem_read(frame + PAGE_SIZE - 16, &mut tail)?;
            Ok(tail)
        } else {
            let mut page = vec![0u8; PAGE_SIZE as usize];
            self.kernel.soc.mem_read(frame, &mut page)?;
            Ok(self.commit.tag(iv, &page))
        }
    }

    /// Complete one interrupted encrypt entry (lock or eviction).
    fn recover_encrypt(&mut self, entry: &JournalEntry) -> Result<(), SentryError> {
        if self.frame_commit_tag(&entry.iv, entry.frame)? != entry.tag {
            // The publish never landed; the source still holds
            // plaintext. Roll forward: re-encrypt and publish, with the
            // integrity tag stored on-SoC before the ciphertext goes to
            // DRAM — the same ordering the live path guarantees.
            let mut page = vec![0u8; PAGE_SIZE as usize];
            self.kernel.soc.mem_read(entry.src, &mut page)?;
            {
                let Kernel { soc, crypto, .. } = &mut self.kernel;
                crypto
                    .preferred_mut()
                    .map_err(SentryError::Kernel)?
                    .encrypt(soc, &entry.iv, &mut page)
                    .map_err(SentryError::Kernel)?;
            }
            self.integrity.store_tags(
                &mut self.kernel.soc,
                &mut self.store,
                &[(entry.frame, entry.iv)],
                &page,
            )?;
            self.kernel.soc.mem_write(entry.frame, &page)?;
            // Fresh ciphertext + fresh tag from the intact source: a
            // frame quarantined mid-eviction is healed by this replay.
            self.integrity.release(entry.frame);
        }
        let mappings = self
            .kernel
            .sharers_of(entry.frame)
            .map(<[(u32, u64)]>::to_vec)
            .unwrap_or_else(|| vec![(entry.pid, entry.vpn)]);
        let shared = mappings.len() > 1;
        for (pid, vpn) in mappings {
            if let Some(pte) = self
                .kernel
                .procs
                .get_mut(&pid)
                .and_then(|p| p.page_table.get_mut(vpn))
            {
                pte.backing = Backing::Dram(entry.frame);
                pte.home_frame = None;
                pte.encrypted = true;
                pte.young = false;
                pte.dirty = false;
                pte.crypt_epoch = entry.epoch;
                if shared {
                    pte.sharing = Sharing::SharedSensitiveOnly;
                }
            }
        }
        Ok(())
    }

    /// Complete one interrupted decrypt entry (unlock, fault, sweep).
    ///
    /// With the integrity plane active and a tag on-SoC for the frame,
    /// recovery MAC-verifies before rolling forward — a tampered frame
    /// can never be "recovered" into plaintext. Three cases:
    ///
    /// * MAC verifies ⇒ genuine ciphertext: decrypt, publish, flip,
    ///   retire the tag.
    /// * MAC fails, but trial-encrypting the frame's current contents
    ///   under the journaled IV reproduces the journaled ciphertext tag
    ///   ⇒ the plaintext already landed before the kill (the tag simply
    ///   had not been retired yet): flip and retire, nothing to publish.
    /// * MAC fails and the trial does not match ⇒ the frame was
    ///   tampered with while the transition was in flight: quarantine
    ///   it, leave every PTE encrypted, and let recovery continue over
    ///   the surviving entries.
    fn recover_decrypt(&mut self, entry: &JournalEntry) -> Result<(), SentryError> {
        if self.integrity.enabled() && self.integrity.has_tag(entry.frame) {
            let mut page = vec![0u8; PAGE_SIZE as usize];
            self.kernel.soc.mem_read(entry.frame, &mut page)?;
            match self.integrity.verify_one(
                &mut self.kernel.soc,
                &mut self.store,
                entry.frame,
                &entry.iv,
                &mut page,
            )? {
                VerifyOutcome::Ok => {
                    {
                        let Kernel { soc, crypto, .. } = &mut self.kernel;
                        crypto
                            .preferred_mut()
                            .map_err(SentryError::Kernel)?
                            .decrypt(soc, &entry.iv, &mut page)
                            .map_err(SentryError::Kernel)?;
                    }
                    self.kernel.soc.mem_write(entry.frame, &page)?;
                }
                VerifyOutcome::Mismatch { expected, got } => {
                    let mut trial = page.clone();
                    {
                        let Kernel { soc, crypto, .. } = &mut self.kernel;
                        crypto
                            .preferred_mut()
                            .map_err(SentryError::Kernel)?
                            .encrypt(soc, &entry.iv, &mut trial)
                            .map_err(SentryError::Kernel)?;
                    }
                    if self.commit.tag(&entry.iv, &trial) != entry.tag {
                        let _ = self.integrity.quarantine(QuarantinedPage {
                            pid: entry.pid,
                            vpn: entry.vpn,
                            frame: entry.frame,
                            epoch: entry.epoch,
                            tag_expected: expected,
                            tag_got: got,
                        });
                        // The publish loop flips PTEs *before* writing
                        // the plaintext, so the dying transition may
                        // have left mappings claiming plaintext over
                        // what is now tampered ciphertext. Force them
                        // back to encrypted: every later access must
                        // fault into the quarantine check, never read
                        // the frame raw.
                        self.flip_mappings_encrypted(entry);
                        return Ok(());
                    }
                    // Plaintext already landed: only the flip remains.
                }
                VerifyOutcome::Untagged => unreachable!("has_tag checked above"),
            }
            self.integrity
                .retire_tag(&mut self.kernel.soc, entry.frame)?;
            self.flip_mappings_plaintext(entry);
            return Ok(());
        }
        // Legacy path (plane disabled, or a frame encrypted before it
        // was enabled): the journal commit tag tells which side of the
        // publish the kill landed on.
        if self.frame_commit_tag(&entry.iv, entry.frame)? == entry.tag {
            // Still ciphertext: decrypt under the journaled IV and
            // publish the plaintext.
            let mut page = vec![0u8; PAGE_SIZE as usize];
            self.kernel.soc.mem_read(entry.frame, &mut page)?;
            {
                let Kernel { soc, crypto, .. } = &mut self.kernel;
                crypto
                    .preferred_mut()
                    .map_err(SentryError::Kernel)?
                    .decrypt(soc, &entry.iv, &mut page)
                    .map_err(SentryError::Kernel)?;
            }
            self.kernel.soc.mem_write(entry.frame, &page)?;
        }
        self.flip_mappings_plaintext(entry);
        Ok(())
    }

    /// Re-arm every mapping of a quarantined frame as encrypted at the
    /// journaled epoch, so accesses fault and hit the quarantine check.
    fn flip_mappings_encrypted(&mut self, entry: &JournalEntry) {
        let mappings = self
            .kernel
            .sharers_of(entry.frame)
            .map(<[(u32, u64)]>::to_vec)
            .unwrap_or_else(|| vec![(entry.pid, entry.vpn)]);
        for (pid, vpn) in mappings {
            if let Some(pte) = self
                .kernel
                .procs
                .get_mut(&pid)
                .and_then(|p| p.page_table.get_mut(vpn))
            {
                pte.encrypted = true;
                pte.young = false;
                pte.crypt_epoch = entry.epoch;
            }
        }
    }

    /// Flip every mapping of a recovered decrypt entry's frame back to
    /// plaintext state (idempotent).
    fn flip_mappings_plaintext(&mut self, entry: &JournalEntry) {
        let mappings = self
            .kernel
            .sharers_of(entry.frame)
            .map(<[(u32, u64)]>::to_vec)
            .unwrap_or_else(|| vec![(entry.pid, entry.vpn)]);
        for (pid, vpn) in mappings {
            if let Some(pte) = self
                .kernel
                .procs
                .get_mut(&pid)
                .and_then(|p| p.page_table.get_mut(vpn))
            {
                pte.encrypted = false;
                pte.young = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PageCipherMode;
    use sentry_soc::Soc;

    fn tegra_sentry() -> Sentry {
        Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2),
        )
        .unwrap()
    }

    fn nexus_sentry() -> Sentry {
        Sentry::new(Kernel::new(Soc::nexus4_small()), SentryConfig::nexus4()).unwrap()
    }

    #[test]
    fn lock_unlock_roundtrip_preserves_data() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("twitter");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..200u8).cycle().take(3 * 4096).collect();
        s.write(pid, 0, &data).unwrap();

        let lock = s.on_lock().unwrap();
        assert!(lock.bytes_encrypted >= 3 * 4096);
        s.on_unlock().unwrap();

        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert!(s.stats.ondemand_faults >= 3, "lazy decryption must fault");
    }

    #[test]
    fn xts_and_ctr_modes_lock_unlock_and_page_in() {
        for mode in [PageCipherMode::Xts, PageCipherMode::Ctr] {
            let config = SentryConfig::tegra3_locked_l2(2)
                .with_cipher_mode(mode)
                .with_parallel_workers(4);
            let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).unwrap();
            assert_eq!(
                s.kernel.crypto.preferred_mut().unwrap().mode(),
                mode,
                "registered engine follows the configured mode"
            );
            let pid = s.kernel.spawn("twitter");
            s.mark_sensitive(pid).unwrap();
            let secret = b"feed cache: @alice dm draft.....";
            let data = secret.repeat(12 * 4096 / secret.len());
            s.write(pid, 0, &data).unwrap();

            let lock = s.on_lock().unwrap();
            assert!(lock.bytes_encrypted >= 12 * 4096);
            assert!(
                s.stats.crypt_batches >= 1,
                "the batched lane path must carry the {mode} lock sweep"
            );
            s.kernel.soc.cache_maintenance_flush();
            let needle = b"feed cache: @alice";
            for (_addr, frame) in s.kernel.soc.dram.iter_frames() {
                assert!(
                    !frame.windows(needle.len()).any(|w| w == needle.as_slice()),
                    "plaintext found in DRAM after a {mode} lock"
                );
            }

            // A background fault while locked pages in through the pager
            // — same mode, same commit-tag scheme on its eviction path.
            let mut probe = [0u8; 64];
            s.read(pid, 0, &mut probe).unwrap();
            assert_eq!(&probe[..], &data[..64]);

            s.on_unlock().unwrap();
            let mut back = vec![0u8; data.len()];
            s.read(pid, 0, &mut back).unwrap();
            assert_eq!(back, data, "{mode} unlock restores every byte");
        }
    }

    #[test]
    fn locked_dram_holds_ciphertext_not_plaintext() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("contacts");
        s.mark_sensitive(pid).unwrap();
        let secret = b"alice's phone number: 555-0199..................";
        s.write(pid, 0x4000, &secret.repeat(85)).unwrap();
        s.on_lock().unwrap();

        // Flush the cache so DRAM reflects memory state, then scan all of
        // DRAM for the plaintext.
        s.kernel.soc.cache_maintenance_flush();
        let needle = b"alice's phone number";
        for (_addr, frame) in s.kernel.soc.dram.iter_frames() {
            assert!(
                !frame.windows(needle.len()).any(|w| w == needle.as_slice()),
                "plaintext found in DRAM after lock"
            );
        }
    }

    #[test]
    fn non_sensitive_apps_are_untouched() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("calculator");
        s.write(pid, 0, b"not secret").unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.bytes_encrypted, 0);
        // Still directly readable (no faults).
        let mut buf = [0u8; 10];
        s.read(pid, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"not secret");
    }

    #[test]
    fn shared_with_non_sensitive_pages_are_skipped() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("maps");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[1u8; 4096]).unwrap();
        s.write(pid, 4096, &[2u8; 4096]).unwrap();
        s.kernel
            .proc_mut(pid)
            .unwrap()
            .page_table
            .get_mut(1)
            .unwrap()
            .sharing = Sharing::SharedWithNonSensitive;
        let report = s.on_lock().unwrap();
        assert_eq!(report.bytes_encrypted, 4096);
        assert_eq!(report.skipped_shared_pages, 1);
    }

    #[test]
    fn dma_regions_decrypt_eagerly_on_unlock() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("maps");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[7u8; 2 * 4096]).unwrap();
        s.kernel
            .proc_mut(pid)
            .unwrap()
            .page_table
            .get_mut(0)
            .unwrap()
            .dma_region = true;
        s.on_lock().unwrap();
        let report = s.on_unlock().unwrap();
        assert_eq!(report.eager_bytes_decrypted, 4096);
        // The DMA page is immediately accessible without a fault; the
        // other page still traps.
        assert!(!s
            .kernel
            .proc(pid)
            .unwrap()
            .page_table
            .get(0)
            .unwrap()
            .traps());
        assert!(s
            .kernel
            .proc(pid)
            .unwrap()
            .page_table
            .get(1)
            .unwrap()
            .traps());
    }

    #[test]
    fn lock_downscales_accel_clock_figure_11() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("twitter");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[9u8; 2 * 4096]).unwrap();
        s.kernel.soc.accel.state = AccelPowerState::Awake;
        let awake_ns = s.kernel.soc.accel.op_duration_ns(PAGE_SIZE);

        s.on_lock().unwrap();
        assert_eq!(
            s.kernel.soc.accel.state,
            AccelPowerState::DownScaled,
            "encrypt-on-lock must run under the down-scaled clock (§8.2)"
        );
        let locked_ns = s.kernel.soc.accel.op_duration_ns(PAGE_SIZE);
        assert!(
            locked_ns >= 3 * awake_ns,
            "Figure 11: accelerator ops while locked must be several \
             times slower ({locked_ns} ns locked vs {awake_ns} ns awake)"
        );

        s.on_unlock().unwrap();
        assert_eq!(s.kernel.soc.accel.state, AccelPowerState::Awake);
    }

    #[test]
    fn unlock_batches_route_through_accel_queue_when_enabled() {
        use crate::config::PipelineConfig;
        let config = SentryConfig::tegra3_locked_l2(2)
            .with_cipher_mode(PageCipherMode::Ctr)
            .with_pipeline(PipelineConfig::enabled());
        let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).unwrap();
        let pid = s.kernel.spawn("maps");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..255u8).cycle().take(3 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        for vpn in 0..3 {
            s.kernel
                .proc_mut(pid)
                .unwrap()
                .page_table
                .get_mut(vpn)
                .unwrap()
                .dma_region = true;
        }
        s.on_lock().unwrap();
        let report = s.on_unlock().unwrap();
        assert_eq!(report.eager_bytes_decrypted, 3 * 4096);
        assert_eq!(
            s.stats.routed_batches, 1,
            "the eager unlock batch must ride the accelerator queue"
        );
        assert_eq!(s.stats.routed_batch_pages, 3);
        assert!(s.kernel.soc.accel_queue.stats.ops >= 1);
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data, "routed decrypt must be byte-identical");
    }

    #[test]
    fn locked_fault_clusters_fall_back_with_down_scaled_reason() {
        use crate::config::{PipelineConfig, ReadaheadConfig};
        let config = SentryConfig::tegra3_locked_l2(2)
            .with_cipher_mode(PageCipherMode::Ctr)
            .with_pipeline(PipelineConfig::enabled())
            .with_readahead(ReadaheadConfig::with_cluster(4));
        let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).unwrap();
        let pid = s.kernel.spawn("mail");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..251u8).cycle().take(4 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        // Unlock restored the Awake clock; model a thermal/PM down-scale
        // before the lazy faults arrive. The fault cluster pulls a batch
        // through `decrypt_gathered`, which must take the typed inline
        // fallback, not the queue.
        s.kernel.soc.accel.state = AccelPowerState::DownScaled;
        let mut probe = vec![0u8; 4 * 4096];
        s.read(pid, 0, &mut probe).unwrap();
        assert_eq!(probe, data);
        assert_eq!(s.stats.routed_batches, 0);
        assert!(
            s.stats.batch_fallback_down_scaled >= 1,
            "locked-state batches must record the DownScaled fallback"
        );
    }

    #[test]
    fn cbc_batches_fall_back_with_unsupported_mode_reason() {
        use crate::config::PipelineConfig;
        let config = SentryConfig::tegra3_locked_l2(2).with_pipeline(PipelineConfig::enabled());
        let mut s = Sentry::new(Kernel::new(Soc::tegra3_small()), config).unwrap();
        let pid = s.kernel.spawn("maps");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[3u8; 2 * 4096]).unwrap();
        for vpn in 0..2 {
            s.kernel
                .proc_mut(pid)
                .unwrap()
                .page_table
                .get_mut(vpn)
                .unwrap()
                .dma_region = true;
        }
        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        assert_eq!(s.stats.routed_batches, 0);
        assert!(
            s.stats.batch_fallback_unsupported_mode >= 1,
            "CBC batches must record the UnsupportedCipherMode fallback"
        );
    }

    #[test]
    fn nexus_parks_sensitive_apps_while_locked() {
        let mut s = nexus_sentry();
        let pid = s.kernel.spawn("mail");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, b"inbox").unwrap();
        s.on_lock().unwrap();
        assert!(!s.kernel.proc(pid).unwrap().schedulable);
        // Background access fails: no background support on Nexus 4.
        let mut buf = [0u8; 5];
        assert!(matches!(
            s.read(pid, 0, &mut buf),
            Err(SentryError::Unresolvable { .. })
        ));
        s.on_unlock().unwrap();
        assert!(s.kernel.proc(pid).unwrap().schedulable);
        s.read(pid, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"inbox");
    }

    #[test]
    fn background_access_pages_through_locked_cache() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("xmms2");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..=255u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();

        // Read everything back while locked: the pager decrypts into
        // locked-way slots.
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert!(s.pager.stats.pageins >= 8);

        // DRAM still holds no plaintext.
        s.kernel.soc.cache_maintenance_flush();
        let needle = &data[..64];
        for (_addr, frame) in s.kernel.soc.dram.iter_frames() {
            assert!(!frame.windows(64).any(|w| w == needle));
        }
    }

    #[test]
    fn background_write_survives_eviction_and_unlock() {
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(1).with_slot_limit(2),
        )
        .unwrap();
        let pid = s.kernel.spawn("alpine");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[0u8; 6 * 4096]).unwrap();
        s.on_lock().unwrap();

        // Write new mail into page 0 while locked, then touch enough
        // other pages to force page 0's eviction.
        s.write(pid, 100, b"new mail arrived").unwrap();
        for vpn in 1..6u64 {
            s.touch_pages(pid, &[vpn]).unwrap();
        }
        assert!(s.pager.stats.pageouts >= 1, "eviction must have happened");

        s.on_unlock().unwrap();
        let mut buf = [0u8; 16];
        s.read(pid, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"new mail arrived");
    }

    #[test]
    fn double_lock_is_rejected() {
        let mut s = tegra_sentry();
        s.on_lock().unwrap();
        assert!(matches!(
            s.on_lock(),
            Err(SentryError::WrongState {
                expected_locked: false
            })
        ));
        s.on_unlock().unwrap();
        assert!(matches!(
            s.on_unlock(),
            Err(SentryError::WrongState {
                expected_locked: true
            })
        ));
    }

    #[test]
    fn minimum_two_page_configuration_works() {
        // §7: "the minimum amount of on-SoC memory required to implement
        // Sentry is only two pages" — one for AES state, one page slot.
        // (Plus the volatile key page in our accounting.)
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(1).with_slot_limit(1),
        )
        .unwrap();
        let pid = s.kernel.spawn("tiny");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..16u8).cycle().take(4 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.pager.slot_count(), 1, "slot cap respected");
        assert!(
            s.pager.stats.pageouts >= 3,
            "one slot means constant eviction: {:?}",
            s.pager.stats
        );
    }

    /// Snapshot the ciphertext bytes of a pid's DRAM frame for `vpn`.
    fn frame_bytes(s: &mut Sentry, pid: Pid, vpn: u64) -> Vec<u8> {
        s.kernel.soc.cache_maintenance_flush();
        let frame = match s
            .kernel
            .proc(pid)
            .unwrap()
            .page_table
            .get(vpn)
            .unwrap()
            .backing
        {
            Backing::Dram(f) => f,
            other => panic!("expected DRAM backing, got {other:?}"),
        };
        let mut page = vec![0u8; 4096];
        s.kernel.soc.mem_read(frame, &mut page).unwrap();
        page
    }

    #[test]
    fn same_plaintext_encrypts_differently_across_lock_cycles() {
        // IV-reuse regression: the volatile key survives a
        // lock→unlock→lock sequence, so the IV must not. With the lock
        // epoch mixed in, identical plaintext in the same page yields
        // different ciphertext on each cycle.
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("notes");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[0xABu8; 4096]).unwrap();

        s.on_lock().unwrap();
        let first = frame_bytes(&mut s, pid, 0);
        s.on_unlock().unwrap();
        s.touch_pages(pid, &[0]).unwrap(); // decrypt, leave plaintext unchanged

        s.on_lock().unwrap();
        let second = frame_bytes(&mut s, pid, 0);
        assert_ne!(first, second, "ciphertext repeated across lock cycles");

        // And the page still decrypts correctly under the new epoch.
        s.on_unlock().unwrap();
        let mut back = vec![0u8; 4096];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, vec![0xABu8; 4096]);
    }

    #[test]
    fn pages_left_encrypted_across_cycles_still_decrypt() {
        // A page nobody touches between unlock and the next lock keeps
        // its old-epoch ciphertext; its PTE must remember that epoch.
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("vault");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[1u8; 4096]).unwrap();
        s.write(pid, 4096, &[2u8; 4096]).unwrap();

        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        s.touch_pages(pid, &[0]).unwrap(); // page 1 stays encrypted (epoch 1)
        s.on_lock().unwrap(); // page 0 re-encrypts at epoch 2
        s.on_unlock().unwrap();

        let mut back = vec![0u8; 2 * 4096];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(&back[..4096], &[1u8; 4096][..]);
        assert_eq!(&back[4096..], &[2u8; 4096][..]);
    }

    fn dram_snapshot(s: &mut Sentry) -> Vec<(u64, Vec<u8>)> {
        s.kernel.soc.cache_maintenance_flush();
        s.kernel
            .soc
            .dram
            .iter_frames()
            .map(|(addr, frame)| (addr, frame.to_vec()))
            .collect()
    }

    fn locked_dram_with_workers(workers: usize) -> Vec<(u64, Vec<u8>)> {
        // The volatile key is deterministic per configuration, so two
        // instances driven identically produce comparable DRAM images.
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_parallel(crate::config::ParallelConfig {
                workers,
                min_batch_pages: 1,
            }),
        )
        .unwrap();
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..251u8).cycle().take(24 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.batch_pages, 24);
        assert_eq!(report.workers_used, workers.clamp(1, 24));
        dram_snapshot(&mut s)
    }

    #[test]
    fn worker_counts_produce_byte_identical_dram() {
        let reference = locked_dram_with_workers(1);
        for workers in [2usize, 4, 8] {
            assert_eq!(
                locked_dram_with_workers(workers),
                reference,
                "{workers} workers diverged from sequential ciphertext"
            );
        }
    }

    #[test]
    fn parallel_lock_is_faster_in_simulated_time() {
        let duration = |workers: usize| {
            let mut s = Sentry::new(
                Kernel::new(Soc::tegra3_small()),
                SentryConfig::tegra3_locked_l2(2).with_parallel_workers(workers),
            )
            .unwrap();
            let pid = s.kernel.spawn("app");
            s.mark_sensitive(pid).unwrap();
            s.write(pid, 0, &[9u8; 64 * 4096]).unwrap();
            s.on_lock().unwrap().duration_ns
        };
        let serial = duration(1);
        let parallel = duration(4);
        assert!(
            parallel * 2 < serial,
            "4 workers should at least halve the simulated lock time \
             (serial {serial} ns, parallel {parallel} ns)"
        );
    }

    #[test]
    fn small_batches_fall_back_to_the_engine_path() {
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_parallel(crate::config::ParallelConfig {
                workers: 8,
                min_batch_pages: 16,
            }),
        )
        .unwrap();
        let pid = s.kernel.spawn("tiny");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[3u8; 4 * 4096]).unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.workers_used, 1, "below-floor batch must not fan out");
        assert_eq!(s.parallel.parallel_batches, 0);
        assert_eq!(s.parallel.batches, 1);
        s.on_unlock().unwrap();
        let mut back = vec![0u8; 4 * 4096];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, vec![3u8; 4 * 4096]);
    }

    #[test]
    fn batch_stats_accumulate_per_worker_bytes() {
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_parallel(crate::config::ParallelConfig {
                workers: 4,
                min_batch_pages: 1,
            }),
        )
        .unwrap();
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[5u8; 8 * 4096]).unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.workers_used, 4);
        assert_eq!(s.stats.crypt_batches, 1);
        assert_eq!(s.stats.crypt_batch_pages, 8);
        assert_eq!(s.stats.largest_batch_pages, 8);
        assert_eq!(s.parallel.per_worker_bytes.len(), 4);
        assert_eq!(
            s.parallel.per_worker_bytes.iter().sum::<u64>(),
            8 * 4096,
            "lane bytes must add up to the batch"
        );
    }

    fn readahead_sentry(cluster: usize, budget: usize) -> Sentry {
        Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_readahead(
                crate::config::ReadaheadConfig::with_cluster(cluster).sweep_budget(budget),
            ),
        )
        .unwrap()
    }

    #[test]
    fn readahead_cluster_turns_n_faults_into_one() {
        let mut s = readahead_sentry(4, 0);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..199u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();

        s.touch_pages(pid, &[0]).unwrap();
        assert_eq!(s.stats.ondemand_faults, 1);
        assert_eq!(s.stats.readahead_clusters, 1);
        assert_eq!(s.stats.readahead_pages, 3);
        assert_eq!(s.last_fault.unwrap().pages, 4);
        let traps: Vec<bool> = (0..8)
            .map(|vpn| {
                s.kernel
                    .proc(pid)
                    .unwrap()
                    .page_table
                    .get(vpn)
                    .unwrap()
                    .traps()
            })
            .collect();
        assert_eq!(
            traps,
            [false, false, false, false, true, true, true, true],
            "the aligned 4-page window around vpn 0 is decrypted, the rest still traps"
        );

        // The whole set reads back intact with only two faults total.
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.stats.ondemand_faults, 2, "one fault per 4-page cluster");
    }

    #[test]
    fn sweeper_drains_residual_to_zero() {
        let mut s = readahead_sentry(4, 3);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..97u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        assert_eq!(s.residual_encrypted_pages(), 8);

        let report = s.scheduler_tick().unwrap();
        assert_eq!(report.pages, 3);
        assert_eq!(report.residual_pages, 5);
        assert_eq!(s.kernel.sched.ticks, 1);

        let mut guard = 0;
        while s.residual_encrypted_pages() > 0 {
            s.scheduler_tick().unwrap();
            guard += 1;
            assert!(guard < 16, "sweeper failed to converge");
        }
        assert_eq!(s.stats.sweep_pages, 8);
        assert!(s.stats.sweep_ns > 0);

        // Fully drained: reading everything back faults zero times.
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.stats.ondemand_faults, 0);
    }

    #[test]
    fn faults_mid_sweep_dedupe_coherently() {
        let mut s = readahead_sentry(8, 3);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..251u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();

        // Sweeper drains vpns 0..3; the fault cluster on vpn 4 must then
        // gather only the still-encrypted remainder (coherence rule:
        // the PTE encrypted bit is re-checked at decrypt time).
        s.scheduler_tick().unwrap();
        assert_eq!(s.residual_encrypted_pages(), 5);
        s.touch_pages(pid, &[4]).unwrap();
        assert_eq!(s.stats.ondemand_faults, 1);
        assert_eq!(
            s.last_fault.unwrap().pages,
            5,
            "only the residue is decrypted"
        );
        assert_eq!(s.residual_encrypted_pages(), 0);

        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data, "no frame was double-decrypted");
    }

    #[test]
    fn cluster_one_degenerates_to_single_page_faulting() {
        let run = |readahead: bool| {
            let mut s = if readahead {
                readahead_sentry(1, 0)
            } else {
                tegra_sentry()
            };
            let pid = s.kernel.spawn("app");
            s.mark_sensitive(pid).unwrap();
            let data: Vec<u8> = (0..53u8).cycle().take(6 * 4096).collect();
            s.write(pid, 0, &data).unwrap();
            s.on_lock().unwrap();
            s.on_unlock().unwrap();
            let mut back = vec![0u8; data.len()];
            s.read(pid, 0, &mut back).unwrap();
            assert_eq!(back, data);
            (
                s.stats.ondemand_faults,
                s.stats.ondemand_bytes,
                s.stats.ondemand_ns,
                s.stats.readahead_clusters,
            )
        };
        let (faults, bytes, ns, clusters) = run(true);
        assert_eq!(
            (faults, bytes, ns, clusters),
            run(false),
            "cluster_pages=1 must equal disabled readahead exactly"
        );
        assert_eq!(faults, 6);
        assert_eq!(clusters, 0);
        assert!(ns > 0 && bytes == 6 * 4096);
    }

    #[test]
    fn sweep_is_a_noop_while_locked() {
        let mut s = readahead_sentry(8, 4);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[6u8; 4 * 4096]).unwrap();
        s.on_lock().unwrap();
        let report = s.scheduler_tick().unwrap();
        assert_eq!(report.pages, 0);
        assert_eq!(s.stats.sweep_runs, 0);
        assert_eq!(
            s.residual_encrypted_pages(),
            4,
            "nothing decrypted while locked"
        );
        assert_eq!(s.kernel.sched.ticks, 1, "the tick itself still counts");
    }

    #[test]
    fn shared_frames_decrypt_once_under_readahead() {
        let mut s = readahead_sentry(8, 0);
        let a = s.kernel.spawn("writer");
        let b = s.kernel.spawn("reader");
        s.mark_sensitive(a).unwrap();
        s.mark_sensitive(b).unwrap();
        s.write(a, 0, &[0x5Au8; 2 * 4096]).unwrap();
        s.kernel.map_shared(a, 0, b, 0).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();

        s.touch_pages(a, &[0]).unwrap();
        // Both mappings of the shared frame are re-armed by one decrypt.
        for pid in [a, b] {
            assert!(
                !s.kernel
                    .proc(pid)
                    .unwrap()
                    .page_table
                    .get(0)
                    .unwrap()
                    .encrypted,
                "pid {pid} still marked encrypted"
            );
        }
        let mut via_b = vec![0u8; 4096];
        s.read(b, 0, &mut via_b).unwrap();
        assert_eq!(via_b, vec![0x5Au8; 4096]);
    }

    #[test]
    fn zero_thread_drains_before_lock() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, b"freed secret").unwrap();
        s.kernel.free_page(pid, 0).unwrap();
        assert!(s.kernel.frames.dirty_count() > 0);
        let report = s.on_lock().unwrap();
        assert!(report.zero_drain_ns > 0);
        assert_eq!(s.kernel.frames.dirty_count(), 0);
    }
}
