//! The Sentry lifecycle: encrypt-on-lock, decrypt-on-unlock, background
//! execution, and the fault dispatcher.
//!
//! Sentry's main observation (§2): protecting memory while the device is
//! *unlocked* is pointless — anyone holding an unlocked device can read
//! the data through the UI. So Sentry encrypts the memory of sensitive
//! applications when the screen locks, decrypts on demand after unlock
//! (lazily, to keep resume latency and energy low, §7), and — on
//! platforms with cache locking — lets sensitive apps keep running in
//! the background with their working set confined to the SoC.

use crate::aes_onsoc::build_engine;
use crate::config::{OnSocBackend, SentryConfig};
use crate::encdram::{page_iv, Pager};
use crate::error::SentryError;
use crate::keys::VolatileRootKey;
use crate::onsoc::OnSocStore;
use sentry_crypto::parallel::{crypt_batch, BatchReport, Direction, PageJob};
use sentry_crypto::Aes;
use sentry_kernel::fault::{FaultResolution, PageFault};
use sentry_kernel::pagetable::{Backing, Pte, Sharing};
use sentry_kernel::{Kernel, KernelError, Pid};
use sentry_soc::addr::PAGE_SIZE;

/// Whether the device screen is locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceState {
    /// Screen on, user authenticated. Sentry adds (almost) no overhead.
    Unlocked,
    /// Screen locked: sensitive state is ciphertext in DRAM.
    Locked,
}

/// What a lock transition did (drives Figures 4 and 5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockReport {
    /// Total simulated time of the transition, nanoseconds.
    pub duration_ns: u64,
    /// Bytes encrypted.
    pub bytes_encrypted: u64,
    /// Time spent waiting for the freed-page zeroing drain.
    pub zero_drain_ns: u64,
    /// Pages skipped because they are shared with non-sensitive apps.
    pub skipped_shared_pages: u64,
    /// Pages dispatched through the batch crypt engine.
    pub batch_pages: u64,
    /// Worker lanes the batch actually used (1 on the sequential path).
    pub workers_used: usize,
}

/// What an unlock transition did eagerly (DMA regions; Figure 2's
/// lazy remainder shows up in [`LifecycleStats`] as apps resume).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnlockReport {
    /// Total simulated time of the eager part, nanoseconds.
    pub duration_ns: u64,
    /// Bytes of DMA-region memory decrypted eagerly.
    pub eager_bytes_decrypted: u64,
    /// Worker lanes the eager batch used (1 on the sequential path).
    pub workers_used: usize,
}

/// Cumulative on-demand (post-unlock) decryption statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Lock transitions performed.
    pub locks: u64,
    /// Unlock transitions performed.
    pub unlocks: u64,
    /// On-demand page decryptions since the last reset.
    pub ondemand_faults: u64,
    /// Bytes decrypted on demand since the last reset.
    pub ondemand_bytes: u64,
    /// Simulated time spent in on-demand decryption since the last
    /// reset.
    pub ondemand_ns: u64,
    /// Batches dispatched through the bulk crypt engine (lock and eager
    /// unlock transitions with at least one page).
    pub crypt_batches: u64,
    /// Pages across all such batches.
    pub crypt_batch_pages: u64,
    /// Largest single batch seen, in pages.
    pub largest_batch_pages: u64,
    /// Slowest single on-demand fault resolution seen, nanoseconds.
    pub ondemand_max_ns: u64,
    /// Faults that pulled at least one readahead companion in.
    pub readahead_clusters: u64,
    /// Extra pages decrypted by readahead (beyond the faulting pages
    /// themselves).
    pub readahead_pages: u64,
    /// Background sweeper steps that ran (with a non-empty residual).
    pub sweep_runs: u64,
    /// Pages drained by the background sweeper.
    pub sweep_pages: u64,
    /// Simulated time spent in background sweeper steps.
    pub sweep_ns: u64,
}

/// What one background sweeper step did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Frames decrypted by this step.
    pub pages: usize,
    /// Simulated time of the step, nanoseconds.
    pub duration_ns: u64,
    /// Encrypted DRAM mappings remaining after the step (the
    /// residual-encrypted-pages gauge).
    pub residual_pages: usize,
}

/// One gathered page of fault-cluster or sweeper work: a mapping, the
/// frame behind it, and the IV its ciphertext was produced under.
struct ClusterPage {
    pid: Pid,
    vpn: u64,
    frame: u64,
    iv: [u8; 16],
}

/// Cumulative parallel-engine statistics. Kept separate from
/// [`LifecycleStats`] because the per-lane byte loads are variable
/// length (one slot per worker lane ever used).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Batches recorded (sequential fallback included).
    pub batches: u64,
    /// Batches that actually fanned out across more than one lane.
    pub parallel_batches: u64,
    /// Cumulative bytes transformed by each worker lane (index = lane;
    /// the sequential path accounts all its bytes to lane 0).
    pub per_worker_bytes: Vec<u64>,
}

impl ParallelStats {
    fn record(&mut self, report: &BatchReport) {
        self.batches += 1;
        if !report.sequential_fallback {
            self.parallel_batches += 1;
        }
        if self.per_worker_bytes.len() < report.per_worker_bytes.len() {
            self.per_worker_bytes
                .resize(report.per_worker_bytes.len(), 0);
        }
        for (acc, lane) in self
            .per_worker_bytes
            .iter_mut()
            .zip(&report.per_worker_bytes)
        {
            *acc += *lane;
        }
    }
}

/// The Sentry system: the kernel plus Sentry's storage, pager, and keys.
#[derive(Debug)]
pub struct Sentry {
    /// The underlying kernel (and through it, the SoC).
    pub kernel: Kernel,
    /// On-SoC storage.
    pub store: OnSocStore,
    /// The encrypted-DRAM pager.
    pub pager: Pager,
    /// Configuration.
    pub config: SentryConfig,
    /// Cumulative statistics.
    pub stats: LifecycleStats,
    /// Cumulative parallel-engine statistics (per-lane byte loads).
    pub parallel: ParallelStats,
    /// The most recently resolved on-demand fault (telemetry; `pages >
    /// 1` means the readahead cluster pulled in encrypted neighbours).
    pub last_fault: Option<FaultResolution>,
    state: DeviceState,
    volatile_key: VolatileRootKey,
    /// Monotone lock counter mixed into every page IV so ciphertext
    /// never repeats across lock cycles under the surviving volatile
    /// key. Incremented at the start of each lock transition.
    lock_epoch: u64,
    /// Background sweeper resume point: the first (pid, vpn) at or after
    /// which the next sweep step scans. Faults push it past their
    /// cluster window, so the sweeper drains in recency order — right
    /// behind wherever the app is touching.
    sweep_cursor: Option<(Pid, u64)>,
}

impl Sentry {
    /// Install Sentry into `kernel`: set up on-SoC storage, generate the
    /// volatile root key on-SoC, build AES On SoC keyed with it, and
    /// register the engine with the Crypto API at high priority.
    ///
    /// # Errors
    ///
    /// Propagates on-SoC allocation failures (e.g., requesting the
    /// locked-L2 backend on a platform whose firmware disables cache
    /// locking).
    pub fn new(mut kernel: Kernel, config: SentryConfig) -> Result<Self, SentryError> {
        let mut store = OnSocStore::new(config.backend, &mut kernel.soc)?;
        let key_page = store.alloc_page(&mut kernel.soc)?;
        let volatile_key =
            VolatileRootKey::generate(&mut kernel.soc, key_page, 0xB007_0000 ^ key_page)?;
        let key = volatile_key.read(&mut kernel.soc)?;
        let engine = build_engine(&mut store, &mut kernel.soc, &key)?;
        kernel.crypto.register(Box::new(engine));
        Ok(Sentry {
            kernel,
            store,
            pager: Pager::new(config.slot_limit),
            config,
            stats: LifecycleStats::default(),
            parallel: ParallelStats::default(),
            last_fault: None,
            state: DeviceState::Unlocked,
            volatile_key,
            lock_epoch: 0,
            sweep_cursor: None,
        })
    }

    /// Current lock state.
    #[must_use]
    pub fn state(&self) -> DeviceState {
        self.state
    }

    /// The volatile root key handle (on-SoC address).
    #[must_use]
    pub fn volatile_key(&self) -> VolatileRootKey {
        self.volatile_key
    }

    /// The current lock epoch (number of lock transitions so far).
    #[must_use]
    pub fn lock_epoch(&self) -> u64 {
        self.lock_epoch
    }

    /// Mark a process sensitive — the settings-menu toggle of §7.
    ///
    /// # Errors
    ///
    /// [`KernelError::UnknownPid`] via [`SentryError::Kernel`].
    pub fn mark_sensitive(&mut self, pid: Pid) -> Result<(), SentryError> {
        self.kernel.proc_mut(pid)?.sensitive = true;
        Ok(())
    }

    fn sensitive_pids(&self) -> Vec<Pid> {
        self.kernel
            .procs
            .values()
            .filter(|p| p.sensitive)
            .map(|p| p.pid)
            .collect()
    }

    /// Encrypt or decrypt a single page in place in DRAM through the
    /// preferred cipher engine (AES On SoC when registered). The caller
    /// supplies the IV — [`page_iv`] of the frame's IV-owner mapping and
    /// the lock epoch the ciphertext belongs to.
    fn crypt_page_in_dram(
        kernel: &mut Kernel,
        iv: &[u8; 16],
        frame: u64,
        encrypt: bool,
    ) -> Result<(), SentryError> {
        let mut page = vec![0u8; PAGE_SIZE as usize];
        kernel.soc.mem_read(frame, &mut page)?;
        let Kernel { soc, crypto, .. } = kernel;
        let engine = crypto.preferred_mut().map_err(SentryError::Kernel)?;
        if encrypt {
            engine
                .encrypt(soc, iv, &mut page)
                .map_err(SentryError::Kernel)?;
        } else {
            engine
                .decrypt(soc, iv, &mut page)
                .map_err(SentryError::Kernel)?;
        }
        soc.mem_write(frame, &page)?;
        Ok(())
    }

    /// Run a batch of DRAM-side `(frame, iv)` crypt jobs — the bulk path
    /// of the lock and eager-unlock transitions.
    ///
    /// With `parallel.workers <= 1`, or a batch below
    /// `parallel.min_batch_pages`, every page dispatches one at a time
    /// through the registered cipher engine, exactly like the serial
    /// prototype — byte- and cycle-identical to the unbatched code.
    /// Otherwise the ciphertext work fans out across the scoped worker
    /// pool of [`sentry_crypto::parallel`] under a single AES context
    /// expanded once per batch from the volatile root key, and the
    /// simulated clock is charged the serial AES cost divided by the
    /// lane count (one IRQ-disabled critical section for the whole
    /// batch; the page copies to and from DRAM still run through the
    /// SoC at full cost). AES On SoC itself stays single-lane — its
    /// state page cannot be replicated — so the parallel path models
    /// per-core register-resident contexts derived from the same key.
    fn crypt_frames_bulk(
        &mut self,
        direction: Direction,
        jobs: &[(u64, [u8; 16])],
    ) -> Result<BatchReport, SentryError> {
        let pages = jobs.len();
        let bytes = pages as u64 * PAGE_SIZE;
        let workers = self.config.parallel.workers;
        let min_batch = self.config.parallel.min_batch_pages.max(1);

        let report = if workers <= 1 || pages < min_batch {
            if pages <= 1 {
                for &(frame, iv) in jobs {
                    Self::crypt_page_in_dram(
                        &mut self.kernel,
                        &iv,
                        frame,
                        direction == Direction::Encrypt,
                    )?;
                }
            } else {
                // Gather the run into one buffer and make a single
                // extent call: one batched kernel stream, one
                // IRQ-critical section. The engine charge is linear in
                // bytes, so this is cycle-identical to the per-page
                // loop, while the backend batches across page
                // boundaries (the encrypt side fills its lanes with
                // independent page chains).
                let mut buf = vec![0u8; pages * PAGE_SIZE as usize];
                let mut ivs = Vec::with_capacity(pages);
                for (chunk, &(frame, iv)) in buf.chunks_exact_mut(PAGE_SIZE as usize).zip(jobs) {
                    self.kernel.soc.mem_read(frame, chunk)?;
                    ivs.push(iv);
                }
                {
                    let Kernel { soc, crypto, .. } = &mut self.kernel;
                    let engine = crypto.preferred_mut().map_err(SentryError::Kernel)?;
                    match direction {
                        Direction::Encrypt => engine.encrypt_extent(soc, &ivs, &mut buf),
                        Direction::Decrypt => engine.decrypt_extent(soc, &ivs, &mut buf),
                    }
                    .map_err(SentryError::Kernel)?;
                }
                for (chunk, &(frame, _)) in buf.chunks_exact(PAGE_SIZE as usize).zip(jobs) {
                    self.kernel.soc.mem_write(frame, chunk)?;
                }
            }
            BatchReport {
                pages,
                bytes,
                workers_used: 1,
                per_worker_bytes: vec![bytes],
                sequential_fallback: true,
            }
        } else {
            // Expand the key schedule exactly once for the whole batch;
            // worker lanes share the expanded context by reference.
            let key = self.volatile_key.read(&mut self.kernel.soc)?;
            let aes = Aes::new(&key)
                .map_err(|e| SentryError::Kernel(KernelError::UnknownCipher(e.to_string())))?;

            let mut buffers: Vec<Vec<u8>> = Vec::with_capacity(pages);
            for &(frame, _) in jobs {
                let mut page = vec![0u8; PAGE_SIZE as usize];
                self.kernel.soc.mem_read(frame, &mut page)?;
                buffers.push(page);
            }
            let mut batch: Vec<PageJob<'_>> = buffers
                .iter_mut()
                .zip(jobs)
                .map(|(page, &(_, iv))| PageJob {
                    iv,
                    data: page.as_mut_slice(),
                })
                .collect();
            // Both directions run the batched bitsliced kernel: decrypt
            // lanes stream each page 16 blocks per call (CBC decryption
            // is data-parallel within a page), encrypt lanes fill the 16
            // lanes with independent page chains. All lanes share one
            // reference — the schedule expanded above is the only key
            // expansion in the whole batch.
            let bits = sentry_crypto::BitslicedAes::from_schedule(aes.schedule());
            let report = crypt_batch(&bits, direction, &mut batch, workers, min_batch);

            // Same calibrated per-block cost as the AES-On-SoC engine,
            // spread across the lanes that actually ran.
            let state_access = match self.config.backend {
                OnSocBackend::Iram => self.kernel.soc.costs.iram_access_ns,
                OnSocBackend::LockedL2 { .. } => self.kernel.soc.costs.cache_hit_ns,
            };
            let serial_ns =
                (bytes / 16) * (self.kernel.soc.costs.aes_block_compute_ns + 4 * state_access);
            let charged_ns = serial_ns.div_ceil(report.workers_used as u64);
            let soc = &mut self.kernel.soc;
            let was_enabled = soc.cpu.begin_critical();
            soc.clock.advance(charged_ns);
            soc.cpu.end_critical(was_enabled, charged_ns);

            for (&(frame, _), page) in jobs.iter().zip(&buffers) {
                self.kernel.soc.mem_write(frame, page)?;
            }
            report
        };

        if report.pages > 0 {
            self.stats.crypt_batches += 1;
            self.stats.crypt_batch_pages += report.pages as u64;
            self.stats.largest_batch_pages =
                self.stats.largest_batch_pages.max(report.pages as u64);
            self.parallel.record(&report);
        }
        Ok(report)
    }

    /// The IV a frame's ciphertext was produced under: shared frames
    /// were encrypted under the *first* sharer's mapping identity, at
    /// the epoch stored in the IV owner's PTE; private frames under
    /// their own mapping.
    fn frame_iv(&self, pid: Pid, vpn: u64, pte: &Pte, frame: u64) -> [u8; 16] {
        let (iv_pid, iv_vpn) = self
            .kernel
            .sharers_of(frame)
            .and_then(|s| s.first().copied())
            .unwrap_or((pid, vpn));
        let stored_epoch = self
            .kernel
            .procs
            .get(&iv_pid)
            .and_then(|p| p.page_table.get(iv_vpn))
            .map_or(pte.crypt_epoch, |p| p.crypt_epoch);
        page_iv(iv_pid, iv_vpn, stored_epoch)
    }

    /// Decrypt a gathered set of encrypted DRAM pages in one dispatch
    /// and flip every mapping of each decrypted frame back to plaintext
    /// state. Returns the number of frames decrypted.
    ///
    /// Coherence rule: the PTE `encrypted` bit is the single source of
    /// truth, re-checked here immediately before the kernel call, and
    /// frames are deduped within the batch — so a fault cluster racing
    /// the sweeper (or two mappings of one shared frame landing in the
    /// same batch) can never decrypt the same frame twice, which under
    /// CBC would turn plaintext into garbage.
    fn decrypt_gathered(&mut self, pages: &[ClusterPage]) -> Result<usize, SentryError> {
        let mut jobs: Vec<(u64, [u8; 16])> = Vec::with_capacity(pages.len());
        let mut live: Vec<&ClusterPage> = Vec::with_capacity(pages.len());
        for cp in pages {
            let still_encrypted = self
                .kernel
                .procs
                .get(&cp.pid)
                .and_then(|p| p.page_table.get(cp.vpn))
                .is_some_and(|pte| pte.encrypted);
            if !still_encrypted || jobs.iter().any(|&(f, _)| f == cp.frame) {
                continue;
            }
            jobs.push((cp.frame, cp.iv));
            live.push(cp);
        }
        if jobs.is_empty() {
            return Ok(0);
        }
        if jobs.len() == 1 {
            // A lone page takes the exact single-page dispatch —
            // byte- and cycle-identical to pre-readahead faulting.
            Self::crypt_page_in_dram(&mut self.kernel, &jobs[0].1, jobs[0].0, false)?;
        } else {
            self.crypt_frames_bulk(Direction::Decrypt, &jobs)?;
        }
        for cp in live {
            // Re-arm every mapping of the frame, not just the gathered
            // one — a second sharer must not decrypt the now-plaintext
            // frame again.
            if let Some(sharers) = self.kernel.sharers_of(cp.frame).map(<[(u32, u64)]>::to_vec) {
                for (spid, svpn) in sharers {
                    if let Some(spte) = self
                        .kernel
                        .procs
                        .get_mut(&spid)
                        .and_then(|p| p.page_table.get_mut(svpn))
                    {
                        spte.encrypted = false;
                        spte.young = true;
                    }
                }
            }
            if let Some(proc) = self.kernel.procs.get_mut(&cp.pid) {
                if let Some(pte) = proc.page_table.get_mut(cp.vpn) {
                    pte.encrypted = false;
                    pte.young = true;
                }
                proc.stats.bytes_decrypted += PAGE_SIZE;
            }
        }
        Ok(jobs.len())
    }

    /// Residual-encrypted-pages gauge: encrypted DRAM mappings across
    /// all sensitive processes. Zero means post-unlock decryption is
    /// complete and no further first-touch fault can cost a decrypt.
    #[must_use]
    pub fn residual_encrypted_pages(&self) -> usize {
        self.kernel
            .procs
            .values()
            .filter(|p| p.sensitive)
            .map(|p| {
                p.page_table
                    .iter()
                    .filter(|(_, pte)| pte.encrypted && matches!(pte.backing, Backing::Dram(_)))
                    .count()
            })
            .sum()
    }

    /// One budgeted background-sweeper step — the paper's "decrypt the
    /// rest in the background" (§7). Walks the residual encrypted set
    /// starting at the sweep cursor (just past the most recent fault
    /// cluster or previous sweep batch, i.e. recency order) and drains
    /// up to `budget_pages` frames through the bulk decrypt engine.
    ///
    /// A no-op unless the device is unlocked. Pages the demand path
    /// decrypts between steps are skipped by the gather step's coherence
    /// re-check of the PTE `encrypted` bit.
    ///
    /// # Errors
    ///
    /// Propagates memory and cipher errors.
    pub fn sweep(&mut self, budget_pages: usize) -> Result<SweepReport, SentryError> {
        if self.state != DeviceState::Unlocked || budget_pages == 0 {
            return Ok(SweepReport {
                residual_pages: self.residual_encrypted_pages(),
                ..SweepReport::default()
            });
        }
        let t0 = self.kernel.soc.clock.now_ns();
        // Candidates in (pid, vpn) order, rotated so the scan resumes at
        // the cursor and wraps.
        let mut all: Vec<(Pid, u64, u64)> = Vec::new();
        for pid in self.sensitive_pids() {
            let proc = self.kernel.proc(pid)?;
            for (vpn, pte) in proc.page_table.iter() {
                if let Backing::Dram(frame) = pte.backing {
                    if pte.encrypted {
                        all.push((pid, vpn, frame));
                    }
                }
            }
        }
        if all.is_empty() {
            return Ok(SweepReport::default());
        }
        let start = self
            .sweep_cursor
            .and_then(|cur| all.iter().position(|&(pid, vpn, _)| (pid, vpn) >= cur))
            .unwrap_or(0);
        all.rotate_left(start);

        let mut gathered: Vec<ClusterPage> = Vec::with_capacity(budget_pages.min(all.len()));
        for &(pid, vpn, frame) in &all {
            if gathered.len() >= budget_pages {
                break;
            }
            if gathered.iter().any(|g| g.frame == frame) {
                continue;
            }
            let pte = *self
                .kernel
                .proc(pid)?
                .page_table
                .get(vpn)
                .expect("walked above");
            let iv = self.frame_iv(pid, vpn, &pte, frame);
            gathered.push(ClusterPage {
                pid,
                vpn,
                frame,
                iv,
            });
        }
        let next_cursor = gathered.last().map(|g| (g.pid, g.vpn + 1));
        let pages = self.decrypt_gathered(&gathered)?;
        if let Some(cur) = next_cursor {
            self.sweep_cursor = Some(cur);
        }
        let duration_ns = self.kernel.soc.clock.now_ns() - t0;
        self.stats.sweep_runs += 1;
        self.stats.sweep_pages += pages as u64;
        self.stats.sweep_ns += duration_ns;
        Ok(SweepReport {
            pages,
            duration_ns,
            residual_pages: self.residual_encrypted_pages(),
        })
    }

    /// Deliver one scheduler timer tick: bump the kernel scheduler's
    /// tick counter and, when readahead is enabled and the device is
    /// unlocked, run one budgeted sweeper step.
    ///
    /// # Errors
    ///
    /// Propagates sweeper errors.
    pub fn scheduler_tick(&mut self) -> Result<SweepReport, SentryError> {
        self.kernel.sched.tick();
        if self.config.readahead.enabled && self.state == DeviceState::Unlocked {
            self.sweep(self.config.readahead.sweep_budget_pages)
        } else {
            Ok(SweepReport {
                residual_pages: self.residual_encrypted_pages(),
                ..SweepReport::default()
            })
        }
    }

    /// Transition to the locked state (§7): drain the freed-page zeroing
    /// thread, page out any on-SoC resident pages, then walk every
    /// sensitive process's page table and encrypt its DRAM pages —
    /// skipping pages shared with non-sensitive applications. On
    /// platforms without background support, sensitive processes are
    /// parked unschedulable.
    ///
    /// # Errors
    ///
    /// [`SentryError::WrongState`] if already locked; propagated memory
    /// and cipher errors otherwise.
    pub fn on_lock(&mut self) -> Result<LockReport, SentryError> {
        if self.state == DeviceState::Locked {
            return Err(SentryError::WrongState {
                expected_locked: false,
            });
        }
        let t0 = self.kernel.soc.clock.now_ns();
        // Advance the epoch before anything encrypts: the zero-thread
        // drain and the pager's eviction sweep belong to this lock
        // cycle's IV namespace too.
        self.lock_epoch += 1;
        let epoch = self.lock_epoch;
        let zero_drain_ns = self.kernel.drain_zero_thread()?;
        self.pager.evict_all(&mut self.kernel, epoch)?;

        // Phase 1: collect every crypt job — private pages of every
        // sensitive process, then the shared-frame pass — into one
        // batch. The jobs are independent (per-page IVs), so collecting
        // first and dispatching once lets the engine fan them out.
        let mut skipped = 0u64;
        let mut jobs: Vec<(u64, [u8; 16])> = Vec::new();
        let mut private_updates: Vec<(Pid, u64)> = Vec::new();
        for pid in self.sensitive_pids() {
            let targets: Vec<(u64, u64)> = {
                let proc = self.kernel.proc(pid)?;
                proc.page_table
                    .iter()
                    .filter_map(|(vpn, pte)| match pte.backing {
                        Backing::Dram(frame)
                            if !pte.encrypted && pte.sharing != Sharing::SharedWithNonSensitive =>
                        {
                            Some((vpn, frame))
                        }
                        _ => None,
                    })
                    // Frames mapped by several processes are classified
                    // and encrypted once, below — never per mapping.
                    .filter(|(_, frame)| self.kernel.sharers_of(*frame).is_none())
                    .collect()
            };
            skipped += self
                .kernel
                .proc(pid)?
                .page_table
                .vpns_where(|p| p.sharing == Sharing::SharedWithNonSensitive)
                .len() as u64;

            for (vpn, frame) in targets {
                jobs.push((frame, page_iv(pid, vpn, epoch)));
                private_updates.push((pid, vpn));
            }
            if !self.config.background_support {
                self.kernel.proc_mut(pid)?.schedulable = false;
            }
        }

        // §7 shared-page policy, applied to *actual* shared frames: a
        // frame shared only among sensitive processes is encrypted —
        // exactly once, under the first sharer's IV — and every mapper's
        // PTE is re-armed; a frame shared with any non-sensitive process
        // is assumed non-secret and skipped (its mappings are tagged
        // accordingly).
        let shared: Vec<(u64, Vec<(Pid, u64)>)> = self
            .kernel
            .shared_frames
            .iter()
            .filter(|(_, sharers)| sharers.len() > 1)
            .map(|(&frame, sharers)| (frame, sharers.clone()))
            .collect();
        let mut shared_rearms: Vec<(Vec<(Pid, u64)>, u64)> = Vec::new();
        for (frame, sharers) in shared {
            let all_sensitive = sharers
                .iter()
                .all(|&(pid, _)| self.kernel.procs.get(&pid).is_some_and(|p| p.sensitive));
            let any_sensitive = sharers
                .iter()
                .any(|&(pid, _)| self.kernel.procs.get(&pid).is_some_and(|p| p.sensitive));
            if !any_sensitive {
                continue;
            }
            if all_sensitive {
                // A frame still ciphertext from an earlier cycle keeps
                // the epoch it was encrypted under; its PTEs must keep
                // decrypting with the original IV.
                let stored_epoch = sharers.iter().find_map(|&(pid, vpn)| {
                    self.kernel
                        .procs
                        .get(&pid)
                        .and_then(|p| p.page_table.get(vpn))
                        .filter(|pte| pte.encrypted)
                        .map(|pte| pte.crypt_epoch)
                });
                let effective_epoch = match stored_epoch {
                    Some(e) => e,
                    None => {
                        let (pid0, vpn0) = sharers[0];
                        jobs.push((frame, page_iv(pid0, vpn0, epoch)));
                        epoch
                    }
                };
                shared_rearms.push((sharers, effective_epoch));
            } else {
                skipped += 1;
                for &(pid, vpn) in &sharers {
                    if let Some(pte) = self
                        .kernel
                        .procs
                        .get_mut(&pid)
                        .and_then(|p| p.page_table.get_mut(vpn))
                    {
                        pte.sharing = Sharing::SharedWithNonSensitive;
                    }
                }
            }
        }

        // Phase 2: one dispatch for the whole transition.
        let report = self.crypt_frames_bulk(Direction::Encrypt, &jobs)?;

        // Phase 3: re-arm the PTEs of everything just encrypted.
        for (pid, vpn) in private_updates {
            let proc = self.kernel.proc_mut(pid)?;
            let pte = proc.page_table.get_mut(vpn).expect("walked above");
            pte.encrypted = true;
            pte.young = false;
            pte.dirty = false;
            pte.crypt_epoch = epoch;
            proc.stats.bytes_encrypted += PAGE_SIZE;
        }
        for (sharers, effective_epoch) in shared_rearms {
            for &(pid, vpn) in &sharers {
                if let Some(pte) = self
                    .kernel
                    .procs
                    .get_mut(&pid)
                    .and_then(|p| p.page_table.get_mut(vpn))
                {
                    pte.encrypted = true;
                    pte.young = false;
                    pte.dirty = false;
                    pte.sharing = Sharing::SharedSensitiveOnly;
                    pte.crypt_epoch = effective_epoch;
                }
            }
        }

        self.state = DeviceState::Locked;
        self.stats.locks += 1;
        Ok(LockReport {
            duration_ns: self.kernel.soc.clock.now_ns() - t0,
            bytes_encrypted: report.bytes,
            zero_drain_ns,
            skipped_shared_pages: skipped,
            batch_pages: report.pages as u64,
            workers_used: report.workers_used,
        })
    }

    /// Transition to the unlocked state: un-park sensitive processes and
    /// eagerly decrypt DMA regions (devices access them by physical
    /// address and never fault, §7). Everything else decrypts lazily on
    /// first touch.
    ///
    /// # Errors
    ///
    /// [`SentryError::WrongState`] if already unlocked; propagated
    /// memory and cipher errors otherwise.
    pub fn on_unlock(&mut self) -> Result<UnlockReport, SentryError> {
        if self.state == DeviceState::Unlocked {
            return Err(SentryError::WrongState {
                expected_locked: true,
            });
        }
        let t0 = self.kernel.soc.clock.now_ns();
        // DMA regions are decrypted eagerly and batched like the lock
        // path: collect every (frame, iv) job first, dispatch once.
        let mut jobs: Vec<(u64, [u8; 16])> = Vec::new();
        let mut updates: Vec<(Pid, u64)> = Vec::new();
        for pid in self.sensitive_pids() {
            self.kernel.proc_mut(pid)?.schedulable = true;
            let dma_pages: Vec<(u64, u64, u64)> = self
                .kernel
                .proc(pid)?
                .page_table
                .iter()
                .filter_map(|(vpn, pte)| match pte.backing {
                    Backing::Dram(frame) if pte.encrypted && pte.dma_region => {
                        Some((vpn, frame, pte.crypt_epoch))
                    }
                    _ => None,
                })
                .collect();
            for (vpn, frame, stored_epoch) in dma_pages {
                jobs.push((frame, page_iv(pid, vpn, stored_epoch)));
                updates.push((pid, vpn));
            }
        }
        let report = self.crypt_frames_bulk(Direction::Decrypt, &jobs)?;
        for (pid, vpn) in updates {
            let proc = self.kernel.proc_mut(pid)?;
            let pte = proc.page_table.get_mut(vpn).expect("walked above");
            pte.encrypted = false;
            pte.young = true;
            proc.stats.bytes_decrypted += PAGE_SIZE;
        }
        self.state = DeviceState::Unlocked;
        self.stats.unlocks += 1;
        // Each unlock starts a fresh drain of the encrypted residue.
        self.sweep_cursor = None;
        Ok(UnlockReport {
            duration_ns: self.kernel.soc.clock.now_ns() - t0,
            eager_bytes_decrypted: report.bytes,
            workers_used: report.workers_used,
        })
    }

    /// Resolve a page fault according to the device state (the §5/§7
    /// dispatcher).
    fn handle_fault(&mut self, fault: &PageFault) -> Result<(), SentryError> {
        let sensitive = self.kernel.proc(fault.pid)?.sensitive;
        match self.state {
            DeviceState::Locked => {
                if sensitive && self.config.background_support {
                    self.pager.handle_fault(
                        &mut self.store,
                        &mut self.kernel,
                        fault,
                        self.lock_epoch,
                    )
                } else {
                    // Foreground apps are parked while locked; a fault
                    // here is a programming error in the caller.
                    Err(SentryError::Unresolvable {
                        pid: fault.pid,
                        vpn: fault.vpn,
                    })
                }
            }
            DeviceState::Unlocked => {
                let t0 = self.kernel.soc.clock.now_ns();
                self.kernel
                    .soc
                    .clock
                    .advance(self.kernel.soc.costs.page_fault_ns);
                let pte = *self
                    .kernel
                    .proc(fault.pid)?
                    .page_table
                    .get(fault.vpn)
                    .ok_or(SentryError::Unresolvable {
                        pid: fault.pid,
                        vpn: fault.vpn,
                    })?;
                match pte.backing {
                    Backing::Dram(_) if pte.encrypted => {
                        // On-demand decryption in the fault handler (§7),
                        // with fault-cluster readahead: gather the
                        // faulting page plus its spatially-adjacent
                        // encrypted DRAM neighbours in the same aligned
                        // window and decrypt them in one batched kernel
                        // call — N first-touch faults become 1.
                        let cluster = if self.config.readahead.enabled {
                            self.config.readahead.cluster_pages.max(1)
                        } else {
                            1
                        };
                        let base = fault.vpn - fault.vpn % cluster as u64;
                        let mut gathered: Vec<ClusterPage> = Vec::with_capacity(cluster);
                        for vpn in base..base + cluster as u64 {
                            let cand = match self.kernel.proc(fault.pid)?.page_table.get(vpn) {
                                Some(p) => *p,
                                None => continue,
                            };
                            let frame = match cand.backing {
                                Backing::Dram(f) if cand.encrypted => f,
                                _ => continue,
                            };
                            let iv = self.frame_iv(fault.pid, vpn, &cand, frame);
                            gathered.push(ClusterPage {
                                pid: fault.pid,
                                vpn,
                                frame,
                                iv,
                            });
                        }
                        let decrypted = self.decrypt_gathered(&gathered)?;
                        let duration_ns = self.kernel.soc.clock.now_ns() - t0;
                        self.stats.ondemand_faults += 1;
                        self.stats.ondemand_bytes += decrypted as u64 * PAGE_SIZE;
                        self.stats.ondemand_ns += duration_ns;
                        self.stats.ondemand_max_ns = self.stats.ondemand_max_ns.max(duration_ns);
                        if decrypted > 1 {
                            self.stats.readahead_clusters += 1;
                            self.stats.readahead_pages += decrypted as u64 - 1;
                        }
                        self.last_fault = Some(FaultResolution {
                            pid: fault.pid,
                            vpn: fault.vpn,
                            pages: decrypted,
                            duration_ns,
                        });
                        if self.config.readahead.enabled {
                            // Recency hint: the sweeper resumes right
                            // past this cluster's window.
                            self.sweep_cursor = Some((fault.pid, base + cluster as u64));
                        }
                        Ok(())
                    }
                    _ => {
                        // A leftover trap (e.g., a page still on-SoC from
                        // a background stint): just re-arm.
                        let proc = self.kernel.proc_mut(fault.pid)?;
                        let pte = proc.page_table.get_mut(fault.vpn).expect("present");
                        pte.young = true;
                        Ok(())
                    }
                }
            }
        }
    }

    /// Process read with transparent fault handling.
    ///
    /// The access proceeds page by page, as hardware would: a fault on
    /// page *n* never forces pages before *n* to be re-touched, so even
    /// a single on-SoC slot makes forward progress (the two-page minimum
    /// configuration of §7).
    ///
    /// # Errors
    ///
    /// Propagates unresolvable faults and memory errors.
    pub fn read(&mut self, pid: Pid, vaddr: u64, buf: &mut [u8]) -> Result<(), SentryError> {
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let cur = vaddr + done as u64;
            let n = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min(len - done);
            self.access_one_page(pid, cur, |kernel| -> Result<(), KernelError> {
                kernel.read(pid, cur, &mut buf[done..done + n])
            })?;
            done += n;
        }
        Ok(())
    }

    /// Process write with transparent fault handling; see
    /// [`Sentry::read`] for the paging discipline.
    ///
    /// # Errors
    ///
    /// Propagates unresolvable faults and memory errors.
    pub fn write(&mut self, pid: Pid, vaddr: u64, data: &[u8]) -> Result<(), SentryError> {
        let len = data.len();
        let mut done = 0usize;
        while done < len {
            let cur = vaddr + done as u64;
            let n = ((PAGE_SIZE - cur % PAGE_SIZE) as usize).min(len - done);
            self.access_one_page(pid, cur, |kernel| -> Result<(), KernelError> {
                kernel.write(pid, cur, &data[done..done + n])
            })?;
            done += n;
        }
        Ok(())
    }

    /// Retry a single-page access across fault resolutions. A page needs
    /// at most a handful of retries (resolve trap → hit); more indicates
    /// a livelock and is surfaced as unresolvable.
    fn access_one_page(
        &mut self,
        pid: Pid,
        vaddr: u64,
        mut op: impl FnMut(&mut Kernel) -> Result<(), KernelError>,
    ) -> Result<(), SentryError> {
        for _ in 0..4 {
            match op(&mut self.kernel) {
                Ok(()) => return Ok(()),
                Err(KernelError::Fault(f)) => self.handle_fault(&f)?,
                Err(e) => return Err(e.into()),
            }
        }
        Err(SentryError::Unresolvable {
            pid,
            vpn: vaddr / PAGE_SIZE,
        })
    }

    /// Touch one byte of every page in `vpns` (drives resume and
    /// scripted-run experiments).
    ///
    /// # Errors
    ///
    /// Propagates access errors.
    pub fn touch_pages(&mut self, pid: Pid, vpns: &[u64]) -> Result<(), SentryError> {
        for &vpn in vpns {
            let mut b = [0u8; 1];
            self.read(pid, vpn * PAGE_SIZE, &mut b)?;
        }
        Ok(())
    }

    /// Reset the on-demand counters (between experiment phases).
    pub fn reset_ondemand_stats(&mut self) {
        self.stats.ondemand_faults = 0;
        self.stats.ondemand_bytes = 0;
        self.stats.ondemand_ns = 0;
        self.stats.ondemand_max_ns = 0;
        self.stats.readahead_clusters = 0;
        self.stats.readahead_pages = 0;
        self.last_fault = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::Soc;

    fn tegra_sentry() -> Sentry {
        Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2),
        )
        .unwrap()
    }

    fn nexus_sentry() -> Sentry {
        Sentry::new(Kernel::new(Soc::nexus4_small()), SentryConfig::nexus4()).unwrap()
    }

    #[test]
    fn lock_unlock_roundtrip_preserves_data() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("twitter");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..200u8).cycle().take(3 * 4096).collect();
        s.write(pid, 0, &data).unwrap();

        let lock = s.on_lock().unwrap();
        assert!(lock.bytes_encrypted >= 3 * 4096);
        s.on_unlock().unwrap();

        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert!(s.stats.ondemand_faults >= 3, "lazy decryption must fault");
    }

    #[test]
    fn locked_dram_holds_ciphertext_not_plaintext() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("contacts");
        s.mark_sensitive(pid).unwrap();
        let secret = b"alice's phone number: 555-0199..................";
        s.write(pid, 0x4000, &secret.repeat(85)).unwrap();
        s.on_lock().unwrap();

        // Flush the cache so DRAM reflects memory state, then scan all of
        // DRAM for the plaintext.
        s.kernel.soc.cache_maintenance_flush();
        let needle = b"alice's phone number";
        for (_addr, frame) in s.kernel.soc.dram.iter_frames() {
            assert!(
                !frame.windows(needle.len()).any(|w| w == needle.as_slice()),
                "plaintext found in DRAM after lock"
            );
        }
    }

    #[test]
    fn non_sensitive_apps_are_untouched() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("calculator");
        s.write(pid, 0, b"not secret").unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.bytes_encrypted, 0);
        // Still directly readable (no faults).
        let mut buf = [0u8; 10];
        s.read(pid, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"not secret");
    }

    #[test]
    fn shared_with_non_sensitive_pages_are_skipped() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("maps");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[1u8; 4096]).unwrap();
        s.write(pid, 4096, &[2u8; 4096]).unwrap();
        s.kernel
            .proc_mut(pid)
            .unwrap()
            .page_table
            .get_mut(1)
            .unwrap()
            .sharing = Sharing::SharedWithNonSensitive;
        let report = s.on_lock().unwrap();
        assert_eq!(report.bytes_encrypted, 4096);
        assert_eq!(report.skipped_shared_pages, 1);
    }

    #[test]
    fn dma_regions_decrypt_eagerly_on_unlock() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("maps");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[7u8; 2 * 4096]).unwrap();
        s.kernel
            .proc_mut(pid)
            .unwrap()
            .page_table
            .get_mut(0)
            .unwrap()
            .dma_region = true;
        s.on_lock().unwrap();
        let report = s.on_unlock().unwrap();
        assert_eq!(report.eager_bytes_decrypted, 4096);
        // The DMA page is immediately accessible without a fault; the
        // other page still traps.
        assert!(!s
            .kernel
            .proc(pid)
            .unwrap()
            .page_table
            .get(0)
            .unwrap()
            .traps());
        assert!(s
            .kernel
            .proc(pid)
            .unwrap()
            .page_table
            .get(1)
            .unwrap()
            .traps());
    }

    #[test]
    fn nexus_parks_sensitive_apps_while_locked() {
        let mut s = nexus_sentry();
        let pid = s.kernel.spawn("mail");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, b"inbox").unwrap();
        s.on_lock().unwrap();
        assert!(!s.kernel.proc(pid).unwrap().schedulable);
        // Background access fails: no background support on Nexus 4.
        let mut buf = [0u8; 5];
        assert!(matches!(
            s.read(pid, 0, &mut buf),
            Err(SentryError::Unresolvable { .. })
        ));
        s.on_unlock().unwrap();
        assert!(s.kernel.proc(pid).unwrap().schedulable);
        s.read(pid, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"inbox");
    }

    #[test]
    fn background_access_pages_through_locked_cache() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("xmms2");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..=255u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();

        // Read everything back while locked: the pager decrypts into
        // locked-way slots.
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert!(s.pager.stats.pageins >= 8);

        // DRAM still holds no plaintext.
        s.kernel.soc.cache_maintenance_flush();
        let needle = &data[..64];
        for (_addr, frame) in s.kernel.soc.dram.iter_frames() {
            assert!(!frame.windows(64).any(|w| w == needle));
        }
    }

    #[test]
    fn background_write_survives_eviction_and_unlock() {
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(1).with_slot_limit(2),
        )
        .unwrap();
        let pid = s.kernel.spawn("alpine");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[0u8; 6 * 4096]).unwrap();
        s.on_lock().unwrap();

        // Write new mail into page 0 while locked, then touch enough
        // other pages to force page 0's eviction.
        s.write(pid, 100, b"new mail arrived").unwrap();
        for vpn in 1..6u64 {
            s.touch_pages(pid, &[vpn]).unwrap();
        }
        assert!(s.pager.stats.pageouts >= 1, "eviction must have happened");

        s.on_unlock().unwrap();
        let mut buf = [0u8; 16];
        s.read(pid, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"new mail arrived");
    }

    #[test]
    fn double_lock_is_rejected() {
        let mut s = tegra_sentry();
        s.on_lock().unwrap();
        assert!(matches!(
            s.on_lock(),
            Err(SentryError::WrongState {
                expected_locked: false
            })
        ));
        s.on_unlock().unwrap();
        assert!(matches!(
            s.on_unlock(),
            Err(SentryError::WrongState {
                expected_locked: true
            })
        ));
    }

    #[test]
    fn minimum_two_page_configuration_works() {
        // §7: "the minimum amount of on-SoC memory required to implement
        // Sentry is only two pages" — one for AES state, one page slot.
        // (Plus the volatile key page in our accounting.)
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(1).with_slot_limit(1),
        )
        .unwrap();
        let pid = s.kernel.spawn("tiny");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..16u8).cycle().take(4 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.pager.slot_count(), 1, "slot cap respected");
        assert!(
            s.pager.stats.pageouts >= 3,
            "one slot means constant eviction: {:?}",
            s.pager.stats
        );
    }

    /// Snapshot the ciphertext bytes of a pid's DRAM frame for `vpn`.
    fn frame_bytes(s: &mut Sentry, pid: Pid, vpn: u64) -> Vec<u8> {
        s.kernel.soc.cache_maintenance_flush();
        let frame = match s
            .kernel
            .proc(pid)
            .unwrap()
            .page_table
            .get(vpn)
            .unwrap()
            .backing
        {
            Backing::Dram(f) => f,
            other => panic!("expected DRAM backing, got {other:?}"),
        };
        let mut page = vec![0u8; 4096];
        s.kernel.soc.mem_read(frame, &mut page).unwrap();
        page
    }

    #[test]
    fn same_plaintext_encrypts_differently_across_lock_cycles() {
        // IV-reuse regression: the volatile key survives a
        // lock→unlock→lock sequence, so the IV must not. With the lock
        // epoch mixed in, identical plaintext in the same page yields
        // different ciphertext on each cycle.
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("notes");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[0xABu8; 4096]).unwrap();

        s.on_lock().unwrap();
        let first = frame_bytes(&mut s, pid, 0);
        s.on_unlock().unwrap();
        s.touch_pages(pid, &[0]).unwrap(); // decrypt, leave plaintext unchanged

        s.on_lock().unwrap();
        let second = frame_bytes(&mut s, pid, 0);
        assert_ne!(first, second, "ciphertext repeated across lock cycles");

        // And the page still decrypts correctly under the new epoch.
        s.on_unlock().unwrap();
        let mut back = vec![0u8; 4096];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, vec![0xABu8; 4096]);
    }

    #[test]
    fn pages_left_encrypted_across_cycles_still_decrypt() {
        // A page nobody touches between unlock and the next lock keeps
        // its old-epoch ciphertext; its PTE must remember that epoch.
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("vault");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[1u8; 4096]).unwrap();
        s.write(pid, 4096, &[2u8; 4096]).unwrap();

        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        s.touch_pages(pid, &[0]).unwrap(); // page 1 stays encrypted (epoch 1)
        s.on_lock().unwrap(); // page 0 re-encrypts at epoch 2
        s.on_unlock().unwrap();

        let mut back = vec![0u8; 2 * 4096];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(&back[..4096], &[1u8; 4096][..]);
        assert_eq!(&back[4096..], &[2u8; 4096][..]);
    }

    fn dram_snapshot(s: &mut Sentry) -> Vec<(u64, Vec<u8>)> {
        s.kernel.soc.cache_maintenance_flush();
        s.kernel
            .soc
            .dram
            .iter_frames()
            .map(|(addr, frame)| (addr, frame.to_vec()))
            .collect()
    }

    fn locked_dram_with_workers(workers: usize) -> Vec<(u64, Vec<u8>)> {
        // The volatile key is deterministic per configuration, so two
        // instances driven identically produce comparable DRAM images.
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_parallel(crate::config::ParallelConfig {
                workers,
                min_batch_pages: 1,
            }),
        )
        .unwrap();
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..251u8).cycle().take(24 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.batch_pages, 24);
        assert_eq!(report.workers_used, workers.clamp(1, 24));
        dram_snapshot(&mut s)
    }

    #[test]
    fn worker_counts_produce_byte_identical_dram() {
        let reference = locked_dram_with_workers(1);
        for workers in [2usize, 4, 8] {
            assert_eq!(
                locked_dram_with_workers(workers),
                reference,
                "{workers} workers diverged from sequential ciphertext"
            );
        }
    }

    #[test]
    fn parallel_lock_is_faster_in_simulated_time() {
        let duration = |workers: usize| {
            let mut s = Sentry::new(
                Kernel::new(Soc::tegra3_small()),
                SentryConfig::tegra3_locked_l2(2).with_parallel_workers(workers),
            )
            .unwrap();
            let pid = s.kernel.spawn("app");
            s.mark_sensitive(pid).unwrap();
            s.write(pid, 0, &[9u8; 64 * 4096]).unwrap();
            s.on_lock().unwrap().duration_ns
        };
        let serial = duration(1);
        let parallel = duration(4);
        assert!(
            parallel * 2 < serial,
            "4 workers should at least halve the simulated lock time \
             (serial {serial} ns, parallel {parallel} ns)"
        );
    }

    #[test]
    fn small_batches_fall_back_to_the_engine_path() {
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_parallel(crate::config::ParallelConfig {
                workers: 8,
                min_batch_pages: 16,
            }),
        )
        .unwrap();
        let pid = s.kernel.spawn("tiny");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[3u8; 4 * 4096]).unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.workers_used, 1, "below-floor batch must not fan out");
        assert_eq!(s.parallel.parallel_batches, 0);
        assert_eq!(s.parallel.batches, 1);
        s.on_unlock().unwrap();
        let mut back = vec![0u8; 4 * 4096];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, vec![3u8; 4 * 4096]);
    }

    #[test]
    fn batch_stats_accumulate_per_worker_bytes() {
        let mut s = Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_parallel(crate::config::ParallelConfig {
                workers: 4,
                min_batch_pages: 1,
            }),
        )
        .unwrap();
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[5u8; 8 * 4096]).unwrap();
        let report = s.on_lock().unwrap();
        assert_eq!(report.workers_used, 4);
        assert_eq!(s.stats.crypt_batches, 1);
        assert_eq!(s.stats.crypt_batch_pages, 8);
        assert_eq!(s.stats.largest_batch_pages, 8);
        assert_eq!(s.parallel.per_worker_bytes.len(), 4);
        assert_eq!(
            s.parallel.per_worker_bytes.iter().sum::<u64>(),
            8 * 4096,
            "lane bytes must add up to the batch"
        );
    }

    fn readahead_sentry(cluster: usize, budget: usize) -> Sentry {
        Sentry::new(
            Kernel::new(Soc::tegra3_small()),
            SentryConfig::tegra3_locked_l2(2).with_readahead(
                crate::config::ReadaheadConfig::with_cluster(cluster).sweep_budget(budget),
            ),
        )
        .unwrap()
    }

    #[test]
    fn readahead_cluster_turns_n_faults_into_one() {
        let mut s = readahead_sentry(4, 0);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..199u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();

        s.touch_pages(pid, &[0]).unwrap();
        assert_eq!(s.stats.ondemand_faults, 1);
        assert_eq!(s.stats.readahead_clusters, 1);
        assert_eq!(s.stats.readahead_pages, 3);
        assert_eq!(s.last_fault.unwrap().pages, 4);
        let traps: Vec<bool> = (0..8)
            .map(|vpn| {
                s.kernel
                    .proc(pid)
                    .unwrap()
                    .page_table
                    .get(vpn)
                    .unwrap()
                    .traps()
            })
            .collect();
        assert_eq!(
            traps,
            [false, false, false, false, true, true, true, true],
            "the aligned 4-page window around vpn 0 is decrypted, the rest still traps"
        );

        // The whole set reads back intact with only two faults total.
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.stats.ondemand_faults, 2, "one fault per 4-page cluster");
    }

    #[test]
    fn sweeper_drains_residual_to_zero() {
        let mut s = readahead_sentry(4, 3);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..97u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();
        assert_eq!(s.residual_encrypted_pages(), 8);

        let report = s.scheduler_tick().unwrap();
        assert_eq!(report.pages, 3);
        assert_eq!(report.residual_pages, 5);
        assert_eq!(s.kernel.sched.ticks, 1);

        let mut guard = 0;
        while s.residual_encrypted_pages() > 0 {
            s.scheduler_tick().unwrap();
            guard += 1;
            assert!(guard < 16, "sweeper failed to converge");
        }
        assert_eq!(s.stats.sweep_pages, 8);
        assert!(s.stats.sweep_ns > 0);

        // Fully drained: reading everything back faults zero times.
        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(s.stats.ondemand_faults, 0);
    }

    #[test]
    fn faults_mid_sweep_dedupe_coherently() {
        let mut s = readahead_sentry(8, 3);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        let data: Vec<u8> = (0..251u8).cycle().take(8 * 4096).collect();
        s.write(pid, 0, &data).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();

        // Sweeper drains vpns 0..3; the fault cluster on vpn 4 must then
        // gather only the still-encrypted remainder (coherence rule:
        // the PTE encrypted bit is re-checked at decrypt time).
        s.scheduler_tick().unwrap();
        assert_eq!(s.residual_encrypted_pages(), 5);
        s.touch_pages(pid, &[4]).unwrap();
        assert_eq!(s.stats.ondemand_faults, 1);
        assert_eq!(
            s.last_fault.unwrap().pages,
            5,
            "only the residue is decrypted"
        );
        assert_eq!(s.residual_encrypted_pages(), 0);

        let mut back = vec![0u8; data.len()];
        s.read(pid, 0, &mut back).unwrap();
        assert_eq!(back, data, "no frame was double-decrypted");
    }

    #[test]
    fn cluster_one_degenerates_to_single_page_faulting() {
        let run = |readahead: bool| {
            let mut s = if readahead {
                readahead_sentry(1, 0)
            } else {
                tegra_sentry()
            };
            let pid = s.kernel.spawn("app");
            s.mark_sensitive(pid).unwrap();
            let data: Vec<u8> = (0..53u8).cycle().take(6 * 4096).collect();
            s.write(pid, 0, &data).unwrap();
            s.on_lock().unwrap();
            s.on_unlock().unwrap();
            let mut back = vec![0u8; data.len()];
            s.read(pid, 0, &mut back).unwrap();
            assert_eq!(back, data);
            (
                s.stats.ondemand_faults,
                s.stats.ondemand_bytes,
                s.stats.ondemand_ns,
                s.stats.readahead_clusters,
            )
        };
        let (faults, bytes, ns, clusters) = run(true);
        assert_eq!(
            (faults, bytes, ns, clusters),
            run(false),
            "cluster_pages=1 must equal disabled readahead exactly"
        );
        assert_eq!(faults, 6);
        assert_eq!(clusters, 0);
        assert!(ns > 0 && bytes == 6 * 4096);
    }

    #[test]
    fn sweep_is_a_noop_while_locked() {
        let mut s = readahead_sentry(8, 4);
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, &[6u8; 4 * 4096]).unwrap();
        s.on_lock().unwrap();
        let report = s.scheduler_tick().unwrap();
        assert_eq!(report.pages, 0);
        assert_eq!(s.stats.sweep_runs, 0);
        assert_eq!(
            s.residual_encrypted_pages(),
            4,
            "nothing decrypted while locked"
        );
        assert_eq!(s.kernel.sched.ticks, 1, "the tick itself still counts");
    }

    #[test]
    fn shared_frames_decrypt_once_under_readahead() {
        let mut s = readahead_sentry(8, 0);
        let a = s.kernel.spawn("writer");
        let b = s.kernel.spawn("reader");
        s.mark_sensitive(a).unwrap();
        s.mark_sensitive(b).unwrap();
        s.write(a, 0, &[0x5Au8; 2 * 4096]).unwrap();
        s.kernel.map_shared(a, 0, b, 0).unwrap();
        s.on_lock().unwrap();
        s.on_unlock().unwrap();

        s.touch_pages(a, &[0]).unwrap();
        // Both mappings of the shared frame are re-armed by one decrypt.
        for pid in [a, b] {
            assert!(
                !s.kernel
                    .proc(pid)
                    .unwrap()
                    .page_table
                    .get(0)
                    .unwrap()
                    .encrypted,
                "pid {pid} still marked encrypted"
            );
        }
        let mut via_b = vec![0u8; 4096];
        s.read(b, 0, &mut via_b).unwrap();
        assert_eq!(via_b, vec![0x5Au8; 4096]);
    }

    #[test]
    fn zero_thread_drains_before_lock() {
        let mut s = tegra_sentry();
        let pid = s.kernel.spawn("app");
        s.mark_sensitive(pid).unwrap();
        s.write(pid, 0, b"freed secret").unwrap();
        s.kernel.free_page(pid, 0).unwrap();
        assert!(s.kernel.frames.dirty_count() > 0);
        let report = s.on_lock().unwrap();
        assert!(report.zero_drain_ns > 0);
        assert_eq!(s.kernel.frames.dirty_count(), 0);
    }
}
