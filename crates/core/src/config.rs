//! Sentry configuration.

pub use crate::pressure::PressureConfig;
pub use sentry_crypto::{HealthConfig, PageCipherMode, PipelineConfig};

/// Which on-SoC storage backs Sentry's secrets (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnSocBackend {
    /// iRAM: the 192 KiB of on-SoC SRAM not reserved by firmware.
    /// Available on both prototype platforms.
    Iram,
    /// Locked L2 cache ways: up to `max_ways` of the 8 ways (128 KiB
    /// each). Requires firmware access (Tegra 3 only).
    LockedL2 {
        /// Maximum ways Sentry may lock (1–7; one way must remain for
        /// the rest of the system).
        max_ways: usize,
    },
}

/// Tuning for the parallel page-crypt engine used by the DRAM-side bulk
/// lock/unlock path (see `sentry_crypto::parallel`).
///
/// The default (`workers = 1`) is the paper's serial prototype and is
/// byte- and cycle-identical to dispatching pages one at a time; raising
/// `workers` fans the per-page CBC jobs across a scoped worker pool.
/// AES On SoC itself always stays single-lane — its state page cannot be
/// replicated — only the bulk DRAM transitions parallelize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker lanes for bulk lock/unlock batches. `1` means sequential.
    pub workers: usize,
    /// Batches smaller than this many pages skip the thread fan-out and
    /// run sequentially (the fan-out costs more than it saves).
    pub min_batch_pages: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 1,
            min_batch_pages: 8,
        }
    }
}

impl ParallelConfig {
    /// A configuration with `workers` lanes and the default batch floor.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ParallelConfig {
            workers: workers.max(1),
            ..ParallelConfig::default()
        }
    }
}

/// Tuning for the unlock-latency engine: fault-cluster readahead plus
/// the background decrypt sweeper (see `Sentry::handle_fault` and
/// `Sentry::sweep`).
///
/// The paper decrypts on demand after unlock and "decrypts the rest in
/// the background" (§7); this config controls both halves. Disabled (the
/// default), every first touch costs a full single-page fault→decrypt
/// round trip, exactly the pre-readahead behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadaheadConfig {
    /// Pages decrypted per fault: the faulting page plus its spatially
    /// adjacent encrypted neighbours in the same aligned window, in one
    /// batched kernel call. `1` degenerates to single-page faulting.
    pub cluster_pages: usize,
    /// Pages the background sweeper drains per scheduler tick. `0`
    /// disables sweeping even when readahead is enabled.
    pub sweep_budget_pages: usize,
    /// Master switch; when false the fault path and scheduler tick
    /// behave exactly as if this config did not exist.
    pub enabled: bool,
}

impl Default for ReadaheadConfig {
    fn default() -> Self {
        ReadaheadConfig {
            cluster_pages: 8,
            sweep_budget_pages: 32,
            enabled: false,
        }
    }
}

impl ReadaheadConfig {
    /// An enabled configuration with the given cluster size and the
    /// default sweep budget.
    #[must_use]
    pub fn with_cluster(cluster_pages: usize) -> Self {
        ReadaheadConfig {
            cluster_pages: cluster_pages.max(1),
            enabled: true,
            ..ReadaheadConfig::default()
        }
    }

    /// Builder: set the sweeper's per-tick page budget.
    #[must_use]
    pub fn sweep_budget(mut self, pages: usize) -> Self {
        self.sweep_budget_pages = pages;
        self
    }
}

/// Tuning for the authenticated-DRAM integrity plane: per-page CMAC
/// tags in an on-SoC tag store, verified on every decrypt path, with
/// poisoned pages quarantined instead of decrypted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntegrityConfig {
    /// Master switch. When false no tags are computed or stored and
    /// every decrypt path behaves exactly as before the integrity plane
    /// existed (confidentiality-only encrypted DRAM).
    pub enabled: bool,
    /// Extra frame re-reads attempted when a MAC check fails, to
    /// disambiguate a transient bus/readout glitch from real tampering
    /// before quarantining the page.
    pub max_verify_retries: u32,
    /// Attempt cap (initial try + retries) for transient crypt/dispatch
    /// faults on the fault-readahead and sweeper paths; exceeding it
    /// yields a typed `RetriesExhausted` instead of retrying forever.
    pub max_crypt_retries: u32,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            enabled: true,
            max_verify_retries: 2,
            max_crypt_retries: 3,
        }
    }
}

impl IntegrityConfig {
    /// A disabled integrity plane (confidentiality-only DRAM, the
    /// paper's original behaviour).
    #[must_use]
    pub fn disabled() -> Self {
        IntegrityConfig {
            enabled: false,
            ..IntegrityConfig::default()
        }
    }
}

/// Full Sentry configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentryConfig {
    /// Where secrets live on the SoC.
    pub backend: OnSocBackend,
    /// Parallel page-crypt tuning for bulk lock/unlock transitions.
    pub parallel: ParallelConfig,
    /// Unlock-latency tuning: fault-cluster readahead and the background
    /// decrypt sweeper.
    pub readahead: ReadaheadConfig,
    /// Authenticated-DRAM integrity plane tuning.
    pub integrity: IntegrityConfig,
    /// Per-page cipher mode for every page/sector crypt path: the pager,
    /// the parallel lock batch, dm-crypt, readahead, and the sweeper.
    /// CBC is the paper's mode; XTS and CTR fill every bitsliced lane on
    /// encrypt as well as decrypt (see `sentry_crypto::modes`).
    pub cipher_mode: PageCipherMode,
    /// Asynchronous crypt-pipeline tuning: keystream precompute for the
    /// dm-crypt read path and accelerator-queue routing for lifecycle
    /// decrypt batches (see `sentry_crypto::pipeline`). Disabled by
    /// default — the paper's fully inline behaviour.
    pub pipeline: PipelineConfig,
    /// Health-governor tuning: watchdog deadlines on accelerator waits,
    /// the circuit breaker's trip/probe thresholds, and the storage
    /// retry/backoff budget (see `sentry_core::health`). Enabled by
    /// default — flaky hardware degrades to the CPU path instead of
    /// hanging the device.
    pub health: HealthConfig,
    /// Pressure-governor tuning: occupancy watermarks over the on-SoC
    /// store, elective-load shedding at High pressure, and the
    /// encrypted spill path at Critical (see `sentry_core::pressure`).
    /// Enabled by default — exhaustion degrades instead of failing
    /// closed.
    pub pressure: PressureConfig,
    /// Whether sensitive apps may run in the background while locked
    /// (requires the encrypted-DRAM pager; the paper's Tegra prototype).
    /// Without it, sensitive apps are parked unschedulable on lock (the
    /// Nexus 4 prototype).
    pub background_support: bool,
    /// Optional cap on the pager's on-SoC page slots. `Some(1)` plus the
    /// AES state page reproduces the paper's minimum-footprint
    /// configuration — "the minimum amount of on-SoC memory required to
    /// implement Sentry is only two pages" (§7) — at the cost of very
    /// frequent page faults.
    pub slot_limit: Option<usize>,
}

impl SentryConfig {
    /// The paper's Tegra 3 configuration: locked L2 cache ways and full
    /// background support.
    ///
    /// # Panics
    ///
    /// Panics if `max_ways` is 0 or 8 — at least one way must stay
    /// unlocked for the rest of the system (§4.5).
    #[must_use]
    pub fn tegra3_locked_l2(max_ways: usize) -> Self {
        assert!((1..=7).contains(&max_ways), "lockable ways must be 1..=7");
        SentryConfig {
            backend: OnSocBackend::LockedL2 { max_ways },
            parallel: ParallelConfig::default(),
            readahead: ReadaheadConfig::default(),
            integrity: IntegrityConfig::default(),
            cipher_mode: PageCipherMode::Cbc,
            pipeline: PipelineConfig::default(),
            health: HealthConfig::default(),
            pressure: PressureConfig::default(),
            background_support: true,
            slot_limit: None,
        }
    }

    /// A Tegra 3 configuration using iRAM instead of cache locking.
    #[must_use]
    pub fn tegra3_iram() -> Self {
        SentryConfig {
            backend: OnSocBackend::Iram,
            parallel: ParallelConfig::default(),
            readahead: ReadaheadConfig::default(),
            integrity: IntegrityConfig::default(),
            cipher_mode: PageCipherMode::Cbc,
            pipeline: PipelineConfig::default(),
            health: HealthConfig::default(),
            pressure: PressureConfig::default(),
            background_support: true,
            slot_limit: None,
        }
    }

    /// The paper's Nexus 4 configuration: iRAM key storage, no cache
    /// locking (locked firmware), no background support — sensitive apps
    /// are parked while the device is locked.
    #[must_use]
    pub fn nexus4() -> Self {
        SentryConfig {
            backend: OnSocBackend::Iram,
            parallel: ParallelConfig::default(),
            readahead: ReadaheadConfig::default(),
            integrity: IntegrityConfig::default(),
            cipher_mode: PageCipherMode::Cbc,
            pipeline: PipelineConfig::default(),
            health: HealthConfig::default(),
            pressure: PressureConfig::default(),
            background_support: false,
            slot_limit: None,
        }
    }

    /// Cap the pager's on-SoC page slots (see
    /// [`SentryConfig::slot_limit`]).
    #[must_use]
    pub fn with_slot_limit(mut self, slots: usize) -> Self {
        self.slot_limit = Some(slots);
        self
    }

    /// Set the parallel page-crypt tuning (see [`ParallelConfig`]).
    #[must_use]
    pub fn with_parallel(mut self, parallel: ParallelConfig) -> Self {
        self.parallel = parallel;
        self
    }

    /// Shorthand: `workers` lanes with the default batch floor.
    #[must_use]
    pub fn with_parallel_workers(mut self, workers: usize) -> Self {
        self.parallel = ParallelConfig::with_workers(workers);
        self
    }

    /// Set the unlock-latency tuning (see [`ReadaheadConfig`]).
    #[must_use]
    pub fn with_readahead(mut self, readahead: ReadaheadConfig) -> Self {
        self.readahead = readahead;
        self
    }

    /// Set the integrity-plane tuning (see [`IntegrityConfig`]).
    #[must_use]
    pub fn with_integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.integrity = integrity;
        self
    }

    /// Set the per-page cipher mode (see [`PageCipherMode`]).
    #[must_use]
    pub fn with_cipher_mode(mut self, mode: PageCipherMode) -> Self {
        self.cipher_mode = mode;
        self
    }

    /// Set the asynchronous crypt-pipeline tuning (see
    /// [`PipelineConfig`]).
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Shorthand: turn the integrity plane off (confidentiality-only
    /// encrypted DRAM, the paper's original behaviour).
    #[must_use]
    pub fn without_integrity(mut self) -> Self {
        self.integrity = IntegrityConfig::disabled();
        self
    }

    /// Set the health-governor tuning (see [`HealthConfig`]).
    #[must_use]
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Shorthand: turn the health governor off — no watchdog deadlines,
    /// no circuit breaker, no storage retries; faults surface raw.
    #[must_use]
    pub fn without_health(mut self) -> Self {
        self.health = HealthConfig::disabled();
        self
    }

    /// Set the pressure-governor tuning (see [`PressureConfig`]).
    #[must_use]
    pub fn with_pressure(mut self, pressure: PressureConfig) -> Self {
        self.pressure = pressure;
        self
    }

    /// Shorthand: turn the pressure governor off — no watermarks, no
    /// shedding, no spill; on-SoC exhaustion fails closed as before.
    #[must_use]
    pub fn without_pressure(mut self) -> Self {
        self.pressure = PressureConfig::disabled();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_prototypes() {
        let t = SentryConfig::tegra3_locked_l2(2);
        assert_eq!(t.backend, OnSocBackend::LockedL2 { max_ways: 2 });
        assert!(t.background_support);
        let n = SentryConfig::nexus4();
        assert_eq!(n.backend, OnSocBackend::Iram);
        assert!(!n.background_support);
    }

    #[test]
    #[should_panic(expected = "lockable ways")]
    fn locking_all_eight_ways_is_rejected() {
        let _ = SentryConfig::tegra3_locked_l2(8);
    }
}
