//! Crash-consistent transition journal.
//!
//! Every state transition that moves sensitive bytes between plaintext
//! and ciphertext in DRAM — lock, unlock, fault-cluster decrypt, sweep,
//! pager eviction — runs as a per-page two-phase commit:
//!
//! 1. compute the transformed page into host scratch (no DRAM
//!    mutation);
//! 2. **journal** the intent: page identity, source address, target
//!    frame, IV, and a 16-byte *tag* (the final ciphertext block the
//!    frame holds once the page is ciphertext);
//! 3. per page: publish the frame and flip the PTE, then mark the
//!    journal entry done;
//! 4. close the journal, then commit the in-memory tail (epoch, device
//!    state).
//!
//! The journal lives in **iRAM** — on-SoC, so it dies with power
//! exactly like the volatile root key. That placement is what makes it
//! safe: after a real power loss there is no key, no journal, and no
//! plaintext; after a simulated *seize* (the fault matrix's
//! deterministic kill), [`crate::Sentry::recover`] reads the journal
//! back and completes or rolls forward each undone entry idempotently.
//!
//! The tag disambiguates "published" from "not yet published" without
//! any extra write ordering: every page cipher mode under a journaled
//! IV is deterministic, so re-encrypting the (still intact) source
//! bytes reproduces the byte-identical ciphertext, and comparing the
//! frame's commit tag against the journaled one tells recovery exactly
//! which side of the publish the kill landed on. *How* the tag is
//! computed depends on the mode (see [`CommitTagger`]):
//!
//! * **CBC** (the chaining mode): the tag is the ciphertext's *final*
//!   block. CBC chains, so it depends on every byte of the page and
//!   two versions of a page never share it — first blocks collide
//!   whenever the versions share their first 16 plaintext bytes.
//! * **XTS / CTR** (the parallel modes): the final ciphertext block
//!   depends only on the final *plaintext* block, so two versions of a
//!   page with the same tail would collide there. The tag becomes a
//!   full-width CMAC over IV ‖ ciphertext under a commit key derived
//!   from the volatile root key.

use crate::error::SentryError;
use sentry_crypto::{Aes, Cmac, PageCipherMode};
use sentry_soc::{Soc, PAGE_SIZE};

/// Journal magic: a valid, open journal starts with these bytes.
pub const MAGIC: [u8; 4] = *b"SJRN";

/// Header bytes at the journal page's base.
const HEADER_LEN: u64 = 16;

/// Serialized entry size in bytes.
const ENTRY_LEN: u64 = 72;

/// Maximum entries one journal page holds; transitions larger than
/// this run as a sequence of chunks, each journaled and closed in turn.
pub const MAX_ENTRIES: usize = ((PAGE_SIZE - HEADER_LEN) / ENTRY_LEN) as usize;

/// Which way an open transition transforms its pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOp {
    /// Plaintext pages are becoming ciphertext (lock, eviction).
    Encrypt,
    /// Ciphertext pages are becoming plaintext (unlock, fault, sweep).
    Decrypt,
}

impl TxnOp {
    fn code(self) -> u8 {
        match self {
            TxnOp::Encrypt => 1,
            TxnOp::Decrypt => 2,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(TxnOp::Encrypt),
            2 => Some(TxnOp::Decrypt),
            _ => None,
        }
    }
}

/// One journaled page transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Owning process (the IV owner for shared frames).
    pub pid: u32,
    /// Virtual page number within `pid`.
    pub vpn: u64,
    /// Physical address holding the *source* bytes (equals `frame` for
    /// in-place transforms; an on-SoC slot address for evictions).
    pub src: u64,
    /// The DRAM frame being published to.
    pub frame: u64,
    /// The crypt epoch the IV was derived under — what the PTE's
    /// `crypt_epoch` must read once the entry commits.
    pub epoch: u64,
    /// The per-page IV (CBC IV, XTS tweak, or CTR counter base).
    pub iv: [u8; 16],
    /// The commit tag of the frame's *ciphertext* image — what
    /// [`CommitTagger::tag`] computes over the frame after an encrypt
    /// publishes, or before a decrypt publishes.
    pub tag: [u8; 16],
    /// Whether this entry's publish + PTE flip completed.
    pub done: bool,
}

impl JournalEntry {
    fn to_bytes(&self) -> [u8; ENTRY_LEN as usize] {
        let mut b = [0u8; ENTRY_LEN as usize];
        b[0..4].copy_from_slice(&self.pid.to_le_bytes());
        b[4] = u8::from(self.done);
        b[8..16].copy_from_slice(&self.vpn.to_le_bytes());
        b[16..24].copy_from_slice(&self.src.to_le_bytes());
        b[24..32].copy_from_slice(&self.frame.to_le_bytes());
        b[32..40].copy_from_slice(&self.epoch.to_le_bytes());
        b[40..56].copy_from_slice(&self.iv);
        b[56..72].copy_from_slice(&self.tag);
        b
    }

    fn from_bytes(b: &[u8]) -> Self {
        JournalEntry {
            pid: u32::from_le_bytes(b[0..4].try_into().unwrap()),
            done: b[4] != 0,
            vpn: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            src: u64::from_le_bytes(b[16..24].try_into().unwrap()),
            frame: u64::from_le_bytes(b[24..32].try_into().unwrap()),
            epoch: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            iv: b[40..56].try_into().unwrap(),
            tag: b[56..72].try_into().unwrap(),
        }
    }
}

/// Computes the 16-byte journal commit tag of a ciphertext page image.
///
/// Under the chaining mode (CBC) the tag is the page's final
/// ciphertext block, read straight off the image's tail: chaining
/// makes it depend on every byte of the page, so two ciphertexts of
/// different page versions under one IV never share it.
///
/// Under the parallel modes (XTS, CTR) the final block depends only on
/// the final *plaintext* block — two versions of a page with the same
/// tail would collide, and recovery could mistake a half-published
/// frame for a committed one. The tag is instead a full-width CMAC
/// over IV ‖ ciphertext, keyed with `E_rootkey("SENTRY-TXNCOMMIT")` —
/// domain-separated from the integrity plane's key, and dying with
/// power exactly like the journal it guards.
#[derive(Debug)]
pub struct CommitTagger {
    mode: PageCipherMode,
    cmac: Cmac<Aes>,
}

impl CommitTagger {
    /// Build a tagger for `mode`. The commit-CMAC key derives from the
    /// volatile root key by one block encryption of a fixed
    /// domain-separation constant, like the integrity plane's key.
    ///
    /// # Errors
    ///
    /// Propagates AES key-schedule errors.
    pub fn new(mode: PageCipherMode, root_key: &[u8]) -> Result<Self, SentryError> {
        let root = Aes::new(root_key).map_err(sentry_crypto::CryptoError::from)?;
        CommitTagger::with_root(mode, &root)
    }

    /// Build a tagger from an already-expanded root-key schedule (see
    /// `IntegrityPlane::with_root` — `Sentry::new` expands the root key
    /// once and shares it between both derived-key consumers).
    ///
    /// # Errors
    ///
    /// Propagates AES key-schedule errors for the derived commit key.
    pub fn with_root(mode: PageCipherMode, root: &Aes) -> Result<Self, SentryError> {
        let mut ck = *b"SENTRY-TXNCOMMIT";
        root.encrypt_block(&mut ck);
        Ok(CommitTagger {
            mode,
            cmac: Cmac::new(Aes::new(&ck).map_err(sentry_crypto::CryptoError::from)?),
        })
    }

    /// The page cipher mode the tagger computes tags for.
    #[must_use]
    pub fn mode(&self) -> PageCipherMode {
        self.mode
    }

    /// Commit tag of one ciphertext page image under its IV.
    ///
    /// # Panics
    ///
    /// Panics if `page` is shorter than one block.
    #[must_use]
    pub fn tag(&self, iv: &[u8; 16], page: &[u8]) -> [u8; 16] {
        if self.mode.is_chaining() {
            page[page.len() - 16..]
                .try_into()
                .expect("page has a 16-byte tail")
        } else {
            self.cmac.mac_parts(&[iv, page])
        }
    }

    /// Per-page commit tags of a contiguous run of page-sized chunks
    /// (chunk `i` tagged under `ivs[i]`).
    #[must_use]
    pub fn tags(&self, ivs: &[[u8; 16]], buf: &[u8]) -> Vec<[u8; 16]> {
        buf.chunks_exact(PAGE_SIZE as usize)
            .zip(ivs)
            .map(|(page, iv)| self.tag(iv, page))
            .collect()
    }
}

/// The journal: one on-SoC (iRAM) page plus an in-memory mirror of
/// whether a transition is currently open.
#[derive(Debug)]
pub struct TxnJournal {
    base: u64,
    open_op: Option<TxnOp>,
}

impl TxnJournal {
    /// A journal over the iRAM page at `base`. The page's prior content
    /// is irrelevant until [`TxnJournal::open`] stamps the magic;
    /// freshly booted iRAM reads as zero, which parses as "idle".
    #[must_use]
    pub fn new(base: u64) -> Self {
        TxnJournal {
            base,
            open_op: None,
        }
    }

    /// The journal page's physical (iRAM) address.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Whether a transition chunk is open right now (in-memory mirror —
    /// exact while the instance is live; after a crash, the truth is
    /// whatever [`TxnJournal::load`] reads back).
    #[must_use]
    pub fn in_flight(&self) -> bool {
        self.open_op.is_some()
    }

    /// Open a transition chunk: write every entry, then the header.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ENTRIES`] entries are given or a chunk
    /// is already open — both are caller bugs, not runtime conditions.
    ///
    /// # Errors
    ///
    /// Propagates iRAM write failures.
    pub fn open(
        &mut self,
        soc: &mut Soc,
        op: TxnOp,
        target_epoch: u64,
        entries: &[JournalEntry],
    ) -> Result<(), SentryError> {
        assert!(entries.len() <= MAX_ENTRIES, "journal chunk too large");
        assert!(self.open_op.is_none(), "journal already open");
        for (i, entry) in entries.iter().enumerate() {
            soc.mem_write(self.entry_addr(i), &entry.to_bytes())
                .map_err(SentryError::Soc)?;
        }
        let mut header = [0u8; HEADER_LEN as usize];
        header[0..4].copy_from_slice(&MAGIC);
        header[4] = op.code();
        header[6..8].copy_from_slice(&(entries.len() as u16).to_le_bytes());
        header[8..16].copy_from_slice(&target_epoch.to_le_bytes());
        soc.mem_write(self.base, &header)
            .map_err(SentryError::Soc)?;
        self.open_op = Some(op);
        Ok(())
    }

    /// Mark entry `index` of the open chunk done.
    ///
    /// # Errors
    ///
    /// Propagates iRAM write failures.
    pub fn mark_done(&mut self, soc: &mut Soc, index: usize) -> Result<(), SentryError> {
        soc.mem_write(self.entry_addr(index) + 4, &[1u8])
            .map_err(SentryError::Soc)?;
        Ok(())
    }

    /// Close the chunk: zero the header (entries become unreachable).
    ///
    /// # Errors
    ///
    /// Propagates iRAM write failures.
    pub fn close(&mut self, soc: &mut Soc) -> Result<(), SentryError> {
        soc.mem_write(self.base, &[0u8; HEADER_LEN as usize])
            .map_err(SentryError::Soc)?;
        self.open_op = None;
        Ok(())
    }

    /// Read the journal back from iRAM: `None` when idle (no magic, or
    /// an unparseable header — e.g. zeroed by a boot-ROM power cycle).
    ///
    /// Also re-synchronizes the in-memory mirror, so `load` on a
    /// freshly recovered instance is the source of truth.
    ///
    /// # Errors
    ///
    /// Propagates iRAM read failures.
    #[allow(clippy::type_complexity)]
    pub fn load(
        &mut self,
        soc: &mut Soc,
    ) -> Result<Option<(TxnOp, u64, Vec<JournalEntry>)>, SentryError> {
        let mut header = [0u8; HEADER_LEN as usize];
        soc.mem_read(self.base, &mut header)
            .map_err(SentryError::Soc)?;
        let count = u16::from_le_bytes(header[6..8].try_into().unwrap()) as usize;
        let parsed = if header[0..4] == MAGIC && count <= MAX_ENTRIES {
            TxnOp::from_code(header[4])
        } else {
            None
        };
        let Some(op) = parsed else {
            self.open_op = None;
            return Ok(None);
        };
        let target_epoch = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let mut b = [0u8; ENTRY_LEN as usize];
            soc.mem_read(self.entry_addr(i), &mut b)
                .map_err(SentryError::Soc)?;
            entries.push(JournalEntry::from_bytes(&b));
        }
        self.open_op = Some(op);
        Ok(Some((op, target_epoch, entries)))
    }

    fn entry_addr(&self, index: usize) -> u64 {
        self.base + HEADER_LEN + index as u64 * ENTRY_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::addr::{IRAM_BASE, IRAM_FIRMWARE_RESERVED};

    fn journal_page() -> u64 {
        IRAM_BASE + IRAM_FIRMWARE_RESERVED
    }

    fn entry(i: u8) -> JournalEntry {
        JournalEntry {
            pid: u32::from(i),
            vpn: u64::from(i) * 3,
            src: 0x8000_0000 + u64::from(i) * 4096,
            frame: 0x8000_0000 + u64::from(i) * 4096,
            epoch: 7,
            iv: [i; 16],
            tag: [i ^ 0xFF; 16],
            done: false,
        }
    }

    #[test]
    fn entries_roundtrip_through_bytes() {
        let e = entry(9);
        assert_eq!(JournalEntry::from_bytes(&e.to_bytes()), e);
    }

    #[test]
    fn open_load_roundtrips_and_close_clears() {
        let mut soc = Soc::tegra3_small();
        let mut j = TxnJournal::new(journal_page());
        assert!(!j.in_flight());
        assert_eq!(j.load(&mut soc).unwrap(), None, "fresh iRAM parses idle");

        let entries: Vec<JournalEntry> = (0..5).map(entry).collect();
        j.open(&mut soc, TxnOp::Encrypt, 42, &entries).unwrap();
        assert!(j.in_flight());
        j.mark_done(&mut soc, 2).unwrap();

        // A second journal instance over the same page (a recovering
        // boot) reads the same transition back.
        let mut j2 = TxnJournal::new(journal_page());
        let (op, epoch, read) = j2.load(&mut soc).unwrap().expect("open transition");
        assert_eq!(op, TxnOp::Encrypt);
        assert_eq!(epoch, 42);
        assert_eq!(read.len(), 5);
        assert!(read[2].done);
        assert!(!read[0].done && !read[4].done);
        assert_eq!(read[0].iv, [0u8; 16]);
        assert!(j2.in_flight());

        j2.close(&mut soc).unwrap();
        assert!(!j2.in_flight());
        assert_eq!(j2.load(&mut soc).unwrap(), None);
    }

    #[test]
    fn capacity_matches_the_page_layout() {
        assert_eq!(MAX_ENTRIES, 56);
        let mut soc = Soc::tegra3_small();
        let mut j = TxnJournal::new(journal_page());
        let entries: Vec<JournalEntry> = (0..MAX_ENTRIES as u8).map(entry).collect();
        j.open(&mut soc, TxnOp::Decrypt, 1, &entries).unwrap();
        let (_, _, read) = j.load(&mut soc).unwrap().unwrap();
        assert_eq!(read.len(), MAX_ENTRIES);
        assert_eq!(read.last().unwrap().iv, [(MAX_ENTRIES - 1) as u8; 16]);
    }

    #[test]
    fn garbage_header_parses_as_idle() {
        let mut soc = Soc::tegra3_small();
        let mut j = TxnJournal::new(journal_page());
        soc.mem_write(journal_page(), b"JUNKJUNKJUNKJUNK").unwrap();
        assert_eq!(j.load(&mut soc).unwrap(), None);
        // Valid magic but nonsense op code: also idle.
        let mut header = [0u8; 16];
        header[0..4].copy_from_slice(&MAGIC);
        header[4] = 9;
        soc.mem_write(journal_page(), &header).unwrap();
        assert_eq!(j.load(&mut soc).unwrap(), None);
    }
}
