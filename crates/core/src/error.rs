//! Sentry error types.

use sentry_kernel::KernelError;
use sentry_soc::SocError;
use std::error::Error;
use std::fmt;

/// Errors raised by Sentry.
#[derive(Debug, Clone, PartialEq)]
pub enum SentryError {
    /// An error from the kernel layer.
    Kernel(KernelError),
    /// An error from the SoC layer.
    Soc(SocError),
    /// On-SoC storage (iRAM or lockable cache ways) is exhausted.
    OnSocExhausted,
    /// The operation applies only to processes marked sensitive.
    NotSensitive {
        /// The offending pid.
        pid: u32,
    },
    /// An access faulted on a page Sentry has no way to resolve (e.g., a
    /// locked foreground app touched while the device is locked on a
    /// platform without background support).
    Unresolvable {
        /// The faulting pid.
        pid: u32,
        /// The faulting virtual page number.
        vpn: u64,
    },
    /// The operation requires the device to be in the other lock state.
    WrongState {
        /// What the operation needed.
        expected_locked: bool,
    },
}

impl fmt::Display for SentryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentryError::Kernel(e) => write!(f, "kernel: {e}"),
            SentryError::Soc(e) => write!(f, "soc: {e}"),
            SentryError::OnSocExhausted => write!(f, "on-SoC storage exhausted"),
            SentryError::NotSensitive { pid } => {
                write!(f, "process {pid} is not marked sensitive")
            }
            SentryError::Unresolvable { pid, vpn } => {
                write!(f, "unresolvable fault: pid {pid}, vpn {vpn:#x}")
            }
            SentryError::WrongState { expected_locked } => write!(
                f,
                "device must be {} for this operation",
                if *expected_locked {
                    "locked"
                } else {
                    "unlocked"
                }
            ),
        }
    }
}

impl Error for SentryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SentryError::Kernel(e) => Some(e),
            SentryError::Soc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KernelError> for SentryError {
    fn from(e: KernelError) -> Self {
        SentryError::Kernel(e)
    }
}

impl From<SocError> for SentryError {
    fn from(e: SocError) -> Self {
        SentryError::Soc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: SentryError = SocError::CacheLockingUnavailable.into();
        assert!(e.to_string().contains("soc"));
        assert!(Error::source(&e).is_some());
        assert!(SentryError::OnSocExhausted
            .to_string()
            .contains("exhausted"));
    }
}
