//! Sentry error types.

use sentry_crypto::CryptoError;
use sentry_kernel::KernelError;
use sentry_soc::SocError;
use std::error::Error;
use std::fmt;

/// Errors raised by Sentry.
#[derive(Debug, Clone, PartialEq)]
pub enum SentryError {
    /// An error from the kernel layer.
    Kernel(KernelError),
    /// An error from the SoC layer.
    Soc(SocError),
    /// An error from the bulk crypt machinery (parallel worker pool).
    Crypto(CryptoError),
    /// On-SoC storage (iRAM or lockable cache ways) is exhausted.
    OnSocExhausted,
    /// The operation applies only to processes marked sensitive.
    NotSensitive {
        /// The offending pid.
        pid: u32,
    },
    /// An access faulted on a page Sentry has no way to resolve (e.g., a
    /// locked foreground app touched while the device is locked on a
    /// platform without background support).
    Unresolvable {
        /// The faulting pid.
        pid: u32,
        /// The faulting virtual page number.
        vpn: u64,
    },
    /// The operation requires the device to be in the other lock state.
    WrongState {
        /// What the operation needed.
        expected_locked: bool,
    },
    /// A lock/unlock/fault/sweep entry point was called while a
    /// crash-consistency transition is still journaled in flight —
    /// [`crate::Sentry::recover`] must run first.
    TransitionInFlight {
        /// The entry point that was refused.
        op: &'static str,
    },
    /// A ciphertext page failed MAC verification against the on-SoC tag
    /// store: the frame was tampered with (or decayed) while encrypted.
    /// The page has been quarantined — its PTE stays encrypted, no
    /// plaintext was exposed, and the rest of the system keeps running.
    IntegrityViolation {
        /// Owning pid of the poisoned page.
        pid: u32,
        /// Virtual page number of the poisoned page.
        vpn: u64,
        /// The 64-bit tag the on-SoC store holds for the frame.
        tag_expected: [u8; 8],
        /// The tag recomputed over the frame's current contents.
        tag_got: [u8; 8],
    },
    /// A transient-fault retry budget was exhausted: the same operation
    /// kept failing with retriable crypt/dispatch errors beyond the
    /// configured cap, so the fault is treated as persistent.
    RetriesExhausted {
        /// The operation that gave up.
        op: &'static str,
        /// How many attempts were made (initial try + retries).
        attempts: u32,
    },
}

impl SentryError {
    /// True when this error (or anything in its source chain) is the
    /// fault plane's simulated power cut — the one failure whose
    /// aftermath is handled by [`crate::Sentry::recover`], not retry.
    #[must_use]
    pub fn is_power_loss(&self) -> bool {
        matches!(
            self,
            SentryError::Soc(SocError::PowerLost { .. })
                | SentryError::Kernel(KernelError::Soc(SocError::PowerLost { .. }))
        )
    }

    /// True when this error is an injected crypt-engine fault or batch
    /// abort from the fault plane: the transition failed cleanly before
    /// mutating anything, and the operation can simply be retried.
    #[must_use]
    pub fn is_injected_crypt_fault(&self) -> bool {
        matches!(
            self,
            SentryError::Soc(SocError::CryptFault { .. } | SocError::BatchAborted { .. })
                | SentryError::Kernel(KernelError::Soc(
                    SocError::CryptFault { .. } | SocError::BatchAborted { .. }
                ))
        )
    }

    /// True when this error reports a MAC-verification failure (a
    /// tampered or decayed ciphertext frame caught by the integrity
    /// plane, now quarantined).
    #[must_use]
    pub fn is_integrity_violation(&self) -> bool {
        matches!(self, SentryError::IntegrityViolation { .. })
    }
}

impl fmt::Display for SentryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SentryError::Kernel(e) => write!(f, "kernel: {e}"),
            SentryError::Soc(e) => write!(f, "soc: {e}"),
            SentryError::Crypto(e) => write!(f, "crypto: {e}"),
            SentryError::OnSocExhausted => write!(f, "on-SoC storage exhausted"),
            SentryError::NotSensitive { pid } => {
                write!(f, "process {pid} is not marked sensitive")
            }
            SentryError::Unresolvable { pid, vpn } => {
                write!(f, "unresolvable fault: pid {pid}, vpn {vpn:#x}")
            }
            SentryError::WrongState { expected_locked } => write!(
                f,
                "device must be {} for this operation",
                if *expected_locked {
                    "locked"
                } else {
                    "unlocked"
                }
            ),
            SentryError::TransitionInFlight { op } => write!(
                f,
                "{op} refused: a journaled transition is in flight (run recover() first)"
            ),
            SentryError::IntegrityViolation {
                pid,
                vpn,
                tag_expected,
                tag_got,
            } => write!(
                f,
                "integrity violation: pid {pid} vpn {vpn:#x} \
                 (expected tag {tag_expected:02x?}, got {tag_got:02x?}); page quarantined"
            ),
            SentryError::RetriesExhausted { op, attempts } => write!(
                f,
                "{op}: transient-fault retries exhausted after {attempts} attempts"
            ),
        }
    }
}

impl Error for SentryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SentryError::Kernel(e) => Some(e),
            SentryError::Soc(e) => Some(e),
            SentryError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for SentryError {
    fn from(e: CryptoError) -> Self {
        SentryError::Crypto(e)
    }
}

impl From<KernelError> for SentryError {
    fn from(e: KernelError) -> Self {
        SentryError::Kernel(e)
    }
}

impl From<SocError> for SentryError {
    fn from(e: SocError) -> Self {
        SentryError::Soc(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: SentryError = SocError::CacheLockingUnavailable.into();
        assert!(e.to_string().contains("soc"));
        assert!(Error::source(&e).is_some());
        assert!(SentryError::OnSocExhausted
            .to_string()
            .contains("exhausted"));
    }

    #[test]
    fn power_loss_is_recognised_through_the_source_chain() {
        let direct: SentryError = SocError::PowerLost { site: "dram.write" }.into();
        assert!(direct.is_power_loss());
        let via_kernel: SentryError = KernelError::Soc(SocError::PowerLost {
            site: "pager.evict",
        })
        .into();
        assert!(via_kernel.is_power_loss());
        assert!(!SentryError::OnSocExhausted.is_power_loss());

        let crypt: SentryError = SocError::CryptFault { site: "crypt" }.into();
        assert!(crypt.is_injected_crypt_fault());
        assert!(!crypt.is_power_loss());
    }

    #[test]
    fn crypto_errors_convert_and_chain() {
        let e: SentryError = CryptoError::WorkerPanicked {
            lane: 1,
            detail: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("crypto"));
        assert!(Error::source(&e).is_some());
    }
}
