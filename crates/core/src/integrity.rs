//! The authenticated-DRAM integrity plane: per-page CMAC tags in an
//! on-SoC tag store, verified on every decrypt path, with poisoned
//! pages quarantined instead of decrypted.
//!
//! Encrypted DRAM defeats a *passive* memory attacker — one who reads
//! the bus or dumps frozen modules. An *active* attacker can do more:
//! flip ciphertext bits from a rowhammer-style disturbance, splice one
//! sector's ciphertext over another, or re-plant a stale lock cycle's
//! ciphertext after the page was rewritten. None of those recover a
//! secret, but all of them silently corrupt the plaintext Sentry hands
//! back after unlock. The integrity plane closes that gap:
//!
//! * every ciphertext page gets a CMAC tag (SP 800-38B, AES as the
//!   primitive — no new cipher state on-SoC) over a 16-byte context
//!   tweak plus the full ciphertext page. The tweak is the page IV,
//!   which binds `(pid, vpn, lock-epoch)`, so a stale epoch's
//!   ciphertext — even with its matching stale tag — fails
//!   verification after a re-lock;
//! * tags live in an **on-SoC tag store** (iRAM, like the transition
//!   journal): the attacker who can rewrite every DRAM cell still
//!   cannot forge or swap a tag;
//! * every decrypt path verifies the tag over the gathered ciphertext
//!   *before* running the block cipher. A mismatch is retried a bounded
//!   number of times (a transient bus glitch re-reads clean; real
//!   tampering does not) and then the page is **quarantined**: its PTE
//!   stays encrypted, the caller gets a typed
//!   [`SentryError::IntegrityViolation`], and the rest of the system
//!   keeps running.
//!
//! Tags are 64 bits — the truncation SP 800-38B §5.5 permits — which
//! doubles the store's page capacity: 512 tags per 4 KiB page, so even
//! the 48 MB worst-case working set of the app-cycle experiments needs
//! only 24 iRAM pages of tags.

use crate::config::{IntegrityConfig, OnSocBackend};
use crate::error::SentryError;
use crate::onsoc::OnSocStore;
use crate::pressure::{SpillRegion, SPILL_SLOTS};
use sentry_crypto::{Aes, Cmac, RetryStats};
use sentry_soc::addr::{IRAM_BASE, IRAM_FIRMWARE_RESERVED, IRAM_SIZE, PAGE_SIZE};
use sentry_soc::Soc;
use std::collections::{BTreeMap, HashMap};

/// Bytes per stored tag (a truncated CMAC, SP 800-38B §5.5).
pub const TAG_BYTES: usize = 8;

/// Tags per 4 KiB tag-store page.
pub const TAGS_PER_PAGE: u64 = PAGE_SIZE / TAG_BYTES as u64;

/// Cumulative integrity-plane statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityStats {
    /// Pages whose MAC verified cleanly before decryption.
    pub verified_pages: u64,
    /// MAC mismatches that survived the re-read retries (each one
    /// quarantined a page).
    pub violations: u64,
    /// Frame re-reads performed to disambiguate transient readout
    /// glitches from tampering, in the unified retry shape: `attempts`
    /// counts re-reads, `recovered` pages healed by one, `exhausted`
    /// pages that still mismatched when the budget ran out.
    pub verify: RetryStats,
    /// Tags written into the on-SoC store.
    pub tags_stored: u64,
    /// Tags retired (zeroed and freed) after their page returned to
    /// plaintext.
    pub tags_retired: u64,
    /// Encrypted pages decrypted without a stored tag (pages encrypted
    /// before the plane was enabled; counted, never blocked).
    pub untagged_decrypts: u64,
}

/// One quarantined page: everything needed to report the violation on
/// every later touch without re-reading anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinedPage {
    /// Owning pid (the first mapping the verifier saw).
    pub pid: u32,
    /// Virtual page number of that mapping.
    pub vpn: u64,
    /// The poisoned DRAM frame.
    pub frame: u64,
    /// Lock epoch of the ciphertext that failed.
    pub epoch: u64,
    /// The tag the on-SoC store holds.
    pub tag_expected: [u8; TAG_BYTES],
    /// The tag recomputed over the frame's current contents.
    pub tag_got: [u8; TAG_BYTES],
}

/// Outcome of verifying one gathered ciphertext page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The stored tag matched: the ciphertext is authentic.
    Ok,
    /// No tag is stored for this frame (encrypted before the plane was
    /// enabled); the page passes through unverified.
    Untagged,
    /// The tag did not match even after the bounded re-reads: the frame
    /// was tampered with (or decayed) while encrypted.
    Mismatch {
        /// The tag the on-SoC store holds.
        expected: [u8; TAG_BYTES],
        /// The tag recomputed over the frame's current contents.
        got: [u8; TAG_BYTES],
    },
}

/// The on-SoC anchor a spilled tag page leaves behind: the lock epoch
/// it was spilled under and a CMAC over `(epoch, plaintext page)`.
/// Restoration re-derives the tag and refuses a mismatch, so a replayed
/// or cross-slot-spliced spill blob can never re-enter the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillAnchor {
    /// Lock epoch the page was spilled under.
    pub epoch: u64,
    /// CMAC-trunc8 over the epoch tweak block plus the plaintext page.
    pub tag: [u8; TAG_BYTES],
}

/// Where one tag-store page's 512 slots currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagPageState {
    /// On-SoC at this address.
    Resident(u64),
    /// Encrypted in the spill region; only the anchor remains on-SoC.
    Spilled(SpillAnchor),
    /// Returned to the store (no live slots); re-allocated zeroed on
    /// the next slot access.
    Released,
}

/// One tag-store page: its residency state, live-slot count, and a
/// last-touch ordinal for cold-page selection.
#[derive(Debug)]
struct TagPage {
    state: TagPageState,
    /// Slots on this page currently mapped to a frame.
    live: u32,
    /// Monotonic last-access ordinal; the spill path evicts the
    /// smallest.
    touch: u64,
}

/// The integrity plane: a CMAC context keyed off the volatile root key,
/// the on-SoC tag store, and the quarantine set.
#[derive(Debug)]
pub struct IntegrityPlane {
    config: IntegrityConfig,
    backend: OnSocBackend,
    /// CMAC under a domain-separated key derived from the volatile root
    /// key (`E_rootkey("SENTRY-INTEGRITY")`); `None` when disabled.
    cmac: Option<Cmac<Aes>>,
    /// Tag-store pages in slot order. The vector never shrinks, so a
    /// slot's page index (`slot / TAGS_PER_PAGE`) is stable across
    /// spill, release, and re-residency.
    tag_pages: Vec<TagPage>,
    /// DRAM frame → tag slot index.
    slots: HashMap<u64, u32>,
    /// Retired slot indices available for reuse.
    free_slots: Vec<u32>,
    /// Next never-used slot index.
    next_slot: u32,
    /// Locked-L2 backend only: next raw iRAM page to claim for tags
    /// (iRAM is otherwise unused there except for the journal page).
    fixed_next: u64,
    /// Locked-L2 backend only: fixed iRAM tag pages returned by spill
    /// or reap, available for re-claim.
    fixed_free: Vec<u64>,
    /// Spill key derived from the volatile root key
    /// (`E_rootkey("SENTRY-SPILL-KEY")`); `None` when disabled.
    spill_key: Option<[u8; 16]>,
    /// The dm-crypt-backed spill region, created on first spill.
    spill: Option<SpillRegion>,
    /// Whether Critical pressure may spill (the pressure config's
    /// `spill` switch, pushed down by `Sentry::new`).
    spill_allowed: bool,
    /// Current lock epoch, bound into every spill anchor.
    spill_epoch: u64,
    /// Monotonic access clock feeding each page's `touch` ordinal.
    touch_clock: u64,
    /// Poisoned frames, keyed by frame address.
    quarantine: BTreeMap<u64, QuarantinedPage>,
    /// Statistics.
    pub stats: IntegrityStats,
}

impl IntegrityPlane {
    /// Build the plane. When `config.enabled`, the MAC key is derived
    /// from the volatile root key by one block encryption of a fixed
    /// domain-separation constant — it inherits the root key's
    /// lifetime (dies with power) without a second key page on-SoC.
    ///
    /// # Errors
    ///
    /// Propagates AES key-schedule errors.
    pub fn new(
        config: IntegrityConfig,
        backend: OnSocBackend,
        root_key: &[u8],
    ) -> Result<Self, SentryError> {
        let root = Aes::new(root_key).map_err(sentry_crypto::CryptoError::from)?;
        IntegrityPlane::with_root(config, backend, &root)
    }

    /// Build the plane from an already-expanded root-key schedule.
    ///
    /// `Sentry::new` expands the volatile root key exactly once and
    /// shares the schedule between the integrity plane and the commit
    /// tagger; re-expanding it per consumer made per-device setup
    /// measurably more expensive at fleet scale.
    ///
    /// # Errors
    ///
    /// Propagates AES key-schedule errors for the derived MAC key.
    pub fn with_root(
        config: IntegrityConfig,
        backend: OnSocBackend,
        root: &Aes,
    ) -> Result<Self, SentryError> {
        let (cmac, spill_key) = if config.enabled {
            let mut mk = *b"SENTRY-INTEGRITY";
            root.encrypt_block(&mut mk);
            let mut sk = *b"SENTRY-SPILL-KEY";
            root.encrypt_block(&mut sk);
            (
                Some(Cmac::new(
                    Aes::new(&mk).map_err(sentry_crypto::CryptoError::from)?,
                )),
                Some(sk),
            )
        } else {
            (None, None)
        };
        Ok(IntegrityPlane {
            config,
            backend,
            cmac,
            tag_pages: Vec::new(),
            slots: HashMap::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            // The journal occupies the first post-firmware iRAM page in
            // locked-L2 mode; tag pages grow from the next one.
            fixed_next: IRAM_BASE + IRAM_FIRMWARE_RESERVED + PAGE_SIZE,
            fixed_free: Vec::new(),
            spill_key,
            spill: None,
            spill_allowed: true,
            spill_epoch: 0,
            touch_clock: 0,
            quarantine: BTreeMap::new(),
            stats: IntegrityStats::default(),
        })
    }

    /// Whether the plane is active.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cmac.is_some()
    }

    /// The configured bounded-retry caps.
    #[must_use]
    pub fn config(&self) -> IntegrityConfig {
        self.config
    }

    /// Number of on-SoC pages the tag store currently occupies.
    #[must_use]
    pub fn tag_store_pages(&self) -> usize {
        self.tag_pages.len()
    }

    /// The tag over one ciphertext page: CMAC of the IV tweak block
    /// followed by the page, truncated to 64 bits. The IV binds
    /// `(pid, vpn, lock-epoch)`, so a replayed stale-epoch ciphertext
    /// fails against the current tag even if the attacker also knew the
    /// stale tag.
    fn compute_tag(&self, iv: &[u8; 16], page: &[u8]) -> [u8; TAG_BYTES] {
        self.cmac
            .as_ref()
            .expect("compute_tag on a disabled plane")
            .mac_parts_trunc8(&[iv, page])
    }

    /// Charge the simulated clock for MACing `pages` pages, inside one
    /// IRQ-disabled critical section. The CBC chains of independent
    /// pages fill the 16 bitslice lanes of the batch AES kernels, so a
    /// batch costs `ceil(pages/16)` serial chains of 257 blocks (256
    /// page blocks + the IV tweak block) each.
    fn charge_mac(soc: &mut Soc, pages: usize) {
        if pages == 0 {
            return;
        }
        let chains = pages.div_ceil(16) as u64;
        let blocks = PAGE_SIZE / 16 + 1;
        let ns = chains * blocks * soc.costs.aes_block_compute_ns;
        let was_enabled = soc.cpu.begin_critical();
        soc.clock.advance(ns);
        soc.cpu.end_critical(was_enabled, ns);
    }

    /// `slot`'s page index into `tag_pages`.
    fn page_index(slot: u32) -> usize {
        (u64::from(slot) / TAGS_PER_PAGE) as usize
    }

    /// The on-SoC address of a currently resident tag page.
    ///
    /// # Panics
    ///
    /// Panics if the page is spilled or released — callers must run
    /// `ensure_resident` first.
    fn page_addr(&self, idx: usize) -> u64 {
        match self.tag_pages[idx].state {
            TagPageState::Resident(addr) => addr,
            ref other => unreachable!("slot access on non-resident tag page: {other:?}"),
        }
    }

    /// The on-SoC address of `slot`'s 8 tag bytes (page must be
    /// resident).
    fn slot_addr(&self, slot: u32) -> u64 {
        self.page_addr(Self::page_index(slot))
            + (u64::from(slot) % TAGS_PER_PAGE) * TAG_BYTES as u64
    }

    /// Allocate one backing page for the tag store: from the shared
    /// store in iRAM mode, or from the fixed iRAM range (re-claiming
    /// spilled/reaped pages first) in locked-L2 mode, where the charge
    /// still counts against the pressure budget.
    fn alloc_backing(&mut self, soc: &mut Soc, store: &mut OnSocStore) -> Result<u64, SentryError> {
        match self.backend {
            OnSocBackend::Iram => store.alloc_page(soc),
            OnSocBackend::LockedL2 { .. } => {
                if let Some(addr) = self.fixed_free.pop() {
                    if let Err(e) = store.charge_external(PAGE_SIZE) {
                        self.fixed_free.push(addr);
                        return Err(e);
                    }
                    soc.mem_write(addr, &[0u8; PAGE_SIZE as usize])?;
                    return Ok(addr);
                }
                if self.fixed_next + PAGE_SIZE > IRAM_BASE + IRAM_SIZE {
                    return Err(SentryError::OnSocExhausted);
                }
                store.charge_external(PAGE_SIZE)?;
                let addr = self.fixed_next;
                self.fixed_next += PAGE_SIZE;
                soc.mem_write(addr, &[0u8; PAGE_SIZE as usize])?;
                Ok(addr)
            }
        }
    }

    /// Return one tag-store backing page, zeroed, to wherever it came
    /// from.
    fn free_backing(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        addr: u64,
    ) -> Result<(), SentryError> {
        match self.backend {
            OnSocBackend::Iram => store.free_page(soc, addr),
            OnSocBackend::LockedL2 { .. } => {
                soc.mem_write(addr, &[0u8; PAGE_SIZE as usize])?;
                self.fixed_free.push(addr);
                store.release_external(PAGE_SIZE);
                Ok(())
            }
        }
    }

    /// Allocate a backing page, reclaiming one (reap an empty page, or
    /// spill the coldest live one) and retrying once when the store is
    /// exhausted — the fail-degraded path at the deepest alloc site.
    fn alloc_backing_or_reclaim(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
    ) -> Result<u64, SentryError> {
        match self.alloc_backing(soc, store) {
            Err(SentryError::OnSocExhausted) => {
                if !self.shed_cold_page(soc, store)? {
                    return Err(SentryError::OnSocExhausted);
                }
                self.alloc_backing(soc, store)
            }
            r => r,
        }
    }

    /// Get the frame's tag slot, allocating one (and growing the tag
    /// store by an on-SoC page — reclaiming a cold one under pressure —
    /// when full) if it has none. The slot's page is resident on
    /// return.
    fn slot_for(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        frame: u64,
    ) -> Result<u32, SentryError> {
        if let Some(&slot) = self.slots.get(&frame) {
            self.ensure_resident(soc, store, Self::page_index(slot))?;
            return Ok(slot);
        }
        let slot = if let Some(slot) = self.free_slots.pop() {
            slot
        } else {
            if u64::from(self.next_slot) == self.tag_pages.len() as u64 * TAGS_PER_PAGE {
                let addr = self.alloc_backing_or_reclaim(soc, store)?;
                self.touch_clock += 1;
                self.tag_pages.push(TagPage {
                    state: TagPageState::Resident(addr),
                    live: 0,
                    touch: self.touch_clock,
                });
            }
            let slot = self.next_slot;
            self.next_slot += 1;
            slot
        };
        let idx = Self::page_index(slot);
        if let Err(e) = self.ensure_resident(soc, store, idx) {
            // Hand the slot back so a denied residency never leaks it.
            self.free_slots.push(slot);
            return Err(e);
        }
        self.slots.insert(frame, slot);
        self.tag_pages[idx].live += 1;
        Ok(slot)
    }

    /// The 16-byte tweak block bound into a spill anchor's CMAC: a
    /// domain-separation constant with the lock epoch folded in, so a
    /// spill blob replayed across epochs fails restoration.
    fn spill_tweak(epoch: u64) -> [u8; 16] {
        let mut t = *b"SENTRY-SPILL-PG\0";
        for (i, b) in epoch.to_le_bytes().iter().enumerate() {
            t[8 + i] ^= b;
        }
        t
    }

    /// The spill region, created lazily on first use (its own dm-crypt
    /// stack under the derived spill key).
    fn spill_region(&mut self, soc: &mut Soc) -> Result<&mut SpillRegion, SentryError> {
        if self.spill.is_none() {
            let key = self.spill_key.ok_or(SentryError::OnSocExhausted)?;
            self.spill = Some(SpillRegion::new(soc, &key)?);
        }
        Ok(self.spill.as_mut().expect("just created"))
    }

    /// Whether the encrypted spill path may run.
    fn spill_active(&self) -> bool {
        self.spill_allowed && self.spill_key.is_some()
    }

    /// Allow or forbid spilling (pushed down from the pressure config).
    pub fn set_spill_allowed(&mut self, allowed: bool) {
        self.spill_allowed = allowed;
    }

    /// Record the current lock epoch for spill-anchor binding.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.spill_epoch = epoch;
    }

    /// Tag pages currently spilled to the encrypted region.
    #[must_use]
    pub fn spilled_pages(&self) -> usize {
        self.tag_pages
            .iter()
            .filter(|p| matches!(p.state, TagPageState::Spilled(_)))
            .count()
    }

    /// Tag pages currently resident on-SoC.
    #[must_use]
    pub fn resident_tag_pages(&self) -> usize {
        self.tag_pages
            .iter()
            .filter(|p| matches!(p.state, TagPageState::Resident(_)))
            .count()
    }

    /// Raw spill-region device bytes for cold-boot hygiene scans, if a
    /// spill has ever happened.
    pub fn spill_region_raw(&mut self) -> Option<Vec<u8>> {
        self.spill.as_mut().map(SpillRegion::raw_bytes)
    }

    /// Flip one raw byte of the spill device — the tamper-matrix hook
    /// proving a corrupted blob surfaces a typed violation on restore.
    ///
    /// # Errors
    ///
    /// Propagates block-device errors; `OnSocExhausted` when no spill
    /// region exists yet.
    pub fn corrupt_spill_byte(&mut self, offset: u64) -> Result<(), SentryError> {
        self.spill
            .as_mut()
            .ok_or(SentryError::OnSocExhausted)?
            .corrupt_byte(offset)
    }

    /// Make tag page `idx` resident, re-allocating a released page or
    /// restoring (and MAC-verifying) a spilled one, and bump its touch
    /// ordinal.
    fn ensure_resident(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        idx: usize,
    ) -> Result<u64, SentryError> {
        self.touch_clock += 1;
        self.tag_pages[idx].touch = self.touch_clock;
        match self.tag_pages[idx].state {
            TagPageState::Resident(addr) => Ok(addr),
            TagPageState::Released => {
                let addr = self.alloc_backing_or_reclaim(soc, store)?;
                self.tag_pages[idx].state = TagPageState::Resident(addr);
                Ok(addr)
            }
            TagPageState::Spilled(anchor) => {
                let addr = self.alloc_backing_or_reclaim(soc, store)?;
                match self.restore_into(soc, idx, anchor, addr) {
                    Ok(()) => {
                        self.tag_pages[idx].state = TagPageState::Resident(addr);
                        store.pressure_mut().note_restore();
                        Ok(addr)
                    }
                    Err(e) => {
                        // Unwind: the page stays spilled (the anchor and
                        // ciphertext are untouched) and the fresh page
                        // goes straight back, so a cut mid-restore
                        // neither tears state nor leaks on-SoC space.
                        let _ = self.free_backing(soc, store, addr);
                        Err(e)
                    }
                }
            }
        }
    }

    /// Read one spilled page back through dm-crypt into `addr`,
    /// verifying the anchor CMAC over the recovered plaintext.
    fn restore_into(
        &mut self,
        soc: &mut Soc,
        idx: usize,
        anchor: SpillAnchor,
        addr: u64,
    ) -> Result<(), SentryError> {
        soc.failpoint("spill.restore")?;
        let mut plain = vec![0u8; PAGE_SIZE as usize];
        self.spill_region(soc)?
            .restore(soc, idx as u64, &mut plain)?;
        let tweak = Self::spill_tweak(anchor.epoch);
        Self::charge_mac(soc, 1);
        let got = self
            .cmac
            .as_ref()
            .expect("restore on a disabled plane")
            .mac_parts_trunc8(&[&tweak, &plain]);
        if got != anchor.tag {
            return Err(SentryError::IntegrityViolation {
                pid: 0,
                vpn: idx as u64,
                tag_expected: anchor.tag,
                tag_got: got,
            });
        }
        soc.mem_write(addr, &plain)?;
        for b in plain.iter_mut() {
            *b = 0;
        }
        Ok(())
    }

    /// Encrypt-and-spill tag page `idx`: CMAC the plaintext under the
    /// epoch tweak, stage the dm-crypt ciphertext, then atomically swap
    /// the on-SoC page for the anchor. A power cut at either failpoint
    /// leaves the page resident and the store consistent.
    fn spill_page(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        idx: usize,
    ) -> Result<(), SentryError> {
        let addr = self.page_addr(idx);
        let mut plain = vec![0u8; PAGE_SIZE as usize];
        soc.mem_read(addr, &mut plain)?;
        let tweak = Self::spill_tweak(self.spill_epoch);
        Self::charge_mac(soc, 1);
        let tag = self
            .cmac
            .as_ref()
            .expect("spill on a disabled plane")
            .mac_parts_trunc8(&[&tweak, &plain]);
        // Kill point before any byte moves: nothing has changed yet.
        soc.failpoint("spill.stage")?;
        self.spill_region(soc)?.stage(soc, idx as u64, &plain)?;
        // Kill point after staging: the region holds ciphertext nobody
        // references yet; the page is still resident — a retry simply
        // overwrites the orphan blob.
        soc.failpoint("spill.anchor")?;
        // Commit: anchor first, then free. A failure freeing leaks the
        // page (counted) but never tears state.
        let epoch = self.spill_epoch;
        self.tag_pages[idx].state = TagPageState::Spilled(SpillAnchor { epoch, tag });
        for b in plain.iter_mut() {
            *b = 0;
        }
        self.free_backing(soc, store, addr)?;
        store.pressure_mut().note_spill();
        Ok(())
    }

    /// Reclaim one on-SoC tag page if possible: reap an empty resident
    /// page (free), else spill the coldest live one (encrypted).
    /// Returns whether a page was reclaimed.
    ///
    /// # Errors
    ///
    /// Propagates spill I/O and SoC errors.
    pub fn shed_cold_page(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
    ) -> Result<bool, SentryError> {
        if self.reap_one(soc, store)? {
            return Ok(true);
        }
        if !self.spill_active() {
            return Ok(false);
        }
        let coldest = self
            .tag_pages
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                matches!(p.state, TagPageState::Resident(_)) && (*i as u64) < SPILL_SLOTS
            })
            .min_by_key(|(_, p)| p.touch)
            .map(|(i, _)| i);
        match coldest {
            Some(idx) => {
                self.spill_page(soc, store, idx)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Reap one empty (no live slots) resident page back to the store.
    fn reap_one(&mut self, soc: &mut Soc, store: &mut OnSocStore) -> Result<bool, SentryError> {
        let Some(idx) = self
            .tag_pages
            .iter()
            .position(|p| p.live == 0 && matches!(p.state, TagPageState::Resident(_)))
        else {
            return Ok(false);
        };
        let addr = self.page_addr(idx);
        self.tag_pages[idx].state = TagPageState::Released;
        self.free_backing(soc, store, addr)?;
        store.pressure_mut().note_reclaimed(1);
        Ok(true)
    }

    /// Reap every empty tag page: resident ones go back to the store,
    /// spilled ones just drop their anchor (the orphan ciphertext is
    /// unreachable and key-bound). Returns on-SoC pages reclaimed.
    ///
    /// # Errors
    ///
    /// Propagates SoC errors from the page wipes.
    pub fn reap_empty(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
    ) -> Result<u64, SentryError> {
        let mut reclaimed = 0;
        while self.reap_one(soc, store)? {
            reclaimed += 1;
        }
        for p in &mut self.tag_pages {
            if p.live == 0 && matches!(p.state, TagPageState::Spilled(_)) {
                p.state = TagPageState::Released;
            }
        }
        Ok(reclaimed)
    }

    /// Release everything the plane holds for a set of frames (process
    /// teardown): retire their tags, drop their quarantine entries, and
    /// reap any tag pages that emptied out. Returns on-SoC pages
    /// reclaimed — the leak this closes used to grow every long soak
    /// into `OnSocExhausted`.
    ///
    /// # Errors
    ///
    /// Propagates SoC errors.
    pub fn release_frames(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        frames: &[u64],
    ) -> Result<u64, SentryError> {
        for &frame in frames {
            self.retire_tag(soc, frame)?;
            self.quarantine.remove(&frame);
        }
        self.reap_empty(soc, store)
    }

    /// Compute and store tags for a batch of freshly encrypted pages.
    /// `buf` holds the ciphertext pages in job order. Idempotent:
    /// re-storing a frame's tag overwrites it in place, so recovery can
    /// replay an interrupted encrypt without leaking slots.
    ///
    /// Callers run this **before** publishing any ciphertext to DRAM: a
    /// frame whose ciphertext is visible in DRAM always has its tag
    /// already on-SoC, so there is no window in which tampering could
    /// go unrecorded.
    ///
    /// # Errors
    ///
    /// [`SentryError::OnSocExhausted`] when the tag store cannot grow.
    pub fn store_tags(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        jobs: &[(u64, [u8; 16])],
        buf: &[u8],
    ) -> Result<(), SentryError> {
        if !self.enabled() || jobs.is_empty() {
            return Ok(());
        }
        Self::charge_mac(soc, jobs.len());
        let page = PAGE_SIZE as usize;
        for ((frame, iv), chunk) in jobs.iter().zip(buf.chunks_exact(page)) {
            let tag = self.compute_tag(iv, chunk);
            let slot = self.slot_for(soc, store, *frame)?;
            soc.mem_write(self.slot_addr(slot), &tag)?;
            self.stats.tags_stored += 1;
        }
        Ok(())
    }

    /// Verify a batch of gathered ciphertext pages against the tag
    /// store, before any of them is decrypted. On a mismatch the frame
    /// is re-read (into the caller's buffer — a transient readout
    /// glitch heals here) up to `max_verify_retries` times; a page that
    /// still fails reports [`VerifyOutcome::Mismatch`] and the caller
    /// quarantines it.
    ///
    /// # Errors
    ///
    /// Propagates SoC read errors.
    pub fn verify_frames(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        jobs: &[(u64, [u8; 16])],
        buf: &mut [u8],
    ) -> Result<Vec<VerifyOutcome>, SentryError> {
        if !self.enabled() {
            return Ok(vec![VerifyOutcome::Ok; jobs.len()]);
        }
        Self::charge_mac(soc, jobs.len());
        let page = PAGE_SIZE as usize;
        let mut outcomes = Vec::with_capacity(jobs.len());
        for ((frame, iv), chunk) in jobs.iter().zip(buf.chunks_exact_mut(page)) {
            let Some(&slot) = self.slots.get(frame) else {
                self.stats.untagged_decrypts += 1;
                outcomes.push(VerifyOutcome::Untagged);
                continue;
            };
            self.ensure_resident(soc, store, Self::page_index(slot))?;
            let mut expected = [0u8; TAG_BYTES];
            soc.mem_read(self.slot_addr(slot), &mut expected)?;
            let mut got = self.compute_tag(iv, chunk);
            if got != expected {
                for _ in 0..self.config.max_verify_retries {
                    self.stats.verify.attempts += 1;
                    soc.mem_read(*frame, chunk)?;
                    Self::charge_mac(soc, 1);
                    got = self.compute_tag(iv, chunk);
                    if got == expected {
                        self.stats.verify.recovered += 1;
                        break;
                    }
                }
                if got != expected {
                    self.stats.verify.exhausted += 1;
                }
            }
            if got == expected {
                self.stats.verified_pages += 1;
                outcomes.push(VerifyOutcome::Ok);
            } else {
                outcomes.push(VerifyOutcome::Mismatch { expected, got });
            }
        }
        Ok(outcomes)
    }

    /// Verify one gathered page (the pager's scratch-buffer paths).
    ///
    /// # Errors
    ///
    /// Propagates SoC read errors.
    pub fn verify_one(
        &mut self,
        soc: &mut Soc,
        store: &mut OnSocStore,
        frame: u64,
        iv: &[u8; 16],
        chunk: &mut [u8],
    ) -> Result<VerifyOutcome, SentryError> {
        if !self.enabled() {
            return Ok(VerifyOutcome::Ok);
        }
        let jobs = [(frame, *iv)];
        Ok(self.verify_frames(soc, store, &jobs, chunk)?[0])
    }

    /// Quarantine a poisoned page and return the typed violation error
    /// the caller propagates. The PTE is left untouched (still
    /// encrypted) by design — that is the caller's invariant — so the
    /// page can never reach plaintext, and every later touch reports
    /// the same violation via [`IntegrityPlane::violation_for`].
    pub fn quarantine(&mut self, q: QuarantinedPage) -> SentryError {
        if !self.quarantine.contains_key(&q.frame) {
            self.stats.violations += 1;
        }
        let err = SentryError::IntegrityViolation {
            pid: q.pid,
            vpn: q.vpn,
            tag_expected: q.tag_expected,
            tag_got: q.tag_got,
        };
        self.quarantine.insert(q.frame, q);
        err
    }

    /// Whether `frame` is quarantined.
    #[must_use]
    pub fn is_quarantined(&self, frame: u64) -> bool {
        self.quarantine.contains_key(&frame)
    }

    /// Drop a frame's quarantine entry. Only recovery calls this, after
    /// rolling a poisoned frame forward from a still-intact source (an
    /// on-SoC eviction slot): the fresh ciphertext *and its fresh tag*
    /// fully replace the tampered image, so the frame is healed.
    /// Returns whether an entry was removed.
    pub fn release(&mut self, frame: u64) -> bool {
        self.quarantine.remove(&frame).is_some()
    }

    /// The stored violation for a quarantined frame, if any.
    #[must_use]
    pub fn violation_for(&self, frame: u64) -> Option<SentryError> {
        self.quarantine
            .get(&frame)
            .map(|q| SentryError::IntegrityViolation {
                pid: q.pid,
                vpn: q.vpn,
                tag_expected: q.tag_expected,
                tag_got: q.tag_got,
            })
    }

    /// All quarantined pages, in frame order.
    #[must_use]
    pub fn quarantined(&self) -> Vec<QuarantinedPage> {
        self.quarantine.values().copied().collect()
    }

    /// Number of quarantined pages.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.quarantine.len()
    }

    /// Retire a frame's tag after its page returned to plaintext: the
    /// slot is zeroed on-SoC (when its page is resident — a spilled
    /// page's slot is simply unmapped, since any reuse overwrites it
    /// before any read) and recycled. No-op for untagged frames.
    ///
    /// # Errors
    ///
    /// Propagates SoC write errors.
    pub fn retire_tag(&mut self, soc: &mut Soc, frame: u64) -> Result<(), SentryError> {
        if let Some(slot) = self.slots.remove(&frame) {
            let idx = Self::page_index(slot);
            if matches!(self.tag_pages[idx].state, TagPageState::Resident(_)) {
                soc.mem_write(self.slot_addr(slot), &[0u8; TAG_BYTES])?;
            }
            self.tag_pages[idx].live = self.tag_pages[idx].live.saturating_sub(1);
            self.free_slots.push(slot);
            self.stats.tags_retired += 1;
        }
        Ok(())
    }

    /// Whether a tag is currently stored for `frame`.
    #[must_use]
    pub fn has_tag(&self, frame: u64) -> bool {
        self.slots.contains_key(&frame)
    }

    /// The on-SoC address of `frame`'s stored tag, if one exists and
    /// its page is currently resident. Exposed so the tamper tests can
    /// flip bits *inside the tag store itself* and prove the mismatch
    /// is caught from either side.
    #[must_use]
    pub fn tag_slot_addr(&self, frame: u64) -> Option<u64> {
        self.slots.get(&frame).and_then(|&slot| {
            match self.tag_pages[Self::page_index(slot)].state {
                TagPageState::Resident(_) => Some(self.slot_addr(slot)),
                _ => None,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::{Platform, SocConfig};

    fn soc() -> Soc {
        Soc::new(SocConfig::new(Platform::Tegra3).with_dram_size(8 << 20))
    }

    fn plane_and_store(backend: OnSocBackend) -> (IntegrityPlane, OnSocStore, Soc) {
        let mut soc = soc();
        let store = OnSocStore::new(backend, &mut soc).unwrap();
        let plane = IntegrityPlane::new(IntegrityConfig::default(), backend, &[7u8; 16]).unwrap();
        (plane, store, soc)
    }

    fn dram_frame(soc: &Soc, index: u64) -> u64 {
        let _ = soc;
        sentry_soc::addr::DRAM_BASE + index * PAGE_SIZE
    }

    #[test]
    fn store_verify_retire_roundtrip() {
        let (mut plane, mut store, mut soc) = plane_and_store(OnSocBackend::Iram);
        let frame = dram_frame(&soc, 3);
        let iv = [9u8; 16];
        let mut page = vec![0xABu8; PAGE_SIZE as usize];
        soc.mem_write(frame, &page).unwrap();
        plane
            .store_tags(&mut soc, &mut store, &[(frame, iv)], &page)
            .unwrap();
        assert!(plane.has_tag(frame));
        assert_eq!(
            plane
                .verify_one(&mut soc, &mut store, frame, &iv, &mut page)
                .unwrap(),
            VerifyOutcome::Ok
        );
        plane.retire_tag(&mut soc, frame).unwrap();
        assert!(!plane.has_tag(frame));
        assert_eq!(plane.stats.tags_stored, 1);
        assert_eq!(plane.stats.tags_retired, 1);
    }

    #[test]
    fn tampered_page_fails_and_quarantines() {
        let (mut plane, mut store, mut soc) = plane_and_store(OnSocBackend::Iram);
        let frame = dram_frame(&soc, 1);
        let iv = [3u8; 16];
        let mut page = vec![0x5Au8; PAGE_SIZE as usize];
        soc.mem_write(frame, &page).unwrap();
        plane
            .store_tags(&mut soc, &mut store, &[(frame, iv)], &page)
            .unwrap();
        // Tamper one bit in DRAM; re-reads keep seeing the tampered
        // byte, so the bounded retries cannot heal it.
        page[100] ^= 0x04;
        soc.mem_write(frame, &page).unwrap();
        let outcome = plane
            .verify_one(&mut soc, &mut store, frame, &iv, &mut page)
            .unwrap();
        let VerifyOutcome::Mismatch { expected, got } = outcome else {
            panic!("tamper not detected: {outcome:?}");
        };
        let err = plane.quarantine(QuarantinedPage {
            pid: 1,
            vpn: 0,
            frame,
            epoch: 1,
            tag_expected: expected,
            tag_got: got,
        });
        assert!(err.is_integrity_violation());
        assert!(plane.is_quarantined(frame));
        assert_eq!(plane.quarantined_count(), 1);
        assert_eq!(plane.stats.violations, 1);
        assert!(plane.stats.verify.attempts >= 1);
        assert_eq!(plane.stats.verify.exhausted, 1, "tamper never heals");
        assert!(plane.violation_for(frame).is_some());
    }

    #[test]
    fn stale_epoch_iv_fails_even_with_identical_ciphertext() {
        let (mut plane, mut store, mut soc) = plane_and_store(OnSocBackend::Iram);
        let frame = dram_frame(&soc, 2);
        let mut page = vec![0xEEu8; PAGE_SIZE as usize];
        soc.mem_write(frame, &page).unwrap();
        let old_iv = crate::encdram::page_iv(1, 0, 1);
        let new_iv = crate::encdram::page_iv(1, 0, 2);
        plane
            .store_tags(&mut soc, &mut store, &[(frame, new_iv)], &page)
            .unwrap();
        // Same bytes, stale epoch in the tweak: the tag cannot match.
        assert!(matches!(
            plane
                .verify_one(&mut soc, &mut store, frame, &old_iv, &mut page)
                .unwrap(),
            VerifyOutcome::Mismatch { .. }
        ));
    }

    #[test]
    fn tag_store_grows_and_recycles_slots_iram() {
        let (mut plane, mut store, mut soc) = plane_and_store(OnSocBackend::Iram);
        let page = vec![1u8; PAGE_SIZE as usize];
        for i in 0..(TAGS_PER_PAGE + 2) {
            let frame = dram_frame(&soc, i);
            soc.mem_write(frame, &page).unwrap();
            plane
                .store_tags(&mut soc, &mut store, &[(frame, [0u8; 16])], &page)
                .unwrap();
        }
        assert_eq!(plane.tag_store_pages(), 2, "513th tag needs a second page");
        let f0 = dram_frame(&soc, 0);
        plane.retire_tag(&mut soc, f0).unwrap();
        let fresh = dram_frame(&soc, 999);
        soc.mem_write(fresh, &page).unwrap();
        plane
            .store_tags(&mut soc, &mut store, &[(fresh, [0u8; 16])], &page)
            .unwrap();
        assert_eq!(plane.tag_store_pages(), 2, "retired slot was recycled");
    }

    #[test]
    fn locked_l2_backend_places_tags_in_iram_after_the_journal() {
        let backend = OnSocBackend::LockedL2 { max_ways: 2 };
        let (mut plane, mut store, mut soc) = plane_and_store(backend);
        let frame = dram_frame(&soc, 0);
        let page = vec![2u8; PAGE_SIZE as usize];
        soc.mem_write(frame, &page).unwrap();
        plane
            .store_tags(&mut soc, &mut store, &[(frame, [0u8; 16])], &page)
            .unwrap();
        let addr = plane.tag_slot_addr(frame).unwrap();
        assert!(addr >= IRAM_BASE + IRAM_FIRMWARE_RESERVED + PAGE_SIZE);
        assert!(addr < IRAM_BASE + IRAM_SIZE);
    }

    #[test]
    fn cold_tag_pages_spill_and_restore_byte_identically() {
        let (mut plane, mut store, mut soc) = plane_and_store(OnSocBackend::Iram);
        let page = vec![1u8; PAGE_SIZE as usize];
        let mut frames = Vec::new();
        for i in 0..(TAGS_PER_PAGE + 2) {
            let frame = dram_frame(&soc, i);
            soc.mem_write(frame, &page).unwrap();
            plane
                .store_tags(&mut soc, &mut store, &[(frame, [0u8; 16])], &page)
                .unwrap();
            frames.push(frame);
        }
        assert_eq!(plane.resident_tag_pages(), 2);
        let before = store.in_use_bytes();
        assert!(plane.shed_cold_page(&mut soc, &mut store).unwrap());
        assert_eq!(plane.spilled_pages(), 1);
        assert_eq!(store.in_use_bytes(), before - PAGE_SIZE, "page returned");
        // Touching a tag on the spilled page restores and verifies it.
        let mut buf = page.clone();
        assert_eq!(
            plane
                .verify_one(&mut soc, &mut store, frames[0], &[0u8; 16], &mut buf)
                .unwrap(),
            VerifyOutcome::Ok
        );
        assert_eq!(plane.spilled_pages(), 0);
        assert_eq!(store.pressure().stats.spills, 1);
        assert_eq!(store.pressure().stats.spill_restores, 1);
    }

    #[test]
    fn release_frames_reaps_emptied_tag_pages() {
        let (mut plane, mut store, mut soc) = plane_and_store(OnSocBackend::Iram);
        let page = vec![3u8; PAGE_SIZE as usize];
        let mut frames = Vec::new();
        for i in 0..(TAGS_PER_PAGE + 2) {
            let frame = dram_frame(&soc, i);
            soc.mem_write(frame, &page).unwrap();
            plane
                .store_tags(&mut soc, &mut store, &[(frame, [0u8; 16])], &page)
                .unwrap();
            frames.push(frame);
        }
        let held = store.in_use_bytes();
        assert_eq!(plane.resident_tag_pages(), 2);
        let reclaimed = plane.release_frames(&mut soc, &mut store, &frames).unwrap();
        assert_eq!(reclaimed, 2, "both emptied pages return to the store");
        assert_eq!(plane.resident_tag_pages(), 0);
        assert_eq!(store.in_use_bytes(), held - 2 * PAGE_SIZE);
        assert_eq!(store.pressure().stats.reclaimed_pages, 2);
        // The store keeps working after the reap.
        let fresh = dram_frame(&soc, 500);
        soc.mem_write(fresh, &page).unwrap();
        plane
            .store_tags(&mut soc, &mut store, &[(fresh, [0u8; 16])], &page)
            .unwrap();
        assert!(plane.has_tag(fresh));
    }

    #[test]
    fn disabled_plane_is_inert() {
        let mut soc = soc();
        let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
        let mut plane =
            IntegrityPlane::new(IntegrityConfig::disabled(), OnSocBackend::Iram, &[0u8; 16])
                .unwrap();
        assert!(!plane.enabled());
        let frame = dram_frame(&soc, 0);
        let mut page = vec![0u8; PAGE_SIZE as usize];
        plane
            .store_tags(&mut soc, &mut store, &[(frame, [0u8; 16])], &page)
            .unwrap();
        assert!(!plane.has_tag(frame));
        assert_eq!(
            plane
                .verify_one(&mut soc, &mut store, frame, &[0u8; 16], &mut page)
                .unwrap(),
            VerifyOutcome::Ok
        );
        assert_eq!(plane.stats, IntegrityStats::default());
    }
}
