//! Health governor: watchdog deadlines, bounded retry/backoff, and
//! circuit-breaker degraded modes for flaky accelerator and storage.
//!
//! The governor itself lives in [`sentry_crypto::health`] so that both
//! the kernel's dm-crypt read path and this crate's lifecycle engine can
//! own one without a dependency cycle; this module re-exports it under
//! the `sentry_core` namespace where the rest of the lifecycle API
//! lives.
//!
//! The core idea is the paper's Sealer argument run in reverse: because
//! the table-free bitsliced AES path is always available and leaks
//! nothing through DRAM, it is a *trustworthy software fallback* for
//! every hardware crypt engine. The governor makes switching to it a
//! deterministic state machine rather than an ad-hoc error path:
//!
//! - every accelerator wait carries a **watchdog deadline** derived from
//!   the op's own modeled duration (`duration × margin`, floored);
//! - a timed-out op is **abandoned**: the engine is reset, the DMA
//!   bounce window is zeroized, and the work re-runs on the CPU path;
//! - repeated failures inside a sliding window **trip a circuit
//!   breaker** that routes all dispatch to the CPU path (`Open`);
//! - after a cool-down the breaker admits **half-open probes**, and a
//!   run of probe successes closes it again;
//! - transient storage faults get **bounded retries with exponential
//!   sim-clock backoff** instead of either hanging or surfacing raw.
//!
//! See `DESIGN.md` ("Health governor & degraded modes") for the state
//! diagram and threshold derivations.

pub use sentry_crypto::health::{
    FailureKind, HealthConfig, HealthGovernor, HealthState, HealthStats, RetryStats,
};
