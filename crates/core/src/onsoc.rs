//! The on-SoC storage manager: iRAM pages and locked L2 cache ways.
//!
//! This is §4 of the paper as executable code. Pages handed out by
//! [`OnSocStore`] are physically on the SoC:
//!
//! * **iRAM pages** come from the 192 KiB above the firmware-reserved
//!   region; on first use the whole range is registered with TrustZone
//!   as DMA-denied, because "iRAM can only be protected from DMA attacks
//!   when software in the TrustZone takes explicit steps to protect it"
//!   (§4.4).
//! * **Locked-way pages** are addresses in a reserved DRAM *window* whose
//!   cache lines are pinned in a locked way. Locking follows §4.5's
//!   four-step pseudocode (flush; enable one way; warm the window;
//!   re-enable the remaining ways), and every lock updates the OS-side
//!   flush way-mask so maintenance flushes spare the locked ways. The
//!   DRAM behind the window never receives the pinned lines — DMA and
//!   cold boot see only stale zeroes.

use crate::config::OnSocBackend;
use crate::error::SentryError;
use crate::pressure::{PressureConfig, PressureLevel, PressureTracker};
use sentry_kernel::layout::{LOCKED_WINDOW_BASE, LOCKED_WINDOW_SIZE};
use sentry_soc::addr::{IRAM_BASE, IRAM_FIRMWARE_RESERVED, IRAM_SIZE, PAGE_SIZE};
use sentry_soc::cache::{ALL_WAYS, WAY_BYTES};
use sentry_soc::trustzone::ProtectedRange;
use sentry_soc::Soc;

/// Pages per 128 KiB locked way.
pub const PAGES_PER_WAY: u64 = WAY_BYTES as u64 / PAGE_SIZE;

/// Usable iRAM pages (256 KiB minus the 64 KiB firmware reservation).
pub const IRAM_PAGES: u64 = (IRAM_SIZE - IRAM_FIRMWARE_RESERVED) / PAGE_SIZE;

#[derive(Debug)]
struct LockedWay {
    window: u64,
}

/// Allocates 4 KiB on-SoC pages from iRAM or locked L2 ways.
#[derive(Debug)]
pub struct OnSocStore {
    backend: OnSocBackend,
    free: Vec<u64>,
    iram_next: u64,
    locked: Vec<LockedWay>,
    locked_mask: u8,
    dma_protected: bool,
    /// On-SoC bytes consumers claimed *outside* `alloc_page` (the
    /// locked-L2 backend's journal page and fixed iRAM tag pages),
    /// charged via [`OnSocStore::charge_external`] so the pressure
    /// tracker sees every scarce byte.
    external_bytes: u64,
    /// The pressure governor over this store's bytes.
    pressure: PressureTracker,
}

impl OnSocStore {
    /// Create a store for `backend` with the default pressure governor.
    /// For iRAM, registers the usable range as DMA-protected via
    /// TrustZone.
    ///
    /// # Errors
    ///
    /// Propagates SoC errors from the TrustZone programming.
    pub fn new(backend: OnSocBackend, soc: &mut Soc) -> Result<Self, SentryError> {
        OnSocStore::with_pressure(backend, PressureConfig::default(), soc)
    }

    /// Create a store for `backend` governed by `pressure`.
    ///
    /// # Errors
    ///
    /// Propagates SoC errors from the TrustZone programming.
    pub fn with_pressure(
        backend: OnSocBackend,
        pressure: PressureConfig,
        soc: &mut Soc,
    ) -> Result<Self, SentryError> {
        let mut store = OnSocStore {
            backend,
            free: Vec::new(),
            iram_next: IRAM_BASE + IRAM_FIRMWARE_RESERVED,
            locked: Vec::new(),
            locked_mask: 0,
            dma_protected: false,
            external_bytes: 0,
            pressure: PressureTracker::new(pressure, Self::capacity_bytes(backend)),
        };
        if backend == OnSocBackend::Iram {
            store.protect_iram(soc);
        }
        Ok(store)
    }

    /// Physical capacity of the scarce bytes this store governs: the
    /// usable iRAM range (which also hosts the journal and, in locked-L2
    /// mode, the fixed tag pages) plus the way budget when cache locking
    /// is configured.
    #[must_use]
    pub fn capacity_bytes(backend: OnSocBackend) -> u64 {
        let iram = IRAM_SIZE - IRAM_FIRMWARE_RESERVED;
        match backend {
            OnSocBackend::Iram => iram,
            OnSocBackend::LockedL2 { max_ways } => iram + max_ways as u64 * WAY_BYTES as u64,
        }
    }

    /// The configured backend.
    #[must_use]
    pub fn backend(&self) -> OnSocBackend {
        self.backend
    }

    /// The bitmask of currently locked cache ways.
    #[must_use]
    pub fn locked_mask(&self) -> u8 {
        self.locked_mask
    }

    /// Total on-SoC bytes currently claimed by this store.
    #[must_use]
    pub fn claimed_bytes(&self) -> u64 {
        match self.backend {
            OnSocBackend::Iram => self.iram_next - (IRAM_BASE + IRAM_FIRMWARE_RESERVED),
            OnSocBackend::LockedL2 { .. } => self.locked.len() as u64 * WAY_BYTES as u64,
        }
    }

    /// On-SoC bytes actually in use: claimed bytes minus the free list,
    /// plus externally charged pages (journal, fixed tag pages).
    #[must_use]
    pub fn in_use_bytes(&self) -> u64 {
        self.claimed_bytes() - self.free.len() as u64 * PAGE_SIZE + self.external_bytes
    }

    /// The pressure governor's read side.
    #[must_use]
    pub fn pressure(&self) -> &PressureTracker {
        &self.pressure
    }

    /// The pressure governor's write side (budget overrides, shed/spill
    /// counters).
    pub fn pressure_mut(&mut self) -> &mut PressureTracker {
        &mut self.pressure
    }

    /// Current watermark level.
    #[must_use]
    pub fn pressure_level(&self) -> PressureLevel {
        self.pressure.level()
    }

    /// Re-derive occupancy and watermark level. Called after every
    /// alloc/free/external charge; also the hook for budget changes.
    pub fn refresh_pressure(&mut self) {
        let in_use = self.in_use_bytes();
        self.pressure.note_usage(in_use);
    }

    /// Charge one externally claimed on-SoC page (locked-L2 journal or
    /// fixed tag page) against the budget.
    ///
    /// # Errors
    ///
    /// [`SentryError::OnSocExhausted`] when the charge would exceed the
    /// effective budget.
    pub fn charge_external(&mut self, bytes: u64) -> Result<(), SentryError> {
        if self.pressure.would_deny(self.in_use_bytes() + bytes) {
            self.pressure.note_denied();
            return Err(SentryError::OnSocExhausted);
        }
        self.external_bytes += bytes;
        self.refresh_pressure();
        Ok(())
    }

    /// Return externally charged bytes to the budget.
    pub fn release_external(&mut self, bytes: u64) {
        self.external_bytes = self.external_bytes.saturating_sub(bytes);
        self.refresh_pressure();
    }

    fn protect_iram(&mut self, soc: &mut Soc) {
        if self.dma_protected {
            return;
        }
        soc.in_secure_world(|soc| {
            let ok = soc.trustzone.protect(ProtectedRange {
                range: IRAM_BASE + IRAM_FIRMWARE_RESERVED..IRAM_BASE + IRAM_SIZE,
                deny_dma: true,
                deny_normal_cpu: false,
            });
            debug_assert!(ok, "secure world protect cannot fail");
        });
        self.dma_protected = true;
    }

    /// Allocate one on-SoC page, locking a fresh cache way if needed.
    ///
    /// # Errors
    ///
    /// [`SentryError::OnSocExhausted`] when iRAM (or the configured way
    /// budget) is spent; SoC errors when cache locking is unavailable.
    pub fn alloc_page(&mut self, soc: &mut Soc) -> Result<u64, SentryError> {
        // Budget gate first: a shrunken budget (fleet chaos, tests)
        // denies growth even while free pages or unlocked ways remain,
        // so relief always comes from freeing, shedding, or spilling.
        if self.pressure.would_deny(self.in_use_bytes() + PAGE_SIZE) {
            self.pressure.note_denied();
            return Err(SentryError::OnSocExhausted);
        }
        if let Some(page) = self.free.pop() {
            self.refresh_pressure();
            return Ok(page);
        }
        let page = match self.backend {
            OnSocBackend::Iram => {
                if self.iram_next + PAGE_SIZE <= IRAM_BASE + IRAM_SIZE {
                    let page = self.iram_next;
                    self.iram_next += PAGE_SIZE;
                    page
                } else {
                    return Err(SentryError::OnSocExhausted);
                }
            }
            OnSocBackend::LockedL2 { max_ways } => {
                if self.locked.len() >= max_ways {
                    return Err(SentryError::OnSocExhausted);
                }
                let way = self.locked.len();
                self.lock_way(soc, way)?;
                // The new way's pages are all free; hand out the first.
                let window = self.locked.last().expect("just locked").window;
                for i in (1..PAGES_PER_WAY).rev() {
                    self.free.push(window + i * PAGE_SIZE);
                }
                window
            }
        };
        self.refresh_pressure();
        Ok(page)
    }

    /// Lock cache way `way` per the §4.5 pseudocode.
    fn lock_way(&mut self, soc: &mut Soc, way: usize) -> Result<(), SentryError> {
        let window = LOCKED_WINDOW_BASE + way as u64 * WAY_BYTES as u64;
        assert!(
            window + WAY_BYTES as u64 <= LOCKED_WINDOW_BASE + LOCKED_WINDOW_SIZE,
            "locked window region exhausted"
        );

        // 1. flush entire cache (the masked flush spares ways locked
        //    earlier).
        soc.cache_maintenance_flush();
        // 2. enable 1 way: all new allocations land in `way`.
        soc.in_secure_world(|soc| soc.set_cache_alloc_mask(1 << way))?;
        // 3. warm the way with data (0xFF over the whole window).
        let warm = [0xFFu8; PAGE_SIZE as usize];
        for page in 0..PAGES_PER_WAY {
            soc.mem_write(window + page * PAGE_SIZE, &warm)?;
        }
        // 4. enable the remaining (unlocked) ways; `way` is now
        //    "disabled" — its lines stay resident and serve hits, but no
        //    allocation or eviction touches it.
        self.locked_mask |= 1 << way;
        let open = ALL_WAYS & !self.locked_mask;
        soc.in_secure_world(|soc| soc.set_cache_alloc_mask(open))?;
        // ...and exclude it from maintenance flushes (the Linux-side
        // mask change of §4.5).
        soc.set_cache_flush_mask(open);

        self.locked.push(LockedWay { window });
        Ok(())
    }

    /// Return a page to the store, wiping it first.
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the wipe.
    pub fn free_page(&mut self, soc: &mut Soc, page: u64) -> Result<(), SentryError> {
        soc.mem_write(page, &[0u8; PAGE_SIZE as usize])?;
        self.free.push(page);
        self.refresh_pressure();
        Ok(())
    }

    /// Unlock every locked way: erase the sensitive data (write 0xFF, as
    /// in §4.5's unlock pseudocode), then re-enable the ways for
    /// allocation and flushing.
    ///
    /// # Errors
    ///
    /// Propagates SoC errors.
    pub fn unlock_all(&mut self, soc: &mut Soc) -> Result<(), SentryError> {
        let erase = [0xFFu8; PAGE_SIZE as usize];
        for lw in &self.locked {
            for page in 0..PAGES_PER_WAY {
                soc.mem_write(lw.window + page * PAGE_SIZE, &erase)?;
            }
        }
        self.locked.clear();
        self.locked_mask = 0;
        self.free.clear();
        soc.in_secure_world(|soc| soc.set_cache_alloc_mask(ALL_WAYS))?;
        soc.set_cache_flush_mask(ALL_WAYS);
        self.refresh_pressure();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::addr::DRAM_BASE;

    #[test]
    fn iram_pages_are_in_iram_and_dma_protected() {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
        let page = store.alloc_page(&mut soc).unwrap();
        assert!(page >= IRAM_BASE + IRAM_FIRMWARE_RESERVED);
        assert!(page + PAGE_SIZE <= IRAM_BASE + IRAM_SIZE);
        // DMA to the allocated page is denied.
        assert!(soc.dma_read(0, page, 64).is_err());
        // CPU access still works from the normal world.
        soc.mem_write(page, b"key material").unwrap();
    }

    #[test]
    fn iram_capacity_is_48_pages() {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
        let mut pages = Vec::new();
        while let Ok(p) = store.alloc_page(&mut soc) {
            pages.push(p);
        }
        assert_eq!(pages.len() as u64, IRAM_PAGES);
        assert_eq!(IRAM_PAGES, 48);
        // Freed pages can be re-allocated.
        store.free_page(&mut soc, pages[0]).unwrap();
        assert_eq!(store.alloc_page(&mut soc).unwrap(), pages[0]);
    }

    #[test]
    fn budget_override_denies_and_relief_restores() {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
        let page = store.alloc_page(&mut soc).unwrap();
        assert_eq!(store.in_use_bytes(), PAGE_SIZE);
        store.pressure_mut().set_budget_override(Some(PAGE_SIZE));
        store.refresh_pressure();
        assert!(matches!(
            store.alloc_page(&mut soc),
            Err(SentryError::OnSocExhausted)
        ));
        assert_eq!(store.pressure().stats.denied, 1);
        // Relief: freeing the page brings usage back under budget.
        store.free_page(&mut soc, page).unwrap();
        assert_eq!(store.alloc_page(&mut soc).unwrap(), page);
    }

    #[test]
    fn external_charges_count_against_the_budget() {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc).unwrap();
        store.charge_external(PAGE_SIZE).unwrap();
        assert_eq!(store.in_use_bytes(), PAGE_SIZE);
        store.pressure_mut().set_budget_override(Some(PAGE_SIZE));
        store.refresh_pressure();
        assert!(matches!(
            store.charge_external(PAGE_SIZE),
            Err(SentryError::OnSocExhausted)
        ));
        store.release_external(PAGE_SIZE);
        assert_eq!(store.in_use_bytes(), 0);
    }

    #[test]
    fn locked_way_pages_pin_in_cache_and_never_reach_dram() {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 2 }, &mut soc).unwrap();
        let page = store.alloc_page(&mut soc).unwrap();
        soc.mem_write(page, b"SECRETKEYMATERIAL").unwrap();

        // The line is resident in way 0.
        assert_eq!(soc.cache.lookup_way(page), Some(0));
        // Thrash the cache with other traffic plus a maintenance flush.
        for i in 0..20_000u64 {
            soc.mem_write(DRAM_BASE + (40 << 20) + i * 64, &[i as u8])
                .unwrap();
        }
        soc.cache_maintenance_flush();
        assert_eq!(soc.cache.lookup_way(page), Some(0), "still pinned");
        let mut buf = [0u8; 17];
        soc.mem_read(page, &mut buf).unwrap();
        assert_eq!(&buf, b"SECRETKEYMATERIAL");
        // Raw DRAM behind the window never saw the secret.
        let mut raw = [0u8; 17];
        soc.dram.read(page, &mut raw);
        assert_ne!(&raw, b"SECRETKEYMATERIAL");
        // And DMA (which bypasses the cache) sees stale bytes too.
        let via_dma = soc.dma_read(0, page, 17).unwrap();
        assert_ne!(via_dma.as_slice(), b"SECRETKEYMATERIAL");
    }

    #[test]
    fn second_way_locks_on_demand_and_budget_is_enforced() {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 2 }, &mut soc).unwrap();
        let mut pages = Vec::new();
        for _ in 0..PAGES_PER_WAY {
            pages.push(store.alloc_page(&mut soc).unwrap());
        }
        assert_eq!(store.locked_mask(), 0b0000_0001);
        pages.push(store.alloc_page(&mut soc).unwrap());
        assert_eq!(store.locked_mask(), 0b0000_0011, "second way locked");
        for _ in 0..PAGES_PER_WAY - 1 {
            pages.push(store.alloc_page(&mut soc).unwrap());
        }
        assert!(matches!(
            store.alloc_page(&mut soc),
            Err(SentryError::OnSocExhausted)
        ));
        // All pages distinct.
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pages.len());
    }

    #[test]
    fn unlock_all_erases_and_restores_masks() {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc).unwrap();
        let page = store.alloc_page(&mut soc).unwrap();
        soc.mem_write(page, b"volatile-key").unwrap();
        store.unlock_all(&mut soc).unwrap();
        assert_eq!(store.locked_mask(), 0);
        assert_eq!(soc.cache.alloc_mask(), ALL_WAYS);
        // The secret was erased (0xFF) before unlocking; whatever is in
        // cache or DRAM now, it is not the secret.
        let mut buf = [0u8; 12];
        soc.mem_read(page, &mut buf).unwrap();
        assert_ne!(&buf, b"volatile-key");
    }

    #[test]
    fn cache_locking_unavailable_on_nexus() {
        let mut soc = Soc::nexus4_small();
        let mut store = OnSocStore::new(OnSocBackend::LockedL2 { max_ways: 1 }, &mut soc).unwrap();
        assert!(matches!(
            store.alloc_page(&mut soc),
            Err(SentryError::Soc(
                sentry_soc::SocError::CacheLockingUnavailable
            ))
        ));
    }
}
