//! The device-level lock-screen agent: PIN unlock, deep lock, and
//! suspend/resume cycles.
//!
//! §1 of the paper frames the setting: smartphones are rarely powered
//! off; they sleep with RAM refreshed and offer *PIN-unlock*, entering a
//! *deep-lock* state after a few wrong PINs to stop brute force. Sentry
//! hooks the screen-lock transitions ("Secure On Suspend", §7):
//! encrypt-on-lock when the screen turns off, decrypt-on-demand after a
//! successful PIN entry.
//!
//! [`DeviceAgent`] models that surface so experiments can drive whole
//! days of realistic use (the paper's 150 unlock cycles/day) through the
//! real Sentry machinery and measure the aggregate cost.

use crate::error::SentryError;
use crate::lifecycle::{LockReport, Sentry, UnlockReport};
use sentry_energy::{AesVariant, EnergyModel};

/// Screen/lock state of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenState {
    /// Screen on, user authenticated.
    Unlocked,
    /// Screen locked; a correct PIN unlocks.
    Locked,
    /// Too many wrong PINs: only a factory reset recovers the device
    /// (which wipes user data — the paper's footnote 1).
    DeepLocked,
}

/// Outcome of a PIN attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum UnlockOutcome {
    /// Correct PIN; the device unlocked (report attached).
    Unlocked(UnlockReport),
    /// Wrong PIN; `remaining` attempts before deep lock.
    WrongPin {
        /// Attempts left before deep lock.
        remaining: u32,
    },
    /// The device is deep-locked; PIN entry is refused.
    DeepLocked,
}

/// One simulated day of usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayReport {
    /// Lock/unlock cycles performed.
    pub cycles: u32,
    /// Total bytes encrypted across all locks.
    pub bytes_encrypted: u64,
    /// Total bytes decrypted across all unlocks (eager + on demand).
    pub bytes_decrypted: u64,
    /// Total energy spent on Sentry's cryptography, joules.
    pub joules: f64,
    /// Fraction of the battery consumed.
    pub battery_fraction: f64,
}

/// The lock-screen agent wrapping a [`Sentry`] system.
#[derive(Debug)]
pub struct DeviceAgent {
    /// The underlying Sentry system.
    pub sentry: Sentry,
    pin: String,
    failed_attempts: u32,
    max_attempts: u32,
    screen: ScreenState,
}

impl DeviceAgent {
    /// Wrap `sentry` with a PIN and the standard 5-attempt deep-lock
    /// threshold.
    #[must_use]
    pub fn new(sentry: Sentry, pin: impl Into<String>) -> Self {
        DeviceAgent {
            sentry,
            pin: pin.into(),
            failed_attempts: 0,
            max_attempts: 5,
            screen: ScreenState::Unlocked,
        }
    }

    /// Current screen state.
    #[must_use]
    pub fn screen(&self) -> ScreenState {
        self.screen
    }

    /// The screen turns off (idle timeout or power button): Sentry
    /// encrypts sensitive memory and the device suspends.
    ///
    /// # Errors
    ///
    /// Propagates Sentry errors; locking a deep-locked or already
    /// locked device is a no-op returning a default report.
    pub fn lock_screen(&mut self) -> Result<LockReport, SentryError> {
        if self.screen != ScreenState::Unlocked {
            return Ok(LockReport::default());
        }
        let report = self.sentry.on_lock()?;
        self.screen = ScreenState::Locked;
        Ok(report)
    }

    /// A PIN entry on the lock screen.
    ///
    /// # Errors
    ///
    /// Propagates Sentry errors from the unlock path.
    pub fn try_unlock(&mut self, pin: &str) -> Result<UnlockOutcome, SentryError> {
        match self.screen {
            ScreenState::DeepLocked => Ok(UnlockOutcome::DeepLocked),
            ScreenState::Unlocked => Ok(UnlockOutcome::Unlocked(UnlockReport::default())),
            ScreenState::Locked => {
                if pin == self.pin {
                    let report = self.sentry.on_unlock()?;
                    self.failed_attempts = 0;
                    self.screen = ScreenState::Unlocked;
                    Ok(UnlockOutcome::Unlocked(report))
                } else {
                    self.failed_attempts += 1;
                    if self.failed_attempts >= self.max_attempts {
                        self.screen = ScreenState::DeepLocked;
                        Ok(UnlockOutcome::DeepLocked)
                    } else {
                        Ok(UnlockOutcome::WrongPin {
                            remaining: self.max_attempts - self.failed_attempts,
                        })
                    }
                }
            }
        }
    }

    /// Factory-reset a deep-locked device: all user memory is wiped
    /// (the deep-lock escape hatch; "the unlocking process requires
    /// device reflashing which wipes all user data", §3.1 fn. 1).
    ///
    /// # Errors
    ///
    /// Propagates SoC errors from the reflash.
    pub fn factory_reset(&mut self) -> Result<(), SentryError> {
        self.sentry
            .kernel
            .soc
            .power_cycle(sentry_soc::dram::PowerEvent::ReflashTap)?;
        // Wipe the user partition: drop every process's address space.
        let pids: Vec<u32> = self.sentry.kernel.procs.keys().copied().collect();
        for pid in pids {
            self.sentry.kernel.procs.remove(&pid);
        }
        self.failed_attempts = 0;
        self.screen = ScreenState::Unlocked;
        Ok(())
    }

    /// Simulate a day: `cycles` lock/unlock pairs where each unlock is
    /// followed by touching `resume_vpns` of process `pid` (the user
    /// glancing at their app). Returns the aggregate cost.
    ///
    /// # Errors
    ///
    /// Propagates Sentry errors.
    pub fn simulate_day(
        &mut self,
        pid: u32,
        resume_vpns: &[u64],
        cycles: u32,
    ) -> Result<DayReport, SentryError> {
        let energy = EnergyModel::nexus4();
        let mut bytes_encrypted = 0u64;
        let mut bytes_decrypted = 0u64;
        for _ in 0..cycles {
            let lock = self.lock_screen()?;
            bytes_encrypted += lock.bytes_encrypted;
            let before = self.sentry.stats.ondemand_bytes;
            match self.try_unlock(&self.pin.clone())? {
                UnlockOutcome::Unlocked(report) => {
                    self.sentry.touch_pages(pid, resume_vpns)?;
                    bytes_decrypted +=
                        report.eager_bytes_decrypted + (self.sentry.stats.ondemand_bytes - before);
                }
                other => unreachable!("correct PIN must unlock, got {other:?}"),
            }
        }
        let joules = energy.crypt_joules(AesVariant::CryptoApi, bytes_encrypted)
            + energy.crypt_joules(AesVariant::CryptoApi, bytes_decrypted);
        Ok(DayReport {
            cycles,
            bytes_encrypted,
            bytes_decrypted,
            joules,
            battery_fraction: joules / energy.battery_joules,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SentryConfig;
    use sentry_kernel::Kernel;
    use sentry_soc::addr::PAGE_SIZE;
    use sentry_soc::Soc;

    fn agent() -> (DeviceAgent, u32) {
        let kernel = Kernel::new(Soc::nexus4_small());
        let mut sentry = Sentry::new(kernel, SentryConfig::nexus4()).unwrap();
        let pid = sentry.kernel.spawn("banking-app");
        sentry.mark_sensitive(pid).unwrap();
        for vpn in 0..8u64 {
            sentry
                .write(pid, vpn * PAGE_SIZE, &[vpn as u8; PAGE_SIZE as usize])
                .unwrap();
        }
        (DeviceAgent::new(sentry, "4521"), pid)
    }

    #[test]
    fn correct_pin_unlocks_wrong_pin_counts_down() {
        let (mut agent, _) = agent();
        agent.lock_screen().unwrap();
        assert_eq!(agent.screen(), ScreenState::Locked);
        assert!(matches!(
            agent.try_unlock("0000").unwrap(),
            UnlockOutcome::WrongPin { remaining: 4 }
        ));
        assert!(matches!(
            agent.try_unlock("4521").unwrap(),
            UnlockOutcome::Unlocked(_)
        ));
        assert_eq!(agent.screen(), ScreenState::Unlocked);
    }

    #[test]
    fn five_wrong_pins_deep_lock_the_device() {
        let (mut agent, _) = agent();
        agent.lock_screen().unwrap();
        for _ in 0..4 {
            let out = agent.try_unlock("9999").unwrap();
            assert!(matches!(out, UnlockOutcome::WrongPin { .. }));
        }
        assert_eq!(agent.try_unlock("9999").unwrap(), UnlockOutcome::DeepLocked);
        // Even the correct PIN is refused now.
        assert_eq!(agent.try_unlock("4521").unwrap(), UnlockOutcome::DeepLocked);
        assert_eq!(agent.screen(), ScreenState::DeepLocked);
    }

    #[test]
    fn factory_reset_recovers_the_device_but_wipes_data() {
        let (mut agent, pid) = agent();
        agent.lock_screen().unwrap();
        for _ in 0..5 {
            let _ = agent.try_unlock("9999").unwrap();
        }
        agent.factory_reset().unwrap();
        assert_eq!(agent.screen(), ScreenState::Unlocked);
        assert!(agent.sentry.kernel.proc(pid).is_err(), "user data wiped");
    }

    #[test]
    fn memory_stays_ciphertext_while_pin_locked() {
        let (mut agent, _) = agent();
        agent.lock_screen().unwrap();
        agent.sentry.kernel.soc.cache_maintenance_flush();
        for (_addr, frame) in agent.sentry.kernel.soc.dram.iter_frames() {
            assert!(!frame.windows(64).any(|w| w == [3u8; 64]));
        }
    }

    #[test]
    fn a_day_of_150_cycles_costs_about_the_paper_headline() {
        // The paper: ~2% of battery per day at 150 unlocks to protect
        // one application. Our 8-page app is tiny, so scale-check the
        // rate instead: joules grow linearly in bytes cycled.
        let (mut agent, pid) = agent();
        let day = agent.simulate_day(pid, &[0, 1, 2], 150).unwrap();
        assert_eq!(day.cycles, 150);
        // Lazy decryption pays forward: pages never touched between
        // unlock and re-lock stay encrypted, so after the first full
        // lock (8 pages) each cycle re-encrypts only the 3 touched
        // pages — "Sentry saves energy and time in the case when users
        // unlock their phones, engage in just a few interactions, and
        // re-lock their phones" (§7).
        assert_eq!(day.bytes_encrypted, (8 + 149 * 3) * 4096);
        assert!(day.battery_fraction > 0.0 && day.battery_fraction < 0.01);
        // A Maps-sized app (48 MB lock / 38 MB unlock) would be ~1.9%:
        let energy = EnergyModel::nexus4();
        let maps_daily =
            energy.daily_battery_fraction(AesVariant::CryptoApi, 48 << 20, 38 << 20, 150);
        assert!((0.015..0.025).contains(&maps_daily));
    }

    #[test]
    fn locking_twice_is_idempotent() {
        let (mut agent, _) = agent();
        let first = agent.lock_screen().unwrap();
        assert!(first.bytes_encrypted > 0);
        let second = agent.lock_screen().unwrap();
        assert_eq!(second.bytes_encrypted, 0);
    }
}
