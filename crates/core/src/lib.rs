//! Sentry: protecting data on smartphones and tablets from memory
//! attacks.
//!
//! This crate is the reproduction's implementation of the paper's primary
//! contribution. Sentry keeps users' sensitive data off DRAM — where
//! cold-boot, bus-monitoring, and DMA attacks can read it — by combining
//! four mechanisms:
//!
//! 1. **On-SoC storage** ([`onsoc`]): an allocator over iRAM and over
//!    locked L2 cache ways, using the PL310 lock/unlock sequences of
//!    §4.5 (flush → enable one way → warm with data → re-enable the
//!    rest) and the patched flush paths that spare locked ways.
//! 2. **AES On SoC** ([`aes_onsoc`]): an AES whose entire state — key,
//!    round keys, round tables, S-boxes, input block — lives in on-SoC
//!    storage, with compute sections run under IRQ-disable + register-
//!    zeroing discipline (§6). Registered with the kernel Crypto API at
//!    high priority so dm-crypt and other legacy consumers pick it up
//!    transparently (§7).
//! 3. **Encrypted DRAM** ([`encdram`]): a page-fault-driven pager that
//!    keeps the memory pages of background applications encrypted in
//!    DRAM, decrypting them *in place* inside locked cache ways on
//!    page-in and re-encrypting on page-out (§5, Figure 1).
//! 4. **The lock/unlock lifecycle** ([`lifecycle`]): encrypt the memory
//!    of sensitive applications when the screen locks (after draining
//!    the freed-page zeroing thread), decrypt on demand as pages are
//!    touched after unlock, eagerly decrypt DMA regions, and skip pages
//!    shared with non-sensitive apps (§2, §7).
//!
//! Root keys ([`keys`]) never live in DRAM: the volatile key is
//! generated on-SoC at each boot, and the persistent key is derived from
//! the user password and the TrustZone-guarded hardware fuse.
//!
//! # Example
//!
//! ```
//! use sentry_core::{Sentry, SentryConfig};
//! use sentry_kernel::Kernel;
//! use sentry_soc::Soc;
//!
//! # fn main() -> Result<(), sentry_core::SentryError> {
//! let kernel = Kernel::new(Soc::tegra3_small());
//! let mut sentry = Sentry::new(kernel, SentryConfig::tegra3_locked_l2(2))?;
//! let app = sentry.kernel.spawn("mail");
//! sentry.mark_sensitive(app)?;
//! sentry.write(app, 0x1000, b"the user's mail spool")?;
//! sentry.on_lock()?;   // memory now ciphertext in DRAM
//! sentry.on_unlock()?; // decrypted on demand from here on
//! let mut buf = [0u8; 21];
//! sentry.read(app, 0x1000, &mut buf)?;
//! assert_eq!(&buf, b"the user's mail spool");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes_onsoc;
pub mod config;
pub mod device;
pub mod encdram;
pub mod error;
pub mod health;
pub mod integrity;
pub mod keys;
pub mod lifecycle;
pub mod onsoc;
pub mod pressure;
pub mod store;
pub mod txn;

pub use config::{IntegrityConfig, OnSocBackend, PageCipherMode, ParallelConfig, SentryConfig};
pub use device::{DeviceAgent, ScreenState, UnlockOutcome};
pub use error::SentryError;
pub use health::{FailureKind, HealthConfig, HealthGovernor, HealthState, HealthStats, RetryStats};
pub use integrity::{
    IntegrityPlane, IntegrityStats, QuarantinedPage, SpillAnchor, TagPageState, VerifyOutcome,
};
pub use lifecycle::{
    DeviceState, DeviceStats, LifecycleStats, ParallelStats, RecoveryReport, Sentry,
};
pub use pressure::{PressureConfig, PressureLevel, PressureStats, PressureTracker, SpillRegion};
pub use txn::{CommitTagger, JournalEntry, TxnJournal, TxnOp};
