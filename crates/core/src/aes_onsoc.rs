//! AES On SoC: the cipher engine whose state never leaves the SoC.
//!
//! §6 of the paper. The engine owns one on-SoC page holding the complete
//! AES state (as laid out by `sentry_crypto::AesStateLayout` — the
//! regenerated Table 4), and runs every encryption through a
//! [`crate::store::CachedSocStore`], so key schedule, round tables, and
//! the in-flight block physically reside in iRAM or a locked cache way.
//!
//! Two disciplines from §6.2 are enforced around each operation:
//!
//! * **IRQ discipline** — compute runs between
//!   `onsoc_disable_irq()`/`onsoc_enable_irq()`
//!   ([`sentry_soc::cpu::Cpu::begin_critical`]/
//!   [`sentry_soc::cpu::Cpu::end_critical`]), so a context switch can
//!   never spill live registers to the DRAM stack, and all registers are
//!   zeroed before interrupts come back;
//! * **call discipline** — no procedure handling sensitive state takes
//!   more than the four register-passed AAPCS arguments, asserted via
//!   [`sentry_soc::cpu::Cpu::pass_args`].
//!
//! # Timing
//!
//! The functional work runs through the simulated memory hierarchy (that
//! is where the security properties come from), but the *time* charged
//! is the calibrated per-block cost — the same formula as the generic
//! engine, with the state-access latency of the chosen backend. This is
//! what makes Figure 11's "AES On SoC adds <1% overhead" reproducible
//! rather than an artifact of simulator constants.

use crate::error::SentryError;
use crate::store::CachedSocStore;
use sentry_crypto::{BitslicedAes, PageCipherMode, TrackedAes, TrackedBitslicedAes};
use sentry_kernel::crypto_api::{CipherEngine, KeyResidency};
use sentry_kernel::KernelError;
use sentry_soc::Soc;

/// Registration priority — above the generic engine (100), so the
/// Crypto API transparently favours AES On SoC (§7).
pub const AES_ONSOC_PRIORITY: i32 = 300;

/// Which cipher implementation backs the on-SoC state page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnSocCipherBackend {
    /// The paper's table-driven AES: fast scalar rounds, but 2.5 KiB of
    /// lookup tables must live (access-protected) in the on-SoC page.
    #[default]
    TableDriven,
    /// The batched bitsliced AES: S-box as a boolean circuit, no tables
    /// at all, so the access-protected row of Table 4 drops to zero and
    /// the store-access trace is data-independent.
    BitslicedTableFree,
}

/// The keyed tracked context — one variant per backend.
enum TrackedCtx {
    Table(TrackedAes),
    Bitsliced(TrackedBitslicedAes),
}

/// The AES On SoC cipher engine.
///
/// # Data-path fidelity
///
/// The engine's *state placement* is always fully simulated: key
/// expansion writes the key, round keys, and tables through the on-SoC
/// store, so attack experiments observe exactly where every state byte
/// lives. For the *data path* (CBC over bulk pages) two modes exist:
///
/// * the default fast path computes with a register-resident AES context
///   (plain Rust values modelling CPU-register computation — nothing in
///   simulated memory) and charges the calibrated per-block cost. This
///   keeps the macrobenchmarks, which push hundreds of megabytes
///   through the engine, tractable.
/// * [`AesOnSocEngine::set_full_simulation`] routes every block's table
///   lookups and round-key reads through the simulated store instead —
///   ~50 simulated memory operations per byte. Security tests use it to
///   assert, e.g., that an entire encryption produces zero bus traffic.
///
/// Both modes produce identical ciphertext and identical simulated time.
pub struct AesOnSocEngine {
    state_base: u64,
    residency: KeyResidency,
    backend: OnSocCipherBackend,
    tracked: Option<TrackedCtx>,
    native: Option<sentry_crypto::Aes>,
    /// Batched backend sharing `native`'s schedule, built once at
    /// key-install time; drives the fast-path CBC decryption 16 blocks
    /// per kernel call.
    native_bits: Option<BitslicedAes>,
    /// Selected page cipher mode; all three are implemented on both the
    /// fast and the full-simulation data path.
    mode: PageCipherMode,
    full_sim: bool,
}

impl std::fmt::Debug for AesOnSocEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesOnSocEngine")
            .field("state_base", &format_args!("{:#x}", self.state_base))
            .field("residency", &self.residency)
            .field("backend", &self.backend)
            .field("keyed", &self.tracked.is_some())
            .finish()
    }
}

impl AesOnSocEngine {
    /// Create an engine whose state page is the on-SoC page at
    /// `state_base` (allocated from a [`crate::onsoc::OnSocStore`]),
    /// with the matching residency for reporting.
    #[must_use]
    pub fn new(state_base: u64, residency: KeyResidency) -> Self {
        Self::with_backend(state_base, residency, OnSocCipherBackend::default())
    }

    /// Like [`AesOnSocEngine::new`], but selecting the cipher backend for
    /// the on-SoC state page (see [`OnSocCipherBackend`]).
    #[must_use]
    pub fn with_backend(
        state_base: u64,
        residency: KeyResidency,
        backend: OnSocCipherBackend,
    ) -> Self {
        AesOnSocEngine {
            state_base,
            residency,
            backend,
            tracked: None,
            native: None,
            native_bits: None,
            mode: PageCipherMode::Cbc,
            full_sim: false,
        }
    }

    /// The cipher backend this engine was built with.
    #[must_use]
    pub fn backend(&self) -> OnSocCipherBackend {
        self.backend
    }

    /// Route every data-path state access through the simulated store
    /// (see the type-level docs). Slow; intended for security tests.
    pub fn set_full_simulation(&mut self, on: bool) {
        self.full_sim = on;
    }

    /// The physical address of the engine's state page.
    #[must_use]
    pub fn state_base(&self) -> u64 {
        self.state_base
    }

    /// Calibrated cost of CBC over `bytes`: per block, the AES
    /// arithmetic plus four state accesses at the backend's latency.
    fn calibrated_ns(&self, soc: &Soc, bytes: usize) -> u64 {
        let state_access = match self.residency {
            KeyResidency::Iram => soc.costs.iram_access_ns,
            _ => soc.costs.cache_hit_ns,
        };
        (bytes as u64 / 16) * (soc.costs.aes_block_compute_ns + 4 * state_access)
    }

    /// Run `f` (the sensitive compute) under the §6.2 disciplines,
    /// charging `calibrated_ns` of simulated time for the section.
    fn critical<T>(
        &self,
        soc: &mut Soc,
        calibrated_ns: u64,
        f: impl FnOnce(&TrackedCtx, &mut CachedSocStore<'_>) -> T,
    ) -> Result<T, KernelError> {
        let tracked = self.tracked.as_ref().ok_or(KernelError::NoKeyInstalled {
            engine: "aes-cbc-onsoc",
        })?;
        // Call discipline: the engine entry takes (state, iv, data, len)
        // — four register arguments, nothing on the stack.
        let entry_args = [0u32, 1, 2, 3];
        let spilled = soc.cpu.pass_args(&entry_args);
        debug_assert!(spilled.is_empty(), "no sensitive argument may spill");

        let was_enabled = soc.cpu.begin_critical();
        let t0 = soc.clock.now_ns();
        let out = {
            let mut store = CachedSocStore::new(soc, self.state_base);
            f(tracked, &mut store)
        };
        // Substitute the calibrated end-to-end cost for the per-access
        // simulation charges (see module docs).
        soc.clock.set_now_ns(t0 + calibrated_ns);
        soc.cpu.end_critical(was_enabled, calibrated_ns);
        Ok(out)
    }

    /// The fast data path: register-resident compute under the same
    /// IRQ/call disciplines and the same calibrated time charge.
    fn critical_native<T>(
        &self,
        soc: &mut Soc,
        calibrated_ns: u64,
        f: impl FnOnce(&sentry_crypto::Aes, &BitslicedAes) -> T,
    ) -> Result<T, KernelError> {
        let native = self.native.as_ref().ok_or(KernelError::NoKeyInstalled {
            engine: "aes-cbc-onsoc",
        })?;
        let native_bits = self
            .native_bits
            .as_ref()
            .ok_or(KernelError::NoKeyInstalled {
                engine: "aes-cbc-onsoc",
            })?;
        let entry_args = [0u32, 1, 2, 3];
        let spilled = soc.cpu.pass_args(&entry_args);
        debug_assert!(spilled.is_empty(), "no sensitive argument may spill");
        let was_enabled = soc.cpu.begin_critical();
        let out = f(native, native_bits);
        soc.clock.advance(calibrated_ns);
        soc.cpu.end_critical(was_enabled, calibrated_ns);
        Ok(out)
    }
}

impl CipherEngine for AesOnSocEngine {
    fn name(&self) -> &'static str {
        "aes-cbc-onsoc"
    }

    fn priority(&self) -> i32 {
        AES_ONSOC_PRIORITY
    }

    fn key_residency(&self) -> KeyResidency {
        self.residency
    }

    fn set_key(&mut self, soc: &mut Soc, key: &[u8]) -> Result<(), KernelError> {
        // Key expansion is itself sensitive compute: IRQ-disabled, and
        // the schedule is written through the on-SoC store.
        let was_enabled = soc.cpu.begin_critical();
        let t0 = soc.clock.now_ns();
        let tracked = {
            let mut store = CachedSocStore::new(soc, self.state_base);
            match self.backend {
                OnSocCipherBackend::TableDriven => TrackedAes::init(&mut store, key)
                    .map(TrackedCtx::Table)
                    .map_err(KernelError::InvalidKey)?,
                OnSocCipherBackend::BitslicedTableFree => {
                    TrackedBitslicedAes::init(&mut store, key)
                        .map(TrackedCtx::Bitsliced)
                        .map_err(KernelError::InvalidKey)?
                }
            }
        };
        let dt = soc.clock.now_ns() - t0;
        soc.cpu.end_critical(was_enabled, dt);
        self.tracked = Some(tracked);
        let native = sentry_crypto::Aes::new(key).map_err(KernelError::InvalidKey)?;
        // The batched context shares the already-expanded schedule — the
        // key is expanded once per install, never per operation.
        self.native_bits = Some(BitslicedAes::from_schedule(native.schedule()));
        self.native = Some(native);
        Ok(())
    }

    fn set_mode(&mut self, mode: PageCipherMode) -> Result<(), KernelError> {
        self.mode = mode;
        Ok(())
    }

    fn mode(&self) -> PageCipherMode {
        self.mode
    }

    fn encrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        soc.failpoint("crypt.one")?;
        let ns = self.calibrated_ns(soc, data.len());
        let mode = self.mode;
        if self.full_sim {
            self.critical(soc, ns, |ctx, store| match (ctx, mode) {
                (TrackedCtx::Table(aes), PageCipherMode::Cbc) => aes.cbc_encrypt(store, iv, data),
                (TrackedCtx::Table(aes), PageCipherMode::Xts) => aes.xts_encrypt(store, iv, data),
                (TrackedCtx::Table(aes), PageCipherMode::Ctr) => aes.ctr_crypt(store, iv, data),
                (TrackedCtx::Bitsliced(aes), PageCipherMode::Cbc) => {
                    aes.cbc_encrypt(store, iv, data)
                }
                (TrackedCtx::Bitsliced(aes), PageCipherMode::Xts) => {
                    aes.xts_encrypt(store, iv, data)
                }
                (TrackedCtx::Bitsliced(aes), PageCipherMode::Ctr) => aes.ctr_crypt(store, iv, data),
            })
        } else {
            self.critical_native(soc, ns, |aes, bits| match mode {
                // CBC encryption is serially chained; the scalar context
                // is the fast one for a one-block-at-a-time chain.
                PageCipherMode::Cbc => sentry_crypto::modes::cbc_encrypt(aes, iv, data),
                // XTS/CTR are block-parallel in both directions: the
                // batched context runs 16 blocks per kernel call.
                // Single-key XEX: the tweak cipher is the data cipher,
                // matching the one-context tracked path byte for byte.
                PageCipherMode::Xts => sentry_crypto::modes::xts_encrypt(bits, bits, iv, data),
                PageCipherMode::Ctr => sentry_crypto::modes::ctr_crypt(bits, iv, data),
            })
        }
    }

    fn decrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        soc.failpoint("crypt.one")?;
        let ns = self.calibrated_ns(soc, data.len());
        let mode = self.mode;
        if self.full_sim {
            self.critical(soc, ns, |ctx, store| match (ctx, mode) {
                (TrackedCtx::Table(aes), PageCipherMode::Cbc) => aes.cbc_decrypt(store, iv, data),
                (TrackedCtx::Table(aes), PageCipherMode::Xts) => aes.xts_decrypt(store, iv, data),
                (TrackedCtx::Table(aes), PageCipherMode::Ctr) => aes.ctr_crypt(store, iv, data),
                (TrackedCtx::Bitsliced(aes), PageCipherMode::Cbc) => {
                    aes.cbc_decrypt(store, iv, data)
                }
                (TrackedCtx::Bitsliced(aes), PageCipherMode::Xts) => {
                    aes.xts_decrypt(store, iv, data)
                }
                (TrackedCtx::Bitsliced(aes), PageCipherMode::Ctr) => aes.ctr_crypt(store, iv, data),
            })
        } else {
            // Every mode decrypts data-parallel: the batched context runs
            // 16 blocks per kernel call.
            self.critical_native(soc, ns, |_, bits| match mode {
                PageCipherMode::Cbc => sentry_crypto::modes::cbc_decrypt(bits, iv, data),
                PageCipherMode::Xts => sentry_crypto::modes::xts_decrypt(bits, bits, iv, data),
                PageCipherMode::Ctr => sentry_crypto::modes::ctr_crypt(bits, iv, data),
            })
        }
    }

    fn encrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        soc.failpoint("crypt.extent")?;
        if ivs.is_empty() {
            assert!(data.is_empty(), "extent data without IVs");
            return Ok(());
        }
        assert!(
            data.len().is_multiple_of(ivs.len()),
            "data does not divide into {} extents",
            ivs.len()
        );
        if self.full_sim {
            // Full simulation stays per-unit so every state access keeps
            // its tracked trace.
            let unit = data.len() / ivs.len();
            for (iv, chunk) in ivs.iter().zip(data.chunks_exact_mut(unit)) {
                self.encrypt(soc, iv, chunk)?;
            }
            return Ok(());
        }
        // One IRQ-critical section for the whole run. Under CBC the
        // extents are independent chains, so the bitsliced context fills
        // its 16 lanes with one chain each (a single extent has nothing
        // to batch against and stays on the scalar chain); under XTS/CTR
        // every block is independent and the batched stream crosses
        // extent boundaries without draining. The calibrated charge is
        // linear in bytes, so the total simulated time is identical to
        // the per-unit loop.
        let ns = self.calibrated_ns(soc, data.len());
        let mode = self.mode;
        self.critical_native(soc, ns, |aes, bits| match mode {
            PageCipherMode::Cbc => {
                if ivs.len() == 1 {
                    sentry_crypto::modes::cbc_encrypt(aes, &ivs[0], data);
                } else {
                    sentry_crypto::modes::cbc_encrypt_extents(bits, ivs, data);
                }
            }
            PageCipherMode::Xts => {
                sentry_crypto::modes::xts_crypt_extents(bits, bits, true, ivs, data);
            }
            PageCipherMode::Ctr => sentry_crypto::modes::ctr_crypt_extents(bits, ivs, data),
        })
    }

    fn decrypt_extent(
        &mut self,
        soc: &mut Soc,
        ivs: &[[u8; 16]],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        soc.failpoint("crypt.extent")?;
        if ivs.is_empty() {
            assert!(data.is_empty(), "extent data without IVs");
            return Ok(());
        }
        assert!(
            data.len().is_multiple_of(ivs.len()),
            "data does not divide into {} extents",
            ivs.len()
        );
        if self.full_sim {
            let unit = data.len() / ivs.len();
            for (iv, chunk) in ivs.iter().zip(data.chunks_exact_mut(unit)) {
                self.decrypt(soc, iv, chunk)?;
            }
            return Ok(());
        }
        // One critical section, one batched stream across every extent
        // boundary — this is the kernel call a fault-cluster readahead
        // lands on.
        let ns = self.calibrated_ns(soc, data.len());
        let mode = self.mode;
        self.critical_native(soc, ns, |_, bits| match mode {
            PageCipherMode::Cbc => sentry_crypto::modes::cbc_decrypt_extents(bits, ivs, data),
            PageCipherMode::Xts => {
                sentry_crypto::modes::xts_crypt_extents(bits, bits, false, ivs, data);
            }
            PageCipherMode::Ctr => sentry_crypto::modes::ctr_crypt_extents(bits, ivs, data),
        })
    }
}

/// Convenience: allocate a state page from `store` and build a keyed
/// engine in one step.
///
/// # Errors
///
/// Propagates allocation and key errors.
pub fn build_engine(
    store: &mut crate::onsoc::OnSocStore,
    soc: &mut Soc,
    key: &[u8],
) -> Result<AesOnSocEngine, SentryError> {
    build_engine_with_backend(store, soc, key, OnSocCipherBackend::default())
}

/// [`build_engine`] with an explicit [`OnSocCipherBackend`].
///
/// # Errors
///
/// Propagates allocation and key errors.
pub fn build_engine_with_backend(
    store: &mut crate::onsoc::OnSocStore,
    soc: &mut Soc,
    key: &[u8],
    cipher_backend: OnSocCipherBackend,
) -> Result<AesOnSocEngine, SentryError> {
    let page = store.alloc_page(soc)?;
    let residency = match store.backend() {
        crate::config::OnSocBackend::Iram => KeyResidency::Iram,
        crate::config::OnSocBackend::LockedL2 { .. } => KeyResidency::LockedL2,
    };
    let mut engine = AesOnSocEngine::with_backend(page, residency, cipher_backend);
    engine.set_key(soc, key).map_err(SentryError::Kernel)?;
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OnSocBackend;
    use crate::onsoc::OnSocStore;
    use sentry_crypto::modes::cbc_encrypt;
    use sentry_crypto::Aes;

    fn engine(backend: OnSocBackend) -> (Soc, AesOnSocEngine) {
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(backend, &mut soc).unwrap();
        let eng = build_engine(&mut store, &mut soc, &[0x42u8; 16]).unwrap();
        (soc, eng)
    }

    #[test]
    fn matches_plain_aes_cbc() {
        for backend in [OnSocBackend::Iram, OnSocBackend::LockedL2 { max_ways: 1 }] {
            let (mut soc, mut eng) = engine(backend);
            let iv = [9u8; 16];
            let mut data: Vec<u8> = (0..64u8).collect();
            eng.encrypt(&mut soc, &iv, &mut data).unwrap();

            let reference = Aes::new(&[0x42u8; 16]).unwrap();
            let mut expect: Vec<u8> = (0..64u8).collect();
            cbc_encrypt(&reference, &iv, &mut expect);
            assert_eq!(data, expect, "{backend:?}");

            eng.decrypt(&mut soc, &iv, &mut data).unwrap();
            assert_eq!(data, (0..64u8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn bitsliced_backend_matches_plain_aes_cbc() {
        // The table-free backend must be a drop-in: same ciphertext as
        // the table-driven one, in fast and full-simulation mode alike,
        // and the same calibrated time charge.
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
        let mut eng = build_engine_with_backend(
            &mut store,
            &mut soc,
            &[0x42u8; 16],
            OnSocCipherBackend::BitslicedTableFree,
        )
        .unwrap();
        assert_eq!(eng.backend(), OnSocCipherBackend::BitslicedTableFree);

        let reference = Aes::new(&[0x42u8; 16]).unwrap();
        let iv = [9u8; 16];
        let mut expect: Vec<u8> = (0..96u8).collect();
        cbc_encrypt(&reference, &iv, &mut expect);

        for full_sim in [false, true] {
            eng.set_full_simulation(full_sim);
            let mut data: Vec<u8> = (0..96u8).collect();
            eng.encrypt(&mut soc, &iv, &mut data).unwrap();
            assert_eq!(data, expect, "full_sim={full_sim}");
            eng.decrypt(&mut soc, &iv, &mut data).unwrap();
            assert_eq!(data, (0..96u8).collect::<Vec<_>>(), "full_sim={full_sim}");
        }
    }

    #[test]
    fn bitsliced_backend_generates_no_bus_traffic() {
        // Full simulation through the table-free tracked context: the
        // batch staging area, round keys, and every intermediate all
        // live in iRAM, and there are no tables to look up at all.
        let mut soc = Soc::tegra3_small();
        let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
        let mut eng = build_engine_with_backend(
            &mut store,
            &mut soc,
            &[0x42u8; 16],
            OnSocCipherBackend::BitslicedTableFree,
        )
        .unwrap();
        eng.set_full_simulation(true);
        let before = soc.bus.reads() + soc.bus.writes();
        let mut data = vec![1u8; 4096];
        eng.encrypt(&mut soc, &[0u8; 16], &mut data).unwrap();
        eng.decrypt(&mut soc, &[0u8; 16], &mut data).unwrap();
        let after = soc.bus.reads() + soc.bus.writes();
        assert_eq!(before, after, "AES state in iRAM never crosses the bus");
    }

    #[test]
    fn iram_engine_generates_no_bus_traffic() {
        // Full-simulation mode: every table lookup and round-key read of
        // the encryption goes through the simulated iRAM — and still no
        // transaction crosses the external bus.
        let (mut soc, mut eng) = engine(OnSocBackend::Iram);
        eng.set_full_simulation(true);
        let before = soc.bus.reads() + soc.bus.writes();
        let mut data = vec![1u8; 4096];
        eng.encrypt(&mut soc, &[0u8; 16], &mut data).unwrap();
        let after = soc.bus.reads() + soc.bus.writes();
        assert_eq!(before, after, "AES state in iRAM never crosses the bus");
    }

    #[test]
    fn fast_and_full_simulation_paths_agree() {
        let (mut soc, mut eng) = engine(OnSocBackend::Iram);
        let iv = [3u8; 16];
        let mut fast: Vec<u8> = (0..96u8).collect();
        eng.encrypt(&mut soc, &iv, &mut fast).unwrap();
        let t_fast = soc.cpu.irq_disabled_ns;

        let (mut soc2, mut eng2) = engine(OnSocBackend::Iram);
        eng2.set_full_simulation(true);
        let mut full: Vec<u8> = (0..96u8).collect();
        eng2.encrypt(&mut soc2, &iv, &mut full).unwrap();

        assert_eq!(fast, full, "identical ciphertext");
        assert_eq!(
            t_fast, soc2.cpu.irq_disabled_ns,
            "identical calibrated time charge"
        );
    }

    #[test]
    fn extent_overrides_match_per_unit_paths_in_bytes_and_time() {
        // The batched extent fast path must produce the same bytes *and*
        // the same simulated time as looping the per-unit methods — the
        // calibrated charge is linear, so hoisting it into one critical
        // section must not perturb the clock.
        let unit = 4096usize;
        for units in [1usize, 3, 16, 21] {
            let ivs: Vec<[u8; 16]> = (0..units).map(|i| [(i + 1) as u8; 16]).collect();
            let pt: Vec<u8> = (0..units * unit).map(|i| (i * 13) as u8).collect();

            let (mut soc_a, mut eng_a) = engine(OnSocBackend::Iram);
            let mut per_unit = pt.clone();
            let t0 = soc_a.clock.now_ns();
            for (iv, chunk) in ivs.iter().zip(per_unit.chunks_exact_mut(unit)) {
                eng_a.encrypt(&mut soc_a, iv, chunk).unwrap();
            }
            let per_unit_enc_ns = soc_a.clock.now_ns() - t0;

            let (mut soc_b, mut eng_b) = engine(OnSocBackend::Iram);
            let mut batched = pt.clone();
            let t0 = soc_b.clock.now_ns();
            eng_b
                .encrypt_extent(&mut soc_b, &ivs, &mut batched)
                .unwrap();
            let batched_enc_ns = soc_b.clock.now_ns() - t0;

            assert_eq!(batched, per_unit, "{units} units: ciphertext identical");
            assert_eq!(
                batched_enc_ns, per_unit_enc_ns,
                "{units} units: encrypt time identical"
            );

            let t0 = soc_b.clock.now_ns();
            eng_b
                .decrypt_extent(&mut soc_b, &ivs, &mut batched)
                .unwrap();
            let batched_dec_ns = soc_b.clock.now_ns() - t0;
            assert_eq!(batched, pt, "{units} units: extent decrypt roundtrips");
            assert_eq!(
                batched_dec_ns, batched_enc_ns,
                "{units} units: decrypt charge matches encrypt charge"
            );
        }
    }

    #[test]
    fn full_sim_extent_paths_agree_with_fast_path() {
        let unit = 512usize;
        let units = 5usize;
        let ivs: Vec<[u8; 16]> = (0..units).map(|i| [(i * 7 + 2) as u8; 16]).collect();
        let pt: Vec<u8> = (0..units * unit).map(|i| (i * 31) as u8).collect();

        let (mut soc_a, mut eng_a) = engine(OnSocBackend::Iram);
        let mut fast = pt.clone();
        eng_a.encrypt_extent(&mut soc_a, &ivs, &mut fast).unwrap();

        let (mut soc_b, mut eng_b) = engine(OnSocBackend::Iram);
        eng_b.set_full_simulation(true);
        let mut full = pt.clone();
        eng_b.encrypt_extent(&mut soc_b, &ivs, &mut full).unwrap();
        assert_eq!(fast, full, "fast and full-sim extent encrypt agree");

        eng_b.decrypt_extent(&mut soc_b, &ivs, &mut full).unwrap();
        assert_eq!(full, pt, "full-sim extent decrypt roundtrips");
    }

    #[test]
    fn all_modes_roundtrip_and_fast_matches_full_sim() {
        // For every (cipher backend, mode): the fast register-resident
        // path and the fully simulated store-resident path must produce
        // identical ciphertext, and both must round-trip — including the
        // extent stream.
        use sentry_kernel::crypto_api::GenericAesEngine;
        let key = [0x42u8; 16];
        for cipher_backend in [
            OnSocCipherBackend::TableDriven,
            OnSocCipherBackend::BitslicedTableFree,
        ] {
            for mode in PageCipherMode::all() {
                let mut soc = Soc::tegra3_small();
                let mut store = OnSocStore::new(OnSocBackend::Iram, &mut soc).unwrap();
                let mut eng =
                    build_engine_with_backend(&mut store, &mut soc, &key, cipher_backend).unwrap();
                eng.set_mode(mode).unwrap();
                assert_eq!(eng.mode(), mode);

                // The generic engine is the cross-implementation witness.
                let mut generic = GenericAesEngine::new(0);
                generic.set_key(&mut soc, &key).unwrap();
                generic.set_mode(mode).unwrap();

                let iv = [0x1Du8; 16];
                let pt: Vec<u8> = (0..4096).map(|i| (i * 7) as u8).collect();
                let mut expect = pt.clone();
                generic.encrypt(&mut soc, &iv, &mut expect).unwrap();

                for full_sim in [false, true] {
                    eng.set_full_simulation(full_sim);
                    let mut data = pt.clone();
                    eng.encrypt(&mut soc, &iv, &mut data).unwrap();
                    assert_eq!(
                        data, expect,
                        "{cipher_backend:?}/{mode} full_sim={full_sim} encrypt"
                    );
                    eng.decrypt(&mut soc, &iv, &mut data).unwrap();
                    assert_eq!(
                        data, pt,
                        "{cipher_backend:?}/{mode} full_sim={full_sim} round-trip"
                    );
                }

                // Extent stream agrees with the per-unit loop.
                eng.set_full_simulation(false);
                let ivs = [[3u8; 16], [4u8; 16], [5u8; 16]];
                let mut ext: Vec<u8> = pt.iter().cycle().take(3 * 4096).copied().collect();
                eng.encrypt_extent(&mut soc, &ivs, &mut ext).unwrap();
                let mut want = pt.clone();
                eng.encrypt(&mut soc, &ivs[2], &mut want).unwrap();
                assert_eq!(
                    &ext[2 * 4096..],
                    &want[..],
                    "{cipher_backend:?}/{mode} extent"
                );
                eng.decrypt_extent(&mut soc, &ivs, &mut ext).unwrap();
                assert!(
                    ext.chunks(4096).all(|c| c == &pt[..]),
                    "{cipher_backend:?}/{mode} extent round-trip"
                );
            }
        }
    }

    #[test]
    fn key_never_appears_in_dram_for_locked_l2() {
        let (soc, _eng) = engine(OnSocBackend::LockedL2 { max_ways: 1 });
        for (_addr, frame) in soc.dram.iter_frames() {
            assert!(
                !frame.windows(16).any(|w| w == [0x42u8; 16]),
                "key bytes leaked to DRAM"
            );
        }
    }

    #[test]
    fn operations_run_irq_disabled_and_zero_registers() {
        let (mut soc, mut eng) = engine(OnSocBackend::Iram);
        soc.cpu.request_preemption();
        let sections_before = soc.cpu.critical_sections;
        let mut data = vec![0u8; 4096];
        eng.encrypt(&mut soc, &[0u8; 16], &mut data).unwrap();
        assert!(soc.cpu.critical_sections > sections_before);
        assert!(soc.cpu.irq_disabled_ns > 0);
        // A preemption delivered after the section sees only zeroes.
        let spill = soc.cpu.take_preemption().unwrap();
        assert_eq!(spill, [0u32; 16]);
    }

    #[test]
    fn irq_section_duration_is_paper_scale() {
        // The paper reports ~160 µs of raised interrupts per section on
        // the Tegra 3; one 4 KiB page should land in that ballpark.
        let (mut soc, mut eng) = engine(OnSocBackend::Iram);
        let before = soc.cpu.irq_disabled_ns;
        let mut data = vec![0u8; 4096];
        eng.encrypt(&mut soc, &[0u8; 16], &mut data).unwrap();
        let section_us = (soc.cpu.irq_disabled_ns - before) as f64 / 1e3;
        assert!(
            (100.0..300.0).contains(&section_us),
            "IRQ-disabled section was {section_us} µs"
        );
    }

    #[test]
    fn onsoc_within_one_percent_of_generic() {
        // Figure 11 (right): AES On SoC adds negligible overhead versus
        // generic AES on the Tegra.
        use sentry_kernel::crypto_api::GenericAesEngine;
        let (mut soc, mut onsoc) = engine(OnSocBackend::LockedL2 { max_ways: 1 });
        let mut generic = GenericAesEngine::new(0);
        generic.set_key(&mut soc, &[0x42u8; 16]).unwrap();
        let mut data = vec![0u8; 64 * 1024];

        let t0 = soc.clock.now_ns();
        generic.encrypt(&mut soc, &[0u8; 16], &mut data).unwrap();
        let generic_ns = soc.clock.now_ns() - t0;

        let t0 = soc.clock.now_ns();
        onsoc.encrypt(&mut soc, &[0u8; 16], &mut data).unwrap();
        let onsoc_ns = soc.clock.now_ns() - t0;

        let overhead = onsoc_ns as f64 / generic_ns as f64 - 1.0;
        assert!(overhead.abs() < 0.01, "overhead {overhead:.4}");
    }

    #[test]
    fn unkeyed_engine_refuses_to_encrypt() {
        let mut soc = Soc::tegra3_small();
        let mut eng =
            AesOnSocEngine::new(sentry_soc::addr::IRAM_BASE + 64 * 1024, KeyResidency::Iram);
        let mut data = vec![0u8; 16];
        assert!(eng.encrypt(&mut soc, &[0u8; 16], &mut data).is_err());
    }
}
