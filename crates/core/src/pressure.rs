//! The on-SoC pressure governor: watermarks over scarce on-SoC bytes,
//! load shedding, and the encrypted spill region.
//!
//! Everything Sentry holds on the SoC — the transition journal, the
//! integrity tag store, pager eviction slots, the keystream cache,
//! locked L2 ways — competes for a few hundred KiB. Before this module
//! existed, every consumer treated [`SentryError::OnSocExhausted`] as a
//! hard stop, so a device under many-process pressure failed closed.
//! The governor turns that cliff into a slope:
//!
//! * a [`PressureTracker`] watches the bytes resident against the
//!   effective budget and classifies the store as
//!   [`PressureLevel::Normal`], `High`, or `Critical`;
//! * at **High**, elective load is shed — the background decrypt
//!   sweeper pauses, fault readahead clusters shrink to one page, and
//!   the dm-crypt keystream cache stops growing;
//! * at **Critical**, cold tag-store pages are reclaimed through the
//!   [`SpillRegion`]: CMAC'd, encrypted under a spill key derived from
//!   the volatile root key, and staged to a dm-crypt-backed region,
//!   leaving only an on-SoC anchor (epoch + tag). The spill region
//!   never holds plaintext or keystream, and a power cut at any spill
//!   step recovers byte-identically.
//!
//! The same tracker carries the occupancy telemetry (bytes resident,
//! high-water mark, level transitions, shed/spill counters) that the
//! fleet harness folds into its shard-invariant per-device columns.

use crate::error::SentryError;
use sentry_crypto::modes::{cbc_decrypt, cbc_encrypt};
use sentry_crypto::{Aes, BitslicedAes};
use sentry_kernel::block::{BlockDevice, RamDisk, SECTOR_SIZE};
use sentry_kernel::crypto_api::{CipherEngine, CryptoApi, KeyResidency};
use sentry_kernel::dmcrypt::DmCrypt;
use sentry_kernel::KernelError;
use sentry_soc::addr::PAGE_SIZE;
use sentry_soc::{SimClock, Soc};

/// Sectors backing one spilled 4 KiB page.
const SECTORS_PER_PAGE: u64 = PAGE_SIZE / SECTOR_SIZE as u64;

/// Spill-region capacity in page slots. The tag store is bounded by
/// on-SoC capacity (48 iRAM pages at most), so 64 slots can absorb the
/// entire store with room to spare.
pub const SPILL_SLOTS: u64 = 64;

/// Watermark classification of on-SoC occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Occupancy below the high watermark: no intervention.
    #[default]
    Normal,
    /// Above the high watermark: shed elective load (pause the sweeper,
    /// shrink readahead clusters, cap keystream-cache fill).
    High,
    /// Above the critical watermark: reclaim via encrypted spill before
    /// any allocation is refused.
    Critical,
}

impl PressureLevel {
    /// Stable lowercase name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Normal => "normal",
            PressureLevel::High => "high",
            PressureLevel::Critical => "critical",
        }
    }
}

/// Tuning for the pressure governor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureConfig {
    /// Master switch. When false the tracker still accounts occupancy
    /// but always reports [`PressureLevel::Normal`] and never denies an
    /// allocation — exactly the pre-governor behaviour.
    pub enabled: bool,
    /// High watermark as a percentage of the effective budget.
    pub high_pct: u8,
    /// Critical watermark as a percentage of the effective budget.
    pub critical_pct: u8,
    /// Whether Critical pressure may reclaim cold tag-store pages
    /// through the encrypted spill region.
    pub spill: bool,
    /// Keystream-cache sector cap applied while pressure is High or
    /// Critical (the cache's configured capacity applies when Normal).
    pub keystream_cap_high: usize,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            enabled: true,
            high_pct: 70,
            critical_pct: 90,
            spill: true,
            keystream_cap_high: 16,
        }
    }
}

impl PressureConfig {
    /// A disabled governor: occupancy is tracked, nothing is ever shed,
    /// spilled, or denied beyond physical exhaustion.
    #[must_use]
    pub fn disabled() -> Self {
        PressureConfig {
            enabled: false,
            ..PressureConfig::default()
        }
    }

    /// Builder: set the high/critical watermarks (percent of budget).
    #[must_use]
    pub fn with_watermarks(mut self, high_pct: u8, critical_pct: u8) -> Self {
        self.high_pct = high_pct;
        self.critical_pct = critical_pct;
        self
    }

    /// Builder: enable or disable the encrypted spill path.
    #[must_use]
    pub fn with_spill(mut self, spill: bool) -> Self {
        self.spill = spill;
        self
    }
}

/// Cumulative pressure telemetry, shard-invariant under the fleet
/// harness's merge discipline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// On-SoC bytes currently resident (claimed minus free-listed).
    pub bytes_resident: u64,
    /// High-water mark of `bytes_resident`.
    pub high_water_bytes: u64,
    /// Upward transitions into [`PressureLevel::High`].
    pub transitions_high: u64,
    /// Upward transitions into [`PressureLevel::Critical`].
    pub transitions_critical: u64,
    /// Elective-load shed decisions taken (sweeps paused, clusters
    /// shrunk, keystream fill capped, empty pages reaped).
    pub sheds: u64,
    /// Tag-store pages spilled to the encrypted spill region.
    pub spills: u64,
    /// Spilled pages restored on-SoC on demand.
    pub spill_restores: u64,
    /// On-SoC pages reclaimed (reaped empty or released on teardown).
    pub reclaimed_pages: u64,
    /// Allocations denied by the budget (the typed-error path).
    pub denied: u64,
}

impl PressureStats {
    /// Fold another device's counters into this one (fleet aggregation):
    /// counters add, water marks take the max.
    pub fn merge(&mut self, other: &PressureStats) {
        self.bytes_resident += other.bytes_resident;
        self.high_water_bytes = self.high_water_bytes.max(other.high_water_bytes);
        self.transitions_high += other.transitions_high;
        self.transitions_critical += other.transitions_critical;
        self.sheds += other.sheds;
        self.spills += other.spills;
        self.spill_restores += other.spill_restores;
        self.reclaimed_pages += other.reclaimed_pages;
        self.denied += other.denied;
    }
}

/// Watermark tracker over one store's scarce on-SoC bytes.
#[derive(Debug)]
pub struct PressureTracker {
    config: PressureConfig,
    /// Physical capacity of the tracked store, in bytes.
    capacity: u64,
    /// Chaos/test knob: a budget tighter than the physical capacity.
    budget_override: Option<u64>,
    level: PressureLevel,
    /// Telemetry.
    pub stats: PressureStats,
}

impl PressureTracker {
    /// A tracker over `capacity` bytes.
    #[must_use]
    pub fn new(config: PressureConfig, capacity: u64) -> Self {
        PressureTracker {
            config,
            capacity,
            budget_override: None,
            level: PressureLevel::Normal,
            stats: PressureStats::default(),
        }
    }

    /// The governor's configuration.
    #[must_use]
    pub fn config(&self) -> PressureConfig {
        self.config
    }

    /// The current watermark level.
    #[must_use]
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// The budget allocations are charged against: the physical
    /// capacity, or the override when one is set (never above the
    /// physical capacity).
    #[must_use]
    pub fn effective_budget(&self) -> u64 {
        self.budget_override
            .map_or(self.capacity, |b| b.min(self.capacity))
    }

    /// Install (or clear) a budget tighter than the physical capacity.
    /// The fleet's memory-pressure chaos events shrink budgets through
    /// this knob; the caller refreshes occupancy afterwards.
    pub fn set_budget_override(&mut self, budget: Option<u64>) {
        self.budget_override = budget;
        self.reclassify();
    }

    /// Whether charging `bytes_after` total resident bytes would exceed
    /// the effective budget. Only an enabled governor denies — a
    /// disabled one leaves exhaustion to the physical allocators.
    #[must_use]
    pub fn would_deny(&self, bytes_after: u64) -> bool {
        self.config.enabled && bytes_after > self.effective_budget()
    }

    /// Record the current resident byte count and reclassify, counting
    /// upward level transitions.
    pub fn note_usage(&mut self, bytes_resident: u64) {
        self.stats.bytes_resident = bytes_resident;
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(bytes_resident);
        self.reclassify();
    }

    fn reclassify(&mut self) {
        let level = if !self.config.enabled {
            PressureLevel::Normal
        } else {
            let budget = self.effective_budget().max(1);
            let pct = self.stats.bytes_resident.saturating_mul(100) / budget;
            if pct >= u64::from(self.config.critical_pct) {
                PressureLevel::Critical
            } else if pct >= u64::from(self.config.high_pct) {
                PressureLevel::High
            } else {
                PressureLevel::Normal
            }
        };
        if level > self.level {
            if self.level < PressureLevel::High && level >= PressureLevel::High {
                self.stats.transitions_high += 1;
            }
            if level == PressureLevel::Critical {
                self.stats.transitions_critical += 1;
            }
        }
        self.level = level;
    }

    /// Count one elective-load shed decision.
    pub fn note_shed(&mut self) {
        self.stats.sheds += 1;
    }

    /// Count one page spilled to the encrypted region.
    pub fn note_spill(&mut self) {
        self.stats.spills += 1;
    }

    /// Count one spilled page restored on-SoC.
    pub fn note_restore(&mut self) {
        self.stats.spill_restores += 1;
    }

    /// Count `pages` on-SoC pages reclaimed.
    pub fn note_reclaimed(&mut self, pages: u64) {
        self.stats.reclaimed_pages += pages;
    }

    /// Count one budget-denied allocation.
    pub fn note_denied(&mut self) {
        self.stats.denied += 1;
    }
}

/// The spill region's own AES-CBC engine. Unlike the generic engine it
/// keeps the expanded key schedule off DRAM — the spill key protects
/// bytes *because* they left the SoC, so parking its schedule in kernel
/// heap would hand a cold-boot attacker the region in plaintext. The
/// schedule is modeled as iRAM-resident (it derives from the volatile
/// root key and dies with power), and each sector charges the same
/// per-block arithmetic + on-SoC state-touch cost as AES On SoC.
struct SpillAesEngine {
    aes: Option<Aes>,
    bits: Option<BitslicedAes>,
}

impl CipherEngine for SpillAesEngine {
    fn name(&self) -> &'static str {
        "aes-cbc-spill"
    }

    fn priority(&self) -> i32 {
        0
    }

    fn key_residency(&self) -> KeyResidency {
        KeyResidency::Iram
    }

    fn set_key(&mut self, _soc: &mut Soc, key: &[u8]) -> Result<(), KernelError> {
        let aes = Aes::new(key).map_err(KernelError::InvalidKey)?;
        self.bits = Some(BitslicedAes::from_schedule(aes.schedule()));
        self.aes = Some(aes);
        Ok(())
    }

    fn encrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        let aes = self.aes.as_ref().ok_or(KernelError::NoKeyInstalled {
            engine: "aes-cbc-spill",
        })?;
        cbc_encrypt(aes, iv, data);
        soc.clock.advance(Self::cost_ns(soc, data.len()));
        Ok(())
    }

    fn decrypt(
        &mut self,
        soc: &mut Soc,
        iv: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), KernelError> {
        let bits = self.bits.as_ref().ok_or(KernelError::NoKeyInstalled {
            engine: "aes-cbc-spill",
        })?;
        cbc_decrypt(bits, iv, data);
        soc.clock.advance(Self::cost_ns(soc, data.len()));
        Ok(())
    }
}

impl SpillAesEngine {
    fn cost_ns(soc: &Soc, bytes: usize) -> u64 {
        (bytes as u64 / 16) * (soc.costs.aes_block_compute_ns + 4 * soc.costs.iram_access_ns)
    }
}

/// The dm-crypt-backed encrypted spill region.
///
/// A self-contained storage stack (its own [`CryptoApi`] + spill AES
/// engine, [`DmCrypt`] instance, and RAM disk) keyed by a spill key
/// derived from the volatile root key. Pages staged here are encrypted
/// sector-by-sector with per-sector MACs before any byte reaches the
/// device, so a cold-boot dump of the region yields only ciphertext;
/// the key dies with power, exactly like the root key it derives from.
#[derive(Debug)]
pub struct SpillRegion {
    api: CryptoApi,
    dm: DmCrypt,
    disk: RamDisk,
}

impl SpillRegion {
    /// Build the region under `spill_key` (derived by the integrity
    /// plane from the volatile root key via one block encryption of a
    /// domain-separation constant).
    ///
    /// # Errors
    ///
    /// Propagates cipher registration/key-schedule errors.
    pub fn new(soc: &mut Soc, spill_key: &[u8; 16]) -> Result<Self, SentryError> {
        let mut api = CryptoApi::new();
        api.register(Box::new(SpillAesEngine {
            aes: None,
            bits: None,
        }));
        let dm = DmCrypt::with_preferred_cipher();
        dm.set_key(&mut api, soc, spill_key)?;
        Ok(SpillRegion {
            api,
            dm,
            disk: RamDisk::new(SPILL_SLOTS * SECTORS_PER_PAGE),
        })
    }

    /// Page slots the region can hold.
    #[must_use]
    pub fn slots(&self) -> u64 {
        SPILL_SLOTS
    }

    /// Encrypt and stage one 4 KiB page into `slot`. The plaintext
    /// never reaches the disk: dm-crypt encrypts and MACs every sector
    /// before the device write.
    ///
    /// # Errors
    ///
    /// Propagates block and cipher errors ([`SentryError::Kernel`]).
    pub fn stage(&mut self, soc: &mut Soc, slot: u64, page: &[u8]) -> Result<(), SentryError> {
        assert_eq!(page.len() as u64, PAGE_SIZE, "whole pages only");
        self.dm.write(
            &mut self.api,
            soc,
            &mut self.disk,
            slot * SECTORS_PER_PAGE,
            page,
        )?;
        Ok(())
    }

    /// Read back and decrypt the page staged in `slot`, verifying every
    /// sector's MAC on the way.
    ///
    /// # Errors
    ///
    /// Propagates block, cipher, and sector-tamper errors.
    pub fn restore(
        &mut self,
        soc: &mut Soc,
        slot: u64,
        page: &mut [u8],
    ) -> Result<(), SentryError> {
        assert_eq!(page.len() as u64, PAGE_SIZE, "whole pages only");
        self.dm.read(
            &mut self.api,
            soc,
            &mut self.disk,
            slot * SECTORS_PER_PAGE,
            page,
        )?;
        Ok(())
    }

    /// Flip one raw device byte — the active-attacker hook the tamper
    /// tests use to prove a corrupted spill blob refuses to restore.
    ///
    /// # Errors
    ///
    /// Propagates block-device errors.
    pub fn corrupt_byte(&mut self, offset: u64) -> Result<(), SentryError> {
        let mut scratch = SimClock::new();
        let sector = offset / SECTOR_SIZE as u64;
        let mut buf = vec![0u8; SECTOR_SIZE];
        self.disk.read_sectors(sector, &mut buf, &mut scratch)?;
        buf[(offset % SECTOR_SIZE as u64) as usize] ^= 0x01;
        self.disk.write_sectors(sector, &buf, &mut scratch)?;
        Ok(())
    }

    /// The raw device bytes, as a cold-boot attacker would dump them —
    /// the hygiene scans grep this for plaintext and keystream.
    #[must_use]
    pub fn raw_bytes(&mut self) -> Vec<u8> {
        let mut scratch = SimClock::new();
        let mut raw = vec![0u8; (SPILL_SLOTS * SECTORS_PER_PAGE) as usize * SECTOR_SIZE];
        self.disk
            .read_sectors(0, &mut raw, &mut scratch)
            .expect("spill region self-read");
        raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermarks_classify_and_count_transitions() {
        let mut t = PressureTracker::new(PressureConfig::default(), 100);
        t.note_usage(10);
        assert_eq!(t.level(), PressureLevel::Normal);
        t.note_usage(75);
        assert_eq!(t.level(), PressureLevel::High);
        t.note_usage(95);
        assert_eq!(t.level(), PressureLevel::Critical);
        t.note_usage(10);
        assert_eq!(t.level(), PressureLevel::Normal);
        t.note_usage(95);
        assert_eq!(
            t.stats.transitions_high, 2,
            "normal→critical counts high too"
        );
        assert_eq!(t.stats.transitions_critical, 2);
        assert_eq!(t.stats.high_water_bytes, 95);
    }

    #[test]
    fn budget_override_tightens_denials() {
        let mut t = PressureTracker::new(PressureConfig::default(), 100);
        assert!(!t.would_deny(100));
        assert!(t.would_deny(101));
        t.set_budget_override(Some(40));
        assert!(t.would_deny(41));
        t.set_budget_override(Some(10_000));
        assert!(!t.would_deny(100), "override clamps to physical capacity");
        assert!(t.would_deny(101));
        t.set_budget_override(None);
        assert!(!t.would_deny(100));
    }

    #[test]
    fn disabled_tracker_never_denies_or_leaves_normal() {
        let mut t = PressureTracker::new(PressureConfig::disabled(), 100);
        t.note_usage(99);
        assert_eq!(t.level(), PressureLevel::Normal);
        assert!(!t.would_deny(1_000_000));
        assert_eq!(t.stats.high_water_bytes, 99, "occupancy still tracked");
    }

    #[test]
    fn spill_region_roundtrips_and_disk_holds_only_ciphertext() {
        let mut soc = Soc::tegra3_small();
        let mut region = SpillRegion::new(&mut soc, &[7u8; 16]).unwrap();
        let page = vec![0xA5u8; PAGE_SIZE as usize];
        region.stage(&mut soc, 3, &page).unwrap();
        let raw = region.raw_bytes();
        assert!(
            !raw.windows(64).any(|w| w == &page[..64]),
            "plaintext must never reach the spill device"
        );
        let mut back = vec![0u8; PAGE_SIZE as usize];
        region.restore(&mut soc, 3, &mut back).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn stats_merge_sums_counters_and_maxes_water() {
        let mut a = PressureStats {
            bytes_resident: 10,
            high_water_bytes: 50,
            sheds: 1,
            ..PressureStats::default()
        };
        let b = PressureStats {
            bytes_resident: 5,
            high_water_bytes: 80,
            spills: 2,
            ..PressureStats::default()
        };
        a.merge(&b);
        assert_eq!(a.bytes_resident, 15);
        assert_eq!(a.high_water_bytes, 80);
        assert_eq!(a.sheds, 1);
        assert_eq!(a.spills, 2);
    }
}
