//! [`StateStore`] implementations backed by simulated SoC memory.
//!
//! `sentry_crypto::TrackedAes` performs every state access through a
//! store; these adapters decide *where the bytes physically live* in the
//! simulation:
//!
//! * [`CachedSocStore`] — state at an on-SoC address (iRAM, or a
//!   locked-L2 window address whose lines are pinned in the cache).
//!   Accesses go through the normal routed path, so iRAM state never
//!   touches the bus and locked-way state always hits the cache. This is
//!   AES On SoC's store.
//! * [`UncachedSocStore`] — state in DRAM with accesses visible on the
//!   bus. This is the adversarial model of a *generic* AES whose working
//!   set has spilled to DRAM: a bus monitor sees every table lookup (the
//!   §3.1 access-pattern side channel).

use sentry_crypto::{StateStore, TableId};
use sentry_soc::Soc;

/// On-SoC-resident AES state (the safe placement).
pub struct CachedSocStore<'a> {
    soc: &'a mut Soc,
    base: u64,
}

impl<'a> CachedSocStore<'a> {
    /// A store whose byte 0 is physical address `base`.
    #[must_use]
    pub fn new(soc: &'a mut Soc, base: u64) -> Self {
        CachedSocStore { soc, base }
    }
}

impl StateStore for CachedSocStore<'_> {
    fn read(&mut self, offset: usize, buf: &mut [u8]) {
        self.soc
            .mem_read(self.base + offset as u64, buf)
            .expect("AES state region must be mapped");
    }

    fn write(&mut self, offset: usize, data: &[u8]) {
        self.soc
            .mem_write(self.base + offset as u64, data)
            .expect("AES state region must be mapped");
    }
}

/// DRAM-resident AES state with bus-visible accesses (the unsafe
/// baseline the attacks exploit).
pub struct UncachedSocStore<'a> {
    soc: &'a mut Soc,
    base: u64,
}

impl<'a> UncachedSocStore<'a> {
    /// A store whose byte 0 is physical DRAM address `base`.
    #[must_use]
    pub fn new(soc: &'a mut Soc, base: u64) -> Self {
        UncachedSocStore { soc, base }
    }
}

impl StateStore for UncachedSocStore<'_> {
    fn read(&mut self, offset: usize, buf: &mut [u8]) {
        self.soc
            .mem_read_uncached(self.base + offset as u64, buf)
            .expect("AES state region must be mapped");
    }

    fn write(&mut self, offset: usize, data: &[u8]) {
        self.soc
            .mem_write_uncached(self.base + offset as u64, data)
            .expect("AES state region must be mapped");
    }

    fn note_table_access(&mut self, _table: TableId, _index: u8) {
        // Nothing extra: the uncached reads themselves are already
        // visible on the bus, which is the point.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_crypto::TrackedAes;
    use sentry_soc::addr::{DRAM_BASE, IRAM_BASE, IRAM_FIRMWARE_RESERVED};

    #[test]
    fn tracked_aes_runs_in_iram_without_bus_traffic() {
        let mut soc = Soc::tegra3_small();
        let base = IRAM_BASE + IRAM_FIRMWARE_RESERVED;
        let mut store = CachedSocStore::new(&mut soc, base);
        let aes = TrackedAes::init(&mut store, &[7u8; 16]).unwrap();
        let mut block = [0u8; 16];
        aes.encrypt_block(&mut store, &mut block);
        assert_eq!(soc.bus.reads() + soc.bus.writes(), 0);
        // And the ciphertext matches a plain implementation.
        let reference = sentry_crypto::Aes::new(&[7u8; 16]).unwrap();
        let mut expect = [0u8; 16];
        reference.encrypt_block(&mut expect);
        assert_eq!(block, expect);
    }

    #[test]
    fn uncached_store_is_visible_on_the_bus() {
        let mut soc = Soc::tegra3_small();
        let base = DRAM_BASE + (4 << 20);
        let mut store = UncachedSocStore::new(&mut soc, base);
        let aes = TrackedAes::init(&mut store, &[7u8; 16]).unwrap();
        let mut block = [0u8; 16];
        aes.encrypt_block(&mut store, &mut block);
        assert!(soc.bus.reads() > 100, "table lookups must cross the bus");
        // The key itself is now recoverable from raw DRAM.
        let mut dump = vec![0u8; 64];
        soc.dram.read(base, &mut dump);
        assert!(dump.windows(16).any(|w| w == [7u8; 16]));
    }
}
