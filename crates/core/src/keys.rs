//! Root key management (§7, Bootstrapping).
//!
//! Sentry uses two AES root keys:
//!
//! * the **volatile root key** encrypts sensitive applications' memory
//!   pages; it is generated afresh at every boot and lives *only* on the
//!   SoC (an on-SoC page from the [`crate::onsoc::OnSocStore`]);
//! * the **persistent root key** encrypts on-disk state via dm-crypt; it
//!   is derived from a boot-time user password combined with the
//!   device-unique secret in a hardware fuse readable only from the
//!   TrustZone secure world.

use crate::error::SentryError;
use sentry_crypto::Aes;
use sentry_soc::rng::DetRng;
use sentry_soc::{Soc, SocError};

/// Length of a root key in bytes (AES-256).
pub const ROOT_KEY_LEN: usize = 32;

/// Iterations of the AES-based key-stretching loop.
pub const KDF_ITERATIONS: usize = 1000;

/// Handle to the volatile root key stored at an on-SoC address.
#[derive(Debug, Clone, Copy)]
pub struct VolatileRootKey {
    addr: u64,
}

impl VolatileRootKey {
    /// Generate a fresh volatile key into the on-SoC page at `addr`.
    ///
    /// `entropy` seeds the generator (a real device would use its TRNG).
    ///
    /// # Errors
    ///
    /// Propagates memory errors from the on-SoC write.
    pub fn generate(soc: &mut Soc, addr: u64, entropy: u64) -> Result<Self, SentryError> {
        let mut rng = DetRng::new(entropy ^ 0x5EED_5EED_5EED_5EED);
        let mut key = [0u8; ROOT_KEY_LEN];
        rng.fill(&mut key);
        soc.mem_write(addr, &key)?;
        Ok(VolatileRootKey { addr })
    }

    /// The on-SoC address holding the key.
    #[must_use]
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Read the key (for handing to the AES engine at lock time).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn read(&self, soc: &mut Soc) -> Result<[u8; ROOT_KEY_LEN], SentryError> {
        let mut key = [0u8; ROOT_KEY_LEN];
        soc.mem_read(self.addr, &mut key)?;
        Ok(key)
    }

    /// Destroy the key (e.g., before an intentional reboot).
    ///
    /// # Errors
    ///
    /// Propagates memory errors.
    pub fn destroy(&self, soc: &mut Soc) -> Result<(), SentryError> {
        soc.mem_write(self.addr, &[0u8; ROOT_KEY_LEN])?;
        Ok(())
    }
}

/// Derive the persistent root key from the user's boot-time password and
/// the TrustZone hardware fuse.
///
/// The derivation runs in the secure world (the fuse is unreadable
/// otherwise) and stretches the password with [`KDF_ITERATIONS`] AES
/// applications keyed by the fuse — a deliberately simple PBKDF stand-in
/// whose relevant property is that neither input alone suffices.
///
/// # Errors
///
/// [`SentryError::Soc`] if the fuse cannot be read.
pub fn derive_persistent_key(
    soc: &mut Soc,
    password: &str,
) -> Result<[u8; ROOT_KEY_LEN], SentryError> {
    let fuse = soc.in_secure_world(|soc| soc.trustzone.read_fuse());
    let fuse = fuse.ok_or(SentryError::Soc(SocError::RequiresSecureWorld {
        op: "read fuse",
    }))?;

    // Absorb the password into two 16-byte blocks.
    let mut block_a = [0u8; 16];
    let mut block_b = [0u8; 16];
    for (i, b) in password.bytes().enumerate() {
        block_a[i % 16] ^= b;
        block_b[(i * 7 + 3) % 16] ^= b.rotate_left((i % 8) as u32);
    }
    block_a[15] ^= password.len() as u8;

    // Stretch under two fuse-derived AES keys.
    let aes_lo = Aes::new(&fuse[..16]).expect("16-byte key");
    let aes_hi = Aes::new(&fuse[16..]).expect("16-byte key");
    for _ in 0..KDF_ITERATIONS {
        aes_lo.encrypt_block(&mut block_a);
        for (a, b) in block_b.iter_mut().zip(block_a.iter()) {
            *a ^= b;
        }
        aes_hi.encrypt_block(&mut block_b);
    }

    let mut key = [0u8; ROOT_KEY_LEN];
    key[..16].copy_from_slice(&block_a);
    key[16..].copy_from_slice(&block_b);
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentry_soc::addr::{IRAM_BASE, IRAM_FIRMWARE_RESERVED};
    use sentry_soc::dram::PowerEvent;

    fn key_addr() -> u64 {
        IRAM_BASE + IRAM_FIRMWARE_RESERVED
    }

    #[test]
    fn volatile_key_roundtrip_and_destroy() {
        let mut soc = Soc::tegra3_small();
        let vk = VolatileRootKey::generate(&mut soc, key_addr(), 7).unwrap();
        let k1 = vk.read(&mut soc).unwrap();
        assert_ne!(k1, [0u8; 32]);
        vk.destroy(&mut soc).unwrap();
        assert_eq!(vk.read(&mut soc).unwrap(), [0u8; 32]);
    }

    #[test]
    fn volatile_key_differs_across_boots() {
        let mut soc = Soc::tegra3_small();
        let vk1 = VolatileRootKey::generate(&mut soc, key_addr(), 1).unwrap();
        let k1 = vk1.read(&mut soc).unwrap();
        let vk2 = VolatileRootKey::generate(&mut soc, key_addr(), 2).unwrap();
        let k2 = vk2.read(&mut soc).unwrap();
        assert_ne!(k1, k2);
    }

    #[test]
    fn volatile_key_is_gone_after_power_loss() {
        let mut soc = Soc::tegra3_small();
        let vk = VolatileRootKey::generate(&mut soc, key_addr(), 7).unwrap();
        let key = vk.read(&mut soc).unwrap();
        soc.power_cycle(PowerEvent::ReflashTap).unwrap();
        let after = vk.read(&mut soc).unwrap();
        assert_ne!(after, key);
        assert_eq!(after, [0u8; 32], "firmware zeroed iRAM");
    }

    #[test]
    fn persistent_key_depends_on_password_and_fuse() {
        let mut soc = Soc::tegra3_small();
        let k1 = derive_persistent_key(&mut soc, "hunter2").unwrap();
        let k2 = derive_persistent_key(&mut soc, "hunter3").unwrap();
        assert_ne!(k1, k2, "password must matter");
        let k1_again = derive_persistent_key(&mut soc, "hunter2").unwrap();
        assert_eq!(k1, k1_again, "derivation is deterministic");

        // A different device (different fuse) derives a different key.
        let cfg = sentry_soc::SocConfig::new(sentry_soc::Platform::Tegra3).with_dram_size(64 << 20);
        let mut other = Soc::new(sentry_soc::SocConfig {
            fuse: [0x13u8; 32],
            ..cfg
        });
        let k3 = derive_persistent_key(&mut other, "hunter2").unwrap();
        assert_ne!(k1, k3, "fuse must matter");
    }

    #[test]
    fn derivation_leaves_normal_world() {
        let mut soc = Soc::tegra3_small();
        let _ = derive_persistent_key(&mut soc, "pw").unwrap();
        assert_eq!(soc.trustzone.world(), sentry_soc::trustzone::World::Normal);
    }
}
