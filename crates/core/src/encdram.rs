//! The encrypted-DRAM pager (§5, Figure 1).
//!
//! While the device is locked, a sensitive background application's
//! pages live encrypted in DRAM. Every PTE has its `young` bit cleared,
//! so the first access to a page traps; the pager then:
//!
//! 1. copies the encrypted page from its DRAM frame into an on-SoC page
//!    slot (a locked L2 cache way or iRAM),
//! 2. decrypts it in place with AES On SoC,
//! 3. repoints the PTE at the on-SoC copy and sets `young`.
//!
//! When the on-SoC slots are full, the pager evicts in FIFO order: the
//! victim page is re-encrypted in place and copied back to its home
//! DRAM frame, and its PTE is re-armed to trap. Plaintext therefore
//! exists only on the SoC; DRAM (and hence every in-scope attack) sees
//! ciphertext only.

use crate::error::SentryError;
use crate::integrity::{IntegrityPlane, QuarantinedPage, VerifyOutcome};
use crate::onsoc::OnSocStore;
use crate::txn::{CommitTagger, JournalEntry, TxnJournal, TxnOp, MAX_ENTRIES};
use sentry_kernel::fault::PageFault;
use sentry_kernel::pagetable::Backing;
use sentry_kernel::Kernel;
use sentry_soc::addr::PAGE_SIZE;

/// Per-page IV: bound to the (pid, vpn) pair so every page encrypts
/// differently under the volatile root key, and to the lock-epoch
/// counter so the *same* page never reuses an IV across successive lock
/// cycles. (The volatile key survives lock→unlock→lock — it is destroyed
/// only on power-off — so without the epoch a CBC IV would repeat and an
/// attacker comparing two lock cycles could detect unchanged pages, and
/// recover XORs of first blocks that changed.)
#[must_use]
pub fn page_iv(pid: u32, vpn: u64, epoch: u64) -> [u8; 16] {
    let mut iv = [0u8; 16];
    iv[..4].copy_from_slice(&pid.to_le_bytes());
    iv[4..12].copy_from_slice(&vpn.to_le_bytes());
    let tag = u32::from_le_bytes(*b"SNTR") ^ (epoch as u32) ^ ((epoch >> 32) as u32);
    iv[12..].copy_from_slice(&tag.to_le_bytes());
    iv
}

/// Pager statistics, consumed by the background-computation experiments
/// (Figures 6–8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Faults handled by the pager.
    pub faults: u64,
    /// Pages decrypted into on-SoC slots.
    pub pageins: u64,
    /// Pages re-encrypted back to DRAM.
    pub pageouts: u64,
    /// Bytes decrypted.
    pub bytes_decrypted: u64,
    /// Bytes encrypted.
    pub bytes_encrypted: u64,
    /// Non-empty [`Pager::evict_all`] sweeps (one per lock transition
    /// with resident pages).
    pub evict_batches: u64,
    /// Pages evicted across all such sweeps.
    pub evict_batch_pages: u64,
    /// Faults refused because the frame is quarantined (poisoned
    /// ciphertext caught by the integrity plane — never paged in).
    pub quarantine_rejects: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    addr: u64,
    occupant: Option<(u32, u64)>,
}

/// The encrypted-DRAM pager.
#[derive(Debug, Default)]
pub struct Pager {
    slots: Vec<Slot>,
    /// FIFO of occupied slot indices, oldest first.
    resident: std::collections::VecDeque<usize>,
    /// Indices of empty slots. Invariant: `free` holds exactly the slots
    /// whose `occupant` is `None`, so acquiring a slot is O(1) instead of
    /// a scan over every slot (the fault path runs this on each trap).
    free: Vec<usize>,
    /// Page-sized bounce buffer reused by `page_in`/`evict` so the
    /// per-fault path does not allocate.
    scratch: Vec<u8>,
    slot_limit: Option<usize>,
    /// Statistics.
    pub stats: PagerStats,
}

impl Pager {
    /// A pager with an optional cap on on-SoC page slots.
    #[must_use]
    pub fn new(slot_limit: Option<usize>) -> Self {
        Pager {
            slot_limit,
            ..Pager::default()
        }
    }

    /// Number of on-SoC slots currently held.
    #[must_use]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of pages currently resident on-SoC.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Handle a fault on an encrypted page of a sensitive background
    /// process (Figure 1's three steps, plus eviction when full).
    ///
    /// # Errors
    ///
    /// [`SentryError::OnSocExhausted`] if no slot can be obtained at
    /// all; kernel/SoC errors from the copies.
    #[allow(clippy::too_many_arguments)] // the lifecycle's full plumbing: store, kernel, journal, integrity, commit tagger
    pub fn handle_fault(
        &mut self,
        store: &mut OnSocStore,
        kernel: &mut Kernel,
        txn: &mut TxnJournal,
        integrity: &mut IntegrityPlane,
        commit: &CommitTagger,
        fault: &PageFault,
        epoch: u64,
    ) -> Result<(), SentryError> {
        kernel.soc.clock.advance(kernel.soc.costs.page_fault_ns);
        self.stats.faults += 1;

        // Inspect the faulting PTE.
        let pte = *kernel.proc(fault.pid)?.page_table.get(fault.vpn).ok_or(
            SentryError::Unresolvable {
                pid: fault.pid,
                vpn: fault.vpn,
            },
        )?;

        match pte.backing {
            Backing::OnSoc(_) => {
                // Already resident; just re-arm.
                set_young(kernel, fault.pid, fault.vpn, true)?;
                Ok(())
            }
            Backing::Dram(frame) if pte.encrypted => {
                // A quarantined frame never pages in: report its stored
                // violation instead of decrypting poisoned ciphertext.
                if let Some(err) = integrity.violation_for(frame) {
                    self.stats.quarantine_rejects += 1;
                    return Err(err);
                }
                let slot_idx = self.acquire_slot(store, kernel, txn, integrity, commit, epoch)?;
                self.page_in(
                    store, kernel, integrity, slot_idx, fault.pid, fault.vpn, frame,
                )
            }
            Backing::Dram(_) => {
                // Unencrypted page (e.g. shared with a non-sensitive
                // app): nothing to decrypt, just re-arm.
                set_young(kernel, fault.pid, fault.vpn, true)?;
                Ok(())
            }
        }
    }

    /// Obtain a free slot, locking more on-SoC storage if allowed and
    /// evicting the oldest resident page otherwise.
    fn acquire_slot(
        &mut self,
        store: &mut OnSocStore,
        kernel: &mut Kernel,
        txn: &mut TxnJournal,
        integrity: &mut IntegrityPlane,
        commit: &CommitTagger,
        epoch: u64,
    ) -> Result<usize, SentryError> {
        if let Some(i) = self.free.pop() {
            debug_assert!(self.slots[i].occupant.is_none(), "free list out of sync");
            return Ok(i);
        }
        let may_grow = self.slot_limit.is_none_or(|lim| self.slots.len() < lim);
        if may_grow {
            match store.alloc_page(&mut kernel.soc) {
                Ok(addr) => {
                    self.slots.push(Slot {
                        addr,
                        occupant: None,
                    });
                    return Ok(self.slots.len() - 1);
                }
                Err(SentryError::OnSocExhausted) => {}
                Err(e) => return Err(e),
            }
        }
        // Peek, don't pop: a kill inside `evict` must leave the victim
        // at the FIFO head so recovery (and the retried fault) still
        // agree with an uninterrupted run on who gets evicted.
        let victim = *self.resident.front().ok_or(SentryError::OnSocExhausted)?;
        self.evict(store, kernel, txn, integrity, commit, victim, epoch)?;
        self.resident.pop_front();
        // `evict` pushed the victim onto the free list; claim it back.
        let reclaimed = self.free.pop().expect("evict frees its slot");
        debug_assert_eq!(reclaimed, victim);
        Ok(reclaimed)
    }

    /// Figure 1 in reverse: encrypt the slot's page in place and copy it
    /// back to its home DRAM frame; re-arm the trap.
    ///
    /// Runs as a journaled two-phase commit: the ciphertext is computed
    /// in scratch, the intent (slot address, home frame, IV, ciphertext
    /// tag) is journaled on-SoC, and only then are the frame published
    /// and the PTE flipped. A kill anywhere in between is completed or
    /// rolled forward by [`crate::Sentry::recover`]; the slot itself is
    /// only reclaimed in the in-memory tail, after the journal closes.
    #[allow(clippy::too_many_arguments)] // same plumbing as `handle_fault`
    fn evict(
        &mut self,
        store: &mut OnSocStore,
        kernel: &mut Kernel,
        txn: &mut TxnJournal,
        integrity: &mut IntegrityPlane,
        commit: &CommitTagger,
        slot_idx: usize,
        epoch: u64,
    ) -> Result<(), SentryError> {
        let slot = self.slots[slot_idx];
        let (pid, vpn) = slot.occupant.expect("evicting an empty slot");

        self.scratch.resize(PAGE_SIZE as usize, 0);
        let page = &mut self.scratch;
        kernel.soc.mem_read(slot.addr, page.as_mut_slice())?;

        let home = {
            let pte = kernel
                .proc(pid)?
                .page_table
                .get(vpn)
                .ok_or(SentryError::Unresolvable { pid, vpn })?;
            pte.home_frame
                .ok_or(SentryError::Unresolvable { pid, vpn })?
        };

        // Encrypt in scratch (on the SoC): no DRAM mutation yet.
        let iv = page_iv(pid, vpn, epoch);
        {
            let sentry_kernel::kernel::Kernel { soc, crypto, .. } = kernel;
            crypto
                .preferred_mut()
                .map_err(SentryError::Kernel)?
                .encrypt(soc, &iv, page.as_mut_slice())
                .map_err(SentryError::Kernel)?;
        }
        // The commit tag follows the cipher mode: the final CBC block
        // (chains over the whole page, so it cannot collide between old
        // and new ciphertexts of a rewritten page the way the first
        // block does) or the commit CMAC under XTS/CTR.
        let tag = commit.tag(&iv, &self.scratch);

        // Journal the intent, then publish and flip.
        let entry = JournalEntry {
            pid,
            vpn,
            src: slot.addr,
            frame: home,
            epoch,
            iv,
            tag,
            done: false,
        };
        txn.open(
            &mut kernel.soc,
            TxnOp::Encrypt,
            epoch,
            std::slice::from_ref(&entry),
        )?;
        // The integrity tag goes on-SoC before the ciphertext is
        // visible in DRAM (no unrecorded-tamper window); idempotent on
        // a recovery replay.
        integrity.store_tags(&mut kernel.soc, store, &[(home, iv)], &self.scratch)?;
        kernel.soc.failpoint("pager.evict")?;
        kernel.soc.clock.advance(kernel.soc.costs.page_copy_ns);
        kernel.soc.mem_write(home, &self.scratch)?;

        // Read-back verify: the published frame must MAC against the
        // tag just stored. An active attacker racing the publish (or a
        // failing DRAM cell) is caught here, not at the next unlock;
        // verify_one's bounded re-reads heal a transient glitch, a
        // persistent mismatch quarantines the frame and leaves the
        // journal open for `recover()` to roll the eviction forward
        // from the still-intact on-SoC plaintext.
        if integrity.enabled() {
            let mut readback = vec![0u8; PAGE_SIZE as usize];
            kernel.soc.mem_read(home, &mut readback)?;
            if let VerifyOutcome::Mismatch { expected, got } =
                integrity.verify_one(&mut kernel.soc, store, home, &iv, &mut readback)?
            {
                self.stats.quarantine_rejects += 1;
                return Err(integrity.quarantine(QuarantinedPage {
                    pid,
                    vpn,
                    frame: home,
                    epoch,
                    tag_expected: expected,
                    tag_got: got,
                }));
            }
        }

        let proc = kernel.proc_mut(pid)?;
        let pte = proc
            .page_table
            .get_mut(vpn)
            .ok_or(SentryError::Unresolvable { pid, vpn })?;
        pte.backing = Backing::Dram(home);
        pte.home_frame = None;
        pte.encrypted = true;
        pte.young = false;
        pte.dirty = false;
        pte.crypt_epoch = epoch;
        proc.stats.bytes_encrypted += PAGE_SIZE;
        txn.mark_done(&mut kernel.soc, 0)?;
        txn.close(&mut kernel.soc)?;

        // In-memory tail: reclaim the slot.
        self.slots[slot_idx].occupant = None;
        self.free.push(slot_idx);
        self.stats.pageouts += 1;
        self.stats.bytes_encrypted += PAGE_SIZE;
        Ok(())
    }

    /// Figure 1 forward: copy the encrypted page on-SoC and decrypt it
    /// in place.
    #[allow(clippy::too_many_arguments)] // same plumbing as `handle_fault`
    fn page_in(
        &mut self,
        store: &mut OnSocStore,
        kernel: &mut Kernel,
        integrity: &mut IntegrityPlane,
        slot_idx: usize,
        pid: u32,
        vpn: u64,
        frame: u64,
    ) -> Result<(), SentryError> {
        // Journal-free by design: every byte this path writes lands
        // on-SoC (the slot), never in DRAM, so a kill at any step leaves
        // DRAM and the PTE exactly as they were before the fault.
        kernel.soc.failpoint("pager.pagein")?;
        let slot_addr = self.slots[slot_idx].addr;
        self.scratch.resize(PAGE_SIZE as usize, 0);
        let page = &mut self.scratch;

        // Step 1: copy the encrypted page into the on-SoC slot.
        kernel.soc.mem_read(frame, page.as_mut_slice())?;
        kernel.soc.clock.advance(kernel.soc.costs.page_copy_ns);

        // Step 2: decrypt in place, under the IV the page was actually
        // encrypted with (its PTE remembers the lock epoch used).
        let stored_epoch = kernel
            .proc(pid)?
            .page_table
            .get(vpn)
            .ok_or(SentryError::Unresolvable { pid, vpn })?
            .crypt_epoch;
        let iv = page_iv(pid, vpn, stored_epoch);

        // MAC-verify the gathered ciphertext before the cipher runs on
        // it. A mismatch quarantines the frame: the PTE is untouched,
        // the freshly acquired slot goes back to the free list, and the
        // fault reports the violation.
        if let VerifyOutcome::Mismatch { expected, got } =
            integrity.verify_one(&mut kernel.soc, store, frame, &iv, page.as_mut_slice())?
        {
            self.free.push(slot_idx);
            self.stats.quarantine_rejects += 1;
            return Err(integrity.quarantine(QuarantinedPage {
                pid,
                vpn,
                frame,
                epoch: stored_epoch,
                tag_expected: expected,
                tag_got: got,
            }));
        }
        let page = &mut self.scratch;
        let sentry_kernel::kernel::Kernel { soc, crypto, .. } = kernel;
        crypto
            .preferred_mut()
            .map_err(SentryError::Kernel)?
            .decrypt(soc, &iv, page.as_mut_slice())
            .map_err(SentryError::Kernel)?;
        soc.mem_write(slot_addr, page.as_slice())?;

        // Step 3: repoint the PTE and set young.
        let proc = kernel.proc_mut(pid)?;
        let pte = proc
            .page_table
            .get_mut(vpn)
            .ok_or(SentryError::Unresolvable { pid, vpn })?;
        pte.backing = Backing::OnSoc(slot_addr);
        pte.home_frame = Some(frame);
        pte.young = true;
        proc.stats.bytes_decrypted += PAGE_SIZE;

        self.slots[slot_idx].occupant = Some((pid, vpn));
        self.resident.push_back(slot_idx);
        self.stats.pageins += 1;
        self.stats.bytes_decrypted += PAGE_SIZE;
        Ok(())
    }

    /// Evict every resident page (Sentry's lock path runs this so all
    /// sensitive state is encrypted in DRAM before the device sleeps).
    /// Re-encryption uses `epoch` — the lock epoch of the transition
    /// driving the sweep.
    ///
    /// # Errors
    ///
    /// Propagates eviction errors.
    pub fn evict_all(
        &mut self,
        store: &mut OnSocStore,
        kernel: &mut Kernel,
        txn: &mut TxnJournal,
        integrity: &mut IntegrityPlane,
        commit: &CommitTagger,
        epoch: u64,
    ) -> Result<(), SentryError> {
        // The FIFO is *not* drained up front: a kill mid-sweep must
        // leave the not-yet-published victims resident, so recovery (and
        // a retried lock) still sees them. Slot bookkeeping happens only
        // in the in-memory tail, after every journal chunk has closed.
        let victims: Vec<usize> = self.resident.iter().copied().collect();
        if victims.is_empty() {
            return Ok(());
        }
        let n = victims.len();
        let page = PAGE_SIZE as usize;

        // Gather every victim page into one contiguous run, remembering
        // each page's IV and scatter target. The whole sweep then goes
        // through the engine as a single extent request, so a batch
        // backend streams all pages through its kernels back-to-back
        // instead of restarting per page. Byte-identical to evicting one
        // page at a time (per-page IVs make each page independent).
        let mut buf = vec![0u8; n * page];
        let mut ivs = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for (chunk, &slot_idx) in buf.chunks_exact_mut(page).zip(&victims) {
            let slot = self.slots[slot_idx];
            let (pid, vpn) = slot.occupant.expect("evicting an empty slot");
            kernel.soc.mem_read(slot.addr, chunk)?;
            let pte = kernel
                .proc(pid)?
                .page_table
                .get(vpn)
                .ok_or(SentryError::Unresolvable { pid, vpn })?;
            let home = pte
                .home_frame
                .ok_or(SentryError::Unresolvable { pid, vpn })?;
            ivs.push(page_iv(pid, vpn, epoch));
            targets.push((pid, vpn, home));
        }

        {
            let sentry_kernel::kernel::Kernel { soc, crypto, .. } = kernel;
            crypto
                .preferred_mut()
                .map_err(SentryError::Kernel)?
                .encrypt_extent(soc, &ivs, &mut buf)
                .map_err(SentryError::Kernel)?;
            soc.clock.advance(soc.costs.page_copy_ns * n as u64);
        }

        // Every tag on-SoC before any ciphertext is published below.
        let tag_jobs: Vec<(u64, [u8; 16])> = targets
            .iter()
            .zip(&ivs)
            .map(|(&(_, _, home), &iv)| (home, iv))
            .collect();
        integrity.store_tags(&mut kernel.soc, store, &tag_jobs, &buf)?;

        // Scatter the ciphertext back to each page's home frame and
        // re-arm the traps, in journaled chunks: every publish + PTE
        // flip is covered by an open journal entry, so a kill anywhere
        // in the sweep is completed by recovery.
        let mut start = 0usize;
        while start < n {
            let end = (start + MAX_ENTRIES).min(n);
            let entries: Vec<JournalEntry> = (start..end)
                .map(|i| {
                    let (pid, vpn, home) = targets[i];
                    let tag = commit.tag(&ivs[i], &buf[i * page..(i + 1) * page]);
                    JournalEntry {
                        pid,
                        vpn,
                        src: self.slots[victims[i]].addr,
                        frame: home,
                        epoch,
                        iv: ivs[i],
                        tag,
                        done: false,
                    }
                })
                .collect();
            txn.open(&mut kernel.soc, TxnOp::Encrypt, epoch, &entries)?;
            for i in start..end {
                let (pid, vpn, home) = targets[i];
                kernel.soc.failpoint("pager.evict")?;
                kernel.soc.mem_write(home, &buf[i * page..(i + 1) * page])?;
                let proc = kernel.proc_mut(pid)?;
                let pte = proc
                    .page_table
                    .get_mut(vpn)
                    .ok_or(SentryError::Unresolvable { pid, vpn })?;
                pte.backing = Backing::Dram(home);
                pte.home_frame = None;
                pte.encrypted = true;
                pte.young = false;
                pte.dirty = false;
                pte.crypt_epoch = epoch;
                proc.stats.bytes_encrypted += PAGE_SIZE;
                txn.mark_done(&mut kernel.soc, i - start)?;
            }
            txn.close(&mut kernel.soc)?;
            start = end;
        }

        // In-memory tail: reclaim every slot at once.
        self.resident.clear();
        for &slot_idx in &victims {
            self.slots[slot_idx].occupant = None;
            self.free.push(slot_idx);
            self.stats.pageouts += 1;
            self.stats.bytes_encrypted += PAGE_SIZE;
        }
        self.stats.evict_batches += 1;
        self.stats.evict_batch_pages += n as u64;
        Ok(())
    }

    /// Post-recovery reconciliation: drop any resident slot whose
    /// occupant's PTE no longer points at it. Recovery completes
    /// interrupted evictions by flipping PTEs back to their DRAM frames;
    /// the pager's in-memory FIFO (which never reached its tail commit)
    /// is re-synchronized here from the page tables — the single source
    /// of truth.
    pub fn reconcile(&mut self, kernel: &Kernel) {
        let resident: Vec<usize> = self.resident.drain(..).collect();
        for slot_idx in resident {
            let slot = self.slots[slot_idx];
            let still_resident = slot.occupant.is_some_and(|(pid, vpn)| {
                kernel
                    .procs
                    .get(&pid)
                    .and_then(|p| p.page_table.get(vpn))
                    .is_some_and(|pte| matches!(pte.backing, Backing::OnSoc(a) if a == slot.addr))
            });
            if still_resident {
                self.resident.push_back(slot_idx);
            } else {
                self.slots[slot_idx].occupant = None;
                self.free.push(slot_idx);
            }
        }
    }

    /// Drop every resident slot owned by a dying process without
    /// writing it back: the plaintext is wiped in place and the slot
    /// returns to the free list. Called on process teardown so the
    /// pager never pins on-SoC pages for pids that no longer exist.
    ///
    /// Returns the number of slots released.
    ///
    /// # Errors
    ///
    /// Propagates wipe errors.
    pub fn drop_pid(&mut self, kernel: &mut Kernel, pid: u32) -> Result<u64, SentryError> {
        let mut dropped = 0u64;
        let resident: Vec<usize> = self.resident.drain(..).collect();
        let zero = vec![0u8; PAGE_SIZE as usize];
        for slot_idx in resident {
            if self.slots[slot_idx].occupant.is_some_and(|(p, _)| p == pid) {
                kernel.soc.mem_write(self.slots[slot_idx].addr, &zero)?;
                self.slots[slot_idx].occupant = None;
                self.free.push(slot_idx);
                dropped += 1;
            } else {
                self.resident.push_back(slot_idx);
            }
        }
        Ok(dropped)
    }

    /// Return free slots at the tail of the slot table to the on-SoC
    /// store. Slot indices are load-bearing (the FIFO and free list
    /// hold them), so only a free suffix can be shrunk — enough to
    /// relieve pressure after teardown or under a tightened budget.
    ///
    /// Returns the number of pages returned to the store.
    ///
    /// # Errors
    ///
    /// Propagates wipe errors from the store's free path.
    pub fn shrink_free_slots(
        &mut self,
        store: &mut OnSocStore,
        kernel: &mut Kernel,
    ) -> Result<u64, SentryError> {
        let mut freed = 0u64;
        while let Some(slot) = self.slots.last() {
            if slot.occupant.is_some() {
                break;
            }
            let idx = self.slots.len() - 1;
            if self.resident.contains(&idx) {
                break;
            }
            let slot = self.slots.pop().expect("checked non-empty");
            self.free.retain(|&i| i != idx);
            store.free_page(&mut kernel.soc, slot.addr)?;
            freed += 1;
        }
        Ok(freed)
    }

    /// Release all on-SoC slots back to the store (after
    /// [`Pager::evict_all`]).
    ///
    /// # Errors
    ///
    /// Propagates wipe errors.
    pub fn release_slots(
        &mut self,
        store: &mut OnSocStore,
        kernel: &mut Kernel,
    ) -> Result<(), SentryError> {
        debug_assert!(self.resident.is_empty(), "evict_all first");
        self.free.clear();
        for slot in self.slots.drain(..) {
            store.free_page(&mut kernel.soc, slot.addr)?;
        }
        Ok(())
    }
}

fn set_young(kernel: &mut Kernel, pid: u32, vpn: u64, young: bool) -> Result<(), SentryError> {
    let proc = kernel.proc_mut(pid).map_err(SentryError::Kernel)?;
    let pte = proc
        .page_table
        .get_mut(vpn)
        .ok_or(SentryError::Unresolvable { pid, vpn })?;
    pte.young = young;
    Ok(())
}
