//! Block cipher modes of operation: ECB, CBC, XTS, and CTR.
//!
//! Sentry originally used CBC — the default AES mode on Android and Linux
//! at the time of the paper — for both the encrypted-DRAM pager and
//! dm-crypt. CBC *encryption* is serially chained, though: block `j`
//! cannot start until block `j-1` finishes, so a 16-lane bitsliced kernel
//! runs it one lane out of sixteen. [`xts_encrypt`]/[`xts_decrypt`]
//! (IEEE P1619) and [`ctr_crypt`] are the parallel per-page alternatives:
//! every block is independent given a cheap GF(2^128) tweak chain (XTS) or
//! a counter (CTR), so both directions fill every lane. All block-mode
//! functions operate on whole blocks; callers (the pager works in 4 KiB
//! pages, dm-crypt in 512-byte sectors) always supply block-aligned
//! buffers.

use crate::batch::BlockCipherBatch;
use crate::block::{Aes, AesRef, Block};
use crate::BLOCK_SIZE;

/// The per-page cipher mode a Sentry engine runs.
///
/// Selected on `SentryConfig` and threaded through every producer and
/// consumer of page ciphertext: the kernel engines, the parallel lock
/// batch, the pager's extent streams, dm-crypt sectors, and the txn
/// journal's commit-tag scheme (non-chaining modes switch the tag from
/// "final CBC block" to the integrity CMAC, since the last XTS/CTR block
/// no longer depends on the whole page).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PageCipherMode {
    /// AES-CBC: the paper's mode. Decryption is data-parallel, but the
    /// encryption chain keeps only one bitsliced lane busy per page.
    #[default]
    Cbc,
    /// AES-XTS (IEEE P1619): tweak = page IV, per-block tweak chain via
    /// GF(2^128) doubling. Parallel in both directions.
    Xts,
    /// Epoch-bound AES-CTR: the 16-byte page IV is the initial counter
    /// block, incremented big-endian per block. Parallel in both
    /// directions.
    Ctr,
}

impl PageCipherMode {
    /// Display name (bench tables, JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PageCipherMode::Cbc => "cbc",
            PageCipherMode::Xts => "xts",
            PageCipherMode::Ctr => "ctr",
        }
    }

    /// Whether a page's last ciphertext block depends on every earlier
    /// plaintext block. True only for CBC; the txn journal's commit tag
    /// can use the final block directly when this holds and must fall
    /// back to a MAC otherwise.
    #[must_use]
    pub fn is_chaining(self) -> bool {
        matches!(self, PageCipherMode::Cbc)
    }

    /// All modes, in declaration order.
    #[must_use]
    pub fn all() -> [PageCipherMode; 3] {
        [
            PageCipherMode::Cbc,
            PageCipherMode::Xts,
            PageCipherMode::Ctr,
        ]
    }
}

impl std::fmt::Display for PageCipherMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scratch blocks used by the batched modes below: two bitsliced batches,
/// so the batch backend streams at full width while the scratch stays on
/// the stack (512 bytes).
const SCRATCH_BLOCKS: usize = 2 * crate::bitslice::PAR_BLOCKS;

/// A single-block cipher, the building block for the modes below.
///
/// Implemented by both the fast and the reference AES so the modes can be
/// cross-checked between them.
pub trait BlockCipher {
    /// Encrypt one 16-byte block in place.
    fn encrypt_block(&self, block: &mut Block);
    /// Decrypt one 16-byte block in place.
    fn decrypt_block(&self, block: &mut Block);
}

impl BlockCipher for Aes {
    fn encrypt_block(&self, block: &mut Block) {
        Aes::encrypt_block(self, block);
    }
    fn decrypt_block(&self, block: &mut Block) {
        Aes::decrypt_block(self, block);
    }
}

impl BlockCipher for AesRef {
    fn encrypt_block(&self, block: &mut Block) {
        AesRef::encrypt_block(self, block);
    }
    fn decrypt_block(&self, block: &mut Block) {
        AesRef::decrypt_block(self, block);
    }
}

/// Assert that `data` is a whole number of blocks.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of 16. Sentry only ever
/// encrypts page- and sector-sized buffers, so a partial block indicates a
/// logic error rather than a recoverable condition.
fn check_aligned(data: &[u8]) {
    assert!(
        data.len().is_multiple_of(BLOCK_SIZE),
        "buffer length {} is not a multiple of the AES block size",
        data.len()
    );
}

/// Encrypt `data` in place in ECB mode.
///
/// ECB is provided for completeness and microbenchmarks only; it leaks
/// equal-plaintext-block structure and is never used by Sentry proper.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn ecb_encrypt<C: BlockCipher>(cipher: &C, data: &mut [u8]) {
    check_aligned(data);
    for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
        let block: &mut Block = chunk.try_into().expect("chunk is block sized");
        cipher.encrypt_block(block);
    }
}

/// Decrypt `data` in place in ECB mode.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn ecb_decrypt<C: BlockCipher>(cipher: &C, data: &mut [u8]) {
    check_aligned(data);
    for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
        let block: &mut Block = chunk.try_into().expect("chunk is block sized");
        cipher.decrypt_block(block);
    }
}

/// Encrypt `data` in place in CBC mode with the given initialization
/// vector.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn cbc_encrypt<C: BlockCipher>(cipher: &C, iv: &Block, data: &mut [u8]) {
    check_aligned(data);
    let mut chain = *iv;
    for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
        for (b, c) in chunk.iter_mut().zip(chain.iter()) {
            *b ^= c;
        }
        let block: &mut Block = chunk.try_into().expect("chunk is block sized");
        cipher.encrypt_block(block);
        chain = *block;
    }
}

/// CBC-encrypt several *independent* buffers at once, the `i`-th chained
/// from `ivs[i]`, filling the batch kernel's lanes with one chain each.
///
/// A single CBC encryption chain is inherently serial — block `j` cannot
/// start until block `j-1` is done — which is why the bitsliced backend
/// loses to the scalar one on single-page `cbc_encrypt`. But chains from
/// *different* buffers are independent, so this routine runs block
/// position `j` of up to [`BlockCipherBatch::batch_width`] buffers through
/// one `encrypt_blocks` call, keeping all 16 bitsliced lanes busy. Buffers
/// may have different (block-aligned) lengths; shorter ones simply drop
/// out of the batch once exhausted. Byte-identical to calling
/// [`cbc_encrypt`] on each buffer separately, for every backend.
///
/// # Panics
///
/// Panics if `ivs.len() != buffers.len()` or any buffer is not
/// block-aligned.
pub fn cbc_encrypt_batch<C: BlockCipherBatch>(
    cipher: &C,
    ivs: &[[u8; 16]],
    buffers: &mut [&mut [u8]],
) {
    assert_eq!(ivs.len(), buffers.len(), "one IV per buffer");
    for buf in buffers.iter() {
        check_aligned(buf);
    }
    let width = cipher.batch_width().clamp(1, SCRATCH_BLOCKS);
    if width == 1 {
        // Scalar backend: lane-filling buys nothing, keep the fast
        // serial-chain loop.
        for (iv, buf) in ivs.iter().zip(buffers.iter_mut()) {
            cbc_encrypt(cipher, iv, buf);
        }
        return;
    }
    let mut scratch = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    let mut start = 0usize;
    while start < buffers.len() {
        let lanes = width.min(buffers.len() - start);
        let group = &mut buffers[start..start + lanes];
        let mut chain = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
        chain[..lanes].copy_from_slice(&ivs[start..start + lanes]);
        let max_blocks = group
            .iter()
            .map(|b| b.len() / BLOCK_SIZE)
            .max()
            .unwrap_or(0);
        let mut live = [0usize; SCRATCH_BLOCKS];
        for j in 0..max_blocks {
            let off = j * BLOCK_SIZE;
            let mut n = 0;
            for (lane, buf) in group.iter().enumerate() {
                if off < buf.len() {
                    live[n] = lane;
                    n += 1;
                }
            }
            for (slot, &lane) in live[..n].iter().enumerate() {
                let block = &group[lane][off..off + BLOCK_SIZE];
                for ((s, b), c) in scratch[slot].iter_mut().zip(block).zip(&chain[lane]) {
                    *s = *b ^ *c;
                }
            }
            cipher.encrypt_blocks(&mut scratch[..n]);
            for (slot, &lane) in live[..n].iter().enumerate() {
                group[lane][off..off + BLOCK_SIZE].copy_from_slice(&scratch[slot]);
                chain[lane] = scratch[slot];
            }
        }
        start += lanes;
    }
}

/// CBC-encrypt a run of consecutive equal-sized extents laid out
/// back-to-back in `data`, the `i`-th chained from `ivs[i]`.
///
/// Encrypt-side counterpart of [`cbc_decrypt_extents`]: the extents are
/// independent chains, so they are fanned across the batch kernel's lanes
/// by [`cbc_encrypt_batch`]. This is what lets `Pager::evict_all` and the
/// lock path feed the bitsliced backend 16 pages' chains at once instead
/// of one serial chain at a time. Byte-identical to encrypting each
/// extent separately.
///
/// # Panics
///
/// Panics if `data` does not divide evenly into `ivs.len()` block-aligned
/// extents (an empty `ivs` requires an empty `data`).
pub fn cbc_encrypt_extents<C: BlockCipherBatch>(cipher: &C, ivs: &[[u8; 16]], data: &mut [u8]) {
    if ivs.is_empty() {
        assert!(data.is_empty(), "extent data without IVs");
        return;
    }
    assert!(
        data.len().is_multiple_of(ivs.len()),
        "data does not divide into {} extents",
        ivs.len()
    );
    let unit = data.len() / ivs.len();
    if unit == 0 {
        return;
    }
    check_aligned(&data[..unit]);
    let mut buffers: Vec<&mut [u8]> = data.chunks_exact_mut(unit).collect();
    cbc_encrypt_batch(cipher, ivs, &mut buffers);
}

/// Decrypt `data` in place in CBC mode with the given initialization
/// vector.
///
/// CBC decryption is data-parallel — `pt[i] = D(ct[i]) ^ ct[i-1]` needs
/// only two ciphertext blocks — so this drives the batch API: blocks are
/// block-decrypted `SCRATCH_BLOCKS` at a time and the chaining XOR is
/// applied afterwards from a saved copy of the ciphertext. Byte-identical
/// to the serial formulation for every backend.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn cbc_decrypt<C: BlockCipherBatch>(cipher: &C, iv: &Block, data: &mut [u8]) {
    check_aligned(data);
    let (blocks, _) = data.as_chunks_mut::<BLOCK_SIZE>();
    let mut chain = *iv;
    let mut saved = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    for chunk in blocks.chunks_mut(SCRATCH_BLOCKS) {
        let n = chunk.len();
        saved[..n].copy_from_slice(chunk);
        cipher.decrypt_blocks(chunk);
        for (i, block) in chunk.iter_mut().enumerate() {
            let prev = if i == 0 { &chain } else { &saved[i - 1] };
            for (b, p) in block.iter_mut().zip(prev.iter()) {
                *b ^= p;
            }
        }
        chain = saved[n - 1];
    }
}

/// CBC-decrypt a run of consecutive equal-sized extents laid out
/// back-to-back in `data`, the `i`-th chained from `ivs[i]`.
///
/// Because CBC decryption needs only a ciphertext block and its
/// predecessor (or, at an extent head, that extent's IV), the *entire
/// multi-extent run* is data-parallel — the batch kernel streams across
/// extent boundaries. That matters when the unit is smaller than the
/// scratch: a 512-byte dm-crypt sector is 32 blocks, but a 4 KiB buffer
/// cache block is 8 sectors decrypted here as one 256-block stream with
/// no pipeline drain between sectors. Byte-identical to decrypting each
/// extent separately.
///
/// # Panics
///
/// Panics if `data` does not divide evenly into `ivs.len()` block-aligned
/// extents (an empty `ivs` requires an empty `data`).
pub fn cbc_decrypt_extents<C: BlockCipherBatch>(cipher: &C, ivs: &[[u8; 16]], data: &mut [u8]) {
    if ivs.is_empty() {
        assert!(data.is_empty(), "extent data without IVs");
        return;
    }
    assert!(
        data.len().is_multiple_of(ivs.len()),
        "data does not divide into {} extents",
        ivs.len()
    );
    let unit = data.len() / ivs.len();
    check_aligned(&data[..unit]);
    let blocks_per_unit = unit / BLOCK_SIZE;
    let (blocks, _) = data.as_chunks_mut::<BLOCK_SIZE>();
    let mut saved = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    // Last ciphertext block of the previous scratch chunk, for chains
    // that straddle a chunk boundary.
    let mut carry = [0u8; BLOCK_SIZE];
    for (chunk_no, chunk) in blocks.chunks_mut(SCRATCH_BLOCKS).enumerate() {
        let n = chunk.len();
        saved[..n].copy_from_slice(chunk);
        cipher.decrypt_blocks(chunk);
        for (i, block) in chunk.iter_mut().enumerate() {
            let global = chunk_no * SCRATCH_BLOCKS + i;
            let prev = if global.is_multiple_of(blocks_per_unit) {
                &ivs[global / blocks_per_unit]
            } else if i == 0 {
                &carry
            } else {
                &saved[i - 1]
            };
            for (b, p) in block.iter_mut().zip(prev.iter()) {
                *b ^= p;
            }
        }
        carry = saved[n - 1];
    }
}

/// Encrypt or decrypt `data` in place in CTR mode (the operations are
/// identical). The counter occupies the last 8 bytes of the nonce block,
/// big-endian, starting from `initial_counter`.
///
/// Keystream blocks are independent, so they are generated
/// `SCRATCH_BLOCKS` at a time through the batch API.
///
/// Unlike CBC, CTR handles arbitrary (non-block-aligned) lengths.
pub fn ctr_xor<C: BlockCipherBatch>(
    cipher: &C,
    nonce: &[u8; 8],
    initial_counter: u64,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    let mut ks = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    for chunk in data.chunks_mut(SCRATCH_BLOCKS * BLOCK_SIZE) {
        let nblocks = chunk.len().div_ceil(BLOCK_SIZE);
        for k in ks[..nblocks].iter_mut() {
            k[..8].copy_from_slice(nonce);
            k[8..].copy_from_slice(&counter.to_be_bytes());
            counter = counter.wrapping_add(1);
        }
        cipher.encrypt_blocks(&mut ks[..nblocks]);
        for (b, k) in chunk.iter_mut().zip(ks.iter().flatten()) {
            *b ^= k;
        }
    }
}

/// Multiply an element of GF(2^128) by `x` (the XTS tweak step), using
/// the IEEE P1619 convention: byte 0 holds the lowest-order coefficients,
/// the carry shifts out of byte 15's MSB, and the reduction polynomial
/// `x^128 + x^7 + x^2 + x + 1` feeds back as `0x87` into byte 0.
pub fn xts_mul_alpha(t: &mut [u8; 16]) {
    let mut carry = 0u8;
    for b in t.iter_mut() {
        let next = *b >> 7;
        *b = (*b << 1) | carry;
        carry = next;
    }
    if carry != 0 {
        t[0] ^= 0x87;
    }
}

fn xor_block(block: &mut Block, mask: &Block) {
    for (b, m) in block.iter_mut().zip(mask.iter()) {
        *b ^= m;
    }
}

/// The shared XTS data path: given the already-encrypted tweak `t0`,
/// walk the GF(2^128) tweak chain (serial but cipher-free, a shift and a
/// conditional XOR per block) and run the actual block cipher
/// `SCRATCH_BLOCKS` at a time. Every lane fills in both directions.
fn xts_apply<C: BlockCipherBatch>(cipher: &C, encrypt: bool, mut t: Block, data: &mut [u8]) {
    let (blocks, _) = data.as_chunks_mut::<BLOCK_SIZE>();
    let mut tweaks = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    for chunk in blocks.chunks_mut(SCRATCH_BLOCKS) {
        let n = chunk.len();
        for tw in tweaks[..n].iter_mut() {
            *tw = t;
            xts_mul_alpha(&mut t);
        }
        for (block, tw) in chunk.iter_mut().zip(&tweaks) {
            xor_block(block, tw);
        }
        if encrypt {
            cipher.encrypt_blocks(chunk);
        } else {
            cipher.decrypt_blocks(chunk);
        }
        for (block, tw) in chunk.iter_mut().zip(&tweaks) {
            xor_block(block, tw);
        }
    }
}

/// Encrypt `data` in place in XTS mode (IEEE P1619).
///
/// `tweak` is the data unit's 16-byte tweak value (Sentry: the page IV;
/// dm-crypt: the sector IV), encrypted once under `tweak_cipher` to seed
/// the per-block GF(2^128) doubling chain. IEEE P1619 splits the key as
/// K1 ∥ K2 with independent schedules for data and tweak; Sentry's
/// engines pass the same cipher for both (XEX-style single-key XTS), so
/// the tracked full-simulation path — which owns exactly one keyed
/// context — stays byte-identical to the fast path.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn xts_encrypt<C: BlockCipherBatch>(
    cipher: &C,
    tweak_cipher: &impl BlockCipher,
    tweak: &[u8; 16],
    data: &mut [u8],
) {
    check_aligned(data);
    let mut t0 = *tweak;
    tweak_cipher.encrypt_block(&mut t0);
    xts_apply(cipher, true, t0, data);
}

/// Decrypt `data` in place in XTS mode. See [`xts_encrypt`]; the tweak
/// chain always uses the *encrypt* direction of `tweak_cipher`.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn xts_decrypt<C: BlockCipherBatch>(
    cipher: &C,
    tweak_cipher: &impl BlockCipher,
    tweak: &[u8; 16],
    data: &mut [u8],
) {
    check_aligned(data);
    let mut t0 = *tweak;
    tweak_cipher.encrypt_block(&mut t0);
    xts_apply(cipher, false, t0, data);
}

fn check_extents(ivs: &[[u8; 16]], data: &[u8]) -> usize {
    if ivs.is_empty() {
        assert!(data.is_empty(), "extent data without IVs");
        return 0;
    }
    assert!(
        data.len().is_multiple_of(ivs.len()),
        "data does not divide into {} extents",
        ivs.len()
    );
    let unit = data.len() / ivs.len();
    check_aligned(&data[..unit]);
    unit
}

/// XTS over a run of consecutive equal-sized extents laid out
/// back-to-back in `data`, the `i`-th tweaked from `ivs[i]`; `encrypt`
/// picks the direction (the tweak chain is direction-agnostic).
///
/// Every block of every extent is independent, so the batch kernel
/// streams across extent boundaries with no pipeline drain — a 512-byte
/// dm-crypt sector is only 32 blocks, but 8 sectors of a 4 KiB buffer
/// cache block run here as one 256-block stream. The per-extent tweak
/// bases are themselves encrypted as one batched call. Byte-identical to
/// ciphering each extent separately.
///
/// # Panics
///
/// Panics if `data` does not divide evenly into `ivs.len()` block-aligned
/// extents (an empty `ivs` requires an empty `data`).
pub fn xts_crypt_extents<C: BlockCipherBatch>(
    cipher: &C,
    tweak_cipher: &impl BlockCipherBatch,
    encrypt: bool,
    ivs: &[[u8; 16]],
    data: &mut [u8],
) {
    let unit = check_extents(ivs, data);
    if unit == 0 {
        return;
    }
    let blocks_per_unit = unit / BLOCK_SIZE;
    // Encrypt every extent's tweak base in one batched pass.
    let mut bases: Vec<Block> = ivs.to_vec();
    tweak_cipher.encrypt_blocks(&mut bases);

    let (blocks, _) = data.as_chunks_mut::<BLOCK_SIZE>();
    let mut tweaks = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    let mut t = [0u8; BLOCK_SIZE];
    for (chunk_no, chunk) in blocks.chunks_mut(SCRATCH_BLOCKS).enumerate() {
        let n = chunk.len();
        for (i, tw) in tweaks[..n].iter_mut().enumerate() {
            let global = chunk_no * SCRATCH_BLOCKS + i;
            if global.is_multiple_of(blocks_per_unit) {
                t = bases[global / blocks_per_unit];
            }
            *tw = t;
            xts_mul_alpha(&mut t);
        }
        for (block, tw) in chunk.iter_mut().zip(&tweaks) {
            xor_block(block, tw);
        }
        if encrypt {
            cipher.encrypt_blocks(chunk);
        } else {
            cipher.decrypt_blocks(chunk);
        }
        for (block, tw) in chunk.iter_mut().zip(&tweaks) {
            xor_block(block, tw);
        }
    }
}

/// Increment a full 16-byte counter block, big-endian (the NIST
/// SP 800-38A standard incrementing function over all 128 bits).
pub fn ctr_increment(block: &mut Block) {
    for b in block.iter_mut().rev() {
        *b = b.wrapping_add(1);
        if *b != 0 {
            break;
        }
    }
}

/// Encrypt or decrypt `data` in place in CTR mode, treating the full
/// 16-byte `iv` as the initial counter block (incremented big-endian per
/// block, as in NIST SP 800-38A). The operations are identical.
///
/// This is the page-mode CTR driver: Sentry passes the same
/// `page_iv(pid, vpn, epoch)` it uses as the CBC IV and XTS tweak, so
/// the epoch discipline that prevents IV reuse across lock cycles
/// carries over unchanged. Compare [`ctr_xor`], the nonce + 64-bit
/// counter variant used by stream consumers. Keystream blocks are
/// independent, so all lanes fill; arbitrary (non-block-aligned) lengths
/// are handled.
pub fn ctr_crypt<C: BlockCipherBatch>(cipher: &C, iv: &[u8; 16], data: &mut [u8]) {
    let mut counter = *iv;
    let mut ks = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    for chunk in data.chunks_mut(SCRATCH_BLOCKS * BLOCK_SIZE) {
        let nblocks = chunk.len().div_ceil(BLOCK_SIZE);
        for k in ks[..nblocks].iter_mut() {
            *k = counter;
            ctr_increment(&mut counter);
        }
        cipher.encrypt_blocks(&mut ks[..nblocks]);
        for (b, k) in chunk.iter_mut().zip(ks.iter().flatten()) {
            *b ^= k;
        }
    }
}

/// CTR over a run of consecutive equal-sized extents laid out
/// back-to-back in `data`, the `i`-th counting from `ivs[i]`
/// (encrypt and decrypt are the same operation).
///
/// Like [`xts_crypt_extents`], the whole run streams through the batch
/// kernel with no drain at extent boundaries. Byte-identical to calling
/// [`ctr_crypt`] on each extent separately.
///
/// # Panics
///
/// Panics if `data` does not divide evenly into `ivs.len()` block-aligned
/// extents (an empty `ivs` requires an empty `data`).
pub fn ctr_crypt_extents<C: BlockCipherBatch>(cipher: &C, ivs: &[[u8; 16]], data: &mut [u8]) {
    let unit = check_extents(ivs, data);
    if unit == 0 {
        return;
    }
    let blocks_per_unit = unit / BLOCK_SIZE;
    let (blocks, _) = data.as_chunks_mut::<BLOCK_SIZE>();
    let mut ks = [[0u8; BLOCK_SIZE]; SCRATCH_BLOCKS];
    let mut counter = [0u8; BLOCK_SIZE];
    for (chunk_no, chunk) in blocks.chunks_mut(SCRATCH_BLOCKS).enumerate() {
        let n = chunk.len();
        for (i, k) in ks[..n].iter_mut().enumerate() {
            let global = chunk_no * SCRATCH_BLOCKS + i;
            if global.is_multiple_of(blocks_per_unit) {
                counter = ivs[global / blocks_per_unit];
            }
            *k = counter;
            ctr_increment(&mut counter);
        }
        cipher.encrypt_blocks(&mut ks[..n]);
        for (block, k) in chunk.iter_mut().zip(&ks) {
            xor_block(block, k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Aes;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn cbc_matches_nist_sp800_38a_f2_1() {
        // NIST SP 800-38A F.2.1 CBC-AES128 encryption vectors.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv: Block = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ));
        let expected = hex(concat!(
            "7649abac8119b246cee98e9b12e9197d",
            "5086cb9b507219ee95db113a917678b2",
            "73bed6b8e3c1743b7116e69e22229516",
            "3ff1caa1681fac09120eca307586e1a7",
        ));
        let aes = Aes::new(&key).unwrap();
        cbc_encrypt(&aes, &iv, &mut data);
        assert_eq!(data, expected);
        cbc_decrypt(&aes, &iv, &mut data);
        assert_eq!(&data[..16], &hex("6bc1bee22e409f96e93d7e117393172a")[..]);

        // The bitsliced backend against the same published vectors.
        let bits = crate::bitslice::BitslicedAes::new(&key).unwrap();
        cbc_encrypt(&bits, &iv, &mut data);
        assert_eq!(data, expected);
        cbc_decrypt(&bits, &iv, &mut data);
        assert_eq!(&data[..16], &hex("6bc1bee22e409f96e93d7e117393172a")[..]);
    }

    #[test]
    fn ctr_matches_nist_sp800_38a_f5_1() {
        // NIST SP 800-38A F.5.1 CTR-AES128. The standard's full 16-byte
        // counter block f0f1..ff splits into our 8-byte nonce and 8-byte
        // big-endian counter.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let nonce: [u8; 8] = hex("f0f1f2f3f4f5f6f7").try_into().unwrap();
        let counter = u64::from_be_bytes(hex("f8f9fafbfcfdfeff").try_into().unwrap());
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        let aes = Aes::new(&key).unwrap();
        ctr_xor(&aes, &nonce, counter, &mut data);
        assert_eq!(data, hex("874d6191b620e3261bef6864990db6ce"));

        let bits = crate::bitslice::BitslicedAes::new(&key).unwrap();
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        ctr_xor(&bits, &nonce, counter, &mut data);
        assert_eq!(data, hex("874d6191b620e3261bef6864990db6ce"));
    }

    #[test]
    fn ecb_roundtrip_and_structure_leak() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let mut data = vec![0xABu8; 64];
        ecb_encrypt(&aes, &mut data);
        // ECB leaks structure: identical plaintext blocks yield identical
        // ciphertext blocks.
        assert_eq!(&data[0..16], &data[16..32]);
        ecb_decrypt(&aes, &mut data);
        assert_eq!(data, vec![0xABu8; 64]);
    }

    #[test]
    fn cbc_hides_equal_blocks() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let iv = [3u8; 16];
        let mut data = vec![0xABu8; 64];
        cbc_encrypt(&aes, &iv, &mut data);
        assert_ne!(&data[0..16], &data[16..32]);
    }

    #[test]
    fn ctr_handles_partial_blocks() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        let mut data = vec![0x5Au8; 21];
        let orig = data.clone();
        ctr_xor(&aes, &[0u8; 8], 0, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&aes, &[0u8; 8], 0, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn cbc_rejects_unaligned() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let mut data = vec![0u8; 17];
        cbc_encrypt(&aes, &[0u8; 16], &mut data);
    }

    #[test]
    fn batched_modes_agree_across_backends() {
        use crate::bitslice::BitslicedAes;
        let key = [0x51u8; 16];
        let table = Aes::new(&key).unwrap();
        let reference = AesRef::new(&key).unwrap();
        let bitsliced = BitslicedAes::new(&key).unwrap();
        let iv = [0xA5u8; 16];
        // Lengths exercising full batches, odd tails, and sub-batch sizes.
        for nblocks in [1usize, 2, 7, 16, 31, 32, 33, 256] {
            let pt: Vec<u8> = (0..nblocks * BLOCK_SIZE).map(|i| (i * 31) as u8).collect();
            let mut ct = pt.clone();
            cbc_encrypt(&table, &iv, &mut ct);
            for (name, run) in [
                ("table", &mut {
                    let mut d = ct.clone();
                    cbc_decrypt(&table, &iv, &mut d);
                    d
                }),
                ("reference", &mut {
                    let mut d = ct.clone();
                    cbc_decrypt(&reference, &iv, &mut d);
                    d
                }),
                ("bitsliced", &mut {
                    let mut d = ct.clone();
                    cbc_decrypt(&bitsliced, &iv, &mut d);
                    d
                }),
            ] {
                assert_eq!(*run, pt, "cbc_decrypt[{name}] {nblocks} blocks");
            }
            // CTR: all backends must emit the same stream, including a
            // ragged tail.
            let mut a = pt.clone();
            a.truncate(nblocks * BLOCK_SIZE - 5);
            let mut b = a.clone();
            let mut c = a.clone();
            ctr_xor(&table, &[9u8; 8], 7, &mut a);
            ctr_xor(&reference, &[9u8; 8], 7, &mut b);
            ctr_xor(&bitsliced, &[9u8; 8], 7, &mut c);
            assert_eq!(a, b, "ctr table vs reference, {nblocks} blocks");
            assert_eq!(a, c, "ctr table vs bitsliced, {nblocks} blocks");
        }
    }

    #[test]
    fn extent_decrypt_matches_per_extent_decrypt() {
        use crate::bitslice::BitslicedAes;
        let key = [0x33u8; 32];
        let table = Aes::new(&key).unwrap();
        let bitsliced = BitslicedAes::from_schedule(table.schedule());
        // Unit sizes exercising sub-batch extents (1 and 2 blocks), the
        // dm-crypt sector (32 blocks), and units that straddle scratch
        // chunk boundaries (3 blocks does for SCRATCH_BLOCKS = 32).
        for (unit_blocks, units) in [(1usize, 5usize), (2, 9), (3, 23), (32, 8), (48, 3)] {
            let unit = unit_blocks * BLOCK_SIZE;
            let ivs: Vec<[u8; 16]> = (0..units).map(|i| [(i * 29 + 1) as u8; 16]).collect();
            let pt: Vec<u8> = (0..units * unit).map(|i| (i * 13 + 7) as u8).collect();
            let mut ct = pt.clone();
            for (iv, chunk) in ivs.iter().zip(ct.chunks_exact_mut(unit)) {
                cbc_encrypt(&table, iv, chunk);
            }
            for backend in ["table", "bitsliced"] {
                let mut got = ct.clone();
                match backend {
                    "table" => cbc_decrypt_extents(&table, &ivs, &mut got),
                    _ => cbc_decrypt_extents(&bitsliced, &ivs, &mut got),
                }
                assert_eq!(
                    got, pt,
                    "{backend}: {units} extents of {unit_blocks} blocks"
                );
            }
        }
        // Degenerate case: no extents.
        cbc_decrypt_extents(&table, &[], &mut []);
    }

    #[test]
    fn extent_encrypt_matches_per_extent_encrypt() {
        use crate::bitslice::BitslicedAes;
        let key = [0x44u8; 32];
        let table = Aes::new(&key).unwrap();
        let reference = AesRef::new(&key).unwrap();
        let bitsliced = BitslicedAes::from_schedule(table.schedule());
        // Extent counts below, at, and above the 16-lane batch width, and
        // unit sizes from one block up to a 4 KiB page.
        for (unit_blocks, units) in [(1usize, 3usize), (2, 16), (4, 17), (32, 33), (256, 5)] {
            let unit = unit_blocks * BLOCK_SIZE;
            let ivs: Vec<[u8; 16]> = (0..units).map(|i| [(i * 41 + 3) as u8; 16]).collect();
            let pt: Vec<u8> = (0..units * unit).map(|i| (i * 11 + 5) as u8).collect();
            let mut expect = pt.clone();
            for (iv, chunk) in ivs.iter().zip(expect.chunks_exact_mut(unit)) {
                cbc_encrypt(&table, iv, chunk);
            }
            for backend in ["table", "reference", "bitsliced"] {
                let mut got = pt.clone();
                match backend {
                    "table" => cbc_encrypt_extents(&table, &ivs, &mut got),
                    "reference" => cbc_encrypt_extents(&reference, &ivs, &mut got),
                    _ => cbc_encrypt_extents(&bitsliced, &ivs, &mut got),
                }
                assert_eq!(
                    got, expect,
                    "{backend}: {units} extents of {unit_blocks} blocks"
                );
            }
        }
        // Degenerate case: no extents.
        cbc_encrypt_extents(&table, &[], &mut []);
    }

    #[test]
    fn encrypt_batch_handles_ragged_buffer_lengths() {
        use crate::bitslice::BitslicedAes;
        let key = [0x29u8; 16];
        let table = Aes::new(&key).unwrap();
        let bitsliced = BitslicedAes::from_schedule(table.schedule());
        // Buffers of different lengths share one batch group: short ones
        // must drop out of the lanes without corrupting the others.
        let lens = [
            1usize, 7, 2, 0, 32, 5, 1, 16, 3, 40, 8, 8, 2, 19, 33, 4, 6, 1,
        ];
        let ivs: Vec<[u8; 16]> = (0..lens.len()).map(|i| [(i * 17 + 9) as u8; 16]).collect();
        let mut bufs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| (0..n * BLOCK_SIZE).map(|j| (i * 37 + j) as u8).collect())
            .collect();
        let mut expect = bufs.clone();
        for (iv, buf) in ivs.iter().zip(expect.iter_mut()) {
            cbc_encrypt(&table, iv, buf);
        }
        let mut views: Vec<&mut [u8]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        cbc_encrypt_batch(&bitsliced, &ivs, &mut views);
        assert_eq!(bufs, expect);
    }

    #[test]
    fn modes_agree_between_fast_and_reference() {
        let key = [0x42u8; 24];
        let fast = Aes::new(&key).unwrap();
        let reference = AesRef::new(&key).unwrap();
        let iv = [0x17u8; 16];
        let mut a = (0..96u8).collect::<Vec<_>>();
        let mut b = a.clone();
        cbc_encrypt(&fast, &iv, &mut a);
        cbc_encrypt(&reference, &iv, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn xts_mul_alpha_matches_p1619_convention() {
        // x * 1 = x: bit 1 of byte 0.
        let mut t = [0u8; 16];
        t[0] = 1;
        xts_mul_alpha(&mut t);
        assert_eq!(t[0], 2);
        // Carry out of byte 15's MSB reduces with 0x87 into byte 0.
        let mut t = [0u8; 16];
        t[15] = 0x80;
        xts_mul_alpha(&mut t);
        let mut expect = [0u8; 16];
        expect[0] = 0x87;
        assert_eq!(t, expect);
        // Cross-byte carry: byte 0's MSB moves into byte 1's LSB.
        let mut t = [0u8; 16];
        t[0] = 0x80;
        xts_mul_alpha(&mut t);
        assert_eq!(t[0], 0);
        assert_eq!(t[1], 1);
    }

    #[test]
    fn xts_matches_ieee_p1619_vector_1() {
        // IEEE P1619 XTS-AES-128 Vector 1: all-zero keys, tweak 0,
        // 32 zero bytes of plaintext.
        let k1 = [0u8; 16];
        let k2 = [0u8; 16];
        let data_cipher = Aes::new(&k1).unwrap();
        let tweak_cipher = Aes::new(&k2).unwrap();
        let tweak = [0u8; 16];
        let mut data = vec![0u8; 32];
        let expected = hex(concat!(
            "917cf69ebd68b2ec9b9fe9a3eadda692",
            "cd43d2f59598ed858c02c2652fbf922e",
        ));
        xts_encrypt(&data_cipher, &tweak_cipher, &tweak, &mut data);
        assert_eq!(data, expected);
        xts_decrypt(&data_cipher, &tweak_cipher, &tweak, &mut data);
        assert_eq!(data, vec![0u8; 32]);

        // Same vector through the bitsliced backend.
        let bits = crate::bitslice::BitslicedAes::new(&k1).unwrap();
        let mut data = vec![0u8; 32];
        xts_encrypt(&bits, &tweak_cipher, &tweak, &mut data);
        assert_eq!(data, expected);
        xts_decrypt(&bits, &tweak_cipher, &tweak, &mut data);
        assert_eq!(data, vec![0u8; 32]);
    }

    #[test]
    fn xts_matches_ieee_p1619_vector_2() {
        // IEEE P1619 XTS-AES-128 Vector 2: distinct keys, nonzero tweak.
        let k1 = hex("11111111111111111111111111111111");
        let k2 = hex("22222222222222222222222222222222");
        let data_cipher = Aes::new(&k1).unwrap();
        let tweak_cipher = Aes::new(&k2).unwrap();
        let tweak: [u8; 16] = hex("33333333330000000000000000000000").try_into().unwrap();
        let mut data = vec![0x44u8; 32];
        let expected = hex(concat!(
            "c454185e6a16936e39334038acef838b",
            "fb186fff7480adc4289382ecd6d394f0",
        ));
        xts_encrypt(&data_cipher, &tweak_cipher, &tweak, &mut data);
        assert_eq!(data, expected);
        xts_decrypt(&data_cipher, &tweak_cipher, &tweak, &mut data);
        assert_eq!(data, vec![0x44u8; 32]);

        let bits = crate::bitslice::BitslicedAes::new(&k1).unwrap();
        let bits_tweak = crate::bitslice::BitslicedAes::new(&k2).unwrap();
        let mut data = vec![0x44u8; 32];
        xts_encrypt(&bits, &bits_tweak, &tweak, &mut data);
        assert_eq!(data, expected);
    }

    #[test]
    fn ctr_crypt_matches_nist_sp800_38a_f5_1() {
        // NIST SP 800-38A F.5.1 CTR-AES128, full 16-byte counter block.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv: [u8; 16] = hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff").try_into().unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ));
        let expected = hex(concat!(
            "874d6191b620e3261bef6864990db6ce",
            "9806f66b7970fdff8617187bb9fffdff",
            "5ae4df3edbd5d35e5b4f09020db03eab",
            "1e031dda2fbe03d1792170a0f3009cee",
        ));
        let aes = Aes::new(&key).unwrap();
        let pt = data.clone();
        ctr_crypt(&aes, &iv, &mut data);
        assert_eq!(data, expected);
        ctr_crypt(&aes, &iv, &mut data);
        assert_eq!(data, pt);

        let bits = crate::bitslice::BitslicedAes::new(&key).unwrap();
        let mut data = pt.clone();
        ctr_crypt(&bits, &iv, &mut data);
        assert_eq!(data, expected);
    }

    #[test]
    fn ctr_crypt_carries_across_counter_byte_boundaries() {
        // An IV whose low bytes are near-overflow exercises the 128-bit
        // big-endian carry; both backends must agree.
        let key = [0x21u8; 16];
        let aes = Aes::new(&key).unwrap();
        let bits = crate::bitslice::BitslicedAes::from_schedule(aes.schedule());
        let mut iv = [0xFFu8; 16];
        iv[0] = 0x01;
        let pt: Vec<u8> = (0..20 * BLOCK_SIZE).map(|i| (i * 7) as u8).collect();
        let mut a = pt.clone();
        let mut b = pt.clone();
        ctr_crypt(&aes, &iv, &mut a);
        ctr_crypt(&bits, &iv, &mut b);
        assert_eq!(a, b);
        assert_ne!(a, pt);
        ctr_crypt(&aes, &iv, &mut a);
        assert_eq!(a, pt);
    }

    #[test]
    fn xts_roundtrips_across_backends_and_lengths() {
        let key = [0x7Eu8; 32];
        let table = Aes::new(&key).unwrap();
        let reference = AesRef::new(&key).unwrap();
        let bits = crate::bitslice::BitslicedAes::from_schedule(table.schedule());
        let tweak = [0x5Cu8; 16];
        // Single-key (XEX-style) XTS, as the Sentry engines run it.
        for nblocks in [1usize, 2, 15, 16, 31, 32, 33, 256] {
            let pt: Vec<u8> = (0..nblocks * BLOCK_SIZE).map(|i| (i * 13) as u8).collect();
            let mut ct = pt.clone();
            xts_encrypt(&table, &table, &tweak, &mut ct);
            assert_ne!(ct, pt);
            let mut r = ct.clone();
            xts_decrypt(&reference, &reference, &tweak, &mut r);
            assert_eq!(r, pt, "reference decrypts table output, {nblocks} blocks");
            let mut b = ct.clone();
            xts_decrypt(&bits, &bits, &tweak, &mut b);
            assert_eq!(b, pt, "bitsliced decrypts table output, {nblocks} blocks");
            // And each backend encrypts identically.
            let mut e = pt.clone();
            xts_encrypt(&bits, &bits, &tweak, &mut e);
            assert_eq!(e, ct, "bitsliced encrypt, {nblocks} blocks");
        }
    }

    #[test]
    fn xts_hides_equal_blocks_and_binds_the_tweak() {
        let aes = Aes::new(&[0x09u8; 16]).unwrap();
        let mut data = vec![0xABu8; 64];
        xts_encrypt(&aes, &aes, &[1u8; 16], &mut data);
        assert_ne!(&data[0..16], &data[16..32], "tweak chain hides structure");
        // Decrypting under a different tweak must not recover plaintext.
        let mut wrong = data.clone();
        xts_decrypt(&aes, &aes, &[2u8; 16], &mut wrong);
        assert_ne!(wrong, vec![0xABu8; 64]);
        xts_decrypt(&aes, &aes, &[1u8; 16], &mut data);
        assert_eq!(data, vec![0xABu8; 64]);
    }

    #[test]
    fn xts_extents_match_per_extent() {
        let key = [0x61u8; 16];
        let table = Aes::new(&key).unwrap();
        let bits = crate::bitslice::BitslicedAes::from_schedule(table.schedule());
        // Unit sizes exercising sub-batch extents, the dm-crypt sector
        // (32 blocks), and units straddling scratch-chunk boundaries.
        for (unit_blocks, units) in [(1usize, 5usize), (2, 9), (3, 23), (32, 8), (256, 3)] {
            let unit = unit_blocks * BLOCK_SIZE;
            let ivs: Vec<[u8; 16]> = (0..units).map(|i| [(i * 29 + 1) as u8; 16]).collect();
            let pt: Vec<u8> = (0..units * unit).map(|i| (i * 13 + 7) as u8).collect();
            let mut expect = pt.clone();
            for (iv, chunk) in ivs.iter().zip(expect.chunks_exact_mut(unit)) {
                xts_encrypt(&table, &table, iv, chunk);
            }
            for backend in ["table", "bitsliced"] {
                let mut got = pt.clone();
                match backend {
                    "table" => xts_crypt_extents(&table, &table, true, &ivs, &mut got),
                    _ => xts_crypt_extents(&bits, &bits, true, &ivs, &mut got),
                }
                assert_eq!(
                    got, expect,
                    "{backend} encrypt: {units} extents of {unit_blocks} blocks"
                );
                match backend {
                    "table" => xts_crypt_extents(&table, &table, false, &ivs, &mut got),
                    _ => xts_crypt_extents(&bits, &bits, false, &ivs, &mut got),
                }
                assert_eq!(
                    got, pt,
                    "{backend} decrypt: {units} extents of {unit_blocks} blocks"
                );
            }
        }
        // Degenerate case: no extents.
        xts_crypt_extents(&table, &table, true, &[], &mut []);
    }

    #[test]
    fn ctr_extents_match_per_extent() {
        let key = [0x73u8; 24];
        let table = Aes::new(&key).unwrap();
        let bits = crate::bitslice::BitslicedAes::from_schedule(table.schedule());
        for (unit_blocks, units) in [(1usize, 5usize), (3, 23), (32, 8), (256, 3)] {
            let unit = unit_blocks * BLOCK_SIZE;
            let ivs: Vec<[u8; 16]> = (0..units).map(|i| [(i * 43 + 5) as u8; 16]).collect();
            let pt: Vec<u8> = (0..units * unit).map(|i| (i * 17 + 3) as u8).collect();
            let mut expect = pt.clone();
            for (iv, chunk) in ivs.iter().zip(expect.chunks_exact_mut(unit)) {
                ctr_crypt(&table, iv, chunk);
            }
            for backend in ["table", "bitsliced"] {
                let mut got = pt.clone();
                match backend {
                    "table" => ctr_crypt_extents(&table, &ivs, &mut got),
                    _ => ctr_crypt_extents(&bits, &ivs, &mut got),
                }
                assert_eq!(
                    got, expect,
                    "{backend}: {units} extents of {unit_blocks} blocks"
                );
            }
        }
        ctr_crypt_extents(&table, &[], &mut []);
    }

    #[test]
    fn page_cipher_mode_names_and_chaining() {
        assert_eq!(PageCipherMode::default(), PageCipherMode::Cbc);
        assert_eq!(PageCipherMode::Cbc.to_string(), "cbc");
        assert_eq!(PageCipherMode::Xts.to_string(), "xts");
        assert_eq!(PageCipherMode::Ctr.to_string(), "ctr");
        assert!(PageCipherMode::Cbc.is_chaining());
        assert!(!PageCipherMode::Xts.is_chaining());
        assert!(!PageCipherMode::Ctr.is_chaining());
        assert_eq!(PageCipherMode::all().len(), 3);
    }
}
