//! Block cipher modes of operation: ECB, CBC, and CTR.
//!
//! Sentry uses CBC — the default AES mode on Android and Linux at the time
//! of the paper — for both the encrypted-DRAM pager and dm-crypt. All mode
//! functions here operate on whole blocks; callers (the pager works in
//! 4 KiB pages, dm-crypt in 512-byte sectors) always supply block-aligned
//! buffers.

use crate::block::{Aes, AesRef, Block};
use crate::BLOCK_SIZE;

/// A single-block cipher, the building block for the modes below.
///
/// Implemented by both the fast and the reference AES so the modes can be
/// cross-checked between them.
pub trait BlockCipher {
    /// Encrypt one 16-byte block in place.
    fn encrypt_block(&self, block: &mut Block);
    /// Decrypt one 16-byte block in place.
    fn decrypt_block(&self, block: &mut Block);
}

impl BlockCipher for Aes {
    fn encrypt_block(&self, block: &mut Block) {
        Aes::encrypt_block(self, block);
    }
    fn decrypt_block(&self, block: &mut Block) {
        Aes::decrypt_block(self, block);
    }
}

impl BlockCipher for AesRef {
    fn encrypt_block(&self, block: &mut Block) {
        AesRef::encrypt_block(self, block);
    }
    fn decrypt_block(&self, block: &mut Block) {
        AesRef::decrypt_block(self, block);
    }
}

/// Assert that `data` is a whole number of blocks.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of 16. Sentry only ever
/// encrypts page- and sector-sized buffers, so a partial block indicates a
/// logic error rather than a recoverable condition.
fn check_aligned(data: &[u8]) {
    assert!(
        data.len().is_multiple_of(BLOCK_SIZE),
        "buffer length {} is not a multiple of the AES block size",
        data.len()
    );
}

/// Encrypt `data` in place in ECB mode.
///
/// ECB is provided for completeness and microbenchmarks only; it leaks
/// equal-plaintext-block structure and is never used by Sentry proper.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn ecb_encrypt<C: BlockCipher>(cipher: &C, data: &mut [u8]) {
    check_aligned(data);
    for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
        let block: &mut Block = chunk.try_into().expect("chunk is block sized");
        cipher.encrypt_block(block);
    }
}

/// Decrypt `data` in place in ECB mode.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn ecb_decrypt<C: BlockCipher>(cipher: &C, data: &mut [u8]) {
    check_aligned(data);
    for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
        let block: &mut Block = chunk.try_into().expect("chunk is block sized");
        cipher.decrypt_block(block);
    }
}

/// Encrypt `data` in place in CBC mode with the given initialization
/// vector.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn cbc_encrypt<C: BlockCipher>(cipher: &C, iv: &Block, data: &mut [u8]) {
    check_aligned(data);
    let mut chain = *iv;
    for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
        for (b, c) in chunk.iter_mut().zip(chain.iter()) {
            *b ^= c;
        }
        let block: &mut Block = chunk.try_into().expect("chunk is block sized");
        cipher.encrypt_block(block);
        chain = *block;
    }
}

/// Decrypt `data` in place in CBC mode with the given initialization
/// vector.
///
/// # Panics
///
/// Panics if `data` is not block-aligned.
pub fn cbc_decrypt<C: BlockCipher>(cipher: &C, iv: &Block, data: &mut [u8]) {
    check_aligned(data);
    let mut chain = *iv;
    for chunk in data.chunks_exact_mut(BLOCK_SIZE) {
        let ct: Block = chunk.try_into().expect("chunk is block sized");
        let block: &mut Block = chunk.try_into().expect("chunk is block sized");
        cipher.decrypt_block(block);
        for (b, c) in block.iter_mut().zip(chain.iter()) {
            *b ^= c;
        }
        chain = ct;
    }
}

/// Encrypt or decrypt `data` in place in CTR mode (the operations are
/// identical). The counter occupies the last 8 bytes of the nonce block,
/// big-endian, starting from `initial_counter`.
///
/// Unlike CBC, CTR handles arbitrary (non-block-aligned) lengths.
pub fn ctr_xor<C: BlockCipher>(cipher: &C, nonce: &[u8; 8], initial_counter: u64, data: &mut [u8]) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_SIZE) {
        let mut keystream: Block = [0u8; BLOCK_SIZE];
        keystream[..8].copy_from_slice(nonce);
        keystream[8..].copy_from_slice(&counter.to_be_bytes());
        cipher.encrypt_block(&mut keystream);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Aes;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn cbc_matches_nist_sp800_38a_f2_1() {
        // NIST SP 800-38A F.2.1 CBC-AES128 encryption vectors.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv: Block = hex("000102030405060708090a0b0c0d0e0f").try_into().unwrap();
        let mut data = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710",
        ));
        let expected = hex(concat!(
            "7649abac8119b246cee98e9b12e9197d",
            "5086cb9b507219ee95db113a917678b2",
            "73bed6b8e3c1743b7116e69e22229516",
            "3ff1caa1681fac09120eca307586e1a7",
        ));
        let aes = Aes::new(&key).unwrap();
        cbc_encrypt(&aes, &iv, &mut data);
        assert_eq!(data, expected);
        cbc_decrypt(&aes, &iv, &mut data);
        assert_eq!(&data[..16], &hex("6bc1bee22e409f96e93d7e117393172a")[..]);
    }

    #[test]
    fn ctr_matches_nist_sp800_38a_f5_1() {
        // NIST SP 800-38A F.5.1 CTR-AES128. The standard's full 16-byte
        // counter block f0f1..ff splits into our 8-byte nonce and 8-byte
        // big-endian counter.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let nonce: [u8; 8] = hex("f0f1f2f3f4f5f6f7").try_into().unwrap();
        let counter = u64::from_be_bytes(hex("f8f9fafbfcfdfeff").try_into().unwrap());
        let mut data = hex("6bc1bee22e409f96e93d7e117393172a");
        let aes = Aes::new(&key).unwrap();
        ctr_xor(&aes, &nonce, counter, &mut data);
        assert_eq!(data, hex("874d6191b620e3261bef6864990db6ce"));
    }

    #[test]
    fn ecb_roundtrip_and_structure_leak() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let mut data = vec![0xABu8; 64];
        ecb_encrypt(&aes, &mut data);
        // ECB leaks structure: identical plaintext blocks yield identical
        // ciphertext blocks.
        assert_eq!(&data[0..16], &data[16..32]);
        ecb_decrypt(&aes, &mut data);
        assert_eq!(data, vec![0xABu8; 64]);
    }

    #[test]
    fn cbc_hides_equal_blocks() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let iv = [3u8; 16];
        let mut data = vec![0xABu8; 64];
        cbc_encrypt(&aes, &iv, &mut data);
        assert_ne!(&data[0..16], &data[16..32]);
    }

    #[test]
    fn ctr_handles_partial_blocks() {
        let aes = Aes::new(&[9u8; 16]).unwrap();
        let mut data = vec![0x5Au8; 21];
        let orig = data.clone();
        ctr_xor(&aes, &[0u8; 8], 0, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&aes, &[0u8; 8], 0, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn cbc_rejects_unaligned() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let mut data = vec![0u8; 17];
        cbc_encrypt(&aes, &[0u8; 16], &mut data);
    }

    #[test]
    fn modes_agree_between_fast_and_reference() {
        let key = [0x42u8; 24];
        let fast = Aes::new(&key).unwrap();
        let reference = AesRef::new(&key).unwrap();
        let iv = [0x17u8; 16];
        let mut a = (0..96u8).collect::<Vec<_>>();
        let mut b = a.clone();
        cbc_encrypt(&fast, &iv, &mut a);
        cbc_encrypt(&reference, &iv, &mut b);
        assert_eq!(a, b);
    }
}
