//! Parallel page-crypt engine: fan a batch of independently-IV'd CBC
//! page jobs across a scoped worker pool.
//!
//! Sentry's lock/unlock transitions encrypt or decrypt every sensitive
//! page with an *independent* IV (`page_iv` binds the IV to the page's
//! (pid, vpn, epoch) identity), so per-page CBC has no cross-page data
//! dependency at all — the batch is embarrassingly parallel, the same
//! structure MemShield exploits with GPU lanes and Sealer with in-SRAM
//! AES arrays. This module supplies the host-side engine: callers
//! collect one [`PageJob`] per page and [`crypt_batch`] splits the batch
//! into contiguous chunks, one per worker. The engine is generic over
//! [`BlockCipherBatch`], so lanes fed a [`crate::BitslicedAes`] run each
//! page's CBC decryption 16 blocks per kernel call; every lane *shares*
//! the caller's pre-expanded context by reference — the key schedule is
//! expanded exactly once, not per lane and certainly not per page.
//!
//! Two properties the lock path depends on:
//!
//! * **Byte identity** — parallel output is identical to sequential
//!   output for every worker count, because each job is independent and
//!   job order is preserved. `workers = 1` takes the sequential path
//!   outright.
//! * **Bounded fallback** — tiny batches (`len < min_batch_pages`) are
//!   not worth the thread fan-out and run sequentially; the report says
//!   which path was taken so callers can account for it.

use crate::batch::BlockCipherBatch;
use crate::error::CryptoError;
use crate::modes::{cbc_decrypt, cbc_encrypt_batch, ctr_crypt, xts_decrypt, xts_encrypt};
use crate::PageCipherMode;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Which way a batch transforms its pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Plaintext to ciphertext (device lock).
    Encrypt,
    /// Ciphertext to plaintext (device unlock / page-in).
    Decrypt,
}

/// One page's worth of work: an IV and the in-place buffer.
///
/// The buffer length must be a whole number of AES blocks (the lock path
/// always uses 4 KiB pages, but the engine does not care).
#[derive(Debug)]
pub struct PageJob<'a> {
    /// Per-page initialization vector.
    pub iv: [u8; 16],
    /// The page bytes, transformed in place.
    pub data: &'a mut [u8],
}

/// What a batch run did — batch size, lane count, and the bytes each
/// worker processed (index = worker lane).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Pages in the batch.
    pub pages: usize,
    /// Total bytes transformed.
    pub bytes: u64,
    /// Worker lanes actually used (1 on the sequential path).
    pub workers_used: usize,
    /// Bytes processed by each lane, `per_worker_bytes.len() == workers_used`.
    pub per_worker_bytes: Vec<u64>,
    /// Whether the batch took the sequential fallback (worker count of
    /// one, or batch smaller than the configured minimum).
    pub sequential_fallback: bool,
}

/// Run every job in `jobs` through `mode` under `cipher`, fanning across
/// at most `workers` scoped threads.
///
/// The context is expanded exactly once by the caller and *shared* by
/// reference across all lanes — no per-lane clone, no per-page key
/// expansion. Any [`BlockCipherBatch`] backend works; a
/// [`crate::BitslicedAes`] makes each lane's CBC decryption run 16
/// blocks per kernel call, and each lane's CBC *encryption* fill those
/// 16 lanes with independent page chains via [`cbc_encrypt_batch`].
/// Under [`PageCipherMode::Xts`] and [`PageCipherMode::Ctr`] every block
/// *within* a page is already independent, so each job streams through
/// the kernel at full width in both directions — no cross-page batching
/// needed. Falls back to the in-thread sequential loop
/// when `workers <= 1` or `jobs.len() < min_batch_pages`; output bytes
/// are identical either way.
///
/// # Errors
///
/// [`CryptoError::WorkerPanicked`] if a lane's cipher panicked. The
/// panic is contained (`catch_unwind` inside the lane): every other
/// lane still runs to completion and the pool is torn down cleanly, but
/// the batch's buffers are left partially transformed and must be
/// discarded by the caller.
pub fn crypt_batch<C: BlockCipherBatch + Sync>(
    cipher: &C,
    mode: PageCipherMode,
    direction: Direction,
    jobs: &mut [PageJob<'_>],
    workers: usize,
    min_batch_pages: usize,
) -> Result<BatchReport, CryptoError> {
    let pages = jobs.len();
    let bytes: u64 = jobs.iter().map(|j| j.data.len() as u64).sum();

    if workers <= 1 || pages < min_batch_pages.max(1) {
        contained_chunk(cipher, mode, direction, jobs, 0)?;
        return Ok(BatchReport {
            pages,
            bytes,
            workers_used: 1,
            per_worker_bytes: vec![bytes],
            sequential_fallback: true,
        });
    }

    let lanes = workers.min(pages);
    // Contiguous, balanced split: the first `pages % lanes` chunks get
    // one extra job, so lane loads differ by at most one page.
    let base = pages / lanes;
    let extra = pages % lanes;
    let mut per_worker_bytes = vec![0u64; lanes];
    let mut first_panic: Option<CryptoError> = None;
    std::thread::scope(|scope| {
        let mut rest = jobs;
        let mut handles = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let take = base + usize::from(lane < extra);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            // Every lane borrows the caller's context: one expanded
            // schedule serves the whole pool. The unwind is caught
            // *inside* the lane, so a panicking cipher surfaces as a
            // typed error instead of aborting the simulation.
            handles
                .push(scope.spawn(move || contained_chunk(cipher, mode, direction, chunk, lane)));
        }
        for (lane, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(lane_bytes)) => per_worker_bytes[lane] = lane_bytes,
                Ok(Err(e)) => {
                    if first_panic.is_none() {
                        first_panic = Some(e);
                    }
                }
                // Unreachable in practice (the lane catches its own
                // unwind), but keep the containment airtight.
                Err(_) => {
                    if first_panic.is_none() {
                        first_panic = Some(CryptoError::WorkerPanicked {
                            lane,
                            detail: "worker died outside catch_unwind".into(),
                        });
                    }
                }
            }
        }
    });
    if let Some(e) = first_panic {
        return Err(e);
    }

    Ok(BatchReport {
        pages,
        bytes,
        workers_used: lanes,
        per_worker_bytes,
        sequential_fallback: false,
    })
}

/// Run one lane's chunk with the unwind caught, converting a panic into
/// the typed [`CryptoError::WorkerPanicked`].
fn contained_chunk<C: BlockCipherBatch>(
    cipher: &C,
    mode: PageCipherMode,
    direction: Direction,
    chunk: &mut [PageJob<'_>],
    lane: usize,
) -> Result<u64, CryptoError> {
    catch_unwind(AssertUnwindSafe(|| {
        crypt_chunk(cipher, mode, direction, chunk)
    }))
    .map_err(|payload| {
        let detail = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into());
        CryptoError::WorkerPanicked { lane, detail }
    })
}

/// Transform one lane's chunk of jobs, returning the bytes processed.
///
/// CBC decryption is data-parallel *within* a page, so each job streams
/// through [`cbc_decrypt`]'s own batching. CBC encryption chains are
/// serial within a page but independent *across* pages, so the whole
/// chunk goes through [`cbc_encrypt_batch`], which fills the backend's
/// lanes with one page chain each. XTS and CTR are block-parallel in
/// both directions, so each job streams at full kernel width on its own;
/// the job's IV is the XTS tweak or the initial CTR counter block.
fn crypt_chunk<C: BlockCipherBatch>(
    cipher: &C,
    mode: PageCipherMode,
    direction: Direction,
    chunk: &mut [PageJob<'_>],
) -> u64 {
    let bytes: u64 = chunk.iter().map(|j| j.data.len() as u64).sum();
    match (mode, direction) {
        (PageCipherMode::Cbc, Direction::Encrypt) => {
            let ivs: Vec<[u8; 16]> = chunk.iter().map(|j| j.iv).collect();
            let mut bufs: Vec<&mut [u8]> = chunk.iter_mut().map(|j| &mut *j.data).collect();
            cbc_encrypt_batch(cipher, &ivs, &mut bufs);
        }
        (PageCipherMode::Cbc, Direction::Decrypt) => {
            for job in chunk.iter_mut() {
                cbc_decrypt(cipher, &job.iv, job.data);
            }
        }
        (PageCipherMode::Xts, Direction::Encrypt) => {
            for job in chunk.iter_mut() {
                xts_encrypt(cipher, cipher, &job.iv, job.data);
            }
        }
        (PageCipherMode::Xts, Direction::Decrypt) => {
            for job in chunk.iter_mut() {
                xts_decrypt(cipher, cipher, &job.iv, job.data);
            }
        }
        (PageCipherMode::Ctr, _) => {
            for job in chunk.iter_mut() {
                ctr_crypt(cipher, &job.iv, job.data);
            }
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Aes;

    fn mk_pages(n: usize, fill: impl Fn(usize) -> u8) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| (0..4096).map(|j| fill(i).wrapping_add(j as u8)).collect())
            .collect()
    }

    fn jobs_of(pages: &mut [Vec<u8>]) -> Vec<PageJob<'_>> {
        pages
            .iter_mut()
            .enumerate()
            .map(|(i, p)| PageJob {
                iv: [i as u8; 16],
                data: p.as_mut_slice(),
            })
            .collect()
    }

    #[test]
    fn parallel_output_matches_sequential_reference() {
        let aes = Aes::new(&[7u8; 32]).unwrap();
        let mut expect = mk_pages(37, |i| i as u8);
        let mut ejobs = jobs_of(&mut expect);
        let seq = crypt_batch(
            &aes,
            PageCipherMode::Cbc,
            Direction::Encrypt,
            &mut ejobs,
            1,
            1,
        )
        .unwrap();
        assert!(seq.sequential_fallback);
        assert_eq!(seq.per_worker_bytes, vec![37 * 4096]);

        for workers in [2usize, 3, 4, 8, 64] {
            let mut got = mk_pages(37, |i| i as u8);
            let mut jobs = jobs_of(&mut got);
            let rep = crypt_batch(
                &aes,
                PageCipherMode::Cbc,
                Direction::Encrypt,
                &mut jobs,
                workers,
                1,
            )
            .unwrap();
            assert_eq!(got, expect, "{workers} workers diverged");
            assert_eq!(rep.workers_used, workers.min(37));
            assert_eq!(rep.per_worker_bytes.iter().sum::<u64>(), 37 * 4096);
        }
    }

    #[test]
    fn decrypt_inverts_encrypt_across_lane_counts() {
        let aes = Aes::new(&[0x5Au8; 16]).unwrap();
        let orig = mk_pages(9, |i| (i * 13) as u8);
        let mut work = orig.clone();
        let mut jobs = jobs_of(&mut work);
        crypt_batch(
            &aes,
            PageCipherMode::Cbc,
            Direction::Encrypt,
            &mut jobs,
            4,
            1,
        )
        .unwrap();
        assert_ne!(work, orig);
        let mut jobs = jobs_of(&mut work);
        crypt_batch(
            &aes,
            PageCipherMode::Cbc,
            Direction::Decrypt,
            &mut jobs,
            3,
            1,
        )
        .unwrap();
        assert_eq!(work, orig);
    }

    #[test]
    fn bitsliced_backend_matches_table_backend_across_lanes() {
        // The batched backend must be a drop-in replacement for the
        // scalar one in every lane configuration.
        let key = [0x7Du8; 16];
        let aes = Aes::new(&key).unwrap();
        let bits = crate::bitslice::BitslicedAes::from_schedule(aes.schedule());

        let orig = mk_pages(11, |i| (i * 7) as u8);
        let mut expect = orig.clone();
        let mut jobs = jobs_of(&mut expect);
        crypt_batch(
            &aes,
            PageCipherMode::Cbc,
            Direction::Encrypt,
            &mut jobs,
            1,
            1,
        )
        .unwrap();

        for workers in [1usize, 2, 4] {
            let mut got = expect.clone();
            let mut jobs = jobs_of(&mut got);
            crypt_batch(
                &bits,
                PageCipherMode::Cbc,
                Direction::Decrypt,
                &mut jobs,
                workers,
                1,
            )
            .unwrap();
            assert_eq!(got, orig, "bitsliced decrypt, {workers} workers");
        }
    }

    #[test]
    fn xts_and_ctr_parallel_match_sequential_and_roundtrip() {
        // The non-chaining modes must keep the same byte-identity
        // guarantee as CBC for every worker count, and decrypt must
        // invert encrypt through the pool.
        let aes = Aes::new(&[0x42u8; 16]).unwrap();
        let bits = crate::bitslice::BitslicedAes::from_schedule(aes.schedule());
        for mode in [PageCipherMode::Xts, PageCipherMode::Ctr] {
            let orig = mk_pages(13, |i| (i * 3) as u8);
            let mut expect = orig.clone();
            let mut ejobs = jobs_of(&mut expect);
            crypt_batch(&aes, mode, Direction::Encrypt, &mut ejobs, 1, 1).unwrap();
            assert_ne!(expect, orig, "{mode} encrypt is not a noop");

            for workers in [2usize, 4, 8] {
                let mut got = orig.clone();
                let mut jobs = jobs_of(&mut got);
                crypt_batch(&bits, mode, Direction::Encrypt, &mut jobs, workers, 1).unwrap();
                assert_eq!(got, expect, "{mode} encrypt, {workers} workers diverged");

                let mut jobs = jobs_of(&mut got);
                crypt_batch(&bits, mode, Direction::Decrypt, &mut jobs, workers, 1).unwrap();
                assert_eq!(got, orig, "{mode} decrypt, {workers} workers");
            }
        }
    }

    #[test]
    fn small_batches_take_the_sequential_fallback() {
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let mut pages = mk_pages(3, |i| i as u8);
        let mut jobs = jobs_of(&mut pages);
        let rep = crypt_batch(
            &aes,
            PageCipherMode::Cbc,
            Direction::Encrypt,
            &mut jobs,
            8,
            4,
        )
        .unwrap();
        assert!(rep.sequential_fallback);
        assert_eq!(rep.workers_used, 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let aes = Aes::new(&[1u8; 16]).unwrap();
        let rep =
            crypt_batch(&aes, PageCipherMode::Cbc, Direction::Encrypt, &mut [], 4, 1).unwrap();
        assert_eq!(rep.pages, 0);
        assert_eq!(rep.bytes, 0);
    }

    /// A cipher that panics after a countdown of block operations —
    /// models a worker hitting a poisoned lookup table or a hardware
    /// fault mid-batch.
    struct PanicAfter {
        inner: Aes,
        remaining: std::sync::atomic::AtomicUsize,
    }

    impl PanicAfter {
        fn tick(&self) {
            use std::sync::atomic::Ordering;
            let prev = self
                .remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    Some(n.saturating_sub(1))
                });
            if prev == Ok(0) {
                panic!("injected cipher panic");
            }
        }
    }

    impl crate::modes::BlockCipher for PanicAfter {
        fn encrypt_block(&self, block: &mut [u8; 16]) {
            self.tick();
            self.inner.encrypt_block(block);
        }
        fn decrypt_block(&self, block: &mut [u8; 16]) {
            self.tick();
            self.inner.decrypt_block(block);
        }
    }

    impl crate::batch::BlockCipherBatch for PanicAfter {
        fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
            for b in blocks {
                crate::modes::BlockCipher::encrypt_block(self, b);
            }
        }
        fn decrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
            for b in blocks {
                crate::modes::BlockCipher::decrypt_block(self, b);
            }
        }
    }

    #[test]
    fn panicking_worker_surfaces_a_typed_error() {
        // Quiet the default panic hook for the injected panics — the
        // containment is the thing under test, not the backtrace. One
        // test covers both paths so the hook swap is not raced.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));

        // Parallel pool: one of four lanes dies, the rest complete.
        let cipher = PanicAfter {
            inner: Aes::new(&[9u8; 16]).unwrap(),
            remaining: std::sync::atomic::AtomicUsize::new(700),
        };
        let mut pages = mk_pages(8, |i| i as u8);
        let mut jobs = jobs_of(&mut pages);
        let parallel_err = crypt_batch(
            &cipher,
            PageCipherMode::Cbc,
            Direction::Encrypt,
            &mut jobs,
            4,
            1,
        )
        .unwrap_err();

        // Sequential fallback: the in-thread chunk is contained too.
        let cipher = PanicAfter {
            inner: Aes::new(&[9u8; 16]).unwrap(),
            remaining: std::sync::atomic::AtomicUsize::new(3),
        };
        let mut pages = mk_pages(2, |i| i as u8);
        let mut jobs = jobs_of(&mut pages);
        let seq_err = crypt_batch(
            &cipher,
            PageCipherMode::Cbc,
            Direction::Decrypt,
            &mut jobs,
            1,
            1,
        )
        .unwrap_err();

        std::panic::set_hook(prev_hook);
        match parallel_err {
            CryptoError::WorkerPanicked { detail, .. } => {
                assert!(detail.contains("injected cipher panic"), "detail: {detail}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert!(matches!(
            seq_err,
            CryptoError::WorkerPanicked { lane: 0, .. }
        ));
    }

    #[test]
    fn lane_loads_differ_by_at_most_one_page() {
        let aes = Aes::new(&[2u8; 16]).unwrap();
        let mut pages = mk_pages(10, |i| i as u8);
        let mut jobs = jobs_of(&mut pages);
        let rep = crypt_batch(
            &aes,
            PageCipherMode::Cbc,
            Direction::Encrypt,
            &mut jobs,
            4,
            1,
        )
        .unwrap();
        let min = rep.per_worker_bytes.iter().min().unwrap();
        let max = rep.per_worker_bytes.iter().max().unwrap();
        assert!(
            max - min <= 4096,
            "unbalanced lanes: {:?}",
            rep.per_worker_bytes
        );
    }
}
