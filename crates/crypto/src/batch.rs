//! Batched multi-block cipher interface.
//!
//! The paper's throughput-critical paths never encrypt one block at a
//! time: the pager moves 4 KiB pages (256 blocks), dm-crypt moves 512-byte
//! sectors (32 blocks), and the lock/unlock engine moves whole working
//! sets. [`BlockCipherBatch`] exposes that batch shape to the cipher so a
//! backend may amortize work across blocks — the bitsliced backend
//! ([`crate::bitslice::BitslicedAes`]) packs [`PAR_BLOCKS`] blocks into
//! bit planes and pays its pack/unpack cost once per batch.
//!
//! The scalar contexts implement the trait by looping, which keeps every
//! mode byte-identical across backends: a batch is *defined* as the
//! concatenation of independent single-block operations (ECB over the
//! batch; chaining belongs to [`crate::modes`]).

use crate::bitslice::{BitslicedAes, PAR_BLOCKS};
use crate::block::{Aes, AesRef, Block};
use crate::modes::BlockCipher;

/// A cipher that can encrypt or decrypt many independent blocks per call.
///
/// Implementations must produce output byte-identical to applying
/// [`BlockCipher::encrypt_block`] / [`BlockCipher::decrypt_block`] to each
/// block in order; callers may therefore pick whichever backend is fastest
/// without changing ciphertext.
pub trait BlockCipherBatch: BlockCipher {
    /// Encrypt every block in place (independent blocks, no chaining).
    fn encrypt_blocks(&self, blocks: &mut [Block]);

    /// Decrypt every block in place (independent blocks, no chaining).
    fn decrypt_blocks(&self, blocks: &mut [Block]);

    /// The batch size at which the backend reaches peak throughput.
    /// Callers sizing scratch buffers should round up to a multiple of
    /// this; `1` means the backend is inherently scalar.
    fn batch_width(&self) -> usize {
        1
    }
}

impl BlockCipherBatch for Aes {
    fn encrypt_blocks(&self, blocks: &mut [Block]) {
        for block in blocks {
            self.encrypt_block(block);
        }
    }

    fn decrypt_blocks(&self, blocks: &mut [Block]) {
        for block in blocks {
            self.decrypt_block(block);
        }
    }
}

impl BlockCipherBatch for AesRef {
    fn encrypt_blocks(&self, blocks: &mut [Block]) {
        for block in blocks {
            self.encrypt_block(block);
        }
    }

    fn decrypt_blocks(&self, blocks: &mut [Block]) {
        for block in blocks {
            self.decrypt_block(block);
        }
    }
}

impl BlockCipherBatch for BitslicedAes {
    fn encrypt_blocks(&self, blocks: &mut [Block]) {
        BitslicedAes::encrypt_blocks(self, blocks);
    }

    fn decrypt_blocks(&self, blocks: &mut [Block]) {
        BitslicedAes::decrypt_blocks(self, blocks);
    }

    fn batch_width(&self) -> usize {
        PAR_BLOCKS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_batch_equals_block_loop() {
        let aes = Aes::new(&[3u8; 16]).unwrap();
        let mut batch = [[0x11u8; 16], [0x22u8; 16], [0x33u8; 16]];
        let mut looped = batch;
        aes.encrypt_blocks(&mut batch);
        for b in looped.iter_mut() {
            aes.encrypt_block(b);
        }
        assert_eq!(batch, looped);
        aes.decrypt_blocks(&mut batch);
        assert_eq!(batch, [[0x11u8; 16], [0x22u8; 16], [0x33u8; 16]]);
    }

    #[test]
    fn widths() {
        assert_eq!(Aes::new(&[0u8; 16]).unwrap().batch_width(), 1);
        assert_eq!(
            BitslicedAes::new(&[0u8; 16]).unwrap().batch_width(),
            PAR_BLOCKS
        );
    }
}
