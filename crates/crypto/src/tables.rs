//! The compact AES round tables ("T-tables").
//!
//! Table-driven AES folds SubBytes, ShiftRows, and MixColumns into four
//! 256-entry tables of 32-bit words per direction. Following the layout the
//! paper accounts for in Table 4 ("2 Round Tables, 2048 bytes"), we store
//! only *one* 1 KiB table per direction and derive the other three by
//! rotation, trading a rotate instruction per lookup for 3 KiB of state.
//! Keeping the table footprint small matters to Sentry: every byte of
//! access-protected state must fit on the SoC.

use crate::{gf, sbox};
use std::sync::OnceLock;

/// Number of entries in a round table.
pub const TABLE_ENTRIES: usize = 256;

/// Size in bytes of one round table (256 entries x 4 bytes).
pub const TABLE_BYTES: usize = TABLE_ENTRIES * 4;

/// Compute the forward round table `Te`.
///
/// `Te[x]` packs, most-significant byte first,
/// `(2*S[x], S[x], S[x], 3*S[x])` where `S` is the S-box and the products
/// are in GF(2^8). The tables used for columns 1-3 are byte rotations of
/// this one.
#[must_use]
pub fn compute_te() -> [u32; TABLE_ENTRIES] {
    let sb = sbox::sbox();
    let mut te = [0u32; TABLE_ENTRIES];
    for (x, slot) in te.iter_mut().enumerate() {
        let s = sb[x];
        let s2 = gf::xtime(s);
        let s3 = gf::mul3(s);
        *slot = (u32::from(s2) << 24) | (u32::from(s) << 16) | (u32::from(s) << 8) | u32::from(s3);
    }
    te
}

/// Compute the inverse round table `Td`.
///
/// `Td[x]` packs, most-significant byte first,
/// `(14*IS[x], 9*IS[x], 13*IS[x], 11*IS[x])` where `IS` is the inverse
/// S-box — i.e., InvMixColumns applied to the InvSubBytes output.
#[must_use]
pub fn compute_td() -> [u32; TABLE_ENTRIES] {
    let isb = sbox::inv_sbox();
    let mut td = [0u32; TABLE_ENTRIES];
    for (x, slot) in td.iter_mut().enumerate() {
        let e = isb[x];
        *slot = (u32::from(gf::mul(e, 14)) << 24)
            | (u32::from(gf::mul(e, 9)) << 16)
            | (u32::from(gf::mul(e, 13)) << 8)
            | u32::from(gf::mul(e, 11));
    }
    td
}

/// Shared, lazily-computed forward round table.
#[must_use]
pub fn te() -> &'static [u32; TABLE_ENTRIES] {
    static TE: OnceLock<[u32; TABLE_ENTRIES]> = OnceLock::new();
    TE.get_or_init(compute_te)
}

/// Shared, lazily-computed inverse round table.
#[must_use]
pub fn td() -> &'static [u32; TABLE_ENTRIES] {
    static TD: OnceLock<[u32; TABLE_ENTRIES]> = OnceLock::new();
    TD.get_or_init(compute_td)
}

/// Apply InvMixColumns to a single packed column word.
///
/// Used to derive the decryption round keys of the equivalent inverse
/// cipher from the encryption round keys.
#[must_use]
pub fn inv_mix_column_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    let m = |x: u8, y: u8, z: u8, t: u8| {
        gf::mul(x, 14) ^ gf::mul(y, 11) ^ gf::mul(z, 13) ^ gf::mul(t, 9)
    };
    u32::from_be_bytes([m(a, b, c, d), m(b, c, d, a), m(c, d, a, b), m(d, a, b, c)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn te_rotations_cover_all_mixcolumn_rows() {
        // Te rotated right by 8 must give the (3s, 2s, s, s) row, etc.
        let te = te();
        let sb = sbox::sbox();
        for x in 0..TABLE_ENTRIES {
            let s = sb[x];
            let s2 = gf::xtime(s);
            let s3 = gf::mul3(s);
            let t1 = te[x].rotate_right(8);
            assert_eq!(
                t1.to_be_bytes(),
                [s3, s2, s, s],
                "Te1 row mismatch at {x:#04x}"
            );
            let t3 = te[x].rotate_right(24);
            assert_eq!(t3.to_be_bytes(), [s, s, s3, s2]);
        }
    }

    #[test]
    fn td_composes_inv_sub_and_inv_mix() {
        let td = td();
        let isb = sbox::inv_sbox();
        for x in 0..TABLE_ENTRIES {
            let e = isb[x];
            // InvMixColumns of the column (e, 0, 0, 0).
            let expected = inv_mix_column_word(u32::from(e) << 24);
            assert_eq!(td[x], expected, "Td mismatch at {x:#04x}");
        }
    }

    #[test]
    fn inv_mix_column_word_matches_spec_example() {
        // MixColumns example from FIPS-197: column db 13 53 45 -> 8e 4d a1 bc.
        // So InvMixColumns must map it back.
        let mixed = u32::from_be_bytes([0x8e, 0x4d, 0xa1, 0xbc]);
        let original = u32::from_be_bytes([0xdb, 0x13, 0x53, 0x45]);
        assert_eq!(inv_mix_column_word(mixed), original);
    }

    #[test]
    fn table_sizes_match_paper_accounting() {
        // The paper's Table 4 counts "2 Round Tables" at 2048 bytes total.
        assert_eq!(2 * TABLE_BYTES, 2048);
    }
}
