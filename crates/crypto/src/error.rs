//! Error types for the AES implementation.

use std::error::Error;
use std::fmt;

/// Error returned when constructing an AES context from an invalid key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// The key length in bytes was not 16, 24, or 32.
    InvalidLength(usize),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::InvalidLength(len) => {
                write!(
                    f,
                    "invalid AES key length {len}, expected 16, 24, or 32 bytes"
                )
            }
        }
    }
}

impl Error for KeyError {}

/// Errors raised by the bulk crypt machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A worker lane of the parallel page-crypt pool panicked. The
    /// batch's buffers are in an unspecified state and must be
    /// discarded, but the pool itself is contained: the panic does not
    /// propagate and the remaining lanes run to completion.
    WorkerPanicked {
        /// Index of the lane that panicked.
        lane: usize,
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// An AES context could not be built from the supplied key.
    Key(KeyError),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::WorkerPanicked { lane, detail } => {
                write!(f, "crypt worker lane {lane} panicked: {detail}")
            }
            CryptoError::Key(_) => write!(f, "invalid crypt key"),
        }
    }
}

impl Error for CryptoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CryptoError::WorkerPanicked { .. } => None,
            CryptoError::Key(e) => Some(e),
        }
    }
}

impl From<KeyError> for CryptoError {
    fn from(e: KeyError) -> Self {
        CryptoError::Key(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let msg = KeyError::InvalidLength(7).to_string();
        assert!(msg.contains('7'));
        assert!(msg.starts_with("invalid"));
    }

    #[test]
    fn crypto_error_sources_chain_to_the_key_error() {
        let e = CryptoError::from(KeyError::InvalidLength(5));
        let src = e.source().expect("key errors carry a source");
        assert!(src.to_string().contains('5'));

        let e = CryptoError::WorkerPanicked {
            lane: 3,
            detail: "boom".into(),
        };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("lane 3"));
        assert!(e.to_string().contains("boom"));
    }
}
