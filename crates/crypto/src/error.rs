//! Error types for the AES implementation.

use std::error::Error;
use std::fmt;

/// Error returned when constructing an AES context from an invalid key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// The key length in bytes was not 16, 24, or 32.
    InvalidLength(usize),
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::InvalidLength(len) => {
                write!(
                    f,
                    "invalid AES key length {len}, expected 16, 24, or 32 bytes"
                )
            }
        }
    }
}

impl Error for KeyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let msg = KeyError::InvalidLength(7).to_string();
        assert!(msg.contains('7'));
        assert!(msg.starts_with("invalid"));
    }
}
