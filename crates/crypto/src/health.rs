//! The health governor: watchdog deadlines, bounded retry accounting,
//! and a circuit breaker with degraded modes for flaky hardware.
//!
//! The paper assumes the crypto accelerator and storage either work or
//! the device dies. Production hardware *misbehaves* instead: DMA
//! descriptors wedge and never complete, engines return corrupt output
//! or run 10× slow after a thermal throttle, and eMMC reads fail or
//! stall transiently. The governor makes surviving that a first-class
//! mode, built on the observation (Sealer's argument) that the on-SoC
//! table-free bitsliced AES path is *always* available as a trustworthy
//! software fallback — degraded means slower, never less safe.
//!
//! Per governed component the state machine is:
//!
//! ```text
//!            failure                 K failures in window
//! Healthy ───────────▶ Degraded ──────────────────────────▶ Open
//!    ▲                    │  ▲                                │
//!    │   window drains    │  │ probe fails (re-trip)          │ probe
//!    │◀───────────────────┘  │                                │ interval
//!    │                       │                                ▼
//!    └──────────────────────────────────────────────────── HalfOpen
//!                     probe budget met
//! ```
//!
//! * **Healthy** — dispatch to the accelerator, every wait guarded by a
//!   watchdog deadline of `op_duration_ns × margin` (clamped to a
//!   floor).
//! * **Degraded** — recent failures below the trip threshold; dispatch
//!   continues but the window is hot and telemetry accumulates
//!   time-in-degraded.
//! * **Open** — the breaker tripped: K failures inside the failure
//!   window. All dispatch is routed straight to the CPU path without
//!   touching the engine, until the probe interval elapses.
//! * **HalfOpen** — probing: real work is dispatched to the engine
//!   again; a run of consecutive successes closes the breaker, any
//!   failure re-trips it.
//!
//! The governor is a pure, deterministic state machine over simulated
//! timestamps — no wall clock, no randomness — so every degraded-mode
//! schedule replays exactly from a seed.

/// Unified bounded-retry accounting, shared by the integrity plane's
/// verify re-reads, the lifecycle's crypt retries, and the dm-crypt
/// storage retries (previously three ad-hoc counter shapes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retry attempts performed beyond each operation's first try.
    pub attempts: u64,
    /// Operations that succeeded after at least one retry.
    pub recovered: u64,
    /// Operations that still failed once the retry budget was spent.
    pub exhausted: u64,
}

impl RetryStats {
    /// Fold another accumulator into this one.
    pub fn merge(&mut self, other: &RetryStats) {
        self.attempts += other.attempts;
        self.recovered += other.recovered;
        self.exhausted += other.exhausted;
    }
}

/// Configuration for a [`HealthGovernor`]. All fields are integers so
/// the config stays `Eq`/hashable and deterministic across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Master switch. Disabled, the governor always allows dispatch,
    /// watchdog deadlines are infinite, and no telemetry accumulates.
    pub enabled: bool,
    /// Watchdog deadline as a percentage of the submitted op's modeled
    /// duration (300 = 3× the expected completion time).
    pub watchdog_margin_pct: u32,
    /// Deadline floor in nanoseconds, so tiny ops are not abandoned on
    /// scheduler noise.
    pub watchdog_floor_ns: u64,
    /// Failures within [`HealthConfig::failure_window_ns`] that trip
    /// the breaker (the K in "K failures in a window").
    pub trip_failures: u32,
    /// Sliding failure window, nanoseconds of simulated time.
    pub failure_window_ns: u64,
    /// How long the breaker stays Open before half-open probing.
    pub probe_after_ns: u64,
    /// Consecutive half-open probe successes required to close the
    /// breaker back to Healthy.
    pub probe_successes: u32,
    /// Retry budget for transient storage-read failures (retries beyond
    /// the first attempt).
    pub max_disk_retries: u32,
    /// Base backoff before the first storage retry; doubles per retry
    /// (deterministic sim-clock backoff, no jitter needed — the sim is
    /// single-threaded per device).
    pub disk_backoff_base_ns: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            enabled: true,
            watchdog_margin_pct: 300,
            watchdog_floor_ns: 20_000,
            trip_failures: 3,
            failure_window_ns: 50_000_000,
            probe_after_ns: 5_000_000,
            probe_successes: 2,
            max_disk_retries: 3,
            disk_backoff_base_ns: 20_000,
        }
    }
}

impl HealthConfig {
    /// A disabled governor: dispatch is never vetoed, deadlines are
    /// infinite, storage reads are never retried.
    #[must_use]
    pub fn disabled() -> Self {
        HealthConfig {
            enabled: false,
            ..HealthConfig::default()
        }
    }
}

/// The per-component breaker state. See the module docs for the
/// transition diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    /// No recent failures; full dispatch with watchdogs.
    #[default]
    Healthy,
    /// Recent failures below the trip threshold; dispatch continues.
    Degraded,
    /// Breaker tripped: all dispatch goes to the CPU fallback path.
    Open,
    /// Probing: dispatch allowed again, counting probe successes.
    HalfOpen,
}

impl HealthState {
    /// Short snake_case name for tables and JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Open => "open",
            HealthState::HalfOpen => "half_open",
        }
    }
}

/// What kind of failure a dispatch observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The watchdog deadline expired and the op was abandoned.
    Timeout,
    /// The op completed but its status word reported corrupt output.
    Corrupt,
    /// The engine reported a hardware fault at dispatch.
    Fault,
}

/// Cumulative degradation telemetry for one governed component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthStats {
    /// Times the breaker tripped to Open (including half-open
    /// re-trips).
    pub trips: u64,
    /// Dispatches allowed while probing (HalfOpen), the breaker's
    /// recovery attempts.
    pub probes: u64,
    /// Watchdog deadlines that expired (ops abandoned).
    pub timeouts: u64,
    /// Ops retired with a corrupt-output status.
    pub corrupt_ops: u64,
    /// Bytes across all abandoned ops (each one's bounce window was
    /// zeroized before fallback dispatch).
    pub abandoned_bytes: u64,
    /// Bytes crypted on the CPU fallback path because the governor
    /// vetoed or abandoned the accelerator.
    pub fallback_crypt_bytes: u64,
    /// Times the breaker closed back to Healthy after a probe budget.
    pub recoveries: u64,
    /// Simulated time spent outside Healthy (Degraded + Open +
    /// HalfOpen).
    pub time_degraded_ns: u64,
    /// Bounded-retry accounting for transient storage-read failures.
    pub disk: RetryStats,
}

impl HealthStats {
    /// Fold another component's telemetry into this one (fleet
    /// aggregation).
    pub fn merge(&mut self, other: &HealthStats) {
        self.trips += other.trips;
        self.probes += other.probes;
        self.timeouts += other.timeouts;
        self.corrupt_ops += other.corrupt_ops;
        self.abandoned_bytes += other.abandoned_bytes;
        self.fallback_crypt_bytes += other.fallback_crypt_bytes;
        self.recoveries += other.recoveries;
        self.time_degraded_ns += other.time_degraded_ns;
        self.disk.merge(&other.disk);
    }
}

/// The health governor for one component (one accelerator, one disk):
/// breaker state machine, watchdog derivation, retry budgets, and
/// telemetry. Deterministic over simulated timestamps.
#[derive(Debug, Clone)]
pub struct HealthGovernor {
    config: HealthConfig,
    state: HealthState,
    /// Timestamps of failures inside the sliding window, oldest first.
    failures: Vec<u64>,
    /// When the breaker last tripped to Open.
    opened_at_ns: u64,
    /// Consecutive successes while HalfOpen.
    probe_run: u32,
    /// When the component last left Healthy, if it has not returned.
    degraded_since_ns: Option<u64>,
    /// Cumulative telemetry.
    pub stats: HealthStats,
}

impl HealthGovernor {
    /// A governor in the Healthy state.
    #[must_use]
    pub fn new(config: HealthConfig) -> Self {
        HealthGovernor {
            config,
            state: HealthState::Healthy,
            failures: Vec::new(),
            opened_at_ns: 0,
            probe_run: 0,
            degraded_since_ns: None,
            stats: HealthStats::default(),
        }
    }

    /// The configuration this governor runs under.
    #[must_use]
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Whether the governor is active at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Current breaker state.
    #[must_use]
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The watchdog deadline budget for an op whose modeled duration is
    /// `op_duration_ns`: `duration × margin`, clamped to the configured
    /// floor. Disabled governors return [`u64::MAX`] (no deadline).
    #[must_use]
    pub fn watchdog_ns(&self, op_duration_ns: u64) -> u64 {
        if !self.config.enabled {
            return u64::MAX;
        }
        (op_duration_ns.saturating_mul(u64::from(self.config.watchdog_margin_pct)) / 100)
            .max(self.config.watchdog_floor_ns)
    }

    /// Should this dispatch go to the accelerator? Consult *before*
    /// staging the bounce window. While Open this returns `false`
    /// (route straight to the CPU path) until the probe interval
    /// elapses, at which point the breaker goes HalfOpen and the
    /// dispatch itself is the probe.
    pub fn allow_accel(&mut self, now_ns: u64) -> bool {
        if !self.config.enabled {
            return true;
        }
        self.prune(now_ns);
        match self.state {
            HealthState::Healthy | HealthState::Degraded => true,
            HealthState::Open => {
                if now_ns.saturating_sub(self.opened_at_ns) >= self.config.probe_after_ns {
                    self.state = HealthState::HalfOpen;
                    self.probe_run = 0;
                    self.stats.probes += 1;
                    true
                } else {
                    false
                }
            }
            HealthState::HalfOpen => {
                self.stats.probes += 1;
                true
            }
        }
    }

    /// Record a successful accelerator op. Closes the breaker after the
    /// configured run of half-open probe successes; drains the failure
    /// window back toward Healthy otherwise.
    pub fn record_success(&mut self, now_ns: u64) {
        if !self.config.enabled {
            return;
        }
        match self.state {
            HealthState::HalfOpen => {
                self.probe_run += 1;
                if self.probe_run >= self.config.probe_successes {
                    self.failures.clear();
                    self.stats.recoveries += 1;
                    self.enter_healthy(now_ns);
                }
            }
            HealthState::Degraded => {
                self.prune(now_ns);
                if self.failures.is_empty() {
                    self.enter_healthy(now_ns);
                }
            }
            HealthState::Healthy | HealthState::Open => {}
        }
    }

    /// Record a failed accelerator op (timeout, corrupt output, or a
    /// reported engine fault). Trips the breaker once the failure
    /// window holds the configured count; a half-open failure re-trips
    /// immediately.
    pub fn record_failure(&mut self, now_ns: u64, kind: FailureKind) {
        if !self.config.enabled {
            return;
        }
        match kind {
            FailureKind::Timeout => self.stats.timeouts += 1,
            FailureKind::Corrupt => self.stats.corrupt_ops += 1,
            FailureKind::Fault => {}
        }
        self.leave_healthy(now_ns);
        match self.state {
            HealthState::HalfOpen => self.trip(now_ns),
            HealthState::Open => {}
            HealthState::Healthy | HealthState::Degraded => {
                self.prune(now_ns);
                self.failures.push(now_ns);
                if self.failures.len() >= self.config.trip_failures as usize {
                    self.trip(now_ns);
                } else {
                    self.state = HealthState::Degraded;
                }
            }
        }
    }

    /// Account bytes whose abandoned op forced a bounce-window zeroize.
    pub fn note_abandoned(&mut self, bytes: u64) {
        self.stats.abandoned_bytes += bytes;
    }

    /// Account bytes crypted on the CPU fallback path under this
    /// governor's veto or abandonment.
    pub fn note_fallback_crypt(&mut self, bytes: u64) {
        self.stats.fallback_crypt_bytes += bytes;
    }

    /// Retry budget for a transient storage-read failure (retries
    /// beyond the first attempt). Zero when disabled.
    #[must_use]
    pub fn disk_retry_budget(&self) -> u32 {
        if self.config.enabled {
            self.config.max_disk_retries
        } else {
            0
        }
    }

    /// Deterministic backoff before retry number `attempt` (1-based):
    /// `base × 2^(attempt-1)`, saturating.
    #[must_use]
    pub fn disk_backoff_ns(&self, attempt: u32) -> u64 {
        self.config.disk_backoff_base_ns.saturating_mul(
            1u64.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u64::MAX),
        )
    }

    /// Fold any still-open degraded interval into
    /// [`HealthStats::time_degraded_ns`] as of `now_ns` (end-of-run
    /// reporting). The interval restarts from `now_ns` if the component
    /// is still degraded.
    pub fn finalize(&mut self, now_ns: u64) {
        if let Some(since) = self.degraded_since_ns {
            self.stats.time_degraded_ns += now_ns.saturating_sub(since);
            self.degraded_since_ns = Some(now_ns);
        }
    }

    fn trip(&mut self, now_ns: u64) {
        self.state = HealthState::Open;
        self.opened_at_ns = now_ns;
        self.probe_run = 0;
        self.stats.trips += 1;
    }

    fn prune(&mut self, now_ns: u64) {
        let horizon = now_ns.saturating_sub(self.config.failure_window_ns);
        self.failures.retain(|&t| t >= horizon);
    }

    fn leave_healthy(&mut self, now_ns: u64) {
        if self.degraded_since_ns.is_none() {
            self.degraded_since_ns = Some(now_ns);
        }
    }

    fn enter_healthy(&mut self, now_ns: u64) {
        self.state = HealthState::Healthy;
        self.probe_run = 0;
        if let Some(since) = self.degraded_since_ns.take() {
            self.stats.time_degraded_ns += now_ns.saturating_sub(since);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn governor() -> HealthGovernor {
        HealthGovernor::new(HealthConfig::default())
    }

    #[test]
    fn breaker_trips_after_k_failures_in_window() {
        let mut g = governor();
        assert_eq!(g.state(), HealthState::Healthy);
        g.record_failure(1_000, FailureKind::Timeout);
        assert_eq!(g.state(), HealthState::Degraded);
        g.record_failure(2_000, FailureKind::Timeout);
        assert_eq!(g.state(), HealthState::Degraded);
        g.record_failure(3_000, FailureKind::Timeout);
        assert_eq!(g.state(), HealthState::Open);
        assert_eq!(g.stats.trips, 1);
        assert_eq!(g.stats.timeouts, 3);
        assert!(!g.allow_accel(3_500), "open breaker vetoes dispatch");
    }

    #[test]
    fn failures_outside_the_window_do_not_trip() {
        let cfg = HealthConfig {
            failure_window_ns: 1_000,
            ..HealthConfig::default()
        };
        let mut g = HealthGovernor::new(cfg);
        g.record_failure(0, FailureKind::Fault);
        g.record_failure(2_000, FailureKind::Fault);
        g.record_failure(4_000, FailureKind::Fault);
        assert_eq!(g.state(), HealthState::Degraded, "window drained each time");
        assert_eq!(g.stats.trips, 0);
    }

    #[test]
    fn half_open_probe_budget_closes_the_breaker() {
        let mut g = governor();
        for t in 0..3 {
            g.record_failure(t * 1_000, FailureKind::Timeout);
        }
        assert_eq!(g.state(), HealthState::Open);
        let probe_at = 2_000 + g.config().probe_after_ns;
        assert!(!g.allow_accel(probe_at - 1), "probe interval not elapsed");
        assert!(g.allow_accel(probe_at), "first probe allowed");
        assert_eq!(g.state(), HealthState::HalfOpen);
        g.record_success(probe_at + 100);
        assert_eq!(g.state(), HealthState::HalfOpen, "needs 2 successes");
        assert!(g.allow_accel(probe_at + 200));
        g.record_success(probe_at + 300);
        assert_eq!(g.state(), HealthState::Healthy);
        assert_eq!(g.stats.recoveries, 1);
        assert!(g.stats.probes >= 2);
        assert!(g.stats.time_degraded_ns >= g.config().probe_after_ns);
    }

    #[test]
    fn half_open_failure_re_trips() {
        let mut g = governor();
        for t in 0..3 {
            g.record_failure(t, FailureKind::Corrupt);
        }
        let probe_at = 2 + g.config().probe_after_ns;
        assert!(g.allow_accel(probe_at));
        g.record_failure(probe_at + 1, FailureKind::Corrupt);
        assert_eq!(g.state(), HealthState::Open);
        assert_eq!(g.stats.trips, 2, "half-open failure re-trips");
        assert!(!g.allow_accel(probe_at + 2));
    }

    #[test]
    fn watchdog_budget_scales_with_duration_and_has_a_floor() {
        let g = governor();
        assert_eq!(g.watchdog_ns(100_000), 300_000, "3x margin");
        assert_eq!(g.watchdog_ns(10), 20_000, "floor");
        let off = HealthGovernor::new(HealthConfig::disabled());
        assert_eq!(off.watchdog_ns(100_000), u64::MAX);
    }

    #[test]
    fn disk_backoff_doubles_deterministically() {
        let g = governor();
        assert_eq!(g.disk_retry_budget(), 3);
        assert_eq!(g.disk_backoff_ns(1), 20_000);
        assert_eq!(g.disk_backoff_ns(2), 40_000);
        assert_eq!(g.disk_backoff_ns(3), 80_000);
        let off = HealthGovernor::new(HealthConfig::disabled());
        assert_eq!(off.disk_retry_budget(), 0);
    }

    #[test]
    fn disabled_governor_is_inert() {
        let mut g = HealthGovernor::new(HealthConfig::disabled());
        for t in 0..100 {
            g.record_failure(t, FailureKind::Timeout);
            assert!(g.allow_accel(t));
        }
        assert_eq!(g.state(), HealthState::Healthy);
        assert_eq!(g.stats, HealthStats::default());
    }

    #[test]
    fn degraded_time_accumulates_until_recovery() {
        let mut g = governor();
        g.record_failure(1_000, FailureKind::Fault);
        assert_eq!(g.state(), HealthState::Degraded);
        // Window drains; the next success returns to Healthy.
        let after = 1_000 + g.config().failure_window_ns + 1;
        g.record_success(after);
        assert_eq!(g.state(), HealthState::Healthy);
        assert_eq!(g.stats.time_degraded_ns, after - 1_000);
        // finalize() with nothing open is a no-op.
        g.finalize(after + 500);
        assert_eq!(g.stats.time_degraded_ns, after - 1_000);
    }

    #[test]
    fn stats_merge_is_fieldwise_sum() {
        let mut a = HealthStats {
            trips: 1,
            fallback_crypt_bytes: 100,
            disk: RetryStats {
                attempts: 2,
                recovered: 1,
                exhausted: 0,
            },
            ..HealthStats::default()
        };
        let b = HealthStats {
            trips: 2,
            timeouts: 5,
            disk: RetryStats {
                attempts: 1,
                recovered: 0,
                exhausted: 1,
            },
            ..HealthStats::default()
        };
        a.merge(&b);
        assert_eq!(a.trips, 3);
        assert_eq!(a.timeouts, 5);
        assert_eq!(a.fallback_crypt_bytes, 100);
        assert_eq!(a.disk.attempts, 3);
        assert_eq!(a.disk.exhausted, 1);
    }
}
