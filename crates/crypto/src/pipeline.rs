//! The asynchronous read-path crypt pipeline: CTR keystream precompute.
//!
//! CTR is the only page cipher mode whose per-byte work is independent of
//! the data: the keystream is `E_k(counter)` over a counter derived from
//! the sector number alone. That means a read path can compute the
//! keystream *before* the ciphertext arrives — while the simulated block
//! device "seeks" or while the crypto accelerator's DMA engine is busy —
//! and finish the decrypt with a cheap XOR once the bytes land. This
//! module provides the data structures for that overlap:
//!
//! * [`KeystreamCache`] — a per-volume, epoch-bound, **single-use** store
//!   of precomputed sector keystream. Entries are keyed by
//!   `(sector, epoch)` and removed on [`KeystreamCache::take`], so a
//!   keystream buffer can never be served twice; rotating the epoch
//!   (volume-key change, device lock) zeroizes every resident buffer
//!   before dropping it.
//! * [`PipelineConfig`] — the tuning knob shared by dm-crypt's read path
//!   and Sentry's readahead/sweeper batch routing.
//! * [`FallbackReason`] — the typed reasons a request stays on the
//!   inline CPU path instead of the accelerator queue.
//!
//! # Residency model
//!
//! Keystream is key-equivalent material: XORing it with ciphertext
//! yields plaintext, so a keystream block in DRAM would be as damaging
//! as a leaked round key. The cache therefore models **on-SoC scratch**
//! (iRAM or a locked way): its buffers are host-memory state of the
//! simulation, never written through the simulated DRAM hierarchy, and
//! so die with power exactly like the volatile root key. The explicit
//! zeroize-on-lock is the software half of the discipline; the cold-boot
//! scan cell in `exp_read_overlap` verifies the hardware half (a power
//! cut finds no keystream anywhere in simulated DRAM).

use crate::batch::BlockCipherBatch;
use crate::modes::ctr_crypt;
use std::collections::HashMap;

/// Tuning for the asynchronous read-path crypt pipeline.
///
/// Disabled (the default), every consumer behaves exactly as if this
/// config did not exist: dm-crypt decrypts inline after the device wait
/// and lifecycle batches stay on the CPU engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Master switch for the overlapped dm-crypt read path.
    pub enabled: bool,
    /// Keystream cache capacity, in sectors. Oldest entries are
    /// zeroized and evicted first.
    pub keystream_sectors: usize,
    /// How many sectors past the end of the current request the
    /// precompute lanes may run ahead (bounded lookahead keeps the
    /// on-SoC scratch footprint small).
    pub precompute_ahead: usize,
    /// Miss runs shorter than this many sectors skip the accelerator
    /// queue (descriptor setup would dominate) and decrypt on the CPU.
    pub min_accel_sectors: usize,
    /// Route Sentry's readahead/sweeper decrypt batches through the
    /// accelerator queue when the accel is awake and the cipher mode is
    /// non-chaining.
    pub route_lifecycle_batches: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            enabled: false,
            keystream_sectors: 128,
            precompute_ahead: 64,
            min_accel_sectors: 2,
            route_lifecycle_batches: false,
        }
    }
}

impl PipelineConfig {
    /// An enabled configuration with the default cache geometry and
    /// lifecycle routing on.
    #[must_use]
    pub fn enabled() -> Self {
        PipelineConfig {
            enabled: true,
            route_lifecycle_batches: true,
            ..PipelineConfig::default()
        }
    }

    /// Builder: set the keystream cache capacity in sectors.
    #[must_use]
    pub fn keystream_sectors(mut self, sectors: usize) -> Self {
        self.keystream_sectors = sectors;
        self
    }

    /// Builder: set the precompute lookahead in sectors.
    #[must_use]
    pub fn precompute_ahead(mut self, sectors: usize) -> Self {
        self.precompute_ahead = sectors;
        self
    }
}

/// Why a request (or batch) stayed on the inline CPU path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// The pipeline is disabled by configuration.
    Disabled,
    /// The accelerator clock is down-scaled (device locked / suspending,
    /// paper §8.2) — queueing work would be slower than the CPU.
    AccelDownScaled,
    /// The selected cipher mode is serially chained (CBC): extent
    /// descriptors cannot be decrypted independently by the engine.
    UnsupportedCipherMode,
    /// The miss run was shorter than `min_accel_sectors`; descriptor
    /// setup would dominate.
    BelowThreshold,
    /// The health governor's circuit breaker is Open: the accelerator
    /// recently wedged, corrupted output, or timed out, so dispatch is
    /// routed straight to the CPU path until a half-open probe
    /// succeeds.
    BreakerOpen,
}

impl FallbackReason {
    /// Stable snake_case name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FallbackReason::Disabled => "disabled",
            FallbackReason::AccelDownScaled => "accel_down_scaled",
            FallbackReason::UnsupportedCipherMode => "unsupported_cipher_mode",
            FallbackReason::BelowThreshold => "below_threshold",
            FallbackReason::BreakerOpen => "breaker_open",
        }
    }
}

/// Cumulative keystream-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeystreamStats {
    /// Sectors whose keystream was precomputed into the cache.
    pub precomputed: u64,
    /// Takes served from the cache (each consumed its entry).
    pub hits: u64,
    /// Takes that found no entry (or only a stale-epoch entry).
    pub misses: u64,
    /// Entries zeroized and evicted to make room (FIFO order).
    pub evicted: u64,
    /// Takes refused because the caller's epoch did not match the
    /// cache's — the stale entry is zeroized and dropped, never served.
    pub stale_epoch_denied: u64,
    /// Entries zeroized by explicit epoch rotation (key change or
    /// device lock).
    pub zeroized_on_rotate: u64,
}

impl KeystreamStats {
    /// Fraction of takes served from the cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-volume, epoch-bound, single-use cache of precomputed sector
/// keystream. See the module docs for the residency model.
#[derive(Debug, Clone)]
pub struct KeystreamCache {
    /// Bytes of keystream per entry (the sector size).
    unit: usize,
    /// Maximum resident entries.
    capacity: usize,
    /// Current key epoch; entries are bound to the epoch they were
    /// generated under and can only be taken under that same epoch.
    epoch: u64,
    entries: HashMap<u64, Vec<u8>>,
    /// Insertion order for FIFO eviction.
    order: Vec<u64>,
    /// Cumulative statistics.
    pub stats: KeystreamStats,
}

impl KeystreamCache {
    /// An empty cache of `capacity` entries of `unit` bytes each.
    #[must_use]
    pub fn new(unit: usize, capacity: usize) -> Self {
        KeystreamCache {
            unit,
            capacity,
            epoch: 0,
            entries: HashMap::new(),
            order: Vec::new(),
            stats: KeystreamStats::default(),
        }
    }

    /// Bytes of keystream per entry.
    #[must_use]
    pub fn unit(&self) -> usize {
        self.unit
    }

    /// The current key epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether keystream for `sector` is resident (without consuming it).
    #[must_use]
    pub fn contains(&self, sector: u64) -> bool {
        self.entries.contains_key(&sector)
    }

    /// Insert precomputed keystream for `sector`, evicting (zeroized)
    /// FIFO victims if full. Re-inserting an existing sector replaces
    /// (and zeroizes) the old buffer.
    ///
    /// # Panics
    ///
    /// Panics if `ks` is not exactly one unit long.
    pub fn insert(&mut self, sector: u64, ks: Vec<u8>) {
        assert_eq!(ks.len(), self.unit, "keystream must be one unit");
        if self.capacity == 0 {
            return;
        }
        if let Some(mut old) = self.entries.insert(sector, ks) {
            zeroize(&mut old);
            self.order.retain(|&s| s != sector);
        }
        self.order.push(sector);
        self.stats.precomputed += 1;
        while self.entries.len() > self.capacity {
            let victim = self.order.remove(0);
            if let Some(mut buf) = self.entries.remove(&victim) {
                zeroize(&mut buf);
                self.stats.evicted += 1;
            }
        }
    }

    /// Take the keystream for `(sector, epoch)`, **consuming** the entry
    /// — the single-use discipline. Returns `None` on a miss; a caller
    /// presenting a stale epoch never receives the entry (it is
    /// zeroized and dropped instead, and the denial is counted).
    pub fn take(&mut self, sector: u64, epoch: u64) -> Option<Vec<u8>> {
        match self.entries.remove(&sector) {
            Some(ks) if epoch == self.epoch => {
                self.order.retain(|&s| s != sector);
                self.stats.hits += 1;
                Some(ks)
            }
            Some(mut stale) => {
                zeroize(&mut stale);
                self.order.retain(|&s| s != sector);
                self.stats.stale_epoch_denied += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Rotate the key epoch: zeroize and drop every resident buffer,
    /// then bump the epoch so any in-flight consumer holding the old
    /// epoch can never hit. Called on volume-key change and on device
    /// lock.
    pub fn rotate_epoch(&mut self) {
        for (_, buf) in self.entries.iter_mut() {
            zeroize(buf);
            self.stats.zeroized_on_rotate += 1;
        }
        self.entries.clear();
        self.order.clear();
        self.epoch += 1;
    }
}

/// Best-effort zeroization of a keystream buffer before it is dropped.
fn zeroize(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        // Volatile-ish: the value is read back below so the loop is not
        // a dead store even under aggressive optimisation of the model.
        *b = 0;
    }
    debug_assert!(buf.iter().all(|&b| b == 0));
}

/// Generate `len` bytes of CTR keystream starting at counter block `iv`
/// (encrypting zeroes is exactly the keystream).
#[must_use]
pub fn ctr_keystream<C: BlockCipherBatch>(cipher: &C, iv: &[u8; 16], len: usize) -> Vec<u8> {
    let mut ks = vec![0u8; len];
    ctr_crypt(cipher, iv, &mut ks);
    ks
}

/// XOR precomputed keystream into `data` in place — the cheap half of an
/// overlapped CTR decrypt.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xor_keystream(data: &mut [u8], ks: &[u8]) {
    assert_eq!(data.len(), ks.len(), "keystream length mismatch");
    for (d, k) in data.iter_mut().zip(ks) {
        *d ^= *k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitslice::BitslicedAes;
    use crate::modes::ctr_crypt;

    fn cache() -> KeystreamCache {
        KeystreamCache::new(512, 4)
    }

    #[test]
    fn take_is_single_use() {
        let mut c = cache();
        c.insert(7, vec![0xAB; 512]);
        assert!(c.contains(7));
        assert_eq!(c.take(7, 0), Some(vec![0xAB; 512]));
        // The entry was consumed: a second take under the same epoch
        // misses — keystream is never served twice.
        assert_eq!(c.take(7, 0), None);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn stale_epoch_is_denied_and_zeroized() {
        let mut c = cache();
        c.insert(3, vec![0x55; 512]);
        // Rotation happens between insert and take (lock transition).
        c.rotate_epoch();
        c.insert(3, vec![0x66; 512]);
        // A consumer still holding epoch 0 is denied the epoch-1 entry.
        assert_eq!(c.take(3, 0), None);
        assert_eq!(c.stats.stale_epoch_denied, 1);
        // And the stale entry was dropped, not kept for a retry.
        assert_eq!(c.take(3, 1), None);
    }

    #[test]
    fn rotate_epoch_zeroizes_and_clears() {
        let mut c = cache();
        c.insert(1, vec![0x11; 512]);
        c.insert(2, vec![0x22; 512]);
        c.rotate_epoch();
        assert!(c.is_empty());
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.stats.zeroized_on_rotate, 2);
        assert_eq!(c.take(1, 1), None);
    }

    #[test]
    fn fifo_eviction_zeroizes_victims() {
        let mut c = cache();
        for s in 0..6u64 {
            c.insert(s, vec![s as u8; 512]);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats.evicted, 2);
        assert!(!c.contains(0) && !c.contains(1));
        assert!(c.contains(5));
    }

    #[test]
    fn ctr_keystream_matches_ctr_crypt_of_zeroes() {
        let bits = BitslicedAes::new(&[0x5Eu8; 16]).unwrap();
        let iv = [0x13u8; 16];
        let ks = ctr_keystream(&bits, &iv, 512);
        let mut zeroes = vec![0u8; 512];
        ctr_crypt(&bits, &iv, &mut zeroes);
        assert_eq!(ks, zeroes);

        // XOR-applying the keystream decrypts exactly like ctr_crypt.
        let pt: Vec<u8> = (0..512).map(|i| (i * 7) as u8).collect();
        let mut ct = pt.clone();
        ctr_crypt(&bits, &iv, &mut ct);
        xor_keystream(&mut ct, &ks);
        assert_eq!(ct, pt);
    }

    #[test]
    fn hit_rate_reports() {
        let mut c = cache();
        c.insert(1, vec![0; 512]);
        let _ = c.take(1, 0);
        let _ = c.take(2, 0);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_builders() {
        let p = PipelineConfig::enabled()
            .keystream_sectors(32)
            .precompute_ahead(16);
        assert!(p.enabled && p.route_lifecycle_batches);
        assert_eq!(p.keystream_sectors, 32);
        assert_eq!(p.precompute_ahead, 16);
        assert!(!PipelineConfig::default().enabled);
        assert_eq!(FallbackReason::AccelDownScaled.name(), "accel_down_scaled");
    }
}
