//! CMAC (NIST SP 800-38B) over any [`BlockCipher`].
//!
//! The integrity plane of the Sentry reproduction authenticates encrypted
//! DRAM pages with a per-page MAC. Reusing AES as the MAC primitive means
//! no new cipher state has to live on-SoC: the CMAC subkeys derive from
//! one block encryption and the running CBC chain fits in registers, so
//! the MAC inherits the same leakage profile as the page cipher itself.
//!
//! The implementation is a straightforward transcription of SP 800-38B:
//!
//! * subkeys `K1 = dbl(E_K(0^128))`, `K2 = dbl(K1)` where `dbl` is
//!   doubling in GF(2^128) with the x^128 + x^7 + x^2 + x + 1 modulus;
//! * complete final block → XOR with `K1`; partial/empty final block →
//!   pad with `10…0` and XOR with `K2`;
//! * the tag is the final CBC state, optionally truncated (the on-SoC
//!   tag store keeps 64-bit tags to double its page capacity, which
//!   SP 800-38B §5.5 explicitly permits).
//!
//! Verified against the NIST AES-128 CMAC examples.

use crate::block::Block;
use crate::modes::BlockCipher;
use crate::BLOCK_SIZE;

/// Double a 128-bit value in GF(2^128) (the `dbl` of SP 800-38B §6.1).
fn dbl(block: &Block) -> Block {
    let mut out = [0u8; BLOCK_SIZE];
    let mut carry = 0u8;
    for i in (0..BLOCK_SIZE).rev() {
        let b = block[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry != 0 {
        out[BLOCK_SIZE - 1] ^= 0x87;
    }
    out
}

fn xor_into(dst: &mut Block, src: &Block) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= *s;
    }
}

/// A CMAC context: the underlying cipher plus precomputed subkeys.
///
/// The context borrows nothing and owns the cipher, so callers that
/// already hold an expanded AES key (e.g. the on-SoC engine) construct
/// one `Cmac` per key and reuse it for every page.
#[derive(Debug, Clone)]
pub struct Cmac<C: BlockCipher> {
    cipher: C,
    k1: Block,
    k2: Block,
}

impl<C: BlockCipher> Cmac<C> {
    /// Build a CMAC context, deriving the two subkeys from `cipher`.
    pub fn new(cipher: C) -> Self {
        let mut l = [0u8; BLOCK_SIZE];
        cipher.encrypt_block(&mut l);
        let k1 = dbl(&l);
        let k2 = dbl(&k1);
        Cmac { cipher, k1, k2 }
    }

    /// The first subkey (`K1`), exposed for known-answer tests.
    #[must_use]
    pub fn subkey1(&self) -> &Block {
        &self.k1
    }

    /// The second subkey (`K2`), exposed for known-answer tests.
    #[must_use]
    pub fn subkey2(&self) -> &Block {
        &self.k2
    }

    /// MAC a message supplied as a list of byte slices, treated as their
    /// concatenation. Returns the full 128-bit tag.
    ///
    /// The multi-part form lets the integrity plane prepend a 16-byte
    /// context tweak (derived from the page IV) to a ciphertext page
    /// without copying the page.
    #[must_use]
    pub fn mac_parts(&self, parts: &[&[u8]]) -> Block {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut x = [0u8; BLOCK_SIZE];
        let mut buf = [0u8; BLOCK_SIZE];
        let mut buf_len = 0usize;
        let mut consumed = 0usize;
        for part in parts {
            for &byte in *part {
                // Keep the most recent (possibly final) block buffered so
                // the subkey XOR can be applied before the last cipher
                // call, per SP 800-38B step 6.
                if buf_len == BLOCK_SIZE {
                    xor_into(&mut x, &buf);
                    self.cipher.encrypt_block(&mut x);
                    buf_len = 0;
                }
                buf[buf_len] = byte;
                buf_len += 1;
                consumed += 1;
            }
        }
        debug_assert_eq!(consumed, total);
        if total > 0 && buf_len == BLOCK_SIZE {
            // Complete final block: XOR with K1.
            xor_into(&mut buf, &self.k1);
        } else {
            // Empty or partial final block: pad 10..0, XOR with K2.
            buf[buf_len] = 0x80;
            for b in buf.iter_mut().skip(buf_len + 1) {
                *b = 0;
            }
            xor_into(&mut buf, &self.k2);
        }
        xor_into(&mut x, &buf);
        self.cipher.encrypt_block(&mut x);
        x
    }

    /// MAC a single contiguous message. Returns the full 128-bit tag.
    #[must_use]
    pub fn mac(&self, msg: &[u8]) -> Block {
        self.mac_parts(&[msg])
    }

    /// MAC a message and truncate the tag to 64 bits (most-significant
    /// bytes first, per SP 800-38B truncation).
    #[must_use]
    pub fn mac_parts_trunc8(&self, parts: &[&[u8]]) -> [u8; 8] {
        let full = self.mac_parts(parts);
        let mut out = [0u8; 8];
        out.copy_from_slice(&full[..8]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Aes;

    fn nist_cmac() -> Cmac<Aes> {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        Cmac::new(Aes::new(&key).unwrap())
    }

    /// The SP 800-38A sample plaintext the CMAC examples reuse.
    const MSG: [u8; 64] = [
        0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17,
        0x2a, 0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
        0x8e, 0x51, 0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb, 0xc1, 0x19, 0x1a,
        0x0a, 0x52, 0xef, 0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b, 0x41, 0x7b,
        0xe6, 0x6c, 0x37, 0x10,
    ];

    #[test]
    fn nist_subkeys() {
        let c = nist_cmac();
        assert_eq!(
            c.subkey1(),
            &[
                0xfb, 0xee, 0xd6, 0x18, 0x35, 0x71, 0x33, 0x66, 0x7c, 0x85, 0xe0, 0x8f, 0x72, 0x36,
                0xa8, 0xde,
            ]
        );
        assert_eq!(
            c.subkey2(),
            &[
                0xf7, 0xdd, 0xac, 0x30, 0x6a, 0xe2, 0x66, 0xcc, 0xf9, 0x0b, 0xc1, 0x1e, 0xe4, 0x6d,
                0x51, 0x3b,
            ]
        );
    }

    #[test]
    fn nist_empty_message() {
        assert_eq!(
            nist_cmac().mac(&[]),
            [
                0xbb, 0x1d, 0x69, 0x29, 0xe9, 0x59, 0x37, 0x28, 0x7f, 0xa3, 0x7d, 0x12, 0x9b, 0x75,
                0x67, 0x46,
            ]
        );
    }

    #[test]
    fn nist_one_block() {
        assert_eq!(
            nist_cmac().mac(&MSG[..16]),
            [
                0x07, 0x0a, 0x16, 0xb4, 0x6b, 0x4d, 0x41, 0x44, 0xf7, 0x9b, 0xdd, 0x9d, 0xd0, 0x4a,
                0x28, 0x7c,
            ]
        );
    }

    #[test]
    fn nist_partial_final_block() {
        assert_eq!(
            nist_cmac().mac(&MSG[..40]),
            [
                0xdf, 0xa6, 0x67, 0x47, 0xde, 0x9a, 0xe6, 0x30, 0x30, 0xca, 0x32, 0x61, 0x14, 0x97,
                0xc8, 0x27,
            ]
        );
    }

    #[test]
    fn nist_four_blocks() {
        assert_eq!(
            nist_cmac().mac(&MSG),
            [
                0x51, 0xf0, 0xbe, 0xbf, 0x7e, 0x3b, 0x9d, 0x92, 0xfc, 0x49, 0x74, 0x17, 0x79, 0x36,
                0x3c, 0xfe,
            ]
        );
    }

    #[test]
    fn parts_equal_contiguous() {
        let c = nist_cmac();
        assert_eq!(c.mac_parts(&[&MSG[..16], &MSG[16..]]), c.mac(&MSG));
        assert_eq!(c.mac_parts(&[&MSG[..7], &MSG[7..40]]), c.mac(&MSG[..40]));
        assert_eq!(c.mac_parts(&[&[], &MSG, &[]]), c.mac(&MSG));
    }

    #[test]
    fn trunc8_is_tag_prefix() {
        let c = nist_cmac();
        let full = c.mac_parts(&[&MSG]);
        assert_eq!(c.mac_parts_trunc8(&[&MSG]), full[..8]);
    }

    #[test]
    fn single_bit_flip_changes_tag() {
        let c = nist_cmac();
        let base = c.mac(&MSG);
        for byte in [0usize, 15, 16, 63] {
            for bit in 0..8u8 {
                let mut m = MSG;
                m[byte] ^= 1 << bit;
                assert_ne!(c.mac(&m), base, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
