//! Placement-tracked AES: every byte of cipher state lives in a
//! caller-provided store.
//!
//! This is the mechanism behind *AES On SoC* (paper §6.2). A generic AES
//! implementation keeps its key schedule, lookup tables, and intermediate
//! block in ordinary process memory — i.e., DRAM — where memory attacks
//! can read them and bus monitors can observe table access patterns.
//! [`TrackedAes`] instead performs every state access through a
//! [`StateStore`] supplied by the caller:
//!
//! * a [`VecStore`] models plain DRAM-resident state (and can record the
//!   table-access side channel the paper's bus-monitoring attack
//!   exploits);
//! * the `sentry-core` crate provides stores backed by simulated iRAM and
//!   locked L2 cache ways, which yields AES On SoC — no state ever
//!   reaches DRAM.
//!
//! Only function-local variables (which model CPU registers) hold secret
//! bytes transiently; the host integration is responsible for the paper's
//! two register-hygiene rules — running compute sections with interrupts
//! disabled and zeroing registers afterwards — which `sentry-core`
//! enforces via `sentry_soc::cpu::Cpu::with_irqs_disabled`.

use crate::key_schedule::compute_rcon;
use crate::state::AesStateLayout;
use crate::{sbox, tables, KeyError, KeySize, BLOCK_SIZE};

/// Identifies which lookup table an access touched, for side-channel
/// analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableId {
    /// The forward round table `Te`.
    Te,
    /// The inverse round table `Td`.
    Td,
    /// The forward S-box.
    SBox,
    /// The inverse S-box.
    InvSBox,
    /// The Rcon key-schedule constants.
    Rcon,
}

/// A recorded lookup-table access: the side-channel signal a bus monitor
/// extracts when AES state lives in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Which table was read.
    pub table: TableId,
    /// The index that was read — a function of key and data bytes.
    pub index: u8,
}

/// Backing storage for all AES state.
///
/// Implementations decide *where* the bytes live (a plain vector,
/// simulated DRAM, iRAM, a locked cache way) and may observe accesses.
pub trait StateStore {
    /// Read `buf.len()` bytes starting at `offset`.
    fn read(&mut self, offset: usize, buf: &mut [u8]);
    /// Write `data` starting at `offset`.
    fn write(&mut self, offset: usize, data: &[u8]);
    /// Called on every lookup-table access with the table and index.
    ///
    /// The default implementation ignores the event. Stores backed by
    /// observable memory (DRAM) should leave this as a no-op — the reads
    /// themselves are already visible — but analysis stores can record
    /// the sequence.
    fn note_table_access(&mut self, _table: TableId, _index: u8) {}
}

/// A [`StateStore`] backed by a plain `Vec<u8>`, optionally recording
/// table accesses.
#[derive(Debug, Clone, Default)]
pub struct VecStore {
    bytes: Vec<u8>,
    /// When true, every table access is appended to [`VecStore::events`]
    /// and every read/write to [`VecStore::touch_log`].
    pub record_accesses: bool,
    /// Recorded table accesses (empty unless `record_accesses`).
    pub events: Vec<AccessEvent>,
    /// Recorded `(offset, len, is_write)` of every store access — the
    /// address trace a bus monitor observes when the store lives in DRAM.
    /// Empty unless `record_accesses`.
    pub touch_log: Vec<(usize, usize, bool)>,
}

impl VecStore {
    /// Create a zeroed store of `len` bytes.
    #[must_use]
    pub fn new(len: usize) -> Self {
        VecStore {
            bytes: vec![0u8; len],
            ..VecStore::default()
        }
    }

    /// Create a store sized for `layout`, with access recording enabled.
    #[must_use]
    pub fn recording(layout: &AesStateLayout) -> Self {
        VecStore {
            bytes: vec![0u8; layout.total_bytes()],
            record_accesses: true,
            ..VecStore::default()
        }
    }

    /// Borrow the raw backing bytes (e.g., to scan for secrets in tests).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Zeroize the entire store.
    pub fn wipe(&mut self) {
        self.bytes.fill(0);
        self.events.clear();
        self.touch_log.clear();
    }
}

impl StateStore for VecStore {
    fn read(&mut self, offset: usize, buf: &mut [u8]) {
        if self.record_accesses {
            self.touch_log.push((offset, buf.len(), false));
        }
        buf.copy_from_slice(&self.bytes[offset..offset + buf.len()]);
    }

    fn write(&mut self, offset: usize, data: &[u8]) {
        if self.record_accesses {
            self.touch_log.push((offset, data.len(), true));
        }
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
    }

    fn note_table_access(&mut self, table: TableId, index: u8) {
        if self.record_accesses {
            self.events.push(AccessEvent { table, index });
        }
    }
}

/// Offsets of each state component, resolved once from the layout.
#[derive(Debug, Clone, Copy)]
struct Offsets {
    input: usize,
    key: usize,
    round_index: usize,
    round_keys: usize,
    te: usize,
    td: usize,
    sbox: usize,
    inv_sbox: usize,
    rcon: usize,
    block_index: usize,
    ivec: usize,
    enc_words: usize,
}

/// AES whose entire state lives in a [`StateStore`].
///
/// Construction ([`TrackedAes::init`]) writes the lookup tables into the
/// store and runs the key schedule *through* the store, so even key
/// expansion leaves no trace outside it. All per-block temporaries are
/// locals, modelling CPU registers.
#[derive(Debug, Clone)]
pub struct TrackedAes {
    key_size: KeySize,
    offsets: Offsets,
}

impl TrackedAes {
    /// Initialize AES state inside `store` for `key`, using the arena
    /// layout for the key's size.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidLength`] for invalid key lengths.
    ///
    /// # Panics
    ///
    /// Panics if `store` is smaller than
    /// [`AesStateLayout::total_bytes`] for the key size.
    pub fn init<S: StateStore>(store: &mut S, key: &[u8]) -> Result<Self, KeyError> {
        let key_size = KeySize::from_key_len(key.len())?;
        let layout = AesStateLayout::for_key_size(key_size);
        let off = Offsets {
            input: layout.component("Input block").offset,
            key: layout.component("Key").offset,
            round_index: layout.component("Round Index").offset,
            round_keys: layout.component("Round Keys").offset,
            te: layout.component("2 Round Tables").offset,
            td: layout.component("2 Round Tables").offset + tables::TABLE_BYTES,
            sbox: layout.component("2 S-box").offset,
            inv_sbox: layout.component("2 S-box").offset + sbox::SBOX_SIZE,
            rcon: layout.component("Rcon").offset,
            block_index: layout.component("Block Index").offset,
            ivec: layout.component("CBC block/ivec").offset,
            enc_words: 4 * (key_size.rounds() + 1),
        };

        // Install the access-protected tables.
        for (i, &w) in tables::te().iter().enumerate() {
            store.write(off.te + 4 * i, &w.to_be_bytes());
        }
        for (i, &w) in tables::td().iter().enumerate() {
            store.write(off.td + 4 * i, &w.to_be_bytes());
        }
        store.write(off.sbox, sbox::sbox());
        store.write(off.inv_sbox, sbox::inv_sbox());
        for (i, &w) in compute_rcon().iter().enumerate() {
            store.write(off.rcon + 4 * i, &w.to_be_bytes());
        }

        // Install the key and expand the schedule through the store.
        store.write(off.key, key);
        let aes = TrackedAes {
            key_size,
            offsets: off,
        };
        aes.expand_key(store);
        Ok(aes)
    }

    /// The key size of this context.
    #[must_use]
    pub fn key_size(&self) -> KeySize {
        self.key_size
    }

    fn read_u32<S: StateStore>(store: &mut S, offset: usize) -> u32 {
        let mut b = [0u8; 4];
        store.read(offset, &mut b);
        u32::from_be_bytes(b)
    }

    fn write_u32<S: StateStore>(store: &mut S, offset: usize, v: u32) {
        store.write(offset, &v.to_be_bytes());
    }

    fn sbox_lookup<S: StateStore>(&self, store: &mut S, index: u8) -> u8 {
        store.note_table_access(TableId::SBox, index);
        let mut b = [0u8; 1];
        store.read(self.offsets.sbox + index as usize, &mut b);
        b[0]
    }

    fn inv_sbox_lookup<S: StateStore>(&self, store: &mut S, index: u8) -> u8 {
        store.note_table_access(TableId::InvSBox, index);
        let mut b = [0u8; 1];
        store.read(self.offsets.inv_sbox + index as usize, &mut b);
        b[0]
    }

    fn te_lookup<S: StateStore>(&self, store: &mut S, index: u8) -> u32 {
        store.note_table_access(TableId::Te, index);
        Self::read_u32(store, self.offsets.te + 4 * index as usize)
    }

    fn td_lookup<S: StateStore>(&self, store: &mut S, index: u8) -> u32 {
        store.note_table_access(TableId::Td, index);
        Self::read_u32(store, self.offsets.td + 4 * index as usize)
    }

    fn rcon_lookup<S: StateStore>(&self, store: &mut S, index: usize) -> u32 {
        store.note_table_access(TableId::Rcon, index as u8);
        Self::read_u32(store, self.offsets.rcon + 4 * index)
    }

    fn rk_enc<S: StateStore>(&self, store: &mut S, word: usize) -> u32 {
        Self::read_u32(store, self.offsets.round_keys + 4 * word)
    }

    fn rk_dec<S: StateStore>(&self, store: &mut S, word: usize) -> u32 {
        Self::read_u32(
            store,
            self.offsets.round_keys + 4 * (self.offsets.enc_words + word),
        )
    }

    /// FIPS-197 key expansion, with all reads and writes routed through
    /// the store.
    fn expand_key<S: StateStore>(&self, store: &mut S) {
        let nk = self.key_size.nk();
        let total = self.offsets.enc_words;
        // Copy the raw key into the first Nk round-key words.
        for i in 0..nk {
            let mut b = [0u8; 4];
            store.read(self.offsets.key + 4 * i, &mut b);
            store.write(self.offsets.round_keys + 4 * i, &b);
        }
        for i in nk..total {
            let mut temp = self.rk_enc(store, i - 1);
            if i % nk == 0 {
                temp = temp.rotate_left(8);
                temp = self.sub_word(store, temp);
                temp ^= self.rcon_lookup(store, i / nk - 1);
            } else if nk > 6 && i % nk == 4 {
                temp = self.sub_word(store, temp);
            }
            let w = self.rk_enc(store, i - nk) ^ temp;
            Self::write_u32(store, self.offsets.round_keys + 4 * i, w);
        }
        // Equivalent-inverse-cipher decryption keys.
        let rounds = self.key_size.rounds();
        for round in 0..=rounds {
            let src = rounds - round;
            for col in 0..4 {
                let word = self.rk_enc(store, 4 * src + col);
                let out = if round == 0 || round == rounds {
                    word
                } else {
                    tables::inv_mix_column_word(word)
                };
                Self::write_u32(
                    store,
                    self.offsets.round_keys + 4 * (total + 4 * round + col),
                    out,
                );
            }
        }
    }

    fn sub_word<S: StateStore>(&self, store: &mut S, w: u32) -> u32 {
        let [a, b, c, d] = w.to_be_bytes();
        u32::from_be_bytes([
            self.sbox_lookup(store, a),
            self.sbox_lookup(store, b),
            self.sbox_lookup(store, c),
            self.sbox_lookup(store, d),
        ])
    }

    /// Encrypt the 16 bytes currently in the store's input block,
    /// in place.
    pub fn encrypt_in_store<S: StateStore>(&self, store: &mut S) {
        let rounds = self.key_size.rounds();
        let mut s = [0u32; 4];
        for (c, slot) in s.iter_mut().enumerate() {
            *slot = Self::read_u32(store, self.offsets.input + 4 * c) ^ self.rk_enc(store, c);
        }
        let mut t = [0u32; 4];
        for round in 1..rounds {
            store.write(self.offsets.round_index, &[round as u8]);
            for c in 0..4 {
                t[c] = self.te_lookup(store, (s[c] >> 24) as u8)
                    ^ self
                        .te_lookup(store, ((s[(c + 1) % 4] >> 16) & 0xff) as u8)
                        .rotate_right(8)
                    ^ self
                        .te_lookup(store, ((s[(c + 2) % 4] >> 8) & 0xff) as u8)
                        .rotate_right(16)
                    ^ self
                        .te_lookup(store, (s[(c + 3) % 4] & 0xff) as u8)
                        .rotate_right(24)
                    ^ self.rk_enc(store, 4 * round + c);
            }
            s = t;
        }
        store.write(self.offsets.round_index, &[rounds as u8]);
        for c in 0..4 {
            t[c] = (u32::from(self.sbox_lookup(store, (s[c] >> 24) as u8)) << 24)
                | (u32::from(self.sbox_lookup(store, ((s[(c + 1) % 4] >> 16) & 0xff) as u8)) << 16)
                | (u32::from(self.sbox_lookup(store, ((s[(c + 2) % 4] >> 8) & 0xff) as u8)) << 8)
                | u32::from(self.sbox_lookup(store, (s[(c + 3) % 4] & 0xff) as u8));
            t[c] ^= self.rk_enc(store, 4 * rounds + c);
        }
        for (c, word) in t.iter().enumerate() {
            Self::write_u32(store, self.offsets.input + 4 * c, *word);
        }
    }

    /// Decrypt the 16 bytes currently in the store's input block,
    /// in place.
    pub fn decrypt_in_store<S: StateStore>(&self, store: &mut S) {
        let rounds = self.key_size.rounds();
        let mut s = [0u32; 4];
        for (c, slot) in s.iter_mut().enumerate() {
            *slot = Self::read_u32(store, self.offsets.input + 4 * c) ^ self.rk_dec(store, c);
        }
        let mut t = [0u32; 4];
        for round in 1..rounds {
            store.write(self.offsets.round_index, &[round as u8]);
            for c in 0..4 {
                t[c] = self.td_lookup(store, (s[c] >> 24) as u8)
                    ^ self
                        .td_lookup(store, ((s[(c + 3) % 4] >> 16) & 0xff) as u8)
                        .rotate_right(8)
                    ^ self
                        .td_lookup(store, ((s[(c + 2) % 4] >> 8) & 0xff) as u8)
                        .rotate_right(16)
                    ^ self
                        .td_lookup(store, (s[(c + 1) % 4] & 0xff) as u8)
                        .rotate_right(24)
                    ^ self.rk_dec(store, 4 * round + c);
            }
            s = t;
        }
        store.write(self.offsets.round_index, &[rounds as u8]);
        for c in 0..4 {
            t[c] = (u32::from(self.inv_sbox_lookup(store, (s[c] >> 24) as u8)) << 24)
                | (u32::from(self.inv_sbox_lookup(store, ((s[(c + 3) % 4] >> 16) & 0xff) as u8))
                    << 16)
                | (u32::from(self.inv_sbox_lookup(store, ((s[(c + 2) % 4] >> 8) & 0xff) as u8))
                    << 8)
                | u32::from(self.inv_sbox_lookup(store, (s[(c + 1) % 4] & 0xff) as u8));
            t[c] ^= self.rk_dec(store, 4 * rounds + c);
        }
        for (c, word) in t.iter().enumerate() {
            Self::write_u32(store, self.offsets.input + 4 * c, *word);
        }
    }

    /// Encrypt one external block: load it into the store's input slot,
    /// encrypt, and copy the ciphertext back out.
    pub fn encrypt_block<S: StateStore>(&self, store: &mut S, block: &mut [u8; BLOCK_SIZE]) {
        store.write(self.offsets.input, block);
        self.encrypt_in_store(store);
        store.read(self.offsets.input, block);
    }

    /// Decrypt one external block through the store.
    pub fn decrypt_block<S: StateStore>(&self, store: &mut S, block: &mut [u8; BLOCK_SIZE]) {
        store.write(self.offsets.input, block);
        self.decrypt_in_store(store);
        store.read(self.offsets.input, block);
    }

    /// CBC-encrypt a block-aligned buffer in place, chaining through the
    /// store-resident ivec slot.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn cbc_encrypt<S: StateStore>(
        &self,
        store: &mut S,
        iv: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "CBC buffer must be block aligned"
        );
        store.write(self.offsets.ivec, iv);
        for (block_no, chunk) in data.chunks_exact_mut(BLOCK_SIZE).enumerate() {
            store.write(self.offsets.block_index, &[(block_no & 0xff) as u8]);
            let mut chain = [0u8; BLOCK_SIZE];
            store.read(self.offsets.ivec, &mut chain);
            for (b, c) in chunk.iter_mut().zip(chain.iter()) {
                *b ^= c;
            }
            let block: &mut [u8; BLOCK_SIZE] = chunk.try_into().expect("block sized");
            self.encrypt_block(store, block);
            store.write(self.offsets.ivec, block);
        }
    }

    /// CBC-decrypt a block-aligned buffer in place.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn cbc_decrypt<S: StateStore>(
        &self,
        store: &mut S,
        iv: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "CBC buffer must be block aligned"
        );
        store.write(self.offsets.ivec, iv);
        for (block_no, chunk) in data.chunks_exact_mut(BLOCK_SIZE).enumerate() {
            store.write(self.offsets.block_index, &[(block_no & 0xff) as u8]);
            let ct: [u8; BLOCK_SIZE] = (&*chunk).try_into().expect("block sized");
            let block: &mut [u8; BLOCK_SIZE] = chunk.try_into().expect("block sized");
            self.decrypt_block(store, block);
            let mut chain = [0u8; BLOCK_SIZE];
            store.read(self.offsets.ivec, &mut chain);
            for (b, c) in block.iter_mut().zip(chain.iter()) {
                *b ^= c;
            }
            store.write(self.offsets.ivec, &ct);
        }
    }

    /// XTS-encrypt a block-aligned buffer in place (single-key XEX: the
    /// tweak is encrypted under this same context, matching the engine
    /// construction), with the running tweak chained through the
    /// store-resident ivec slot.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn xts_encrypt<S: StateStore>(
        &self,
        store: &mut S,
        tweak: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        self.xts_apply(store, tweak, data, false);
    }

    /// XTS-decrypt a block-aligned buffer in place. The tweak chain is
    /// always computed with the *encrypt* direction, per IEEE P1619.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn xts_decrypt<S: StateStore>(
        &self,
        store: &mut S,
        tweak: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        self.xts_apply(store, tweak, data, true);
    }

    fn xts_apply<S: StateStore>(
        &self,
        store: &mut S,
        tweak: &[u8; BLOCK_SIZE],
        data: &mut [u8],
        decrypt: bool,
    ) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "XTS buffer must be block aligned"
        );
        let mut t0 = *tweak;
        self.encrypt_block(store, &mut t0);
        store.write(self.offsets.ivec, &t0);
        for (block_no, chunk) in data.chunks_exact_mut(BLOCK_SIZE).enumerate() {
            store.write(self.offsets.block_index, &[(block_no & 0xff) as u8]);
            let mut t = [0u8; BLOCK_SIZE];
            store.read(self.offsets.ivec, &mut t);
            for (b, c) in chunk.iter_mut().zip(t.iter()) {
                *b ^= c;
            }
            let block: &mut [u8; BLOCK_SIZE] = chunk.try_into().expect("block sized");
            if decrypt {
                self.decrypt_block(store, block);
            } else {
                self.encrypt_block(store, block);
            }
            for (b, c) in block.iter_mut().zip(t.iter()) {
                *b ^= c;
            }
            crate::modes::xts_mul_alpha(&mut t);
            store.write(self.offsets.ivec, &t);
        }
    }

    /// CTR-transform a buffer in place (encrypt and decrypt are the same
    /// operation), treating `iv` as the full 128-bit big-endian counter
    /// block. Ragged tails are fine; the running counter lives in the
    /// store's ivec slot.
    pub fn ctr_crypt<S: StateStore>(&self, store: &mut S, iv: &[u8; BLOCK_SIZE], data: &mut [u8]) {
        store.write(self.offsets.ivec, iv);
        for (block_no, chunk) in data.chunks_mut(BLOCK_SIZE).enumerate() {
            store.write(self.offsets.block_index, &[(block_no & 0xff) as u8]);
            let mut counter = [0u8; BLOCK_SIZE];
            store.read(self.offsets.ivec, &mut counter);
            let mut ks = counter;
            self.encrypt_block(store, &mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            crate::modes::ctr_increment(&mut counter);
            store.write(self.offsets.ivec, &counter);
        }
    }
}

/// Offsets of the table-free bitsliced layout's components.
#[derive(Debug, Clone, Copy)]
struct BitslicedOffsets {
    input: usize,
    key: usize,
    round_index: usize,
    round_keys: usize,
    block_index: usize,
    ivec: usize,
    /// Number of 32-bit words in one schedule side (enc or dec).
    enc_words: usize,
}

/// Batch capacity of the store's input slot, in bytes.
const BATCH_BYTES: usize = crate::bitslice::PAR_BLOCKS * BLOCK_SIZE;

/// Placement-tracked **table-free** AES: the batched bitsliced kernel
/// with every byte of persistent state in a caller-provided store.
///
/// This is the batched on-SoC data path: blocks move through the store's
/// 16-block input slot and round keys are fetched from the store each
/// round, so the store still decides *where* all state lives — but unlike
/// [`TrackedAes`] there are **no lookup tables at all**. SubBytes is the
/// Boyar–Peralta circuit (including inside key expansion, via
/// [`crate::bitslice`]'s circuit `SubWord`), Rcon is derived
/// arithmetically in registers, and every store access touches a
/// *data-independent* address. The bus-monitoring side channel that
/// forces Table 4's 2 600 access-protected bytes on-SoC simply has no
/// signal to read; see
/// [`AesStateLayout::bitsliced`][crate::state::AesStateLayout::bitsliced]
/// for the resulting accounting.
#[derive(Debug, Clone)]
pub struct TrackedBitslicedAes {
    key_size: KeySize,
    offsets: BitslicedOffsets,
}

impl TrackedBitslicedAes {
    /// Initialize table-free AES state inside `store` for `key`, using
    /// [`AesStateLayout::bitsliced`][crate::state::AesStateLayout::bitsliced].
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidLength`] for invalid key lengths.
    ///
    /// # Panics
    ///
    /// Panics if `store` is smaller than the layout's total size.
    pub fn init<S: StateStore>(store: &mut S, key: &[u8]) -> Result<Self, KeyError> {
        let key_size = KeySize::from_key_len(key.len())?;
        let layout = AesStateLayout::bitsliced(key_size);
        let off = BitslicedOffsets {
            input: layout.component("Input batch").offset,
            key: layout.component("Key").offset,
            round_index: layout.component("Round Index").offset,
            round_keys: layout.component("Round Keys").offset,
            block_index: layout.component("Block Index").offset,
            ivec: layout.component("CBC block/ivec").offset,
            enc_words: 4 * (key_size.rounds() + 1),
        };
        store.write(off.key, key);
        let aes = TrackedBitslicedAes {
            key_size,
            offsets: off,
        };
        aes.expand_key(store);
        Ok(aes)
    }

    /// The key size of this context.
    #[must_use]
    pub fn key_size(&self) -> KeySize {
        self.key_size
    }

    fn rk_word<S: StateStore>(&self, store: &mut S, word: usize) -> u32 {
        TrackedAes::read_u32(store, self.offsets.round_keys + 4 * word)
    }

    /// FIPS-197 key expansion through the store, with `SubWord` as a
    /// boolean circuit and Rcon recomputed in registers — no table state,
    /// no data-dependent addresses.
    fn expand_key<S: StateStore>(&self, store: &mut S) {
        let nk = self.key_size.nk();
        let total = self.offsets.enc_words;
        let rcon = compute_rcon();
        for i in 0..nk {
            let mut b = [0u8; 4];
            store.read(self.offsets.key + 4 * i, &mut b);
            store.write(self.offsets.round_keys + 4 * i, &b);
        }
        for i in nk..total {
            let mut temp = self.rk_word(store, i - 1);
            if i % nk == 0 {
                temp = crate::bitslice::sub_word_circuit(temp.rotate_left(8));
                temp ^= rcon[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                temp = crate::bitslice::sub_word_circuit(temp);
            }
            let w = self.rk_word(store, i - nk) ^ temp;
            TrackedAes::write_u32(store, self.offsets.round_keys + 4 * i, w);
        }
        // Equivalent-inverse-cipher decryption keys (InvMixColumns is
        // arithmetic over GF(2^8), evaluated in registers).
        let rounds = self.key_size.rounds();
        for round in 0..=rounds {
            let src = rounds - round;
            for col in 0..4 {
                let word = self.rk_word(store, 4 * src + col);
                let out = if round == 0 || round == rounds {
                    word
                } else {
                    tables::inv_mix_column_word(word)
                };
                TrackedAes::write_u32(
                    store,
                    self.offsets.round_keys + 4 * (total + 4 * round + col),
                    out,
                );
            }
        }
    }

    /// Run one staged batch (at most [`crate::bitslice::PAR_BLOCKS`]
    /// blocks) through the store: stage the blocks in the input slot,
    /// compute bitsliced in registers fetching each round key from the
    /// store, and read the result back out of the input slot.
    fn crypt_chunk<S: StateStore>(&self, store: &mut S, chunk: &mut [u8], decrypt: bool) {
        debug_assert!(chunk.len() <= BATCH_BYTES);
        let off = self.offsets;
        let mut staged = [0u8; BATCH_BYTES];
        staged[..chunk.len()].copy_from_slice(chunk);
        store.write(off.input, &staged);

        let mut batch = [[0u8; BLOCK_SIZE]; crate::bitslice::PAR_BLOCKS];
        for (i, b) in batch.iter_mut().enumerate() {
            store.read(off.input + BLOCK_SIZE * i, b);
        }
        let rounds = self.key_size.rounds();
        let side = if decrypt { off.enc_words } else { 0 };
        let rk = |r: usize| {
            store.write(off.round_index, &[r as u8]);
            let mut words = [0u32; 4];
            for (c, w) in words.iter_mut().enumerate() {
                *w = TrackedAes::read_u32(store, off.round_keys + 4 * (side + 4 * r + c));
            }
            crate::bitslice::bitslice_round_key(&words)
        };
        if decrypt {
            crate::bitslice::decrypt16_with(rounds, rk, &mut batch);
        } else {
            crate::bitslice::encrypt16_with(rounds, rk, &mut batch);
        }
        for (i, b) in batch.iter().enumerate() {
            store.write(off.input + BLOCK_SIZE * i, b);
        }
        let mut out = [0u8; BATCH_BYTES];
        store.read(off.input, &mut out);
        chunk.copy_from_slice(&out[..chunk.len()]);
    }

    /// ECB-encrypt a block-aligned buffer in place, 16 blocks per staged
    /// batch (modes layer the chaining on top).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn encrypt_blocks<S: StateStore>(&self, store: &mut S, data: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "buffer must be block aligned"
        );
        for chunk in data.chunks_mut(BATCH_BYTES) {
            self.crypt_chunk(store, chunk, false);
        }
    }

    /// ECB-decrypt a block-aligned buffer in place.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn decrypt_blocks<S: StateStore>(&self, store: &mut S, data: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "buffer must be block aligned"
        );
        for chunk in data.chunks_mut(BATCH_BYTES) {
            self.crypt_chunk(store, chunk, true);
        }
    }

    /// Encrypt one external block through the store.
    pub fn encrypt_block<S: StateStore>(&self, store: &mut S, block: &mut [u8; BLOCK_SIZE]) {
        self.encrypt_blocks(store, &mut block[..]);
    }

    /// Decrypt one external block through the store.
    pub fn decrypt_block<S: StateStore>(&self, store: &mut S, block: &mut [u8; BLOCK_SIZE]) {
        self.decrypt_blocks(store, &mut block[..]);
    }

    /// CBC-encrypt in place, chaining through the store's ivec slot.
    ///
    /// CBC encryption is serially chained, so each staged batch carries a
    /// single active block — the batched kernel cannot speed this
    /// direction up (see the DESIGN notes); it exists so the table-free
    /// engine covers both directions with identical bytes.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn cbc_encrypt<S: StateStore>(
        &self,
        store: &mut S,
        iv: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "CBC buffer must be block aligned"
        );
        store.write(self.offsets.ivec, iv);
        for (block_no, chunk) in data.chunks_exact_mut(BLOCK_SIZE).enumerate() {
            store.write(self.offsets.block_index, &[(block_no & 0xff) as u8]);
            let mut chain = [0u8; BLOCK_SIZE];
            store.read(self.offsets.ivec, &mut chain);
            for (b, c) in chunk.iter_mut().zip(chain.iter()) {
                *b ^= c;
            }
            self.encrypt_blocks(store, chunk);
            store.write(self.offsets.ivec, chunk);
        }
    }

    /// CBC-decrypt in place, one full 16-block batch per kernel call
    /// (decryption is data-parallel: `pt[i] = D(ct[i]) ^ ct[i-1]`).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn cbc_decrypt<S: StateStore>(
        &self,
        store: &mut S,
        iv: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "CBC buffer must be block aligned"
        );
        store.write(self.offsets.ivec, iv);
        for (batch_no, chunk) in data.chunks_mut(BATCH_BYTES).enumerate() {
            store.write(self.offsets.block_index, &[(batch_no & 0xff) as u8]);
            let n = chunk.len();
            let mut saved = [0u8; BATCH_BYTES];
            saved[..n].copy_from_slice(chunk);
            self.decrypt_blocks(store, chunk);
            let mut chain = [0u8; BLOCK_SIZE];
            store.read(self.offsets.ivec, &mut chain);
            for (i, block) in chunk.chunks_exact_mut(BLOCK_SIZE).enumerate() {
                let prev: &[u8] = if i == 0 {
                    &chain
                } else {
                    &saved[(i - 1) * BLOCK_SIZE..i * BLOCK_SIZE]
                };
                for (b, p) in block.iter_mut().zip(prev.iter()) {
                    *b ^= p;
                }
            }
            store.write(self.offsets.ivec, &saved[n - BLOCK_SIZE..n]);
        }
    }

    /// XTS-encrypt in place, one full 16-block batch per kernel call —
    /// unlike CBC encryption, every block's whitening tweak is known up
    /// front, so the batched kernel runs at full width in this direction
    /// too. Single-key XEX: the tweak is encrypted under this context.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn xts_encrypt<S: StateStore>(
        &self,
        store: &mut S,
        tweak: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        self.xts_apply(store, tweak, data, false);
    }

    /// XTS-decrypt in place, one full 16-block batch per kernel call.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not a multiple of 16 bytes.
    pub fn xts_decrypt<S: StateStore>(
        &self,
        store: &mut S,
        tweak: &[u8; BLOCK_SIZE],
        data: &mut [u8],
    ) {
        self.xts_apply(store, tweak, data, true);
    }

    fn xts_apply<S: StateStore>(
        &self,
        store: &mut S,
        tweak: &[u8; BLOCK_SIZE],
        data: &mut [u8],
        decrypt: bool,
    ) {
        assert!(
            data.len().is_multiple_of(BLOCK_SIZE),
            "XTS buffer must be block aligned"
        );
        let mut t = *tweak;
        self.encrypt_block(store, &mut t);
        for (batch_no, chunk) in data.chunks_mut(BATCH_BYTES).enumerate() {
            store.write(self.offsets.block_index, &[(batch_no & 0xff) as u8]);
            let mut tweaks = [[0u8; BLOCK_SIZE]; crate::bitslice::PAR_BLOCKS];
            for (i, block) in chunk.chunks_exact_mut(BLOCK_SIZE).enumerate() {
                tweaks[i] = t;
                for (b, c) in block.iter_mut().zip(t.iter()) {
                    *b ^= c;
                }
                crate::modes::xts_mul_alpha(&mut t);
            }
            if decrypt {
                self.decrypt_blocks(store, chunk);
            } else {
                self.encrypt_blocks(store, chunk);
            }
            for (i, block) in chunk.chunks_exact_mut(BLOCK_SIZE).enumerate() {
                for (b, c) in block.iter_mut().zip(tweaks[i].iter()) {
                    *b ^= c;
                }
            }
            store.write(self.offsets.ivec, &t);
        }
    }

    /// CTR-transform a buffer in place, 16 counter blocks per kernel
    /// call. `iv` is the full 128-bit big-endian counter block; ragged
    /// tails are fine.
    pub fn ctr_crypt<S: StateStore>(&self, store: &mut S, iv: &[u8; BLOCK_SIZE], data: &mut [u8]) {
        let mut counter = *iv;
        for (batch_no, chunk) in data.chunks_mut(BATCH_BYTES).enumerate() {
            store.write(self.offsets.block_index, &[(batch_no & 0xff) as u8]);
            let nblocks = chunk.len().div_ceil(BLOCK_SIZE);
            let mut ks = [0u8; BATCH_BYTES];
            for i in 0..nblocks {
                ks[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE].copy_from_slice(&counter);
                crate::modes::ctr_increment(&mut counter);
            }
            self.encrypt_blocks(store, &mut ks[..nblocks * BLOCK_SIZE]);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            store.write(self.offsets.ivec, &counter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Aes;
    use crate::modes;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn tracked_matches_fips_vectors() {
        let cases = [
            (
                "000102030405060708090a0b0c0d0e0f",
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f1011121314151617",
                "dda97ca4864cdfe06eaf70a0ec0d7191",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ];
        for (key, ct) in cases {
            let key = hex(key);
            let layout = AesStateLayout::for_key_size(KeySize::from_key_len(key.len()).unwrap());
            let mut store = VecStore::new(layout.total_bytes());
            let aes = TrackedAes::init(&mut store, &key).unwrap();
            let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
            aes.encrypt_block(&mut store, &mut block);
            assert_eq!(block.to_vec(), hex(ct));
            aes.decrypt_block(&mut store, &mut block);
            assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
        }
    }

    #[test]
    fn tracked_cbc_matches_fast_cbc() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = [0x11u8; 16];
        let mut data_a: Vec<u8> = (0..128u8).collect();
        let mut data_b = data_a.clone();

        let fast = Aes::new(&key).unwrap();
        modes::cbc_encrypt(&fast, &iv, &mut data_a);

        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        tracked.cbc_encrypt(&mut store, &iv, &mut data_b);

        assert_eq!(data_a, data_b);

        tracked.cbc_decrypt(&mut store, &iv, &mut data_b);
        assert_eq!(data_b, (0..128u8).collect::<Vec<_>>());
    }

    #[test]
    fn tracked_xts_and_ctr_match_fast_modes() {
        // Both tracked variants must be byte-identical to the fast
        // single-key XEX/CTR paths — this is what lets the full-sim
        // on-SoC engine keep one keyed context per mode.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let fast = Aes::new(&key).unwrap();
        let tweak = [0x9Cu8; 16];

        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let blayout = AesStateLayout::bitsliced(KeySize::Aes128);
        for nblocks in [1usize, 3, 15, 16, 17, 33] {
            let pt: Vec<u8> = (0..nblocks * 16).map(|i| (i * 41) as u8).collect();

            let mut want_xts = pt.clone();
            modes::xts_encrypt(&fast, &fast, &tweak, &mut want_xts);
            let mut want_ctr = pt.clone();
            modes::ctr_crypt(&fast, &tweak, &mut want_ctr);

            let mut store = VecStore::new(layout.total_bytes());
            let tracked = TrackedAes::init(&mut store, &key).unwrap();
            let mut got = pt.clone();
            tracked.xts_encrypt(&mut store, &tweak, &mut got);
            assert_eq!(got, want_xts, "tracked xts_encrypt {nblocks} blocks");
            tracked.xts_decrypt(&mut store, &tweak, &mut got);
            assert_eq!(got, pt, "tracked xts_decrypt {nblocks} blocks");
            tracked.ctr_crypt(&mut store, &tweak, &mut got);
            assert_eq!(got, want_ctr, "tracked ctr_crypt {nblocks} blocks");

            let mut bstore = VecStore::new(blayout.total_bytes());
            let btracked = TrackedBitslicedAes::init(&mut bstore, &key).unwrap();
            let mut got = pt.clone();
            btracked.xts_encrypt(&mut bstore, &tweak, &mut got);
            assert_eq!(
                got, want_xts,
                "bitsliced tracked xts_encrypt {nblocks} blocks"
            );
            btracked.xts_decrypt(&mut bstore, &tweak, &mut got);
            assert_eq!(got, pt, "bitsliced tracked xts_decrypt {nblocks} blocks");
            btracked.ctr_crypt(&mut bstore, &tweak, &mut got);
            assert_eq!(
                got, want_ctr,
                "bitsliced tracked ctr_crypt {nblocks} blocks"
            );
        }

        // CTR ragged tail: 40 bytes, both variants.
        let pt: Vec<u8> = (0..40).map(|i| (i * 7) as u8).collect();
        let mut want = pt.clone();
        modes::ctr_crypt(&fast, &tweak, &mut want);
        let mut store = VecStore::new(layout.total_bytes());
        let tracked = TrackedAes::init(&mut store, &key).unwrap();
        let mut got = pt.clone();
        tracked.ctr_crypt(&mut store, &tweak, &mut got);
        assert_eq!(got, want, "tracked ctr ragged tail");
        let mut bstore = VecStore::new(blayout.total_bytes());
        let btracked = TrackedBitslicedAes::init(&mut bstore, &key).unwrap();
        let mut got = pt;
        btracked.ctr_crypt(&mut bstore, &tweak, &mut got);
        assert_eq!(got, want, "bitsliced tracked ctr ragged tail");
    }

    #[test]
    fn key_material_is_confined_to_the_store() {
        // The raw key and the first expanded round key must appear in the
        // store (that is where they live) — this is what makes the store's
        // placement decide the security outcome.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let _aes = TrackedAes::init(&mut store, &key).unwrap();
        let bytes = store.as_bytes();
        let found = bytes.windows(key.len()).any(|w| w == key.as_slice());
        assert!(found, "key bytes must live inside the store");
    }

    #[test]
    fn table_accesses_are_recorded_and_key_dependent() {
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);

        let run = |key: &[u8], pt: [u8; 16]| {
            let mut store = VecStore::recording(&layout);
            let aes = TrackedAes::init(&mut store, key).unwrap();
            store.events.clear(); // drop key-schedule accesses
            let mut block = pt;
            aes.encrypt_block(&mut store, &mut block);
            store.events
        };

        let a = run(&[0u8; 16], [0u8; 16]);
        let b = run(&[1u8; 16], [0u8; 16]);
        assert!(!a.is_empty());
        // Same plaintext, different key: the access trace differs. This is
        // the signal the paper's bus-monitoring side channel reads.
        assert_ne!(a, b);
        // 9 main rounds x 16 Te lookups + 16 final-round S-box lookups.
        let te_count = a.iter().filter(|e| e.table == TableId::Te).count();
        assert_eq!(te_count, 9 * 16);
        let sbox_count = a.iter().filter(|e| e.table == TableId::SBox).count();
        assert_eq!(sbox_count, 16);
    }

    #[test]
    fn bitsliced_tracked_matches_fips_vectors() {
        let cases = [
            (
                "000102030405060708090a0b0c0d0e0f",
                "69c4e0d86a7b0430d8cdb78070b4c55a",
            ),
            (
                "000102030405060708090a0b0c0d0e0f1011121314151617",
                "dda97ca4864cdfe06eaf70a0ec0d7191",
            ),
            (
                "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
                "8ea2b7ca516745bfeafc49904b496089",
            ),
        ];
        for (key, ct) in cases {
            let key = hex(key);
            let layout = AesStateLayout::bitsliced(KeySize::from_key_len(key.len()).unwrap());
            let mut store = VecStore::new(layout.total_bytes());
            let aes = TrackedBitslicedAes::init(&mut store, &key).unwrap();
            let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
            aes.encrypt_block(&mut store, &mut block);
            assert_eq!(block.to_vec(), hex(ct));
            aes.decrypt_block(&mut store, &mut block);
            assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
        }
    }

    #[test]
    fn bitsliced_tracked_cbc_matches_fast_cbc() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = [0x11u8; 16];
        let fast = Aes::new(&key).unwrap();
        let layout = AesStateLayout::bitsliced(KeySize::Aes128);
        // Lengths below, at, and across the 16-block batch boundary.
        for nblocks in [1usize, 3, 15, 16, 17, 33, 256] {
            let pt: Vec<u8> = (0..nblocks * 16).map(|i| (i * 37) as u8).collect();
            let mut want = pt.clone();
            modes::cbc_encrypt(&fast, &iv, &mut want);

            let mut store = VecStore::new(layout.total_bytes());
            let tracked = TrackedBitslicedAes::init(&mut store, &key).unwrap();
            let mut got = pt.clone();
            tracked.cbc_encrypt(&mut store, &iv, &mut got);
            assert_eq!(got, want, "cbc_encrypt {nblocks} blocks");
            tracked.cbc_decrypt(&mut store, &iv, &mut got);
            assert_eq!(got, pt, "cbc_decrypt {nblocks} blocks");
        }
    }

    #[test]
    fn bitsliced_tracked_makes_no_table_accesses() {
        // The whole point of the table-free variant: from key expansion
        // through bulk CBC, not one lookup-table access occurs — the
        // bus-monitoring side channel has no signal.
        let layout = AesStateLayout::bitsliced(KeySize::Aes256);
        let mut store = VecStore::recording(&layout);
        let aes = TrackedBitslicedAes::init(&mut store, &[7u8; 32]).unwrap();
        let mut data = vec![0x5Au8; 4096];
        aes.cbc_encrypt(&mut store, &[1u8; 16], &mut data);
        aes.cbc_decrypt(&mut store, &[1u8; 16], &mut data);
        assert!(
            store.events.is_empty(),
            "table-free AES must never touch a lookup table"
        );
    }

    #[test]
    fn bitsliced_tracked_address_trace_is_data_independent() {
        // Stronger than "no table accesses": the full (offset, len,
        // direction) trace of store traffic is identical for different
        // keys and different plaintexts, so even an attacker seeing every
        // address on the bus learns nothing. Contrast with TrackedAes,
        // whose Te-lookup offsets are key-dependent
        // (`table_accesses_are_recorded_and_key_dependent`).
        let layout = AesStateLayout::bitsliced(KeySize::Aes128);
        let trace = |key: &[u8], fill: u8| {
            let mut store = VecStore::recording(&layout);
            let aes = TrackedBitslicedAes::init(&mut store, key).unwrap();
            let mut data = vec![fill; 24 * 16];
            aes.cbc_encrypt(&mut store, &[fill; 16], &mut data);
            aes.cbc_decrypt(&mut store, &[fill; 16], &mut data);
            store.touch_log
        };
        let a = trace(&[0u8; 16], 0x00);
        let b = trace(&[0x5Au8; 16], 0xA7);
        assert!(!a.is_empty());
        assert_eq!(a, b, "address trace must not depend on key or data");
    }

    #[test]
    fn bitsliced_tracked_key_is_confined_to_the_store() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let layout = AesStateLayout::bitsliced(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let _aes = TrackedBitslicedAes::init(&mut store, &key).unwrap();
        let found = store
            .as_bytes()
            .windows(key.len())
            .any(|w| w == key.as_slice());
        assert!(found, "key bytes must live inside the store");
    }

    #[test]
    fn wipe_erases_all_state() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let mut store = VecStore::new(layout.total_bytes());
        let _aes = TrackedAes::init(&mut store, &key).unwrap();
        store.wipe();
        assert!(store.as_bytes().iter().all(|&b| b == 0));
    }
}
