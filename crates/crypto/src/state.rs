//! Byte-accurate accounting of AES state by sensitivity class.
//!
//! Section 6.1 of the paper classifies every piece of AES state as
//! *secret* (leaking it compromises the key or plaintext), *public*
//! (progress counters, the ciphertext), or *access-protected* (contents
//! public, but the *order of accesses* leaks key material — the lookup
//! tables). Table 4 then totals the bytes in each class to show how much
//! on-SoC storage AES On SoC needs.
//!
//! [`AesStateLayout`] regenerates that table for our implementation and
//! additionally assigns each component an offset inside a flat arena; the
//! [`crate::tracked::TrackedAes`] implementation places its state through
//! this layout, so the accounting here is the *actual* memory map of AES
//! On SoC, not documentation that can drift.

use crate::key_schedule::RCON_WORDS;
use crate::sbox::SBOX_SIZE;
use crate::tables::TABLE_BYTES;
use crate::{KeySize, BLOCK_SIZE};

/// Sensitivity classification of a piece of cipher state (paper §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sensitivity {
    /// Leaking this state compromises the encryption directly
    /// (key, round keys, plaintext input block).
    Secret,
    /// Leaking this state is harmless (ciphertext, progress counters).
    Public,
    /// Contents are public but access *patterns* leak secrets
    /// (round tables, S-boxes, Rcon).
    AccessProtected,
}

impl std::fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sensitivity::Secret => write!(f, "Secret"),
            Sensitivity::Public => write!(f, "Public"),
            Sensitivity::AccessProtected => write!(f, "Access-protected"),
        }
    }
}

/// One named component of AES state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateComponent {
    /// Human-readable name matching the paper's Table 4 rows.
    pub name: &'static str,
    /// Size in bytes in *this* implementation.
    pub bytes: usize,
    /// Size in bytes as reported in the paper's Table 4 (for comparison).
    /// `None` when the paper does not list the component.
    pub paper_bytes: Option<usize>,
    /// Sensitivity class.
    pub sensitivity: Sensitivity,
    /// Byte offset of this component inside a [`AesStateLayout`] arena.
    pub offset: usize,
}

/// The complete memory map of one AES context's state.
#[derive(Debug, Clone)]
pub struct AesStateLayout {
    key_size: KeySize,
    components: Vec<StateComponent>,
    total: usize,
}

/// Round up to a 4-byte boundary so u32 table entries stay aligned.
fn align4(x: usize) -> usize {
    (x + 3) & !3
}

impl AesStateLayout {
    /// Build the layout for a given key size.
    #[must_use]
    pub fn for_key_size(key_size: KeySize) -> Self {
        let rounds = key_size.rounds();
        // Our schedule caches both encryption and decryption round keys
        // (the equivalent inverse cipher). The paper's figure (320 bytes
        // for AES-128) corresponds to a single OpenSSL AES_KEY-style
        // structure; we account for what we actually store.
        let round_key_bytes = 2 * 4 * (rounds + 1) * 4;
        let paper_round_keys = match key_size {
            KeySize::Aes128 => 320,
            KeySize::Aes192 => 368,
            KeySize::Aes256 => 416,
        };

        let specs: [(&'static str, usize, Option<usize>, Sensitivity); 9] = [
            ("Input block", BLOCK_SIZE, Some(16), Sensitivity::Secret),
            (
                "Key",
                key_size.key_len(),
                Some(key_size.key_len()),
                Sensitivity::Secret,
            ),
            ("Round Index", 1, Some(1), Sensitivity::Public),
            (
                "Round Keys",
                round_key_bytes,
                Some(paper_round_keys),
                Sensitivity::Secret,
            ),
            (
                "2 Round Tables",
                2 * TABLE_BYTES,
                Some(2048),
                Sensitivity::AccessProtected,
            ),
            (
                "2 S-box",
                2 * SBOX_SIZE,
                Some(512),
                Sensitivity::AccessProtected,
            ),
            (
                "Rcon",
                RCON_WORDS * 4,
                Some(40),
                Sensitivity::AccessProtected,
            ),
            ("Block Index", 1, Some(1), Sensitivity::Public),
            ("CBC block/ivec", BLOCK_SIZE, Some(16), Sensitivity::Public),
        ];

        let mut components = Vec::with_capacity(specs.len());
        let mut offset = 0usize;
        for (name, bytes, paper_bytes, sensitivity) in specs {
            offset = align4(offset);
            components.push(StateComponent {
                name,
                bytes,
                paper_bytes,
                sensitivity,
                offset,
            });
            offset += bytes;
        }
        AesStateLayout {
            key_size,
            components,
            total: align4(offset),
        }
    }

    /// Build the layout for the *table-free bitsliced* variant
    /// ([`crate::tracked::TrackedBitslicedAes`]).
    ///
    /// The bitsliced kernel evaluates SubBytes as a boolean circuit and
    /// derives Rcon arithmetically, so the three access-protected rows of
    /// Table 4 — 2 048 bytes of round tables, 512 bytes of S-boxes, and
    /// 40 bytes of Rcon — vanish from the state entirely: the
    /// access-protected footprint is **zero**. What grows instead is the
    /// public input slot, which holds a whole 16-block batch rather than
    /// one block. Round keys stay in the scalar column-word form (they are
    /// broadcast into bit planes in registers each round), so secret state
    /// is unchanged. `paper_bytes` is `None` throughout: the paper's
    /// Table 4 describes the OpenSSL layout and has no bitsliced column.
    #[must_use]
    pub fn bitsliced(key_size: KeySize) -> Self {
        let rounds = key_size.rounds();
        let round_key_bytes = 2 * 4 * (rounds + 1) * 4;
        let batch = crate::bitslice::PAR_BLOCKS * BLOCK_SIZE;

        let specs: [(&'static str, usize, Option<usize>, Sensitivity); 6] = [
            ("Input batch", batch, None, Sensitivity::Secret),
            ("Key", key_size.key_len(), None, Sensitivity::Secret),
            ("Round Index", 1, None, Sensitivity::Public),
            ("Round Keys", round_key_bytes, None, Sensitivity::Secret),
            ("Block Index", 1, None, Sensitivity::Public),
            ("CBC block/ivec", BLOCK_SIZE, None, Sensitivity::Public),
        ];

        let mut components = Vec::with_capacity(specs.len());
        let mut offset = 0usize;
        for (name, bytes, paper_bytes, sensitivity) in specs {
            offset = align4(offset);
            components.push(StateComponent {
                name,
                bytes,
                paper_bytes,
                sensitivity,
                offset,
            });
            offset += bytes;
        }
        AesStateLayout {
            key_size,
            components,
            total: align4(offset),
        }
    }

    /// The key size this layout describes.
    #[must_use]
    pub fn key_size(&self) -> KeySize {
        self.key_size
    }

    /// All components, in arena order.
    #[must_use]
    pub fn components(&self) -> &[StateComponent] {
        &self.components
    }

    /// Total arena size in bytes (components plus alignment padding).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.total
    }

    /// Find a component by its Table 4 row name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the layout's component names; the
    /// set of names is fixed at compile time, so a miss is a programming
    /// error.
    #[must_use]
    pub fn component(&self, name: &str) -> &StateComponent {
        self.components
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("unknown AES state component {name:?}"))
    }

    /// Sum of component sizes in one sensitivity class (this
    /// implementation's sizes).
    #[must_use]
    pub fn total_for(&self, sensitivity: Sensitivity) -> usize {
        self.components
            .iter()
            .filter(|c| c.sensitivity == sensitivity)
            .map(|c| c.bytes)
            .sum()
    }

    /// Sum of the paper's component sizes in one sensitivity class.
    #[must_use]
    pub fn paper_total_for(&self, sensitivity: Sensitivity) -> usize {
        self.components
            .iter()
            .filter(|c| c.sensitivity == sensitivity)
            .filter_map(|c| c.paper_bytes)
            .sum()
    }

    /// Bytes that must live on the SoC: everything secret or
    /// access-protected (public state may safely live in DRAM).
    #[must_use]
    pub fn on_soc_bytes(&self) -> usize {
        self.total_for(Sensitivity::Secret) + self.total_for(Sensitivity::AccessProtected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table4_totals_reproduce() {
        // "the OpenSSL AES-128 implementation has 352 bytes of secret
        //  state, 2600 bytes of access-protected state, and 18 bytes of
        //  public state" (paper §6.1).
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        assert_eq!(layout.paper_total_for(Sensitivity::Secret), 352);
        assert_eq!(layout.paper_total_for(Sensitivity::AccessProtected), 2600);
        assert_eq!(layout.paper_total_for(Sensitivity::Public), 18);
    }

    #[test]
    fn paper_per_component_sizes() {
        let layout = AesStateLayout::for_key_size(KeySize::Aes192);
        assert_eq!(layout.component("Key").paper_bytes, Some(24));
        assert_eq!(layout.component("Round Keys").paper_bytes, Some(368));
        let layout = AesStateLayout::for_key_size(KeySize::Aes256);
        assert_eq!(layout.component("Round Keys").paper_bytes, Some(416));
    }

    #[test]
    fn offsets_are_disjoint_and_aligned() {
        for ks in KeySize::all() {
            let layout = AesStateLayout::for_key_size(ks);
            let mut prev_end = 0usize;
            for c in layout.components() {
                assert!(c.offset % 4 == 0, "{} misaligned", c.name);
                assert!(c.offset >= prev_end, "{} overlaps predecessor", c.name);
                prev_end = c.offset + c.bytes;
            }
            assert!(layout.total_bytes() >= prev_end);
        }
    }

    #[test]
    fn arena_fits_in_one_page_for_aes128_tables_excluded() {
        // The paper's "minimum on-SoC memory" argument (§7) relies on AES
        // On SoC state fitting comfortably inside a single 4 KiB page.
        for ks in KeySize::all() {
            let layout = AesStateLayout::for_key_size(ks);
            assert!(
                layout.total_bytes() <= 4096,
                "{ks}: {} bytes exceeds a page",
                layout.total_bytes()
            );
        }
    }

    #[test]
    fn on_soc_bytes_excludes_public_state() {
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        assert_eq!(
            layout.on_soc_bytes(),
            layout.total_for(Sensitivity::Secret) + layout.total_for(Sensitivity::AccessProtected)
        );
        assert!(layout.on_soc_bytes() < layout.total_bytes());
    }

    #[test]
    fn bitsliced_layout_has_zero_access_protected_state() {
        // The point of the table-free variant: all 2 600 access-protected
        // bytes of Table 4 disappear, so on-SoC placement only needs to
        // hold the secrets themselves.
        for ks in KeySize::all() {
            let table = AesStateLayout::for_key_size(ks);
            let bitsliced = AesStateLayout::bitsliced(ks);
            assert_eq!(bitsliced.total_for(Sensitivity::AccessProtected), 0);
            assert!(table.total_for(Sensitivity::AccessProtected) >= 2600);
            // Secret round-key state is identical; the only growth is the
            // 16-block input batch.
            assert_eq!(
                bitsliced.component("Round Keys").bytes,
                table.component("Round Keys").bytes
            );
            assert!(bitsliced.on_soc_bytes() < table.on_soc_bytes());
            assert!(bitsliced.total_bytes() <= 4096, "{ks} exceeds a page");
        }
    }

    #[test]
    fn bitsliced_layout_offsets_are_disjoint_and_aligned() {
        for ks in KeySize::all() {
            let layout = AesStateLayout::bitsliced(ks);
            let mut prev_end = 0usize;
            for c in layout.components() {
                assert!(c.offset % 4 == 0, "{} misaligned", c.name);
                assert!(c.offset >= prev_end, "{} overlaps predecessor", c.name);
                prev_end = c.offset + c.bytes;
            }
            assert!(layout.total_bytes() >= prev_end);
        }
    }

    #[test]
    fn access_protected_dominates_state() {
        // "the round tables alone account for an order of magnitude more
        //  state than the rest of the state variables combined" — check the
        //  qualitative claim for our layout too.
        let layout = AesStateLayout::for_key_size(KeySize::Aes128);
        let tables = layout.component("2 Round Tables").bytes;
        let rest: usize = layout
            .components()
            .iter()
            .filter(|c| c.name != "2 Round Tables" && c.sensitivity != Sensitivity::AccessProtected)
            .map(|c| c.bytes)
            .sum();
        assert!(tables > 4 * rest);
    }
}
