//! The AES key schedule (FIPS-197 section 5.2).
//!
//! Round keys are precomputed and cached — the optimization the paper calls
//! out in section 6.1: it speeds up encryption but *grows the secret state*
//! that must be kept on the SoC, since every round key is derived from the
//! original key.

use crate::{sbox, tables, KeyError, KeySize};

/// The Rcon constants: powers of 2 in GF(2^8), placed in the high byte.
///
/// The paper's Table 4 accounts 40 bytes for Rcon — ten 32-bit words, the
/// number needed by AES-128 (larger key sizes need fewer).
pub const RCON_WORDS: usize = 10;

/// Compute the Rcon table.
#[must_use]
pub fn compute_rcon() -> [u32; RCON_WORDS] {
    let mut rcon = [0u32; RCON_WORDS];
    let mut v = 1u8;
    for slot in &mut rcon {
        *slot = u32::from(v) << 24;
        v = crate::gf::xtime(v);
    }
    rcon
}

/// Rotate a word left by one byte (`RotWord`).
#[must_use]
pub fn rot_word(w: u32) -> u32 {
    w.rotate_left(8)
}

/// Substitute each byte of a word through the S-box (`SubWord`).
#[must_use]
pub fn sub_word(w: u32) -> u32 {
    let [a, b, c, d] = w.to_be_bytes();
    u32::from_be_bytes([
        sbox::sub_byte(a),
        sbox::sub_byte(b),
        sbox::sub_byte(c),
        sbox::sub_byte(d),
    ])
}

/// An expanded AES key schedule: encryption round keys plus the
/// InvMixColumns-transformed decryption round keys of the equivalent
/// inverse cipher.
#[derive(Clone)]
pub struct KeySchedule {
    size: KeySize,
    enc: Vec<u32>,
    dec: Vec<u32>,
}

impl std::fmt::Debug for KeySchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print round-key material; that would be exactly the kind of
        // accidental secret spill Sentry exists to prevent.
        f.debug_struct("KeySchedule")
            .field("size", &self.size)
            .field("rounds", &self.size.rounds())
            .finish_non_exhaustive()
    }
}

impl KeySchedule {
    /// Expand a raw key into the full schedule.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidLength`] if the key is not 16, 24, or 32
    /// bytes long.
    pub fn expand(key: &[u8]) -> Result<Self, KeyError> {
        let size = KeySize::from_key_len(key.len())?;
        let enc = expand_enc(key, size);
        let dec = derive_dec(&enc, size);
        Ok(KeySchedule { size, enc, dec })
    }

    /// The key size this schedule was expanded from.
    #[must_use]
    pub fn size(&self) -> KeySize {
        self.size
    }

    /// Encryption round keys as words: `4 * (rounds + 1)` entries.
    #[must_use]
    pub fn enc_words(&self) -> &[u32] {
        &self.enc
    }

    /// Decryption round keys (equivalent inverse cipher ordering).
    #[must_use]
    pub fn dec_words(&self) -> &[u32] {
        &self.dec
    }

    /// Total size of the cached round keys in bytes (both directions).
    ///
    /// This is the "Round Keys" line of the paper's Table 4 for our
    /// implementation.
    #[must_use]
    pub fn round_key_bytes(&self) -> usize {
        (self.enc.len() + self.dec.len()) * 4
    }
}

/// Expand the encryption round keys (FIPS-197 `KeyExpansion`).
fn expand_enc(key: &[u8], size: KeySize) -> Vec<u32> {
    let nk = size.nk();
    let total_words = 4 * (size.rounds() + 1);
    let rcon = compute_rcon();
    let mut w = Vec::with_capacity(total_words);
    for chunk in key.chunks_exact(4) {
        w.push(u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    for i in nk..total_words {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp = sub_word(rot_word(temp)) ^ rcon[i / nk - 1];
        } else if nk > 6 && i % nk == 4 {
            temp = sub_word(temp);
        }
        w.push(w[i - nk] ^ temp);
    }
    w
}

/// Derive decryption round keys for the equivalent inverse cipher: reverse
/// the per-round order and apply InvMixColumns to all but the first and
/// last round keys.
fn derive_dec(enc: &[u32], size: KeySize) -> Vec<u32> {
    let rounds = size.rounds();
    let mut dec = Vec::with_capacity(enc.len());
    for round in 0..=rounds {
        let src = rounds - round;
        for col in 0..4 {
            let word = enc[4 * src + col];
            if round == 0 || round == rounds {
                dec.push(word);
            } else {
                dec.push(tables::inv_mix_column_word(word));
            }
        }
    }
    dec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rcon_matches_published_values() {
        let rcon = compute_rcon();
        let expected = [
            0x0100_0000u32,
            0x0200_0000,
            0x0400_0000,
            0x0800_0000,
            0x1000_0000,
            0x2000_0000,
            0x4000_0000,
            0x8000_0000,
            0x1b00_0000,
            0x3600_0000,
        ];
        assert_eq!(rcon, expected);
    }

    #[test]
    fn aes128_expansion_matches_fips_appendix_a1() {
        // FIPS-197 Appendix A.1 key: 2b7e1516 28aed2a6 abf71588 09cf4f3c.
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let ks = KeySchedule::expand(&key).unwrap();
        let w = ks.enc_words();
        assert_eq!(w.len(), 44);
        assert_eq!(w[0], 0x2b7e_1516);
        assert_eq!(w[4], 0xa0fa_fe17);
        assert_eq!(w[10], 0x5935_807a);
        assert_eq!(w[43], 0xb663_0ca6);
    }

    #[test]
    fn aes192_expansion_matches_fips_appendix_a2() {
        let key = hex("8e73b0f7da0e6452c810f32b809079e562f8ead2522c6b7b");
        let ks = KeySchedule::expand(&key).unwrap();
        let w = ks.enc_words();
        assert_eq!(w.len(), 52);
        assert_eq!(w[6], 0xfe0c_91f7);
        assert_eq!(w[51], 0x0100_2202);
    }

    #[test]
    fn aes256_expansion_matches_fips_appendix_a3() {
        let key = hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4");
        let ks = KeySchedule::expand(&key).unwrap();
        let w = ks.enc_words();
        assert_eq!(w.len(), 60);
        assert_eq!(w[8], 0x9ba3_5411);
        assert_eq!(w[59], 0x706c_631e);
    }

    #[test]
    fn dec_keys_first_equals_enc_last_round() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let ks = KeySchedule::expand(&key).unwrap();
        let enc = ks.enc_words();
        let dec = ks.dec_words();
        assert_eq!(&dec[0..4], &enc[40..44]);
        assert_eq!(&dec[40..44], &enc[0..4]);
    }

    #[test]
    fn debug_never_leaks_round_keys() {
        let key = hex("000102030405060708090a0b0c0d0e0f");
        let ks = KeySchedule::expand(&key).unwrap();
        let dbg = format!("{ks:?}");
        assert!(!dbg.contains("2b7e"));
        assert!(dbg.contains("KeySchedule"));
    }

    #[test]
    fn round_key_bytes_accounting() {
        for ks_size in KeySize::all() {
            let key = vec![0u8; ks_size.key_len()];
            let ks = KeySchedule::expand(&key).unwrap();
            let words = 4 * (ks_size.rounds() + 1);
            assert_eq!(ks.round_key_bytes(), 2 * words * 4);
        }
    }
}
